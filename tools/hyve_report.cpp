// hyve_report — validate, compare, and track bench report JSON files.
//
// The bench binaries emit versioned BENCH_<name>.json documents via
// --json (see src/core/bench_json.hpp). This tool is the consumer side:
//
//   hyve_report --check BENCH_fig13.json
//       Parses the file and enforces every invariant the schema makes:
//       schema name/version, per-run phase and energy-ledger sums,
//       rollup == sum of run ledgers. Exit 0 when valid, 1 when not.
//
//   hyve_report --compare OLD.json NEW.json [--threshold PCT]
//       Per-cell, per-metric deltas between two documents (exec time and
//       energy lower-is-better, MTEPS and MTEPS/W higher-is-better).
//       Exit 1 when any metric moved in the worse direction by more than
//       the threshold (default 0.5%), or when NEW lost cells OLD had —
//       a silently shrunk grid is a coverage regression, not a speedup.
//
//   hyve_report --record REPORT.json [--history DIR] [--baseline NAME]
//       Appends the report's headline numbers — wall clock, peak RSS,
//       energy, simulated exec time — plus provenance (git rev, host
//       fingerprint, jobs, timestamp) as one line of the append-only
//       <DIR>/<bench>.jsonl ledger (default DIR: bench/history). With
//       --baseline, also pins the record as <DIR>/baselines/<NAME>.json.
//
//   hyve_report --trend DIR [--threshold PCT]
//       For every ledger under DIR: latest record vs the median of prior
//       records with the same (host, jobs, smoke, cells) signature.
//       Exit 1 when any headline metric grew beyond the threshold
//       (default 10% — wall-clock numbers are noisy).
//
//   hyve_report --compare-to-baseline REPORT.json --baseline NAME
//       [--history DIR] [--threshold PCT]
//       The report's numbers vs one pinned baseline, same rules.
#include <chrono>
#include <ctime>
#include <iostream>
#include <string>

#include "core/bench_json.hpp"
#include "core/perf_history.hpp"
#include "obs/host_profiler.hpp"
#include "util/cli.hpp"

namespace {

std::string utc_now_iso8601() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;

  std::string check_path;
  std::string compare_old;
  std::string record_path;
  std::string trend_dir;
  std::string compare_baseline_path;
  std::string baseline_name;
  std::string history_dir = "bench/history";
  double threshold_pct = -1;  // per-mode default

  cli::ArgParser parser(
      "hyve_report",
      "validate, compare, and track bench --json reports");
  parser.option("--check", "FILE",
                "validate FILE against the bench-report schema and its "
                "ledger invariants",
                [&](const std::string& v) { check_path = v; });
  parser.option("--compare", "OLD",
                "compare OLD against the NEW positional argument "
                "(hyve_report --compare old.json new.json)",
                [&](const std::string& v) { compare_old = v; });
  parser.option("--record", "FILE",
                "append FILE's headline numbers and provenance to the "
                "perf-history ledger",
                [&](const std::string& v) { record_path = v; });
  parser.option("--trend", "DIR",
                "check every ledger under DIR: latest record vs the "
                "median of comparable priors",
                [&](const std::string& v) { trend_dir = v; });
  parser.option("--compare-to-baseline", "FILE",
                "compare FILE's numbers against the pinned --baseline "
                "NAME record",
                [&](const std::string& v) { compare_baseline_path = v; });
  parser.option("--baseline", "NAME",
                "baseline name: pinned by --record, read by "
                "--compare-to-baseline",
                [&](const std::string& v) { baseline_name = v; });
  parser.option("--history", "DIR",
                "perf-history directory (default bench/history)",
                [&](const std::string& v) { history_dir = v; });
  parser.option("--threshold", "PCT",
                "regression threshold in percent (default 0.5 for "
                "--compare, 10 for trend/baseline modes)",
                [&](const std::string& v) {
                  try {
                    std::size_t used = 0;
                    threshold_pct = std::stod(v, &used);
                    if (used != v.size() || threshold_pct < 0)
                      throw std::invalid_argument(v);
                  } catch (const std::exception&) {
                    parser.fail("--threshold expects a non-negative "
                                "percentage, got \"" + v + "\"");
                  }
                });
  parser.allow_positionals(1);
  parser.parse(argc, argv);

  const int modes = (check_path.empty() ? 0 : 1) +
                    (compare_old.empty() ? 0 : 1) +
                    (record_path.empty() ? 0 : 1) +
                    (trend_dir.empty() ? 0 : 1) +
                    (compare_baseline_path.empty() ? 0 : 1);
  if (modes != 1)
    parser.fail("pass exactly one of --check, --compare, --record, "
                "--trend, or --compare-to-baseline");

  if (!check_path.empty()) {
    if (!parser.positionals().empty())
      parser.fail("--check takes no positional argument");
    try {
      const BenchReportDoc doc = read_bench_report_file(check_path);
      std::cout << check_path << ": ok (bench " << doc.bench << ", "
                << doc.runs.size() << " run(s), "
                << doc.ledger_rollup.size() << " ledger cell(s), rev "
                << doc.git_rev << (doc.smoke ? ", smoke" : "") << ")\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (!compare_old.empty()) {
    if (parser.positionals().size() != 1)
      parser.fail("--compare needs the NEW file as a positional argument");
    const double threshold = threshold_pct < 0 ? 0.5 : threshold_pct;
    try {
      const BenchReportDoc old_doc = read_bench_report_file(compare_old);
      const BenchReportDoc new_doc =
          read_bench_report_file(parser.positionals()[0]);
      const BenchCompareResult result =
          compare_bench_reports(old_doc, new_doc, threshold);
      std::cout << format_bench_compare(result, threshold);
      // A shrunk run set fails like a regression: cells that vanished
      // can't be compared, and "we stopped measuring it" must not read
      // as "it got faster".
      return result.regressions > 0 || !result.removed.empty() ? 1 : 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (!record_path.empty()) {
    if (!parser.positionals().empty())
      parser.fail("--record takes no positional argument");
    try {
      const BenchReportDoc doc = read_bench_report_file(record_path);
      PerfRecord record = perf_record_from_report(doc);
      const obs::HostFingerprint fp = obs::host_fingerprint();
      record.hostname = fp.hostname;
      record.cpu_model = fp.cpu_model;
      record.cpus = fp.cpus;
      record.recorded_at = utc_now_iso8601();
      append_perf_record(history_dir, record);
      std::cout << perf_history_path(history_dir, record.bench)
                << ": recorded " << record.bench << " @ " << record.git_rev
                << " (" << record.cells << " cell(s), wall "
                << record.wall_ms << " ms, peak rss " << record.max_rss_kb
                << " kb)\n";
      if (!baseline_name.empty()) {
        save_perf_baseline(history_dir, baseline_name, record);
        std::cout << "baseline " << baseline_name << ": pinned\n";
      }
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (!trend_dir.empty()) {
    if (!parser.positionals().empty())
      parser.fail("--trend takes no positional argument");
    const double threshold = threshold_pct < 0 ? 10.0 : threshold_pct;
    try {
      const std::vector<std::string> ledgers =
          list_perf_histories(trend_dir);
      if (ledgers.empty()) {
        std::cout << trend_dir << ": no prior records\n";
        return 0;
      }
      std::size_t regressions = 0;
      for (const std::string& path : ledgers) {
        const PerfTrendResult result =
            trend_perf_history(load_perf_history(path), threshold);
        std::cout << format_perf_trend(result, threshold);
        regressions += result.regressions;
      }
      return regressions > 0 ? 1 : 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (baseline_name.empty())
    parser.fail("--compare-to-baseline needs --baseline NAME");
  if (!parser.positionals().empty())
    parser.fail("--compare-to-baseline takes no positional argument");
  const double threshold = threshold_pct < 0 ? 10.0 : threshold_pct;
  try {
    const BenchReportDoc doc =
        read_bench_report_file(compare_baseline_path);
    PerfRecord latest = perf_record_from_report(doc);
    const obs::HostFingerprint fp = obs::host_fingerprint();
    latest.hostname = fp.hostname;
    latest.cpu_model = fp.cpu_model;
    latest.cpus = fp.cpus;
    const PerfRecord baseline =
        load_perf_baseline(history_dir, baseline_name);
    const PerfTrendResult result =
        compare_to_baseline(baseline, latest, threshold);
    std::cout << format_perf_trend(result, threshold);
    return result.regressions > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
