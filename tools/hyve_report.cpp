// hyve_report — validate and compare bench report JSON files.
//
// The bench binaries emit versioned BENCH_<name>.json documents via
// --json (see src/core/bench_json.hpp). This tool is the consumer side:
//
//   hyve_report --check BENCH_fig13.json
//       Parses the file and enforces every invariant the schema makes:
//       schema name/version, per-run phase and energy-ledger sums,
//       rollup == sum of run ledgers. Exit 0 when valid, 1 when not.
//
//   hyve_report --compare OLD.json NEW.json [--threshold PCT]
//       Per-cell, per-metric deltas between two documents (exec time and
//       energy lower-is-better, MTEPS and MTEPS/W higher-is-better).
//       Exit 1 when any metric moved in the worse direction by more than
//       the threshold (default 0.5%), 0 otherwise — wire it into CI to
//       catch performance regressions between revisions.
#include <iostream>
#include <string>

#include "core/bench_json.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hyve;

  std::string check_path;
  std::string compare_old;
  double threshold_pct = 0.5;

  cli::ArgParser parser("hyve_report",
                        "validate and compare bench --json reports");
  parser.option("--check", "FILE",
                "validate FILE against the bench-report schema and its "
                "ledger invariants",
                [&](const std::string& v) { check_path = v; });
  parser.option("--compare", "OLD",
                "compare OLD against the NEW positional argument "
                "(hyve_report --compare old.json new.json)",
                [&](const std::string& v) { compare_old = v; });
  parser.option("--threshold", "PCT",
                "regression threshold in percent for --compare "
                "(default 0.5)",
                [&](const std::string& v) {
                  try {
                    std::size_t used = 0;
                    threshold_pct = std::stod(v, &used);
                    if (used != v.size() || threshold_pct < 0)
                      throw std::invalid_argument(v);
                  } catch (const std::exception&) {
                    parser.fail("--threshold expects a non-negative "
                                "percentage, got \"" + v + "\"");
                  }
                });
  parser.allow_positionals(1);
  parser.parse(argc, argv);

  if (check_path.empty() == compare_old.empty())
    parser.fail("pass exactly one of --check FILE or --compare OLD NEW");

  if (!check_path.empty()) {
    if (!parser.positionals().empty())
      parser.fail("--check takes no positional argument");
    try {
      const BenchReportDoc doc = read_bench_report_file(check_path);
      std::cout << check_path << ": ok (bench " << doc.bench << ", "
                << doc.runs.size() << " run(s), "
                << doc.ledger_rollup.size() << " ledger cell(s), rev "
                << doc.git_rev << (doc.smoke ? ", smoke" : "") << ")\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }

  if (parser.positionals().size() != 1)
    parser.fail("--compare needs the NEW file as a positional argument");
  try {
    const BenchReportDoc old_doc = read_bench_report_file(compare_old);
    const BenchReportDoc new_doc =
        read_bench_report_file(parser.positionals()[0]);
    const BenchCompareResult result =
        compare_bench_reports(old_doc, new_doc, threshold_pct);
    std::cout << format_bench_compare(result, threshold_pct);
    return result.regressions > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
