// hyve_dash — render a bench report (and optionally its trace and perf
// history) into one self-contained HTML dashboard.
//
//   hyve_dash BENCH_fig13.json                      # writes BENCH_fig13.html
//   hyve_dash r.json --out dash.html --trace t.json --history bench/history
//
// The output is a single file with inline CSS/SVG and no scripts or
// external resources — it opens from disk, attaches to a CI artifact,
// or pastes into a review. Sections, in order:
//
//   * header: bench, git rev, smoke tag, datasets;
//   * per-run table with phase-time and energy-component stacked bars;
//   * energy ledger rollup by component;
//   * deterministic sim.* metrics;
//   * host section (--host; off by default so the page is byte-identical
//     across --jobs for byte-identical deterministic report content);
//   * with --trace: the top-N hottest host wall-clock spans (flame
//     table) and every counter track as an SVG sparkline;
//   * with --history: the bench's perf trajectory (wall-clock sparkline
//     over recorded commits).
//
// Rendering is deterministic: the bytes depend only on the input files
// and flags, never on the clock or the machine.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/bench_json.hpp"
#include "core/perf_history.hpp"
#include "core/report_io.hpp"
#include "obs/host_profiler.hpp"
#include "util/cli.hpp"

namespace {

using namespace hyve;

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v, int precision = 6) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

// Fixed palette cycled across stacked-bar segments and sparklines.
const char* const kPalette[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                                "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                                "#9c755f", "#bab0ac"};
constexpr std::size_t kPaletteSize = sizeof kPalette / sizeof *kPalette;

// A horizontal stacked bar out of labeled, colored segments; segments
// below 0.5% of the total are dropped from the markup (invisible
// anyway, and they bloat the page).
std::string stacked_bar(
    const std::vector<std::pair<std::string, double>>& segments) {
  double total = 0;
  for (const auto& [label, value] : segments) total += value;
  std::ostringstream os;
  os << "<div class=\"bar\">";
  if (total > 0) {
    std::size_t color = 0;
    for (const auto& [label, value] : segments) {
      const double pct = value / total * 100.0;
      if (pct >= 0.5)
        os << "<span style=\"width:" << num(pct, 4)
           << "%;background:" << kPalette[color % kPaletteSize]
           << "\" title=\"" << html_escape(label) << ": " << num(value)
           << " (" << num(pct, 3) << "%)\"></span>";
      ++color;
    }
  }
  os << "</div>";
  return os.str();
}

std::string legend(const std::vector<std::string>& labels) {
  std::ostringstream os;
  os << "<p class=\"legend\">";
  for (std::size_t i = 0; i < labels.size(); ++i)
    os << "<span><i style=\"background:" << kPalette[i % kPaletteSize]
       << "\"></i>" << html_escape(labels[i]) << "</span> ";
  os << "</p>";
  return os.str();
}

// An SVG polyline over (x, y) samples, scaled to fit; constant series
// draw as a midline.
std::string sparkline(const std::vector<std::pair<double, double>>& points,
                      const char* color, int width = 560, int height = 64) {
  std::ostringstream os;
  os << "<svg width=\"" << width << "\" height=\"" << height
     << "\" viewBox=\"0 0 " << width << ' ' << height << "\">";
  if (points.size() >= 2) {
    double x_min = points.front().first, x_max = points.front().first;
    double y_min = points.front().second, y_max = points.front().second;
    for (const auto& [x, y] : points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
    const double x_span = x_max > x_min ? x_max - x_min : 1.0;
    const double y_span = y_max > y_min ? y_max - y_min : 1.0;
    os << "<polyline fill=\"none\" stroke=\"" << color
       << "\" stroke-width=\"1.5\" points=\"";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i > 0) os << ' ';
      const double x = (points[i].first - x_min) / x_span * (width - 8) + 4;
      const double y = height - 4 -
                       (points[i].second - y_min) / y_span * (height - 8);
      os << num(x, 5) << ',' << num(y, 5);
    }
    os << "\"/>";
  }
  os << "</svg>";
  return os.str();
}

struct TraceSections {
  std::string spans;     // host-span flame table
  std::string counters;  // counter-track sparklines
};

// Digests a Chrome trace file through the same flat-JSON parser the
// bench reports use: "traceEvents.N.<field>" keys, args flattened too.
TraceSections render_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open trace " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::map<std::string, std::string> fields =
      parse_flat_json(buf.str());

  struct SpanAgg {
    std::uint64_t count = 0;
    double total_us = 0;
    double max_us = 0;
  };
  std::map<std::string, SpanAgg> spans;  // host spans by name
  // Counter samples keyed (pid/name/series) -> (ts, value) points.
  std::map<std::string, std::vector<std::pair<double, double>>> counters;

  const std::string host_pid =
      std::to_string(obs::HostProfiler::kTracePid);
  for (std::size_t i = 0;; ++i) {
    const std::string base = "traceEvents." + std::to_string(i) + ".";
    const auto ph = fields.find(base + "ph");
    if (ph == fields.end()) break;
    const auto field = [&](const char* key) -> const std::string& {
      static const std::string empty;
      const auto it = fields.find(base + key);
      return it == fields.end() ? empty : it->second;
    };
    if (ph->second == "X" && field("pid") == host_pid) {
      SpanAgg& agg = spans[field("name")];
      const double dur_us = std::strtod(field("dur").c_str(), nullptr);
      ++agg.count;
      agg.total_us += dur_us;
      agg.max_us = std::max(agg.max_us, dur_us);
    } else if (ph->second == "C") {
      const double ts = std::strtod(field("ts").c_str(), nullptr);
      const std::string prefix = base + "args.";
      for (auto it = fields.lower_bound(prefix);
           it != fields.end() && it->first.rfind(prefix, 0) == 0; ++it) {
        const std::string series = it->first.substr(prefix.size());
        counters["pid " + field("pid") + " · " + field("name") + " · " +
                 series]
            .emplace_back(ts, std::strtod(it->second.c_str(), nullptr));
      }
    }
  }

  TraceSections out;
  {
    std::vector<std::pair<std::string, SpanAgg>> hottest(spans.begin(),
                                                         spans.end());
    std::sort(hottest.begin(), hottest.end(),
              [](const auto& a, const auto& b) {
                return a.second.total_us != b.second.total_us
                           ? a.second.total_us > b.second.total_us
                           : a.first < b.first;
              });
    if (hottest.size() > 20) hottest.resize(20);
    std::ostringstream os;
    if (hottest.empty()) {
      os << "<p>No host wall-clock spans in the trace (run with "
            "--host-profile).</p>";
    } else {
      double grand_total = 0;
      for (const auto& [name, agg] : hottest) grand_total += agg.total_us;
      os << "<table><tr><th>span</th><th>count</th><th>total "
            "(us)</th><th>avg (us)</th><th>max (us)</th><th>share</th>"
            "</tr>";
      for (const auto& [name, agg] : hottest) {
        const double share =
            grand_total > 0 ? agg.total_us / grand_total * 100.0 : 0;
        os << "<tr><td>" << html_escape(name) << "</td><td>" << agg.count
           << "</td><td>" << num(agg.total_us) << "</td><td>"
           << num(agg.count > 0 ? agg.total_us / agg.count : 0)
           << "</td><td>" << num(agg.max_us) << "</td><td>"
           << stacked_bar({{"share", share}, {"", 100 - share}})
           << "</td></tr>";
      }
      os << "</table>";
    }
    out.spans = os.str();
  }
  {
    std::ostringstream os;
    if (counters.empty()) {
      os << "<p>No counter tracks in the trace.</p>";
    } else {
      std::size_t color = 0;
      for (const auto& [key, points] : counters) {
        double last = points.empty() ? 0 : points.back().second;
        os << "<div class=\"track\"><p>" << html_escape(key) << " (last "
           << num(last) << ", " << points.size() << " samples)</p>"
           << sparkline(points, kPalette[color % kPaletteSize])
           << "</div>";
        ++color;
      }
    }
    out.counters = os.str();
  }
  return out;
}

std::string render_history(const std::string& dir,
                           const std::string& bench) {
  const std::string path = perf_history_path(dir, bench);
  std::vector<PerfRecord> records;
  try {
    records = load_perf_history(path);
  } catch (const std::exception&) {
    return "<p>No perf history for " + html_escape(bench) + " under " +
           html_escape(dir) + ".</p>";
  }
  if (records.empty()) return "<p>Perf history is empty.</p>";
  std::ostringstream os;
  std::vector<std::pair<double, double>> wall;
  for (std::size_t i = 0; i < records.size(); ++i)
    wall.emplace_back(static_cast<double>(i), records[i].wall_ms);
  os << "<div class=\"track\"><p>wall_ms across " << records.size()
     << " recorded run(s)</p>" << sparkline(wall, kPalette[0]) << "</div>";
  os << "<table><tr><th>#</th><th>recorded</th><th>rev</th><th>jobs</th>"
        "<th>cells</th><th>wall (ms)</th><th>peak rss (kb)</th>"
        "<th>energy (pJ)</th></tr>";
  const std::size_t first =
      records.size() > 12 ? records.size() - 12 : 0;
  for (std::size_t i = first; i < records.size(); ++i) {
    const PerfRecord& r = records[i];
    os << "<tr><td>" << i << "</td><td>" << html_escape(r.recorded_at)
       << "</td><td>" << html_escape(r.git_rev) << "</td><td>" << r.jobs
       << "</td><td>" << r.cells << "</td><td>" << num(r.wall_ms)
       << "</td><td>" << r.max_rss_kb << "</td><td>" << num(r.energy_pj)
       << "</td></tr>";
  }
  os << "</table>";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string trace_path;
  std::string history_dir;
  std::string title;
  bool include_host = false;

  cli::ArgParser parser(
      "hyve_dash",
      "render a bench --json report into one self-contained HTML page");
  parser.positional_usage("hyve_dash REPORT.json [options]");
  parser.option("--out", "PATH",
                "output HTML path (default: REPORT with .html extension)",
                [&](const std::string& v) { out_path = v; });
  parser.option("--trace", "PATH",
                "also digest a Chrome trace: hottest host spans and "
                "counter tracks",
                [&](const std::string& v) { trace_path = v; });
  parser.option("--history", "DIR",
                "also render this bench's perf-history trajectory from "
                "DIR",
                [&](const std::string& v) { history_dir = v; });
  parser.option("--title", "TEXT", "page title (default: bench name)",
                [&](const std::string& v) { title = v; });
  parser.flag("--host",
              "include the report's wall-clock host section (off by "
              "default: it breaks byte-identity across --jobs)",
              &include_host);
  parser.allow_positionals(1);
  parser.parse(argc, argv);

  if (parser.positionals().size() != 1)
    parser.fail("need exactly one REPORT.json argument");
  const std::string report_path = parser.positionals()[0];
  if (out_path.empty()) {
    out_path = report_path;
    const std::size_t dot = out_path.rfind('.');
    if (dot != std::string::npos &&
        out_path.find('/', dot) == std::string::npos)
      out_path.resize(dot);
    out_path += ".html";
  }

  try {
    const BenchReportDoc doc = read_bench_report_file(report_path);
    if (title.empty()) title = doc.bench;

    std::ostringstream os;
    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
       << "<title>" << html_escape(title) << "</title><style>\n"
       << "body{font:14px/1.5 system-ui,sans-serif;margin:24px auto;"
          "max-width:960px;color:#222}\n"
       << "h1{font-size:22px}h2{font-size:17px;margin-top:28px;"
          "border-bottom:1px solid #ddd;padding-bottom:4px}\n"
       << "table{border-collapse:collapse;width:100%;font-size:13px}\n"
       << "th,td{border:1px solid #ddd;padding:3px 8px;text-align:left}\n"
       << "th{background:#f5f5f5}\n"
       << ".bar{display:flex;height:14px;min-width:120px;"
          "background:#eee;border-radius:2px;overflow:hidden}\n"
       << ".bar span{display:block;height:100%}\n"
       << ".legend span{margin-right:14px;white-space:nowrap}\n"
       << ".legend i{display:inline-block;width:10px;height:10px;"
          "margin-right:4px}\n"
       << ".track{margin:10px 0}.track p{margin:2px 0;font-size:13px}\n"
       << ".meta{color:#666}\n"
       << "</style></head><body>\n";

    os << "<h1>" << html_escape(title) << "</h1>\n<p class=\"meta\">bench "
       << html_escape(doc.bench) << " · rev " << html_escape(doc.git_rev)
       << (doc.smoke ? " · smoke (numbers are stand-ins)" : "")
       << " · datasets: ";
    for (std::size_t i = 0; i < doc.datasets.size(); ++i)
      os << (i > 0 ? ", " : "") << html_escape(doc.datasets[i]);
    os << "</p>\n";

    // Per-run table with phase-time and energy stacked bars.
    os << "<h2>Runs (" << doc.runs.size() << ")</h2>\n";
    if (doc.runs.empty()) {
      os << "<p>The report carries no run records (analytic bench).</p>\n";
    } else {
      std::vector<std::string> phase_labels;
      for (std::size_t p = 0;
           p < static_cast<std::size_t>(Phase::kCount); ++p)
        phase_labels.push_back(phase_name(static_cast<Phase>(p)));
      os << legend(phase_labels);
      os << "<table><tr><th>config</th><th>algo</th><th>graph</th>"
            "<th>time (ms)</th><th>energy (uJ)</th><th>MTEPS/W</th>"
            "<th>phase time</th><th>phase energy</th></tr>\n";
      for (const BenchRun& run : doc.runs) {
        const RunReport& r = run.report;
        std::vector<std::pair<std::string, double>> time_segs;
        std::vector<std::pair<std::string, double>> energy_segs;
        for (std::size_t p = 0;
             p < static_cast<std::size_t>(Phase::kCount); ++p) {
          const auto phase = static_cast<Phase>(p);
          time_segs.emplace_back(phase_labels[p] + " ns",
                                 r.phases.time(phase));
          energy_segs.emplace_back(phase_labels[p] + " pJ",
                                   r.phases.energy(phase));
        }
        os << "<tr><td>" << html_escape(r.config_label) << "</td><td>"
           << html_escape(r.algorithm) << "</td><td>"
           << html_escape(run.graph_key) << "</td><td>"
           << num(r.exec_time_ns / 1e6) << "</td><td>"
           << num(r.total_energy_pj() / 1e6) << "</td><td>"
           << num(r.mteps_per_watt()) << "</td><td>"
           << stacked_bar(time_segs) << "</td><td>"
           << stacked_bar(energy_segs) << "</td></tr>\n";
      }
      os << "</table>\n";
    }

    // Ledger rollup by component.
    os << "<h2>Energy rollup</h2>\n";
    if (doc.ledger_rollup.size() == 0) {
      os << "<p>The report carries no energy ledger.</p>\n";
    } else {
      std::map<std::string, double> by_component;
      for (const auto& [key, pj] : doc.ledger_rollup.cells())
        by_component[component_name(key.component)] += pj;
      std::vector<std::pair<std::string, double>> segs(
          by_component.begin(), by_component.end());
      os << stacked_bar(segs) << "\n<table><tr><th>component</th>"
         << "<th>energy (pJ)</th><th>share</th></tr>\n";
      const double total = doc.ledger_rollup.total_pj();
      for (const auto& [name, pj] : by_component)
        os << "<tr><td>" << html_escape(name) << "</td><td>" << num(pj)
           << "</td><td>"
           << num(total > 0 ? pj / total * 100.0 : 0.0, 4)
           << "%</td></tr>\n";
      os << "<tr><th>total</th><th>" << num(total)
         << "</th><th></th></tr></table>\n";
    }

    // Deterministic metrics.
    os << "<h2>Simulated metrics</h2>\n";
    if (doc.metrics.empty()) {
      os << "<p>No sim.* metrics in the report (run with --json and "
            "--metrics-producing flags).</p>\n";
    } else {
      os << "<table><tr><th>metric</th><th>value</th></tr>\n";
      for (const auto& [name, value] : doc.metrics)
        os << "<tr><td>" << html_escape(name) << "</td><td>"
           << html_escape(value) << "</td></tr>\n";
      os << "</table>\n";
    }

    if (include_host) {
      os << "<h2>Host</h2>\n";
      if (!doc.host.present) {
        os << "<p>The report carries no host section.</p>\n";
      } else {
        os << "<table><tr><th>wall (ms)</th><th>peak rss (kb)</th>"
              "<th>jobs</th></tr><tr><td>" << num(doc.host.wall_ms)
           << "</td><td>" << doc.host.max_rss_kb << "</td><td>"
           << doc.host.jobs << "</td></tr></table>\n";
      }
    }

    if (!trace_path.empty()) {
      const TraceSections trace = render_trace(trace_path);
      os << "<h2>Hottest host spans</h2>\n" << trace.spans << "\n"
         << "<h2>Counter tracks</h2>\n" << trace.counters << "\n";
    }

    if (!history_dir.empty())
      os << "<h2>Perf trajectory</h2>\n"
         << render_history(history_dir, doc.bench) << "\n";

    os << "</body></html>\n";

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + out_path);
    out << os.str();
    if (!out.good())
      throw std::runtime_error("failed writing " + out_path);
    std::cerr << "hyve_dash: wrote " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
