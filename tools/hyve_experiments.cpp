// hyve_experiments — batch experiment driver emitting JSON lines.
//
// Runs a (configs x algorithms x datasets) grid and writes one JSON
// object per run to stdout, for plotting scripts and CI dashboards:
//
//   hyve_experiments                      # full grid, built-in datasets
//   hyve_experiments --datasets YT,WK     # subset
//   hyve_experiments --algos bfs,pr --configs opt,sd
//   hyve_experiments --frontier           # add the block-skipping variant
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/report_io.hpp"
#include "graph/datasets.hpp"

namespace {

using namespace hyve;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) out.push_back(item);
  return out;
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n";
  std::cerr << "usage: hyve_experiments [--datasets YT,WK,...] "
               "[--algos bfs,cc,pr,sssp,spmv] "
               "[--configs opt,hyve,sd,dram,reram] [--frontier]\n";
  std::exit(error.empty() ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<DatasetId> datasets(kAllDatasets.begin(), kAllDatasets.end());
  std::vector<Algorithm> algos(std::begin(kCoreAlgorithms),
                               std::end(kCoreAlgorithms));
  std::vector<HyveConfig> configs = fig16_accelerator_configs();
  bool add_frontier = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
    } else if (arg == "--datasets") {
      datasets.clear();
      for (const std::string& name : split_csv(value())) {
        bool found = false;
        for (const DatasetId id : kAllDatasets)
          if (name == dataset_name(id)) {
            datasets.push_back(id);
            found = true;
          }
        if (!found) usage("unknown dataset " + name);
      }
    } else if (arg == "--algos") {
      algos.clear();
      for (const std::string& name : split_csv(value())) {
        if (name == "bfs") algos.push_back(Algorithm::kBfs);
        else if (name == "cc") algos.push_back(Algorithm::kCc);
        else if (name == "pr") algos.push_back(Algorithm::kPageRank);
        else if (name == "sssp") algos.push_back(Algorithm::kSssp);
        else if (name == "spmv") algos.push_back(Algorithm::kSpmv);
        else usage("unknown algorithm " + name);
      }
    } else if (arg == "--configs") {
      configs.clear();
      for (const std::string& name : split_csv(value())) {
        if (name == "opt") configs.push_back(HyveConfig::hyve_opt());
        else if (name == "hyve") configs.push_back(HyveConfig::hyve());
        else if (name == "sd") configs.push_back(HyveConfig::sram_dram());
        else if (name == "dram") configs.push_back(HyveConfig::acc_dram());
        else if (name == "reram") configs.push_back(HyveConfig::acc_reram());
        else usage("unknown config " + name);
      }
    } else if (arg == "--frontier") {
      add_frontier = true;
    } else {
      usage("unknown option " + arg);
    }
  }

  if (add_frontier) {
    HyveConfig frontier = HyveConfig::hyve_opt();
    frontier.frontier_block_skipping = true;
    frontier.label = "acc+HyVE-opt+frontier";
    configs.push_back(frontier);
  }

  try {
    for (const HyveConfig& cfg : configs) {
      const HyveMachine machine(cfg);
      for (const Algorithm algo : algos) {
        for (const DatasetId id : datasets) {
          RunReport r = machine.run(dataset_graph(id), algo);
          r.config_label += "@" + dataset_name(id);
          write_report_json(std::cout, r);
          std::cout << '\n';
        }
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
