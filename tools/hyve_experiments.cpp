// hyve_experiments — batch experiment driver emitting JSON lines.
//
// Runs a (configs x algorithms x datasets) grid on the src/exp sweep
// engine — a worker pool sharing one graph/partition cache — and writes
// one record per run to stdout, for plotting scripts and CI dashboards:
//
//   hyve_experiments                      # full grid, built-in datasets
//   hyve_experiments --jobs 8             # 8 worker threads, same output
//   hyve_experiments --datasets YT,WK     # subset
//   hyve_experiments --algos bfs,pr --configs opt,sd
//   hyve_experiments --partitioner interval,hep,splitmerge
//   hyve_experiments --frontier           # add the block-skipping variant
//   hyve_experiments --format csv         # spreadsheet-friendly table
//   hyve_experiments --functional-cache   # memoise functional phases
//
// Output is deterministic and order-stable for any --jobs value, and
// byte-identical with the functional cache on or off.
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "algos/frontier.hpp"
#include "core/bench_json.hpp"
#include "core/report_io.hpp"
#include "exp/sweep.hpp"
#include "graph/datasets.hpp"
#include "obs/host_profiler.hpp"
#include "obs/live.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hyve;

  exp::SweepSpec spec = exp::SweepSpec::full_grid();
  bool add_frontier = false;
  exp::SweepOptions options;
  options.jobs = 1;  // historical default: serial
  auto format = exp::ResultSink::Format::kJsonl;
  bool metrics = false;
  bool functional_cache = false;
  bool cache_stats = false;
  bool host_profile = false;
  std::string trace_path;
  std::optional<obs::LiveStatusOptions> live_opts;

  cli::ArgParser parser("hyve_experiments",
                        "run a (configs x algorithms x datasets) grid and "
                        "emit one record per run");
  parser.option("--datasets", "YT,WK,...", "datasets to sweep (default all)",
                [&](const std::string& v) {
                  spec.graphs.clear();
                  for (const std::string& name : cli::split_csv(v)) {
                    const auto id = parse_dataset(name);
                    if (!id) parser.fail("unknown dataset " + name);
                    spec.graphs.push_back(dataset_name(*id));
                  }
                });
  parser.option("--algos", "bfs,cc,pr,sssp,spmv",
                "algorithms to sweep (default bfs,cc,pr)",
                [&](const std::string& v) {
                  spec.algorithms.clear();
                  for (const std::string& name : cli::split_csv(v)) {
                    const auto algo = parse_algorithm(name);
                    if (!algo) parser.fail("unknown algorithm " + name);
                    spec.algorithms.push_back(*algo);
                  }
                });
  parser.option("--configs", "opt,hyve,sd,dram,reram",
                "machine configs to sweep (default all five)",
                [&](const std::string& v) {
                  spec.configs.clear();
                  for (const std::string& name : cli::split_csv(v)) {
                    const auto cfg = parse_config_label(name);
                    if (!cfg) parser.fail("unknown config " + name);
                    spec.configs.push_back(*cfg);
                  }
                });
  parser.option(
      "--partitioner", "interval,hep:tau=2,splitmerge:chunks=8",
      "partitioning strategies crossed with every config (default interval)",
      [&](const std::string& v) {
        spec.partitioners.clear();
        for (const std::string& name : cli::split_csv(v)) {
          const auto p = parse_partitioner(name);
          if (!p) parser.fail("unknown partitioner " + name);
          spec.partitioners.push_back(*p);
        }
      });
  parser.flag("--frontier", "add the block-skipping variant", &add_frontier);
  parser.flag("--no-pattern-reuse",
              "disable per-iteration pattern reuse in frontier runs "
              "(identical output, more host work)",
              [&] { set_pattern_reuse_enabled(false); });
  parser.option("--jobs", "N",
                "worker threads (0 = hardware concurrency; default 1)",
                [&](const std::string& v) {
                  options.jobs = static_cast<int>(
                      cli::parse_int(parser, "--jobs", v, 0, 4096));
                });
  parser.option("--format", "jsonl|csv", "output format (default jsonl)",
                [&](const std::string& v) {
                  const auto f = exp::ResultSink::parse_format(v);
                  if (!f) parser.fail("unknown format " + v);
                  format = *f;
                });
  parser.flag("--functional-cache",
              "memoise functional phases across cells that share a graph "
              "image, algorithm, P and frontier mode (identical output)",
              &functional_cache);
  parser.flag("--cache-stats",
              "print graph/partition/functional cache statistics to stderr",
              &cache_stats);
  parser.flag("--metrics",
              "dump the metrics registry to stderr as sorted key=value "
              "lines",
              &metrics);
  parser.flag("--host-profile",
              "profile the host process: wall-clock spans, RSS sampling "
              "and stage rates as host.* metrics (and a wall-clock trace "
              "track with --trace)",
              &host_profile);
  parser.option("--trace", "PATH",
                "write a Chrome trace-event JSON of the sweep to PATH "
                "(one pid per cell)",
                [&](const std::string& v) { trace_path = v; });
  parser.option("--live-status", "PATH[,interval_ms[,stall_ms]]",
                "write periodic JSON status snapshots (progress, ETA, "
                "worker heartbeats, hot metrics) to PATH for hyve_top",
                [&](const std::string& v) {
                  live_opts = obs::parse_live_status(v);
                  if (!live_opts)
                    parser.fail("bad --live-status spec " + v);
                });
  parser.parse(argc, argv);

  if (add_frontier) {
    HyveConfig frontier = HyveConfig::hyve_opt();
    frontier.frontier_block_skipping = true;
    frontier.label = "acc+HyVE-opt+frontier";
    spec.configs.push_back(frontier);
  }

  try {
    if (metrics || host_profile || live_opts) obs::set_enabled(true);
    // shared_ptr so the flight recorder can finalize the trace from its
    // own thread even while this scope is mid-sweep.
    std::shared_ptr<obs::Trace> trace;
    if (!trace_path.empty()) {
      trace = std::make_shared<obs::Trace>();
      add_attribution_metadata(*trace, argc, argv);
    }
    options.trace = trace.get();
    if (host_profile) obs::host_profiler().start(options.trace);
    if (live_opts) {
      live_opts->bench = "hyve_experiments";
      obs::live_telemetry().start(*live_opts);
    }
    if (trace || live_opts) {
      const bool profiling = host_profile;
      obs::install_flight_recorder([trace, trace_path,
                                    profiling](int signum) {
        if (obs::live_telemetry().enabled())
          obs::live_telemetry().stop("interrupted");
        if (profiling) obs::host_profiler().stop();
        // Records already emitted to stdout form a valid JSONL/CSV
        // prefix; flush so the pipe reader sees every finished cell.
        std::cout.flush();
        if (trace && !trace_path.empty()) {
          trace->write_file_atomic(trace_path, /*truncated=*/true);
          std::cerr << "flight record: wrote truncated trace to "
                    << trace_path << "\n";
        }
        if (obs::enabled()) obs::registry().dump(std::cerr);
        std::cerr << "flight record complete (signal " << signum << ")\n";
      });
    }

    exp::GraphCache graphs;
    exp::PartitionCache partitions;
    exp::FunctionalCache functional;
    exp::SweepEngine engine(graphs, partitions,
                            functional_cache ? &functional : nullptr);
    exp::ResultSink sink(std::cout, format);
    engine.run(spec, options, &sink);

    if (obs::live_telemetry().enabled()) obs::live_telemetry().stop("done");
    if (host_profile) obs::host_profiler().stop();
    if (trace) trace->write_file(trace_path);
    if (cache_stats) {
      std::cerr << "graph cache: loads=" << graphs.loads()
                << " evictions=" << graphs.evictions() << "\n"
                << "partition cache: builds=" << partitions.builds()
                << " evictions=" << partitions.evictions() << "\n";
      for (const auto& [strategy, stats] : partitions.strategy_stats())
        std::cerr << "partition cache[" << strategy
                  << "]: hits=" << stats.hits << " builds=" << stats.builds
                  << " evictions=" << stats.evictions << "\n";
      if (functional_cache)
        std::cerr << "functional cache: hits=" << functional.hits()
                  << " misses=" << functional.misses()
                  << " evictions=" << functional.evictions()
                  << " hit_rate=" << functional.hit_rate() << "\n";
    }
    if (metrics) obs::registry().dump(std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
