// hyve_graphgen — generate synthetic graphs and convert edge-list formats.
//
//   hyve_graphgen rmat 100000 600000 out.txt [seed]
//   hyve_graphgen er   50000  300000 out.bin [seed]
//   hyve_graphgen dataset YT out.txt
//   hyve_graphgen convert in.txt out.bin
//
// Output format is chosen by extension: .bin = the binary cache format,
// anything else = SNAP-style text.
#include <iostream>
#include <string>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using namespace hyve;

void save(const Graph& g, const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin")
    save_graph_binary(g, path);
  else
    save_edge_list_text(g, path);
  std::cout << "wrote " << path << ": V=" << g.num_vertices()
            << " E=" << g.num_edges() << "\n";
}

Graph load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin")
    return load_graph_binary(path);
  return load_edge_list_text(path);
}

[[noreturn]] void usage() {
  std::cerr << "usage:\n"
            << "  hyve_graphgen rmat V E OUT [seed]\n"
            << "  hyve_graphgen er V E OUT [seed]\n"
            << "  hyve_graphgen dataset YT|WK|AS|LJ|TW OUT\n"
            << "  hyve_graphgen convert IN OUT\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string mode = argv[1];
  try {
    if (mode == "rmat" || mode == "er") {
      if (argc < 5) usage();
      const auto v = static_cast<VertexId>(std::stoull(argv[2]));
      const auto e = std::stoull(argv[3]);
      const std::uint64_t seed = argc > 5 ? std::stoull(argv[5]) : 1;
      const Graph g = mode == "rmat" ? generate_rmat(v, e, {}, seed)
                                     : generate_erdos_renyi(v, e, seed);
      save(g, argv[4]);
    } else if (mode == "dataset") {
      if (argc < 4) usage();
      const std::string name = argv[2];
      for (const DatasetId id : kAllDatasets) {
        if (name == dataset_name(id)) {
          save(dataset_graph(id), argv[3]);
          return 0;
        }
      }
      usage();
    } else if (mode == "convert") {
      if (argc < 4) usage();
      save(load(argv[2]), argv[3]);
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
