// hyve_graphgen — generate synthetic graphs and convert edge-list formats.
//
//   hyve_graphgen rmat 100000 600000 out.txt [seed]
//   hyve_graphgen er   50000  300000 out.bin [seed]
//   hyve_graphgen dataset YT out.txt
//   hyve_graphgen convert in.txt out.hgb
//
// Output format is chosen by extension: .bin = the binary cache format,
// .hgb = the out-of-core HyVEgrf2 blocked format, anything else =
// SNAP-style text. An .hgb target in rmat mode streams the generator
// through chunked spill/merge (generate_rmat_blocked), so the edge set
// is never resident in memory; inputs to convert are sniffed by magic,
// so any of the three formats converts to any other.
#include <iostream>
#include <string>

#include "graph/blocked_format.hpp"
#include "graph/blocked_reader.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"

namespace {

using namespace hyve;

bool has_ext(const std::string& path, const std::string& ext) {
  return path.size() > ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

void save(const Graph& g, const std::string& path) {
  if (has_ext(path, ".bin"))
    save_graph_binary(g, path);
  else if (has_ext(path, ".hgb"))
    blocked::write_blocked(g, path);
  else
    save_edge_list_text(g, path);
  std::cout << "wrote " << path << ": V=" << g.num_vertices()
            << " E=" << g.num_edges() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser parser("hyve_graphgen", "");
  parser.positional_usage(
      "  hyve_graphgen rmat V E OUT [seed]\n"
      "  hyve_graphgen er V E OUT [seed]\n"
      "  hyve_graphgen dataset YT|WK|AS|LJ|TW OUT\n"
      "  hyve_graphgen convert IN OUT\n"
      "OUT extension picks the format: .bin binary cache, .hgb blocked "
      "out-of-core, else SNAP text");
  parser.allow_positionals(5);
  parser.parse(argc, argv);

  const std::vector<std::string>& args = parser.positionals();
  if (args.size() < 2) parser.fail("missing arguments");
  const std::string& mode = args[0];
  try {
    if (mode == "rmat" || mode == "er") {
      if (args.size() < 4) parser.fail(mode + " needs V E OUT");
      const auto v = static_cast<VertexId>(std::stoull(args[1]));
      const auto e = std::stoull(args[2]);
      const std::uint64_t seed = args.size() > 4 ? std::stoull(args[4]) : 1;
      const std::string& out = args[3];
      if (mode == "rmat" && has_ext(out, ".hgb")) {
        // Chunked generation: blocks are written as edges are produced,
        // bit-identical to generate_rmat + write_blocked of the result.
        generate_rmat_blocked(out, v, e, {}, seed);
        const BlockedGraphReader reader(out);
        std::cout << "wrote " << out << ": V=" << reader.num_vertices()
                  << " E=" << reader.num_edges() << "\n";
      } else {
        const Graph g = mode == "rmat" ? generate_rmat(v, e, {}, seed)
                                       : generate_erdos_renyi(v, e, seed);
        save(g, out);
      }
    } else if (mode == "dataset") {
      if (args.size() < 3) parser.fail("dataset needs NAME OUT");
      const auto id = parse_dataset(args[1]);
      if (!id) parser.fail("unknown dataset " + args[1]);
      save(dataset_graph(*id), args[2]);
    } else if (mode == "convert") {
      if (args.size() < 3) parser.fail("convert needs IN OUT");
      save(load_graph_auto(args[1]), args[2]);
    } else {
      parser.fail("unknown mode " + mode);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
