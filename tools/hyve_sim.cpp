// hyve_sim — command-line driver for the HyVE simulator.
//
// Runs any algorithm on any graph (built-in dataset, SNAP edge-list file,
// or a fresh R-MAT) under any machine configuration, and prints the full
// time/energy/area report.
//
//   hyve_sim --dataset YT --algo pr
//   hyve_sim --graph web.txt --algo bfs --config sd
//   hyve_sim --rmat 100000x600000 --algo cc --sram-mb 4 --pus 16 \
//            --cell-bits 2 --no-sharing --no-power-gating --compare
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "baselines/cpu.hpp"
#include "baselines/graphr.hpp"
#include "core/machine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "memmodel/area.hpp"
#include "util/table.hpp"

namespace {

using namespace hyve;

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  input (one of):\n"
      << "    --dataset YT|WK|AS|LJ|TW     built-in synthetic dataset\n"
      << "    --graph PATH                 SNAP-style edge-list file\n"
      << "    --rmat VxE                   fresh R-MAT graph (e.g. 100000x600000)\n"
      << "  workload:\n"
      << "    --algo bfs|cc|pr|sssp|spmv   algorithm (default pr)\n"
      << "  machine:\n"
      << "    --config opt|hyve|sd|dram|reram   named variant (default opt)\n"
      << "    --sram-mb N       per-PU SRAM capacity (default 2)\n"
      << "    --pus N           processing units (default 8)\n"
      << "    --cell-bits N     ReRAM cell bits 1..3 (default 1)\n"
      << "    --no-sharing      disable inter-PU data sharing\n"
      << "    --no-power-gating disable bank-level power gating\n"
      << "  output:\n"
      << "    --compare         also run GraphR and the CPU baselines\n"
      << "    --area            print the silicon area estimate\n"
      << "    --csv             machine-readable breakdown\n";
  std::exit(error.empty() ? 0 : 2);
}

std::optional<Algorithm> parse_algo(const std::string& s) {
  if (s == "bfs") return Algorithm::kBfs;
  if (s == "cc") return Algorithm::kCc;
  if (s == "pr") return Algorithm::kPageRank;
  if (s == "sssp") return Algorithm::kSssp;
  if (s == "spmv") return Algorithm::kSpmv;
  return std::nullopt;
}

std::optional<DatasetId> parse_dataset(const std::string& s) {
  for (const DatasetId id : kAllDatasets)
    if (s == dataset_name(id)) return id;
  return std::nullopt;
}

std::optional<HyveConfig> parse_config(const std::string& s) {
  if (s == "opt") return HyveConfig::hyve_opt();
  if (s == "hyve") return HyveConfig::hyve();
  if (s == "sd") return HyveConfig::sram_dram();
  if (s == "dram") return HyveConfig::acc_dram();
  if (s == "reram") return HyveConfig::acc_reram();
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Graph> graph;
  std::string graph_label = "?";
  Algorithm algo = Algorithm::kPageRank;
  HyveConfig config = HyveConfig::hyve_opt();
  bool compare = false;
  bool area = false;
  bool csv = false;

  auto next_arg = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else if (arg == "--dataset") {
        const auto id = parse_dataset(next_arg(i));
        if (!id) usage(argv[0], "unknown dataset");
        graph = dataset_graph(*id);
        graph_label = dataset_name(*id);
      } else if (arg == "--graph") {
        const std::string path = next_arg(i);
        graph = (path.size() > 4 && path.substr(path.size() - 4) == ".bin")
                    ? load_graph_binary(path)
                    : load_edge_list_text(path);
        graph_label = path;
      } else if (arg == "--rmat") {
        const std::string spec = next_arg(i);
        const auto x = spec.find('x');
        if (x == std::string::npos) usage(argv[0], "--rmat expects VxE");
        const auto v = std::stoull(spec.substr(0, x));
        const auto e = std::stoull(spec.substr(x + 1));
        graph = generate_rmat(static_cast<VertexId>(v), e, {}, 1);
        graph_label = "rmat:" + spec;
      } else if (arg == "--algo") {
        const auto a = parse_algo(next_arg(i));
        if (!a) usage(argv[0], "unknown algorithm");
        algo = *a;
      } else if (arg == "--config") {
        const auto c = parse_config(next_arg(i));
        if (!c) usage(argv[0], "unknown config");
        const HyveConfig base = config;
        config = *c;
        config.sram_bytes_per_pu =
            config.has_onchip_vertex_memory() ? base.sram_bytes_per_pu
                                              : config.sram_bytes_per_pu;
      } else if (arg == "--sram-mb") {
        config.sram_bytes_per_pu =
            units::MiB(std::stoull(next_arg(i)));
      } else if (arg == "--pus") {
        config.num_pus = std::stoi(next_arg(i));
      } else if (arg == "--cell-bits") {
        config.reram.cell_bits = std::stoi(next_arg(i));
      } else if (arg == "--no-sharing") {
        config.data_sharing = false;
      } else if (arg == "--no-power-gating") {
        config.power_gating = false;
      } else if (arg == "--compare") {
        compare = true;
      } else if (arg == "--area") {
        area = true;
      } else if (arg == "--csv") {
        csv = true;
      } else {
        usage(argv[0], "unknown option " + arg);
      }
    }

    if (!graph) usage(argv[0], "no input graph (--dataset/--graph/--rmat)");

    const HyveMachine machine(config);
    const RunReport r = machine.run(*graph, algo);

    if (csv) {
      Table t({"graph", "algo", "config", "P", "iterations", "time_ns",
               "energy_pj", "mteps", "mteps_per_watt"});
      t.add_row({graph_label, r.algorithm, r.config_label,
                 std::to_string(r.num_intervals),
                 std::to_string(r.iterations), Table::num(r.exec_time_ns, 0),
                 Table::num(r.total_energy_pj(), 0), Table::num(r.mteps(), 1),
                 Table::num(r.mteps_per_watt(), 1)});
      t.print_csv(std::cout);
    } else {
      std::cout << graph_label << ": V=" << graph->num_vertices()
                << " E=" << graph->num_edges() << "\n"
                << r.config_label << " running " << r.algorithm << ": P="
                << r.num_intervals << ", " << r.iterations << " iterations\n"
                << "  time    " << Table::num(r.exec_time_ns / 1e6, 3)
                << " ms  (" << Table::num(r.mteps(), 0) << " MTEPS)\n"
                << "  energy  " << Table::num(r.total_energy_pj() / 1e6, 1)
                << " uJ  (" << Table::num(r.mteps_per_watt(), 0)
                << " MTEPS/W)\n"
                << "  memory share "
                << Table::num(100.0 * r.energy.memory_pj() /
                                  r.total_energy_pj(),
                              1)
                << "%\n";
    }

    if (compare) {
      Table t({"system", "time (ms)", "energy (uJ)", "MTEPS/W"});
      t.add_row({r.config_label, Table::num(r.exec_time_ns / 1e6, 3),
                 Table::num(r.total_energy_pj() / 1e6, 1),
                 Table::num(r.mteps_per_watt(), 0)});
      const GraphRReport gr = GraphRModel().run(*graph, algo);
      t.add_row({"GraphR", Table::num(gr.exec_time_ns / 1e6, 3),
                 Table::num(gr.total_energy_pj() / 1e6, 1),
                 Table::num(gr.mteps_per_watt(), 0)});
      for (const CpuBaseline kind :
           {CpuBaseline::kNaive, CpuBaseline::kOptimized}) {
        const CpuReport cr = CpuModel(kind).run(*graph, algo);
        t.add_row({cr.config_label, Table::num(cr.exec_time_ns / 1e6, 3),
                   Table::num(cr.energy_pj / 1e6, 1),
                   Table::num(cr.mteps_per_watt(), 0)});
      }
      std::cout << '\n';
      t.print(std::cout);
    }

    if (area) {
      AreaInputs in;
      in.num_pus = config.num_pus;
      in.sram_bytes_per_pu = config.sram_bytes_per_pu;
      in.edge_reram = config.reram;
      in.edge_capacity_bytes = graph->num_edges() * 8;
      in.power_gating = config.power_gating;
      const AreaBreakdown a = estimate_area(in);
      std::cout << "\narea estimate (22 nm):\n"
                << "  accelerator " << Table::num(a.accelerator_mm2(), 2)
                << " mm^2 (SRAM " << Table::num(a.sram_mm2, 2) << ", PUs "
                << Table::num(a.pu_mm2, 2) << ", router "
                << Table::num(a.router_mm2, 2) << ", controller "
                << Table::num(a.controller_mm2, 2) << ")\n"
                << "  edge memory " << a.edge_chips << " chip(s) x "
                << Table::num(a.edge_chip_mm2, 1) << " mm^2, power gates +"
                << Table::num(100.0 * a.power_gate_overhead(), 2) << "%\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
