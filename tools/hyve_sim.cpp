// hyve_sim — command-line driver for the HyVE simulator.
//
// Runs any algorithm on any graph (built-in dataset, SNAP edge-list file,
// or a fresh R-MAT) under any machine configuration, and prints the full
// time/energy/area report.
//
//   hyve_sim --dataset YT --algo pr
//   hyve_sim --graph web.txt --algo bfs --config sd
//   hyve_sim --graph big.hgb --graph-format blocked --ooc-window-mb 64
//   hyve_sim --rmat 100000x600000 --algo cc --sram-mb 4 --pus 16
//            --cell-bits 2 --no-sharing --no-power-gating --compare
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "baselines/cpu.hpp"
#include "baselines/graphr.hpp"
#include "core/bench_json.hpp"
#include "core/machine.hpp"
#include "core/report_io.hpp"
#include "graph/blocked_format.hpp"
#include "graph/blocked_reader.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "memmodel/area.hpp"
#include "obs/host_profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

// First 8 bytes of the file, for sniffing the HyVEgrf2 magic under
// --graph-format auto (an unreadable file falls through to the loaders,
// which produce the proper error).
std::uint64_t sniff_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  return in.gcount() == sizeof magic ? magic : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;

  std::optional<Graph> graph;
  std::string graph_label = "?";
  // --graph loading is deferred to after parsing so --graph-format,
  // --ooc-window-mb and --metrics apply regardless of flag order.
  std::string graph_path;
  std::string graph_format = "auto";
  std::size_t ooc_window_bytes = 0;
  Algorithm algo = Algorithm::kPageRank;
  HyveConfig config = HyveConfig::hyve_opt();
  // Applied after parsing so it composes with --config in any order.
  std::optional<PartitionerSpec> partitioner;
  bool compare = false;
  bool area = false;
  bool csv = false;
  bool metrics = false;
  bool host_profile = false;
  std::string trace_path;

  cli::ArgParser parser(
      "hyve_sim",
      "simulate one algorithm on one graph under one machine config");
  parser.option("--dataset", "YT|WK|AS|LJ|TW", "built-in synthetic dataset",
                [&](const std::string& v) {
                  const auto id = parse_dataset(v);
                  if (!id) parser.fail("unknown dataset " + v);
                  graph = dataset_graph(*id);
                  graph_label = dataset_name(*id);
                });
  parser.option("--graph", "PATH",
                "graph file (edge-list text, .bin cache, or HyVEgrf2 "
                "blocked; see --graph-format)",
                [&](const std::string& path) { graph_path = path; });
  parser.option("--graph-format", "auto|text|bin|blocked",
                "how to read --graph (default auto: sniff the magic)",
                [&](const std::string& v) {
                  if (v != "auto" && v != "text" && v != "bin" &&
                      v != "blocked")
                    parser.fail("unknown graph format " + v);
                  graph_format = v;
                });
  parser.option("--ooc-window-mb", "N",
                "decoded-block window budget for blocked graphs in MiB "
                "(0 = unbounded; default 0)",
                [&](const std::string& v) {
                  ooc_window_bytes = units::MiB(static_cast<std::uint64_t>(
                      cli::parse_int(parser, "--ooc-window-mb", v, 0,
                                     1 << 20)));
                });
  parser.option("--rmat", "VxE", "fresh R-MAT graph (e.g. 100000x600000)",
                [&](const std::string& spec) {
                  const auto x = spec.find('x');
                  if (x == std::string::npos)
                    parser.fail("--rmat expects VxE");
                  const auto v = cli::parse_int(parser, "--rmat vertices",
                                                spec.substr(0, x), 1);
                  const auto e = cli::parse_int(parser, "--rmat edges",
                                                spec.substr(x + 1), 1);
                  graph = generate_rmat(static_cast<VertexId>(v),
                                        static_cast<std::uint64_t>(e), {}, 1);
                  graph_label = "rmat:" + spec;
                });
  parser.option("--algo", "bfs|cc|pr|sssp|spmv", "algorithm (default pr)",
                [&](const std::string& v) {
                  const auto a = parse_algorithm(v);
                  if (!a) parser.fail("unknown algorithm " + v);
                  algo = *a;
                });
  parser.option("--config", "opt|hyve|sd|dram|reram",
                "named variant (default opt)", [&](const std::string& v) {
                  const auto c = parse_config_label(v);
                  if (!c) parser.fail("unknown config " + v);
                  const HyveConfig base = config;
                  config = *c;
                  config.sram_bytes_per_pu =
                      config.has_onchip_vertex_memory()
                          ? base.sram_bytes_per_pu
                          : config.sram_bytes_per_pu;
                });
  parser.option("--partitioner", "interval|hep:tau=T|splitmerge:chunks=C",
                "partitioning strategy (default interval)",
                [&](const std::string& v) {
                  const auto p = parse_partitioner(v);
                  if (!p) parser.fail("unknown partitioner " + v);
                  partitioner = *p;
                });
  parser.option("--sram-mb", "N", "per-PU SRAM capacity (default 2)",
                [&](const std::string& v) {
                  config.sram_bytes_per_pu = units::MiB(
                      static_cast<std::uint64_t>(
                          cli::parse_int(parser, "--sram-mb", v, 0, 1 << 20)));
                });
  parser.option("--pus", "N", "processing units (default 8)",
                [&](const std::string& v) {
                  config.num_pus = static_cast<int>(
                      cli::parse_int(parser, "--pus", v, 1, 1 << 20));
                });
  parser.option("--cell-bits", "N", "ReRAM cell bits 1..3 (default 1)",
                [&](const std::string& v) {
                  config.reram.cell_bits = static_cast<int>(
                      cli::parse_int(parser, "--cell-bits", v, 1, 3));
                });
  parser.flag("--no-sharing", "disable inter-PU data sharing",
              [&] { config.data_sharing = false; });
  parser.flag("--no-power-gating", "disable bank-level power gating",
              [&] { config.power_gating = false; });
  parser.flag("--compare", "also run GraphR and the CPU baselines", &compare);
  parser.flag("--area", "print the silicon area estimate", &area);
  parser.flag("--csv", "machine-readable breakdown", &csv);
  parser.flag("--metrics",
              "dump the metrics registry to stderr as sorted key=value "
              "lines",
              &metrics);
  parser.flag("--host-profile",
              "profile the host process: wall-clock spans, RSS sampling "
              "and stage rates as host.* metrics (and a wall-clock trace "
              "track with --trace)",
              &host_profile);
  parser.option("--trace", "PATH",
                "write a Chrome trace-event JSON (chrome://tracing, "
                "Perfetto) of the run to PATH",
                [&](const std::string& v) { trace_path = v; });

  try {
    parser.parse(argc, argv);

    // Enable telemetry before the graph loads so the sim.ooc.* window
    // counters cover the streaming load itself.
    if (metrics || host_profile) obs::set_enabled(true);

    if (!graph_path.empty()) {
      if (graph) parser.fail("choose one of --dataset/--graph/--rmat");
      const bool is_blocked =
          graph_format == "blocked" ||
          (graph_format == "auto" &&
           sniff_magic(graph_path) == blocked::kMagic);
      if (is_blocked) {
        BlockedReaderOptions reader_options;
        reader_options.window_bytes = ooc_window_bytes;
        BlockedGraphReader reader(graph_path, reader_options);
        // Materialise through the bounded window: peak decoded residency
        // stays within --ooc-window-mb (reported as
        // sim.ooc.window_peak_bytes) while the simulator gets the same
        // Graph the in-memory path builds — reports are byte-identical.
        graph = materialize(reader);
      } else if (graph_format == "bin") {
        graph = load_graph_binary(graph_path);
      } else if (graph_format == "text") {
        graph = load_edge_list_text(graph_path);
      } else {
        graph = load_graph_auto(graph_path);
      }
      graph_label = graph_path;
    }
    if (!graph)
      parser.fail("no input graph (--dataset/--graph/--rmat)");

    if (partitioner) config.set_partitioner(*partitioner);
    std::optional<obs::Trace> trace;
    if (!trace_path.empty()) {
      trace.emplace();
      add_attribution_metadata(*trace, argc, argv);
    }
    if (host_profile) obs::host_profiler().start(trace ? &*trace : nullptr);

    const HyveMachine machine(config);
    const RunReport r =
        machine.run(*graph, algo, trace ? &*trace : nullptr);
    // Same guarantee as the sweep engine's ResultSink: hyve_sim can never
    // emit a report the downstream tooling cannot parse back.
    validate_report_round_trip(r);

    // Stop before the write so host.wall_us and the final RSS sample
    // land in the trace and the --metrics dump.
    if (host_profile) obs::host_profiler().stop();
    if (trace) trace->write_file(trace_path);

    if (csv) {
      Table t({"graph", "algo", "config", "P", "iterations", "time_ns",
               "energy_pj", "mteps", "mteps_per_watt"});
      t.add_row({graph_label, r.algorithm, r.config_label,
                 std::to_string(r.num_intervals),
                 std::to_string(r.iterations), Table::num(r.exec_time_ns, 0),
                 Table::num(r.total_energy_pj(), 0), Table::num(r.mteps(), 1),
                 Table::num(r.mteps_per_watt(), 1)});
      t.print_csv(std::cout);
    } else {
      std::cout << graph_label << ": V=" << graph->num_vertices()
                << " E=" << graph->num_edges() << "\n"
                << r.config_label << " running " << r.algorithm << ": P="
                << r.num_intervals << ", " << r.iterations << " iterations\n"
                << "  time    " << Table::num(r.exec_time_ns / 1e6, 3)
                << " ms  (" << Table::num(r.mteps(), 0) << " MTEPS)\n"
                << "  energy  " << Table::num(r.total_energy_pj() / 1e6, 1)
                << " uJ  (" << Table::num(r.mteps_per_watt(), 0)
                << " MTEPS/W)\n"
                << "  memory share "
                << Table::num(100.0 * r.energy.memory_pj() /
                                  r.total_energy_pj(),
                              1)
                << "%\n";
    }

    if (compare) {
      Table t({"system", "time (ms)", "energy (uJ)", "MTEPS/W"});
      t.add_row({r.config_label, Table::num(r.exec_time_ns / 1e6, 3),
                 Table::num(r.total_energy_pj() / 1e6, 1),
                 Table::num(r.mteps_per_watt(), 0)});
      const GraphRReport gr = GraphRModel().run(*graph, algo);
      t.add_row({"GraphR", Table::num(gr.exec_time_ns / 1e6, 3),
                 Table::num(gr.total_energy_pj() / 1e6, 1),
                 Table::num(gr.mteps_per_watt(), 0)});
      for (const CpuBaseline kind :
           {CpuBaseline::kNaive, CpuBaseline::kOptimized}) {
        const CpuReport cr = CpuModel(kind).run(*graph, algo);
        t.add_row({cr.config_label, Table::num(cr.exec_time_ns / 1e6, 3),
                   Table::num(cr.energy_pj / 1e6, 1),
                   Table::num(cr.mteps_per_watt(), 0)});
      }
      std::cout << '\n';
      t.print(std::cout);
    }

    if (area) {
      AreaInputs in;
      in.num_pus = config.num_pus;
      in.sram_bytes_per_pu = config.sram_bytes_per_pu;
      in.edge_reram = config.reram;
      in.edge_capacity_bytes = graph->num_edges() * 8;
      in.power_gating = config.power_gating;
      const AreaBreakdown a = estimate_area(in);
      std::cout << "\narea estimate (22 nm):\n"
                << "  accelerator " << Table::num(a.accelerator_mm2(), 2)
                << " mm^2 (SRAM " << Table::num(a.sram_mm2, 2) << ", PUs "
                << Table::num(a.pu_mm2, 2) << ", router "
                << Table::num(a.router_mm2, 2) << ", controller "
                << Table::num(a.controller_mm2, 2) << ")\n"
                << "  edge memory " << a.edge_chips << " chip(s) x "
                << Table::num(a.edge_chip_mm2, 1) << " mm^2, power gates +"
                << Table::num(100.0 * a.power_gate_overhead(), 2) << "%\n";
    }

    if (metrics) obs::registry().dump(std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
