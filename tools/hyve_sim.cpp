// hyve_sim — command-line driver for the HyVE simulator.
//
// Runs any algorithm on any graph (built-in dataset, SNAP edge-list file,
// or a fresh R-MAT) under any machine configuration, and prints the full
// time/energy/area report.
//
//   hyve_sim --dataset YT --algo pr
//   hyve_sim --graph web.txt --algo bfs --config sd
//   hyve_sim --graph big.hgb --graph-format blocked --ooc-window-mb 64
//   hyve_sim --rmat 100000x600000 --algo cc --sram-mb 4 --pus 16
//            --cell-bits 2 --no-sharing --no-power-gating --compare
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include <unistd.h>

#include "algos/frontier.hpp"
#include "baselines/cpu.hpp"
#include "baselines/graphr.hpp"
#include "core/bench_json.hpp"
#include "core/machine.hpp"
#include "core/report_io.hpp"
#include "exp/cache.hpp"
#include "exp/sweep.hpp"
#include "graph/blocked_format.hpp"
#include "graph/blocked_reader.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "memmodel/area.hpp"
#include "obs/host_profiler.hpp"
#include "obs/live.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/dram_timing.hpp"
#include "sim/memory_controller.hpp"
#include "sim/reram_timing.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

// First 8 bytes of the file, for sniffing the HyVEgrf2 magic under
// --graph-format auto (an unreadable file falls through to the loaders,
// which produce the proper error).
std::uint64_t sniff_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  return in.gcount() == sizeof magic ? magic : 0;
}

// --list-metrics: registers every instrument the simulator, the sweep
// engine, the caches, the host profiler and live telemetry can emit by
// exercising each subsystem once on tiny inputs, then prints the
// registry schema as a markdown table. The output is checked in as
// docs/METRICS.md and scripts/verify.sh diffs the two, so metric names
// cannot drift from the docs. Values are irrelevant — only the *name
// set* must be deterministic, and it is: the same subsystems register
// the same names on every host.
int run_metrics_census() {
  using namespace hyve;
  namespace fs = std::filesystem;
  obs::set_enabled(true);
  obs::host_profiler().start();

  const fs::path dir =
      fs::temp_directory_path() /
      ("hyve_metrics_census." + std::to_string(::getpid()));
  fs::create_directories(dir);

  // Graph generation: host.span.rmat.generate, host.count.rmat_edges.
  Graph tiny = generate_rmat(512, 2048, {}, 1);

  // Out-of-core streaming load through a deliberately tiny window over
  // many small blocks so faults AND evictions happen: the sim.ooc.*
  // family.
  const std::string blocked = (dir / "census.hgb").string();
  RmatChunkOptions chunk;
  chunk.write.block_edges = 256;
  generate_rmat_blocked(blocked, 512, 2048, {}, 1, chunk);
  {
    exp::GraphCache ooc_cache;
    ooc_cache.set_ooc_window_budget(units::KiB(4));
    ooc_cache.add_blocked("census-ooc", blocked);
    ooc_cache.acquire("census-ooc");
  }

  // The full accelerator-config grid × {PR, BFS} × every partitioning
  // strategy on the tiny graph: sim.pipeline/dram/reram/memctl/bpg/
  // partition.*, exp.sweep.*, exp.*_cache.* (per-strategy suffixes
  // included), host.span.machine.* / partition.build / sweep.cell.
  exp::GraphCache graphs;
  exp::PartitionCache partitions;
  exp::FunctionalCache functional;
  graphs.add("census", std::move(tiny));
  exp::SweepSpec spec;
  spec.configs = fig16_accelerator_configs();
  spec.algorithms = {Algorithm::kPageRank, Algorithm::kBfs};
  spec.partitioners.clear();
  for (const char* name : {"interval", "hep:tau=2", "splitmerge:chunks=2"})
    spec.partitioners.push_back(*parse_partitioner(name));
  spec.graphs = {"census"};
  exp::SweepEngine engine(graphs, partitions, &functional);
  exp::SweepOptions options;
  options.jobs = 1;
  engine.run(spec, options);

  // One frontier-mode run so the pattern-reuse tallies register:
  // sim.kernel.blocks_skipped / edges_skipped.
  {
    exp::SweepSpec frontier_spec;
    HyveConfig frontier_config = HyveConfig::hyve_opt();
    frontier_config.frontier_block_skipping = true;
    frontier_spec.configs = {frontier_config};
    frontier_spec.algorithms = {Algorithm::kBfs};
    frontier_spec.graphs = {"census"};
    engine.run(frontier_spec, options);
  }

  // Detailed-mode memory timing (driven by the timing tests/benches,
  // not the analytic machine walk): sim.memctl.*, sim.dram.*,
  // sim.reram.*.
  {
    const std::shared_ptr<const Graph> census_graph =
        graphs.acquire("census");
    const std::shared_ptr<const Partitioning> schedule =
        partitions.acquire("census", *census_graph, 4,
                           *parse_partitioner("interval"));
    const MemoryController controller(*schedule, 8, 4);
    const std::vector<MemRequest> scan = controller.full_edge_scan();
    DramTimingSim().run(scan);
    ReramTimingSim().run(scan);
  }

  // One live-telemetry session against a scratch path: the live.*
  // counters (interval far beyond the session, so only the start/stop
  // snapshots write).
  obs::LiveStatusOptions live;
  live.path = (dir / "census-live.json").string();
  live.interval = std::chrono::minutes(10);
  live.bench = "census";
  obs::live_telemetry().start(live);
  obs::live_telemetry().add_total_cells(1);
  obs::live_telemetry().beat("census");
  obs::live_telemetry().cell_done();
  obs::live_telemetry().stop("done");

  // host.wall_us, host.rate.*_per_s and the final memory sample.
  obs::host_profiler().stop();

  std::error_code ec;
  fs::remove_all(dir, ec);

  std::cout
      << "# Metrics reference\n"
      << "\n"
      << "Every metric the instrumented layers can register, by name "
         "and\n"
      << "instrument type. Generated by `hyve_sim --list-metrics`; "
         "do not\n"
      << "edit by hand — `scripts/verify.sh` regenerates this table "
         "and\n"
      << "fails when the checked-in copy is stale.\n"
      << "\n"
      << "Prefixes: `sim.*` are simulated (deterministic, rolled into "
         "bench\n"
      << "reports), `exp.*` are sweep-engine/cache effects (may depend "
         "on\n"
      << "worker scheduling), `host.*` are wall-clock host "
         "measurements,\n"
      << "`live.*` belong to the --live-status session. Histograms "
         "expand\n"
      << "to `.avg/.count/.max/.min/.p50/.p95/.p99/.sum` in dumps and\n"
      << "snapshots.\n"
      << "\n"
      << "| metric | type |\n"
      << "|---|---|\n";
  for (const auto& [name, kind] : obs::registry().schema())
    std::cout << "| `" << name << "` | " << kind << " |\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;

  std::optional<Graph> graph;
  std::string graph_label = "?";
  // --graph loading is deferred to after parsing so --graph-format,
  // --ooc-window-mb and --metrics apply regardless of flag order.
  std::string graph_path;
  std::string graph_format = "auto";
  std::size_t ooc_window_bytes = 0;
  Algorithm algo = Algorithm::kPageRank;
  HyveConfig config = HyveConfig::hyve_opt();
  // Applied after parsing so it composes with --config in any order.
  std::optional<PartitionerSpec> partitioner;
  bool compare = false;
  bool area = false;
  bool csv = false;
  bool metrics = false;
  bool list_metrics = false;
  bool host_profile = false;
  std::string trace_path;
  std::optional<obs::LiveStatusOptions> live_opts;

  cli::ArgParser parser(
      "hyve_sim",
      "simulate one algorithm on one graph under one machine config");
  parser.option("--dataset", "YT|WK|AS|LJ|TW", "built-in synthetic dataset",
                [&](const std::string& v) {
                  const auto id = parse_dataset(v);
                  if (!id) parser.fail("unknown dataset " + v);
                  graph = dataset_graph(*id);
                  graph_label = dataset_name(*id);
                });
  parser.option("--graph", "PATH",
                "graph file (edge-list text, .bin cache, or HyVEgrf2 "
                "blocked; see --graph-format)",
                [&](const std::string& path) { graph_path = path; });
  parser.option("--graph-format", "auto|text|bin|blocked",
                "how to read --graph (default auto: sniff the magic)",
                [&](const std::string& v) {
                  if (v != "auto" && v != "text" && v != "bin" &&
                      v != "blocked")
                    parser.fail("unknown graph format " + v);
                  graph_format = v;
                });
  parser.option("--ooc-window-mb", "N",
                "decoded-block window budget for blocked graphs in MiB "
                "(0 = unbounded; default 0)",
                [&](const std::string& v) {
                  ooc_window_bytes = units::MiB(static_cast<std::uint64_t>(
                      cli::parse_int(parser, "--ooc-window-mb", v, 0,
                                     1 << 20)));
                });
  parser.option("--rmat", "VxE", "fresh R-MAT graph (e.g. 100000x600000)",
                [&](const std::string& spec) {
                  const auto x = spec.find('x');
                  if (x == std::string::npos)
                    parser.fail("--rmat expects VxE");
                  const auto v = cli::parse_int(parser, "--rmat vertices",
                                                spec.substr(0, x), 1);
                  const auto e = cli::parse_int(parser, "--rmat edges",
                                                spec.substr(x + 1), 1);
                  graph = generate_rmat(static_cast<VertexId>(v),
                                        static_cast<std::uint64_t>(e), {}, 1);
                  graph_label = "rmat:" + spec;
                });
  parser.option("--algo", "bfs|cc|pr|sssp|spmv", "algorithm (default pr)",
                [&](const std::string& v) {
                  const auto a = parse_algorithm(v);
                  if (!a) parser.fail("unknown algorithm " + v);
                  algo = *a;
                });
  parser.option("--config", "opt|hyve|sd|dram|reram",
                "named variant (default opt)", [&](const std::string& v) {
                  const auto c = parse_config_label(v);
                  if (!c) parser.fail("unknown config " + v);
                  const HyveConfig base = config;
                  config = *c;
                  config.sram_bytes_per_pu =
                      config.has_onchip_vertex_memory()
                          ? base.sram_bytes_per_pu
                          : config.sram_bytes_per_pu;
                });
  parser.option("--partitioner", "interval|hep:tau=T|splitmerge:chunks=C",
                "partitioning strategy (default interval)",
                [&](const std::string& v) {
                  const auto p = parse_partitioner(v);
                  if (!p) parser.fail("unknown partitioner " + v);
                  partitioner = *p;
                });
  parser.option("--sram-mb", "N", "per-PU SRAM capacity (default 2)",
                [&](const std::string& v) {
                  config.sram_bytes_per_pu = units::MiB(
                      static_cast<std::uint64_t>(
                          cli::parse_int(parser, "--sram-mb", v, 0, 1 << 20)));
                });
  parser.option("--pus", "N", "processing units (default 8)",
                [&](const std::string& v) {
                  config.num_pus = static_cast<int>(
                      cli::parse_int(parser, "--pus", v, 1, 1 << 20));
                });
  parser.option("--cell-bits", "N", "ReRAM cell bits 1..3 (default 1)",
                [&](const std::string& v) {
                  config.reram.cell_bits = static_cast<int>(
                      cli::parse_int(parser, "--cell-bits", v, 1, 3));
                });
  parser.flag("--no-sharing", "disable inter-PU data sharing",
              [&] { config.data_sharing = false; });
  parser.flag("--no-power-gating", "disable bank-level power gating",
              [&] { config.power_gating = false; });
  parser.flag("--no-pattern-reuse",
              "disable per-iteration pattern reuse in frontier runs "
              "(results are identical either way; this re-streams every "
              "active block)",
              [&] { set_pattern_reuse_enabled(false); });
  parser.flag("--compare", "also run GraphR and the CPU baselines", &compare);
  parser.flag("--area", "print the silicon area estimate", &area);
  parser.flag("--csv", "machine-readable breakdown", &csv);
  parser.flag("--metrics",
              "dump the metrics registry to stderr as sorted key=value "
              "lines",
              &metrics);
  parser.flag("--list-metrics",
              "exercise every instrumented subsystem on tiny inputs and "
              "print the full metric name/type table (docs/METRICS.md), "
              "then exit",
              &list_metrics);
  parser.flag("--host-profile",
              "profile the host process: wall-clock spans, RSS sampling "
              "and stage rates as host.* metrics (and a wall-clock trace "
              "track with --trace)",
              &host_profile);
  parser.option("--trace", "PATH",
                "write a Chrome trace-event JSON (chrome://tracing, "
                "Perfetto) of the run to PATH",
                [&](const std::string& v) { trace_path = v; });
  parser.option("--live-status", "PATH[,interval_ms[,stall_ms]]",
                "publish a live status JSON snapshot (progress, "
                "heartbeats, metrics, RSS) to PATH on the interval "
                "(default 500 ms); watch with hyve_top",
                [&](const std::string& v) {
                  const auto live = obs::parse_live_status(v);
                  if (!live) parser.fail("bad --live-status spec " + v);
                  live_opts = *live;
                });

  try {
    parser.parse(argc, argv);

    if (list_metrics) return run_metrics_census();

    // Enable telemetry before the graph loads so the sim.ooc.* window
    // counters cover the streaming load itself.
    if (metrics || host_profile || live_opts) obs::set_enabled(true);
    if (live_opts) {
      live_opts->bench = "hyve_sim";
      obs::live_telemetry().start(*live_opts);
      obs::live_telemetry().add_total_cells(1);
    }

    if (!graph_path.empty()) {
      if (graph) parser.fail("choose one of --dataset/--graph/--rmat");
      const bool is_blocked =
          graph_format == "blocked" ||
          (graph_format == "auto" &&
           sniff_magic(graph_path) == blocked::kMagic);
      if (is_blocked) {
        BlockedReaderOptions reader_options;
        reader_options.window_bytes = ooc_window_bytes;
        BlockedGraphReader reader(graph_path, reader_options);
        // Materialise through the bounded window: peak decoded residency
        // stays within --ooc-window-mb (reported as
        // sim.ooc.window_peak_bytes) while the simulator gets the same
        // Graph the in-memory path builds — reports are byte-identical.
        graph = materialize(reader);
      } else if (graph_format == "bin") {
        graph = load_graph_binary(graph_path);
      } else if (graph_format == "text") {
        graph = load_edge_list_text(graph_path);
      } else {
        graph = load_graph_auto(graph_path);
      }
      graph_label = graph_path;
    }
    if (!graph)
      parser.fail("no input graph (--dataset/--graph/--rmat)");

    if (partitioner) config.set_partitioner(*partitioner);
    std::shared_ptr<obs::Trace> trace;
    if (!trace_path.empty()) {
      trace = std::make_shared<obs::Trace>();
      add_attribution_metadata(*trace, argc, argv);
    }
    if (host_profile) obs::host_profiler().start(trace.get());

    // Interrupting a single long run still saves a loadable truncated
    // trace and a final "interrupted" status snapshot.
    if (trace || live_opts) {
      const bool profiling = host_profile;
      const std::string saved_trace_path = trace_path;
      obs::install_flight_recorder(
          [trace, saved_trace_path, profiling](int) {
            if (obs::live_telemetry().enabled())
              obs::live_telemetry().stop("interrupted");
            if (profiling) obs::host_profiler().stop();
            if (trace)
              trace->write_file_atomic(saved_trace_path,
                                       /*truncated=*/true);
            if (obs::enabled()) obs::registry().dump(std::cerr);
          });
    }

    const HyveMachine machine(config);
    const RunReport r = machine.run(*graph, algo, trace.get());
    // Same guarantee as the sweep engine's ResultSink: hyve_sim can never
    // emit a report the downstream tooling cannot parse back.
    validate_report_round_trip(r);
    obs::live_telemetry().cell_done();

    // Stop before the write so host.wall_us and the final RSS sample
    // land in the trace and the --metrics dump.
    if (host_profile) obs::host_profiler().stop();
    if (trace) trace->write_file(trace_path);

    if (csv) {
      Table t({"graph", "algo", "config", "P", "iterations", "time_ns",
               "energy_pj", "mteps", "mteps_per_watt"});
      t.add_row({graph_label, r.algorithm, r.config_label,
                 std::to_string(r.num_intervals),
                 std::to_string(r.iterations), Table::num(r.exec_time_ns, 0),
                 Table::num(r.total_energy_pj(), 0), Table::num(r.mteps(), 1),
                 Table::num(r.mteps_per_watt(), 1)});
      t.print_csv(std::cout);
    } else {
      std::cout << graph_label << ": V=" << graph->num_vertices()
                << " E=" << graph->num_edges() << "\n"
                << r.config_label << " running " << r.algorithm << ": P="
                << r.num_intervals << ", " << r.iterations << " iterations\n"
                << "  time    " << Table::num(r.exec_time_ns / 1e6, 3)
                << " ms  (" << Table::num(r.mteps(), 0) << " MTEPS)\n"
                << "  energy  " << Table::num(r.total_energy_pj() / 1e6, 1)
                << " uJ  (" << Table::num(r.mteps_per_watt(), 0)
                << " MTEPS/W)\n"
                << "  memory share "
                << Table::num(100.0 * r.energy.memory_pj() /
                                  r.total_energy_pj(),
                              1)
                << "%\n";
    }

    if (compare) {
      Table t({"system", "time (ms)", "energy (uJ)", "MTEPS/W"});
      t.add_row({r.config_label, Table::num(r.exec_time_ns / 1e6, 3),
                 Table::num(r.total_energy_pj() / 1e6, 1),
                 Table::num(r.mteps_per_watt(), 0)});
      const GraphRReport gr = GraphRModel().run(*graph, algo);
      t.add_row({"GraphR", Table::num(gr.exec_time_ns / 1e6, 3),
                 Table::num(gr.total_energy_pj() / 1e6, 1),
                 Table::num(gr.mteps_per_watt(), 0)});
      for (const CpuBaseline kind :
           {CpuBaseline::kNaive, CpuBaseline::kOptimized}) {
        const CpuReport cr = CpuModel(kind).run(*graph, algo);
        t.add_row({cr.config_label, Table::num(cr.exec_time_ns / 1e6, 3),
                   Table::num(cr.energy_pj / 1e6, 1),
                   Table::num(cr.mteps_per_watt(), 0)});
      }
      std::cout << '\n';
      t.print(std::cout);
    }

    if (area) {
      AreaInputs in;
      in.num_pus = config.num_pus;
      in.sram_bytes_per_pu = config.sram_bytes_per_pu;
      in.edge_reram = config.reram;
      in.edge_capacity_bytes = graph->num_edges() * 8;
      in.power_gating = config.power_gating;
      const AreaBreakdown a = estimate_area(in);
      std::cout << "\narea estimate (22 nm):\n"
                << "  accelerator " << Table::num(a.accelerator_mm2(), 2)
                << " mm^2 (SRAM " << Table::num(a.sram_mm2, 2) << ", PUs "
                << Table::num(a.pu_mm2, 2) << ", router "
                << Table::num(a.router_mm2, 2) << ", controller "
                << Table::num(a.controller_mm2, 2) << ")\n"
                << "  edge memory " << a.edge_chips << " chip(s) x "
                << Table::num(a.edge_chip_mm2, 1) << " mm^2, power gates +"
                << Table::num(100.0 * a.power_gate_overhead(), 2) << "%\n";
    }

    if (metrics) obs::registry().dump(std::cerr);
    if (obs::live_telemetry().enabled()) obs::live_telemetry().stop("done");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
