// hyve_top — terminal monitor for a live HyVE run.
//
// Points at the status file a bench/tool writes under --live-status and
// refreshes a one-screen view: progress bar with ETA, per-worker phase
// lines (stalled workers flagged), the hottest counters, and an RSS
// sparkline. Exits when the producer reports a terminal state.
//
//   hyve_top /tmp/status.json                # follow until done
//   hyve_top /tmp/status.json --interval 250 # faster refresh
//   hyve_top /tmp/status.json --once         # one frame, no clear
//
// Reads are race-free: the producer publishes each snapshot with an
// atomic rename, so the file is always one complete JSON object.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/report_io.hpp"
#include "util/cli.hpp"

namespace {

using hyve::parse_flat_json;

// parse_flat_json keeps values as raw JSON tokens; strings arrive with
// their quotes still on.
std::string unquote(const std::string& token) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"')
    return token.substr(1, token.size() - 2);
  return token;
}

std::string field(const std::map<std::string, std::string>& fields,
                  const std::string& key, const std::string& fallback) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : unquote(it->second);
}

double num(const std::map<std::string, std::string>& fields,
           const std::string& key, double fallback) {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::string human_ms(double ms) {
  char buf[32];
  if (ms < 0) return "--";
  if (ms < 1000) {
    std::snprintf(buf, sizeof buf, "%.0f ms", ms);
  } else if (ms < 60 * 1000) {
    std::snprintf(buf, sizeof buf, "%.1f s", ms / 1000.0);
  } else {
    const long long total_s = static_cast<long long>(ms / 1000.0);
    std::snprintf(buf, sizeof buf, "%lldm%02llds", total_s / 60,
                  total_s % 60);
  }
  return buf;
}

std::string progress_bar(double done, double total, int width) {
  const double frac =
      total > 0 ? std::min(1.0, std::max(0.0, done / total)) : 0.0;
  const int filled = static_cast<int>(frac * width + 0.5);
  std::string bar = "[";
  for (int i = 0; i < width; ++i) bar += i < filled ? '#' : '.';
  bar += ']';
  return bar;
}

// Scale the RSS history onto the eight-step block ramp.
std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (const double v : values) {
    const double frac = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    out += kBlocks[std::min(7, static_cast<int>(frac * 8))];
  }
  return out;
}

// One rendered frame, built off-screen and emitted in a single write so
// a refresh never flickers half-drawn.
std::string render(const std::map<std::string, std::string>& fields) {
  std::ostringstream os;
  const std::string state = field(fields, "state", "?");
  os << "hyve_top  " << field(fields, "bench", "?") << "  pid "
     << field(fields, "pid", "?") << "  [" << state << "]  wall "
     << human_ms(num(fields, "wall_ms", -1)) << "  snapshot #"
     << field(fields, "snapshot", "?") << "\n\n";

  const double done = num(fields, "progress.done", 0);
  const double total = num(fields, "progress.total", 0);
  const double eta_ms = num(fields, "progress.eta_ms", -1);
  os << "  " << progress_bar(done, total, 30) << "  "
     << static_cast<long long>(done) << "/" << static_cast<long long>(total)
     << " cells";
  const double rate = num(fields, "progress.cells_per_s", 0);
  if (rate > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", rate);
    os << "  " << buf << " cells/s";
  }
  os << "  ETA " << human_ms(state == "running" ? eta_ms : 0) << "\n\n";

  os << "  rss " << static_cast<long long>(num(fields, "rss_kb", 0) / 1024)
     << " MiB  peak "
     << static_cast<long long>(num(fields, "peak_rss_kb", 0) / 1024)
     << " MiB  ";
  std::vector<double> rss;
  for (std::size_t i = 0;; ++i) {
    const auto it = fields.find("rss_history." + std::to_string(i));
    if (it == fields.end()) break;
    rss.push_back(num(fields, it->first, 0));
  }
  os << sparkline(rss) << "\n\n";

  os << "  workers (" << static_cast<long long>(num(fields, "stalled", 0))
     << " stalled):\n";
  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "workers." + std::to_string(i) + ".";
    if (fields.find(prefix + "id") == fields.end()) break;
    const double cell = num(fields, prefix + "cell", -1);
    os << "    w" << field(fields, prefix + "id", "?") << "  "
       << field(fields, prefix + "phase", "?");
    if (cell >= 0) os << "  cell " << static_cast<long long>(cell);
    os << "  (" << human_ms(num(fields, prefix + "age_ms", -1))
       << " since beat)";
    if (field(fields, prefix + "stalled", "false") == "true")
      os << "  ** STALLED **";
    os << "\n";
  }

  // Hottest counters: plain metric values sorted descending, skipping
  // the histogram expansion members, which would crowd out everything
  // else with their .sum/.max duplicates.
  std::vector<std::pair<double, std::string>> hot;
  static const char* kHistSuffix[] = {".avg", ".count", ".max", ".min",
                                      ".p50", ".p95", ".p99", ".sum"};
  for (const auto& [key, value] : fields) {
    if (key.rfind("metrics.", 0) != 0) continue;
    const std::string name = key.substr(8);
    bool derived = false;
    for (const char* suffix : kHistSuffix)
      if (name.size() > std::string(suffix).size() &&
          name.compare(name.size() - std::string(suffix).size(),
                       std::string::npos, suffix) == 0)
        derived = true;
    if (derived) continue;
    const double v = num(fields, key, 0);
    if (v != 0) hot.emplace_back(v, name);
  }
  std::sort(hot.rbegin(), hot.rend());
  os << "\n  hottest counters:\n";
  for (std::size_t i = 0; i < hot.size() && i < 8; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%15.0f", hot[i].first);
    os << "    " << buf << "  " << hot[i].second << "\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  int interval_ms = 500;
  bool once = false;
  bool no_clear = false;

  hyve::cli::ArgParser parser(
      "hyve_top",
      "follow a --live-status file: progress, ETA, workers, hot metrics");
  parser.allow_positionals(1);
  parser.option("--interval", "MS", "refresh interval (default 500)",
                [&](const std::string& v) {
                  interval_ms = static_cast<int>(
                      hyve::cli::parse_int(parser, "--interval", v, 10,
                                           60 * 1000));
                });
  parser.flag("--once", "render a single frame and exit", &once);
  parser.flag("--no-clear",
              "append frames instead of clearing the terminal", &no_clear);
  parser.parse(argc, argv);
  if (parser.positionals().size() != 1)
    parser.fail("expected exactly one STATUS file argument");
  const std::string path = parser.positionals()[0];

  bool waiting_notice = false;
  while (true) {
    std::ifstream in(path);
    if (!in) {
      if (once) {
        std::cerr << "hyve_top: no status file at " << path << "\n";
        return 1;
      }
      if (!waiting_notice) {
        std::cout << "hyve_top: waiting for " << path << " ...\n"
                  << std::flush;
        waiting_notice = true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    waiting_notice = false;
    std::stringstream buffer;
    buffer << in.rdbuf();

    std::string frame;
    std::string state = "?";
    try {
      const auto fields = parse_flat_json(buffer.str());
      state = field(fields, "state", "?");
      frame = render(fields);
    } catch (const std::exception&) {
      // Mid-rename or foreign file: keep the last frame and retry.
      if (once) {
        std::cerr << "hyve_top: " << path << " is not a status file\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }

    if (!no_clear && !once) std::cout << "\x1b[H\x1b[2J";
    std::cout << frame << std::flush;
    if (once || state != "running" && state != "starting") {
      if (!once) std::cout << "run finished: state " << state << "\n";
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
