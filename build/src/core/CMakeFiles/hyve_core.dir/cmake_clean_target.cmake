file(REMOVE_RECURSE
  "libhyve_core.a"
)
