file(REMOVE_RECURSE
  "CMakeFiles/hyve_core.dir/config.cpp.o"
  "CMakeFiles/hyve_core.dir/config.cpp.o.d"
  "CMakeFiles/hyve_core.dir/machine.cpp.o"
  "CMakeFiles/hyve_core.dir/machine.cpp.o.d"
  "CMakeFiles/hyve_core.dir/report_io.cpp.o"
  "CMakeFiles/hyve_core.dir/report_io.cpp.o.d"
  "libhyve_core.a"
  "libhyve_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
