# Empty compiler generated dependencies file for hyve_core.
# This may be replaced when dependencies are built.
