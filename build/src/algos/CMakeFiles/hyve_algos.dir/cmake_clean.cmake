file(REMOVE_RECURSE
  "CMakeFiles/hyve_algos.dir/bfs.cpp.o"
  "CMakeFiles/hyve_algos.dir/bfs.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/cc.cpp.o"
  "CMakeFiles/hyve_algos.dir/cc.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/frontier.cpp.o"
  "CMakeFiles/hyve_algos.dir/frontier.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/gas.cpp.o"
  "CMakeFiles/hyve_algos.dir/gas.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/pagerank.cpp.o"
  "CMakeFiles/hyve_algos.dir/pagerank.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/runner.cpp.o"
  "CMakeFiles/hyve_algos.dir/runner.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/spmv.cpp.o"
  "CMakeFiles/hyve_algos.dir/spmv.cpp.o.d"
  "CMakeFiles/hyve_algos.dir/sssp.cpp.o"
  "CMakeFiles/hyve_algos.dir/sssp.cpp.o.d"
  "libhyve_algos.a"
  "libhyve_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
