file(REMOVE_RECURSE
  "libhyve_algos.a"
)
