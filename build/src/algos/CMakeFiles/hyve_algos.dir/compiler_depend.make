# Empty compiler generated dependencies file for hyve_algos.
# This may be replaced when dependencies are built.
