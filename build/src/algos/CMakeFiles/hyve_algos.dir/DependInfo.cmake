
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bfs.cpp" "src/algos/CMakeFiles/hyve_algos.dir/bfs.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/bfs.cpp.o.d"
  "/root/repo/src/algos/cc.cpp" "src/algos/CMakeFiles/hyve_algos.dir/cc.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/cc.cpp.o.d"
  "/root/repo/src/algos/frontier.cpp" "src/algos/CMakeFiles/hyve_algos.dir/frontier.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/frontier.cpp.o.d"
  "/root/repo/src/algos/gas.cpp" "src/algos/CMakeFiles/hyve_algos.dir/gas.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/gas.cpp.o.d"
  "/root/repo/src/algos/pagerank.cpp" "src/algos/CMakeFiles/hyve_algos.dir/pagerank.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/pagerank.cpp.o.d"
  "/root/repo/src/algos/runner.cpp" "src/algos/CMakeFiles/hyve_algos.dir/runner.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/runner.cpp.o.d"
  "/root/repo/src/algos/spmv.cpp" "src/algos/CMakeFiles/hyve_algos.dir/spmv.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/spmv.cpp.o.d"
  "/root/repo/src/algos/sssp.cpp" "src/algos/CMakeFiles/hyve_algos.dir/sssp.cpp.o" "gcc" "src/algos/CMakeFiles/hyve_algos.dir/sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hyve_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hyve_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
