file(REMOVE_RECURSE
  "CMakeFiles/hyve_util.dir/log.cpp.o"
  "CMakeFiles/hyve_util.dir/log.cpp.o.d"
  "CMakeFiles/hyve_util.dir/rng.cpp.o"
  "CMakeFiles/hyve_util.dir/rng.cpp.o.d"
  "CMakeFiles/hyve_util.dir/table.cpp.o"
  "CMakeFiles/hyve_util.dir/table.cpp.o.d"
  "libhyve_util.a"
  "libhyve_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
