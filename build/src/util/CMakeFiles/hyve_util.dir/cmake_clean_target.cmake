file(REMOVE_RECURSE
  "libhyve_util.a"
)
