# Empty compiler generated dependencies file for hyve_util.
# This may be replaced when dependencies are built.
