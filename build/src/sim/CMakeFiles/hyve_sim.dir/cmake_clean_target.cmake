file(REMOVE_RECURSE
  "libhyve_sim.a"
)
