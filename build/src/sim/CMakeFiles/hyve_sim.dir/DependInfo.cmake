
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dram_timing.cpp" "src/sim/CMakeFiles/hyve_sim.dir/dram_timing.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/dram_timing.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/hyve_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/mem_request.cpp" "src/sim/CMakeFiles/hyve_sim.dir/mem_request.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/mem_request.cpp.o.d"
  "/root/repo/src/sim/memory_controller.cpp" "src/sim/CMakeFiles/hyve_sim.dir/memory_controller.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/memory_controller.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/hyve_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/pipeline.cpp.o.d"
  "/root/repo/src/sim/power_gating.cpp" "src/sim/CMakeFiles/hyve_sim.dir/power_gating.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/power_gating.cpp.o.d"
  "/root/repo/src/sim/reram_timing.cpp" "src/sim/CMakeFiles/hyve_sim.dir/reram_timing.cpp.o" "gcc" "src/sim/CMakeFiles/hyve_sim.dir/reram_timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hyve_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/hyve_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hyve_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
