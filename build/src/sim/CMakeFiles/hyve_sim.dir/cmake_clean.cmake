file(REMOVE_RECURSE
  "CMakeFiles/hyve_sim.dir/dram_timing.cpp.o"
  "CMakeFiles/hyve_sim.dir/dram_timing.cpp.o.d"
  "CMakeFiles/hyve_sim.dir/energy.cpp.o"
  "CMakeFiles/hyve_sim.dir/energy.cpp.o.d"
  "CMakeFiles/hyve_sim.dir/mem_request.cpp.o"
  "CMakeFiles/hyve_sim.dir/mem_request.cpp.o.d"
  "CMakeFiles/hyve_sim.dir/memory_controller.cpp.o"
  "CMakeFiles/hyve_sim.dir/memory_controller.cpp.o.d"
  "CMakeFiles/hyve_sim.dir/pipeline.cpp.o"
  "CMakeFiles/hyve_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/hyve_sim.dir/power_gating.cpp.o"
  "CMakeFiles/hyve_sim.dir/power_gating.cpp.o.d"
  "CMakeFiles/hyve_sim.dir/reram_timing.cpp.o"
  "CMakeFiles/hyve_sim.dir/reram_timing.cpp.o.d"
  "libhyve_sim.a"
  "libhyve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
