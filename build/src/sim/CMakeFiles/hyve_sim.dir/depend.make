# Empty dependencies file for hyve_sim.
# This may be replaced when dependencies are built.
