# Empty dependencies file for hyve_baselines.
# This may be replaced when dependencies are built.
