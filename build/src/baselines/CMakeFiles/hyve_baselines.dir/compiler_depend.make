# Empty compiler generated dependencies file for hyve_baselines.
# This may be replaced when dependencies are built.
