file(REMOVE_RECURSE
  "CMakeFiles/hyve_baselines.dir/cpu.cpp.o"
  "CMakeFiles/hyve_baselines.dir/cpu.cpp.o.d"
  "CMakeFiles/hyve_baselines.dir/crossbar_compute.cpp.o"
  "CMakeFiles/hyve_baselines.dir/crossbar_compute.cpp.o.d"
  "CMakeFiles/hyve_baselines.dir/graphr.cpp.o"
  "CMakeFiles/hyve_baselines.dir/graphr.cpp.o.d"
  "libhyve_baselines.a"
  "libhyve_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
