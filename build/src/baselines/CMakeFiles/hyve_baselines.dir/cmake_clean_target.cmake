file(REMOVE_RECURSE
  "libhyve_baselines.a"
)
