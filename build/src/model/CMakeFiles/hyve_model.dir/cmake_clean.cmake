file(REMOVE_RECURSE
  "CMakeFiles/hyve_model.dir/analytic.cpp.o"
  "CMakeFiles/hyve_model.dir/analytic.cpp.o.d"
  "libhyve_model.a"
  "libhyve_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
