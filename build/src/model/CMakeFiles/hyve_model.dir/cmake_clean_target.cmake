file(REMOVE_RECURSE
  "libhyve_model.a"
)
