# Empty dependencies file for hyve_model.
# This may be replaced when dependencies are built.
