file(REMOVE_RECURSE
  "CMakeFiles/hyve_graph.dir/datasets.cpp.o"
  "CMakeFiles/hyve_graph.dir/datasets.cpp.o.d"
  "CMakeFiles/hyve_graph.dir/generators.cpp.o"
  "CMakeFiles/hyve_graph.dir/generators.cpp.o.d"
  "CMakeFiles/hyve_graph.dir/graph.cpp.o"
  "CMakeFiles/hyve_graph.dir/graph.cpp.o.d"
  "CMakeFiles/hyve_graph.dir/io.cpp.o"
  "CMakeFiles/hyve_graph.dir/io.cpp.o.d"
  "CMakeFiles/hyve_graph.dir/partition.cpp.o"
  "CMakeFiles/hyve_graph.dir/partition.cpp.o.d"
  "CMakeFiles/hyve_graph.dir/stats.cpp.o"
  "CMakeFiles/hyve_graph.dir/stats.cpp.o.d"
  "libhyve_graph.a"
  "libhyve_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
