file(REMOVE_RECURSE
  "libhyve_graph.a"
)
