# Empty compiler generated dependencies file for hyve_graph.
# This may be replaced when dependencies are built.
