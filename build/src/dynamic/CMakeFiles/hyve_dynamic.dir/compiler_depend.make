# Empty compiler generated dependencies file for hyve_dynamic.
# This may be replaced when dependencies are built.
