file(REMOVE_RECURSE
  "CMakeFiles/hyve_dynamic.dir/dynamic_graph.cpp.o"
  "CMakeFiles/hyve_dynamic.dir/dynamic_graph.cpp.o.d"
  "CMakeFiles/hyve_dynamic.dir/incremental_cc.cpp.o"
  "CMakeFiles/hyve_dynamic.dir/incremental_cc.cpp.o.d"
  "CMakeFiles/hyve_dynamic.dir/requests.cpp.o"
  "CMakeFiles/hyve_dynamic.dir/requests.cpp.o.d"
  "CMakeFiles/hyve_dynamic.dir/wear.cpp.o"
  "CMakeFiles/hyve_dynamic.dir/wear.cpp.o.d"
  "libhyve_dynamic.a"
  "libhyve_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
