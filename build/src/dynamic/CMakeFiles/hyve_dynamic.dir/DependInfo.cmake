
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/dynamic_graph.cpp" "src/dynamic/CMakeFiles/hyve_dynamic.dir/dynamic_graph.cpp.o" "gcc" "src/dynamic/CMakeFiles/hyve_dynamic.dir/dynamic_graph.cpp.o.d"
  "/root/repo/src/dynamic/incremental_cc.cpp" "src/dynamic/CMakeFiles/hyve_dynamic.dir/incremental_cc.cpp.o" "gcc" "src/dynamic/CMakeFiles/hyve_dynamic.dir/incremental_cc.cpp.o.d"
  "/root/repo/src/dynamic/requests.cpp" "src/dynamic/CMakeFiles/hyve_dynamic.dir/requests.cpp.o" "gcc" "src/dynamic/CMakeFiles/hyve_dynamic.dir/requests.cpp.o.d"
  "/root/repo/src/dynamic/wear.cpp" "src/dynamic/CMakeFiles/hyve_dynamic.dir/wear.cpp.o" "gcc" "src/dynamic/CMakeFiles/hyve_dynamic.dir/wear.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hyve_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hyve_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
