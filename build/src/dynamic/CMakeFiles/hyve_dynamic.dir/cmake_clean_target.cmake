file(REMOVE_RECURSE
  "libhyve_dynamic.a"
)
