# Empty compiler generated dependencies file for hyve_memmodel.
# This may be replaced when dependencies are built.
