file(REMOVE_RECURSE
  "CMakeFiles/hyve_memmodel.dir/area.cpp.o"
  "CMakeFiles/hyve_memmodel.dir/area.cpp.o.d"
  "CMakeFiles/hyve_memmodel.dir/crossbar.cpp.o"
  "CMakeFiles/hyve_memmodel.dir/crossbar.cpp.o.d"
  "CMakeFiles/hyve_memmodel.dir/dram.cpp.o"
  "CMakeFiles/hyve_memmodel.dir/dram.cpp.o.d"
  "CMakeFiles/hyve_memmodel.dir/reram.cpp.o"
  "CMakeFiles/hyve_memmodel.dir/reram.cpp.o.d"
  "CMakeFiles/hyve_memmodel.dir/sram.cpp.o"
  "CMakeFiles/hyve_memmodel.dir/sram.cpp.o.d"
  "libhyve_memmodel.a"
  "libhyve_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyve_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
