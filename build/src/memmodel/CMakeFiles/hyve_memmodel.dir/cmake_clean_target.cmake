file(REMOVE_RECURSE
  "libhyve_memmodel.a"
)
