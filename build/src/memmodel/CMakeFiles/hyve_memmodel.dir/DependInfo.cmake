
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memmodel/area.cpp" "src/memmodel/CMakeFiles/hyve_memmodel.dir/area.cpp.o" "gcc" "src/memmodel/CMakeFiles/hyve_memmodel.dir/area.cpp.o.d"
  "/root/repo/src/memmodel/crossbar.cpp" "src/memmodel/CMakeFiles/hyve_memmodel.dir/crossbar.cpp.o" "gcc" "src/memmodel/CMakeFiles/hyve_memmodel.dir/crossbar.cpp.o.d"
  "/root/repo/src/memmodel/dram.cpp" "src/memmodel/CMakeFiles/hyve_memmodel.dir/dram.cpp.o" "gcc" "src/memmodel/CMakeFiles/hyve_memmodel.dir/dram.cpp.o.d"
  "/root/repo/src/memmodel/reram.cpp" "src/memmodel/CMakeFiles/hyve_memmodel.dir/reram.cpp.o" "gcc" "src/memmodel/CMakeFiles/hyve_memmodel.dir/reram.cpp.o.d"
  "/root/repo/src/memmodel/sram.cpp" "src/memmodel/CMakeFiles/hyve_memmodel.dir/sram.cpp.o" "gcc" "src/memmodel/CMakeFiles/hyve_memmodel.dir/sram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hyve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
