file(REMOVE_RECURSE
  "../bench/bench_crossbar_accuracy"
  "../bench/bench_crossbar_accuracy.pdb"
  "CMakeFiles/bench_crossbar_accuracy.dir/bench_crossbar_accuracy.cpp.o"
  "CMakeFiles/bench_crossbar_accuracy.dir/bench_crossbar_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossbar_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
