# Empty dependencies file for bench_crossbar_accuracy.
# This may be replaced when dependencies are built.
