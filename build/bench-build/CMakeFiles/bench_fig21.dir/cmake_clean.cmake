file(REMOVE_RECURSE
  "../bench/bench_fig21"
  "../bench/bench_fig21.pdb"
  "CMakeFiles/bench_fig21.dir/bench_fig21.cpp.o"
  "CMakeFiles/bench_fig21.dir/bench_fig21.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
