file(REMOVE_RECURSE
  "CMakeFiles/tool_hyve_sim.dir/hyve_sim.cpp.o"
  "CMakeFiles/tool_hyve_sim.dir/hyve_sim.cpp.o.d"
  "hyve_sim"
  "hyve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_hyve_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
