# Empty compiler generated dependencies file for tool_hyve_sim.
# This may be replaced when dependencies are built.
