# Empty compiler generated dependencies file for tool_hyve_experiments.
# This may be replaced when dependencies are built.
