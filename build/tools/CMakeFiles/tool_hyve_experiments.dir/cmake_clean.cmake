file(REMOVE_RECURSE
  "CMakeFiles/tool_hyve_experiments.dir/hyve_experiments.cpp.o"
  "CMakeFiles/tool_hyve_experiments.dir/hyve_experiments.cpp.o.d"
  "hyve_experiments"
  "hyve_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_hyve_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
