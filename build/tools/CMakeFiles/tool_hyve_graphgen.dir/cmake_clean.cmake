file(REMOVE_RECURSE
  "CMakeFiles/tool_hyve_graphgen.dir/hyve_graphgen.cpp.o"
  "CMakeFiles/tool_hyve_graphgen.dir/hyve_graphgen.cpp.o.d"
  "hyve_graphgen"
  "hyve_graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_hyve_graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
