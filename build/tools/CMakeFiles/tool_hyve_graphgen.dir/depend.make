# Empty dependencies file for tool_hyve_graphgen.
# This may be replaced when dependencies are built.
