# Empty dependencies file for dynamic_social_network.
# This may be replaced when dependencies are built.
