file(REMOVE_RECURSE
  "CMakeFiles/dynamic_social_network.dir/dynamic_social_network.cpp.o"
  "CMakeFiles/dynamic_social_network.dir/dynamic_social_network.cpp.o.d"
  "dynamic_social_network"
  "dynamic_social_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_social_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
