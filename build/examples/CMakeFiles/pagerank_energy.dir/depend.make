# Empty dependencies file for pagerank_energy.
# This may be replaced when dependencies are built.
