file(REMOVE_RECURSE
  "CMakeFiles/pagerank_energy.dir/pagerank_energy.cpp.o"
  "CMakeFiles/pagerank_energy.dir/pagerank_energy.cpp.o.d"
  "pagerank_energy"
  "pagerank_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
