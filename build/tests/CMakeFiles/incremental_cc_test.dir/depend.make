# Empty dependencies file for incremental_cc_test.
# This may be replaced when dependencies are built.
