file(REMOVE_RECURSE
  "CMakeFiles/incremental_cc_test.dir/incremental_cc_test.cpp.o"
  "CMakeFiles/incremental_cc_test.dir/incremental_cc_test.cpp.o.d"
  "incremental_cc_test"
  "incremental_cc_test.pdb"
  "incremental_cc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_cc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
