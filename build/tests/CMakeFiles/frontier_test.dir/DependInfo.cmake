
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/frontier_test.cpp" "tests/CMakeFiles/frontier_test.dir/frontier_test.cpp.o" "gcc" "tests/CMakeFiles/frontier_test.dir/frontier_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hyve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hyve_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/hyve_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hyve_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hyve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/hyve_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/hyve_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hyve_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hyve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
