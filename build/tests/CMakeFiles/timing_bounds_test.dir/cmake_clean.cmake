file(REMOVE_RECURSE
  "CMakeFiles/timing_bounds_test.dir/timing_bounds_test.cpp.o"
  "CMakeFiles/timing_bounds_test.dir/timing_bounds_test.cpp.o.d"
  "timing_bounds_test"
  "timing_bounds_test.pdb"
  "timing_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
