# Empty compiler generated dependencies file for timing_bounds_test.
# This may be replaced when dependencies are built.
