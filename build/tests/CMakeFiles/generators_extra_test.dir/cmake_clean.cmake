file(REMOVE_RECURSE
  "CMakeFiles/generators_extra_test.dir/generators_extra_test.cpp.o"
  "CMakeFiles/generators_extra_test.dir/generators_extra_test.cpp.o.d"
  "generators_extra_test"
  "generators_extra_test.pdb"
  "generators_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generators_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
