# Empty dependencies file for generators_extra_test.
# This may be replaced when dependencies are built.
