file(REMOVE_RECURSE
  "CMakeFiles/memmodel_test.dir/memmodel_test.cpp.o"
  "CMakeFiles/memmodel_test.dir/memmodel_test.cpp.o.d"
  "memmodel_test"
  "memmodel_test.pdb"
  "memmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
