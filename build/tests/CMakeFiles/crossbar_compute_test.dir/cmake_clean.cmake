file(REMOVE_RECURSE
  "CMakeFiles/crossbar_compute_test.dir/crossbar_compute_test.cpp.o"
  "CMakeFiles/crossbar_compute_test.dir/crossbar_compute_test.cpp.o.d"
  "crossbar_compute_test"
  "crossbar_compute_test.pdb"
  "crossbar_compute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
