# Empty dependencies file for crossbar_compute_test.
# This may be replaced when dependencies are built.
