# Empty dependencies file for memory_controller_test.
# This may be replaced when dependencies are built.
