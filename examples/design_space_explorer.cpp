// Example: explore the HyVE design space for a target workload.
//
// Sweeps the main architectural knobs — SRAM capacity, ReRAM cell bits,
// ReRAM bank optimisation target, PU count, and the two §4 optimisations
// — and reports the best configuration by MTEPS/W, then by EDP. This is
// the kind of study §7.2 ("Design Decisions") runs to fix the shipped
// configuration.
//
// The grid runs on the src/exp sweep engine: the workload graph is
// registered in a GraphCache, so the 36 configurations share one
// hash-balancing remap and one partitioning per distinct P instead of
// redoing both per cell, and the cells execute on a worker pool.
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/machine.hpp"
#include "exp/sweep.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace hyve;

  exp::GraphCache graphs;
  graphs.add("workload", [] { return generate_rmat(150'000, 900'000, {}, 4242); });
  exp::PartitionCache partitions;

  exp::SweepSpec spec;
  spec.algorithms = {Algorithm::kPageRank};
  spec.graphs = {"workload"};
  for (const std::uint64_t sram : {units::MiB(1), units::MiB(2),
                                   units::MiB(4)}) {
    for (const int cell_bits : {1, 2}) {
      for (const ReramOptTarget opt : {ReramOptTarget::kEnergyOptimized,
                                       ReramOptTarget::kLatencyOptimized}) {
        for (const int pus : {4, 8, 16}) {
          HyveConfig cfg = HyveConfig::hyve_opt();
          cfg.sram_bytes_per_pu = sram;
          cfg.reram.cell_bits = cell_bits;
          cfg.reram.optimization = opt;
          cfg.num_pus = pus;
          cfg.label = std::to_string(sram / units::MiB(1)) + "MB/" +
                      std::to_string(cell_bits) + "b/" +
                      (opt == ReramOptTarget::kEnergyOptimized ? "Eopt"
                                                               : "Lopt") +
                      "/" + std::to_string(pus) + "PU";
          spec.configs.push_back(cfg);
        }
      }
    }
  }

  exp::SweepEngine engine(graphs, partitions);
  std::vector<exp::SweepResult> candidates = engine.run(spec);

  const Graph& workload = graphs.base("workload");
  std::cout << "workload: PageRank on V=" << workload.num_vertices()
            << " E=" << workload.num_edges() << "\n\n";

  auto by_efficiency = [](const exp::SweepResult& a,
                          const exp::SweepResult& b) {
    return a.report.mteps_per_watt() > b.report.mteps_per_watt();
  };
  std::sort(candidates.begin(), candidates.end(), by_efficiency);

  Table table({"rank", "configuration", "MTEPS/W", "MTEPS",
               "EDP (mJ*ms)"});
  for (std::size_t i = 0; i < 8 && i < candidates.size(); ++i) {
    const RunReport& r = candidates[i].report;
    table.add_row({std::to_string(i + 1), r.config_label,
                   Table::num(r.mteps_per_watt(), 0),
                   Table::num(r.mteps(), 0),
                   Table::num(r.edp_pj_ns() / 1e15, 3)});
  }
  std::cout << "top configurations by energy efficiency:\n";
  table.print(std::cout);

  const auto best_edp = std::min_element(
      candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
        return a.report.edp_pj_ns() < b.report.edp_pj_ns();
      });
  std::cout << "\nbest by EDP: " << best_edp->report.config_label << " ("
            << Table::num(best_edp->report.edp_pj_ns() / 1e15, 3)
            << " mJ*ms)\n";
  std::cout << "\nThe paper's shipped design — 2MB SRAM, SLC cells, "
               "energy-optimized banks, 8 PUs — should rank at or near the "
               "top on efficiency (§7.2).\n";
  return 0;
}
