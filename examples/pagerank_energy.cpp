// Example: rank the pages of a synthetic web-scale graph and break down
// where the accelerator's energy goes.
//
// Demonstrates: custom graphs through the public API, functional results
// (actual PageRank values) alongside the architectural report, and the
// Fig.-17-style per-component energy breakdown.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/runner.hpp"
#include "core/machine.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace hyve;

  // A webgraph-like input: heavy-tailed R-MAT, 200k pages, 1.2M links.
  const Graph web = generate_rmat(200'000, 1'200'000, {}, /*seed=*/2026);
  std::cout << "webgraph: V=" << web.num_vertices()
            << " E=" << web.num_edges() << "\n";

  // 1. Functional run: the actual ranks. (The machine permutes vertex ids
  //    internally for load balance, so for per-vertex results we use the
  //    functional engine directly.)
  PageRankProgram pr(/*num_iterations=*/10);
  run_functional(web, pr);
  std::vector<VertexId> order(web.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return pr.ranks()[a] > pr.ranks()[b];
                    });
  std::cout << "\ntop pages by rank:\n";
  for (int i = 0; i < 5; ++i)
    std::cout << "  v" << order[i] << "  rank "
              << Table::num(pr.ranks()[order[i]] * 1e6, 2) << " ppm\n";

  // 2. Architectural run on the optimised HyVE machine.
  const HyveMachine machine(HyveConfig::hyve_opt());
  const RunReport r = machine.run(web, Algorithm::kPageRank);

  std::cout << "\nsimulated on " << r.config_label << ": P="
            << r.num_intervals << " intervals, " << r.iterations
            << " iterations\n"
            << "  time   " << Table::num(r.exec_time_ns / 1e6, 3) << " ms ("
            << Table::num(r.mteps(), 0) << " MTEPS)\n"
            << "  energy " << Table::num(r.total_energy_pj() / 1e6, 1)
            << " uJ (" << Table::num(r.mteps_per_watt(), 0) << " MTEPS/W)\n";

  Table breakdown({"component", "energy (uJ)", "share"});
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    breakdown.add_row({component_name(c), Table::num(r.energy[c] / 1e6, 2),
                       Table::num(100.0 * r.energy[c] / r.total_energy_pj(),
                                  1) +
                           "%"});
  }
  std::cout << '\n';
  breakdown.print(std::cout);

  std::cout << "\nbank-level power gating: "
            << Table::num((1.0 - r.bpg.gated_background_pj /
                                     r.bpg.ungated_background_pj) *
                              100.0,
                          1)
            << "% of the edge-memory background removed ("
            << r.bpg.bank_wakes << " bank wake-ups)\n";
  return 0;
}
