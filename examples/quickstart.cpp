// Quickstart: simulate PageRank on the YT dataset across the main memory
// hierarchies and print energy-efficiency reports.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "baselines/cpu.hpp"
#include "core/machine.hpp"
#include "graph/datasets.hpp"
#include "util/table.hpp"

int main() {
  using namespace hyve;

  // 1. Get a graph. dataset_graph() returns the synthetic stand-in for
  //    the paper's com-youtube trace; any Graph works here (see
  //    load_edge_list_text for SNAP files).
  const Graph& graph = dataset_graph(DatasetId::kYT);
  std::cout << "graph: V=" << graph.num_vertices()
            << " E=" << graph.num_edges() << "\n";

  // 2. Pick a machine configuration and run an algorithm. The run is
  //    functional (real PageRank values) + architectural (time/energy).
  Table table({"config", "P", "iters", "time(ms)", "energy(uJ)", "MTEPS/W",
               "mem share"});
  for (const HyveConfig& config : fig16_accelerator_configs()) {
    const HyveMachine machine(config);
    const RunReport r = machine.run(graph, Algorithm::kPageRank);
    table.add_row({r.config_label, std::to_string(r.num_intervals),
                   std::to_string(r.iterations),
                   Table::num(r.exec_time_ns / 1e6, 3),
                   Table::num(r.total_energy_pj() / 1e6, 1),
                   Table::num(r.mteps_per_watt(), 0),
                   Table::num(100.0 * r.energy.memory_pj() /
                                  r.total_energy_pj(),
                              1) + "%"});
  }

  // 3. CPU reference points.
  for (const CpuBaseline kind : {CpuBaseline::kNaive, CpuBaseline::kOptimized}) {
    const CpuReport r = CpuModel(kind).run(graph, Algorithm::kPageRank);
    table.add_row({r.config_label, "-", std::to_string(r.iterations),
                   Table::num(r.exec_time_ns / 1e6, 3),
                   Table::num(r.energy_pj / 1e6, 1),
                   Table::num(r.mteps_per_watt(), 0), "-"});
  }

  table.print(std::cout);
  std::cout << "\nHigher MTEPS/W is better; acc+HyVE-opt should lead the "
               "accelerators and beat the CPUs by ~2 orders of magnitude.\n";
  return 0;
}
