// Example: a social network that keeps evolving while being analysed.
//
// Demonstrates the §5 dynamic-graph working flow: a DynamicGraphStore
// absorbs follows/unfollows/joins/leaves in O(1) through reserved slack,
// and periodic snapshots are re-analysed on the HyVE machine — the
// offline/online split of Fig. 4.
#include <chrono>
#include <iostream>

#include "algos/cc.hpp"
#include "algos/runner.hpp"
#include "core/machine.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental_cc.hpp"
#include "dynamic/requests.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace hyve;

  // Day 0: a 100k-member network with 700k follow edges.
  const Graph initial = generate_rmat(100'000, 700'000, {}, 77);
  DynamicGraphOptions options;
  options.num_intervals =
      HyveMachine(HyveConfig::hyve_opt()).choose_num_intervals(initial, 4);
  DynamicGraphStore store(initial, options);
  std::cout << "day 0: V=" << store.num_vertices()
            << " E=" << store.num_edges() << "\n";

  const HyveMachine machine(HyveConfig::hyve_opt());
  IncrementalCc incremental(store);  // live connectivity alongside the store
  Table table({"day", "edges", "requests/s (M)", "components (incr)",
               "components (batch)", "CC energy (uJ)"});

  DynamicRequestMix mix;  // the paper's 45/45/5/5
  for (int day = 1; day <= 5; ++day) {
    // Online phase: a burst of graph mutations, mirrored into the
    // incremental connectivity index.
    const auto requests =
        generate_requests(store.snapshot(), 50'000, mix, 1000 + day);
    const auto start_edges = store.num_edges();
    ThroughputResult tp;
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (const DynamicRequest& req : requests) {
        switch (req.type) {
          case DynamicRequestType::kAddEdge:
            if (store.add_edge(req.edge)) incremental.on_add_edge(req.edge);
            break;
          case DynamicRequestType::kDeleteEdge:
            if (store.delete_edge(req.edge))
              incremental.on_delete_edge(req.edge);
            break;
          case DynamicRequestType::kAddVertex:
            incremental.on_add_vertex(store.add_vertex());
            break;
          case DynamicRequestType::kDeleteVertex:
            if (store.delete_vertex(req.vertex))
              incremental.on_delete_vertex(req.vertex);
            break;
        }
        ++tp.requests_applied;
      }
      tp.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    }
    (void)start_edges;

    // Offline phase: analyse the snapshot (weak connectivity of the
    // follow graph — symmetrise first, as CC requires) and cross-check
    // the incremental answer against the batch one.
    const Graph snapshot = symmetrized(store.snapshot());
    CcProgram cc;
    run_functional(snapshot, cc);
    std::uint64_t batch_components = 0;
    for (VertexId v = 0; v < snapshot.num_vertices(); ++v)
      batch_components += (cc.labels()[v] == v) ? 1 : 0;

    const RunReport r = machine.run(snapshot, Algorithm::kCc);
    table.add_row({std::to_string(day), std::to_string(store.num_edges()),
                   Table::num(tp.millions_per_second(), 2),
                   std::to_string(incremental.num_components()),
                   std::to_string(batch_components),
                   Table::num(r.total_energy_pj() / 1e6, 1)});
  }
  table.print(std::cout);
  std::cout << "\nincremental CC recomputed "
            << incremental.recompute_count() << " time(s) across "
            << 5 * 50'000 << " requests\n";

  std::cout << "\nslack bookkeeping: " << store.overflow_chunks()
            << " overflow chunks chained, " << store.preprocess_count()
            << " full re-preprocessing passes\n";
  return 0;
}
