// Fig. 19: preprocessing time, GraphR/HyVE (wall-clock measurement).
//
// HyVE partitions into a few tens of intervals; GraphR must bucket edges
// into 8x8-vertex blocks — a grid of (V/8)^2 block ids that can only be
// addressed through hashing/sorting. Paper: GraphR preprocessing takes
// 6.73x longer on average.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <unordered_map>

#include "bench/common.hpp"
#include "graph/partition.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double hyve_preprocess_seconds(const hyve::Graph& g, std::uint32_t p) {
  const auto start = clock_type::now();
  const hyve::Partitioning part(g, p);
  const auto stop = clock_type::now();
  if (part.num_edges() != g.num_edges()) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

// GraphR-style preprocessing: group edges by 8x8-vertex block through a
// hash directory (the dense grid does not fit), then order each bucket.
double graphr_preprocess_seconds(const hyve::Graph& g) {
  const auto start = clock_type::now();
  const std::uint64_t grid = (g.num_vertices() + 7) / 8;
  std::unordered_map<std::uint64_t, std::vector<hyve::Edge>> blocks;
  blocks.reserve(g.num_edges());
  for (const hyve::Edge& e : g.edges()) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(e.src / 8) * grid + e.dst / 8;
    blocks[key].push_back(e);
  }
  // GraphR streams blocks in matrix order: collect and sort the keys.
  std::vector<std::uint64_t> keys;
  keys.reserve(blocks.size());
  for (const auto& [key, edges] : blocks) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const auto stop = clock_type::now();
  if (keys.empty() && g.num_edges() > 0) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  using namespace hyve;
  bench::header("Fig. 19", "Preprocessing time, GraphR/HyVE");

  Table table({"dataset", "HyVE P", "HyVE (ms)", "GraphR (ms)",
               "GraphR/HyVE"});
  std::vector<double> ratios;
  for (const DatasetId id : kAllDatasets) {
    const Graph& g = dataset_graph(id);
    const HyveMachine machine(HyveConfig::hyve_opt());
    const std::uint32_t p = machine.choose_num_intervals(g, 4);
    double hyve_s = 1e100;
    double graphr_s = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      hyve_s = std::min(hyve_s, hyve_preprocess_seconds(g, p));
      graphr_s = std::min(graphr_s, graphr_preprocess_seconds(g));
    }
    table.add_row({dataset_name(id), std::to_string(p),
                   Table::num(hyve_s * 1e3, 2), Table::num(graphr_s * 1e3, 2),
                   Table::num(graphr_s / hyve_s, 2) + "x"});
    ratios.push_back(graphr_s / hyve_s);
  }
  table.print(std::cout);
  std::cout << "average: " << Table::num(bench::geomean(ratios), 2) << "x\n";

  bench::paper_note("GraphR preprocessing is 6.73x slower on average");
  bench::measured_note(
      "hash-directory bucketing at 8-vertex granularity loses by a "
      "similar factor to the counting-sort over a few intervals");
  return 0;
}
