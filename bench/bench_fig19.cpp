// Fig. 19: preprocessing time, GraphR/HyVE (wall-clock measurement).
//
// HyVE partitions into a few tens of intervals; GraphR must bucket edges
// into 8x8-vertex blocks — a grid of (V/8)^2 block ids that can only be
// addressed through hashing/sorting. Paper: GraphR preprocessing takes
// 6.73x longer on average.
//
// Under --smoke each preprocessing pass still runs once (the honesty
// checks stay), but the reported seconds are deterministic
// work-proportional proxies (edges touched, hash inserts, key sort), so
// the output is stable across runs and --jobs values.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <unordered_map>

#include "bench/common.hpp"
#include "graph/partition.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double hyve_preprocess_seconds(const hyve::Graph& g, std::uint32_t p,
                               bool smoke) {
  const auto start = clock_type::now();
  const hyve::Partitioning part(g, p);
  const auto stop = clock_type::now();
  if (part.num_edges() != g.num_edges()) std::abort();
  if (smoke)
    return (static_cast<double>(g.num_edges()) +
            static_cast<double>(p) * p) /
           1e9;
  return std::chrono::duration<double>(stop - start).count();
}

// GraphR-style preprocessing: group edges by 8x8-vertex block through a
// hash directory (the dense grid does not fit), then order each bucket.
double graphr_preprocess_seconds(const hyve::Graph& g, bool smoke) {
  const auto start = clock_type::now();
  const std::uint64_t grid = (g.num_vertices() + 7) / 8;
  std::unordered_map<std::uint64_t, std::vector<hyve::Edge>> blocks;
  blocks.reserve(g.num_edges());
  for (const hyve::Edge& e : g.edges()) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(e.src / 8) * grid + e.dst / 8;
    blocks[key].push_back(e);
  }
  // GraphR streams blocks in matrix order: collect and sort the keys.
  std::vector<std::uint64_t> keys;
  keys.reserve(blocks.size());
  for (const auto& [key, edges] : blocks) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const auto stop = clock_type::now();
  if (keys.empty() && g.num_edges() > 0) std::abort();
  if (smoke) {
    const double k = static_cast<double>(keys.size());
    return (4.0 * static_cast<double>(g.num_edges()) +
            k * std::log2(k + 1)) /
           1e9;
  }
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig19",
      "Fig. 19: preprocessing time, GraphR relative to HyVE");
  bench::header("Fig. 19", "Preprocessing time, GraphR/HyVE");

  struct Cell {
    std::uint32_t p;
    double hyve_s;
    double graphr_s;
  };
  const std::vector<Cell> cells = bench::run_cells(
      opts.datasets.size(), opts, [&](std::size_t i) {
        const Graph& g = dataset_graph(opts.datasets[i]);
        const HyveMachine machine(HyveConfig::hyve_opt());
        Cell cell{machine.choose_num_intervals(g, 4), 1e100, 1e100};
        if (opts.smoke) {
          cell.hyve_s = hyve_preprocess_seconds(g, cell.p, true);
          cell.graphr_s = graphr_preprocess_seconds(g, true);
          return cell;
        }
        // Best of three, stopwatch serialised against other cells so
        // --jobs > 1 cannot perturb the measurement.
        const std::scoped_lock timing(bench::timing_mutex());
        for (int rep = 0; rep < 3; ++rep) {
          cell.hyve_s =
              std::min(cell.hyve_s, hyve_preprocess_seconds(g, cell.p, false));
          cell.graphr_s =
              std::min(cell.graphr_s, graphr_preprocess_seconds(g, false));
        }
        return cell;
      });

  Table table({"dataset", "HyVE P", "HyVE (ms)", "GraphR (ms)",
               "GraphR/HyVE"});
  std::vector<double> ratios;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    table.add_row({dataset_name(opts.datasets[i]), std::to_string(cell.p),
                   Table::num(cell.hyve_s * 1e3, 2),
                   Table::num(cell.graphr_s * 1e3, 2),
                   Table::num(cell.graphr_s / cell.hyve_s, 2) + "x"});
    ratios.push_back(cell.graphr_s / cell.hyve_s);
  }
  table.print(std::cout);
  std::cout << "average: " << Table::num(bench::geomean(ratios), 2) << "x\n";

  bench::paper_note("GraphR preprocessing is 6.73x slower on average");
  bench::measured_note(
      "hash-directory bucketing at 8-vertex granularity loses by a "
      "similar factor to the counting-sort over a few intervals");
  opts.finish();
  return 0;
}
