// Table 4: energy efficiency (MTEPS/W) as a function of on-chip SRAM size
// {2, 4, 8, 16 MB} across the 2x2 {power-gating} x {data-sharing} grid,
// for BFS / CC / PR on all five datasets.
//
// The paper's findings to reproduce in shape: efficiency falls with SRAM
// size beyond the sweet spot (leakage + slower arrays beat the saved
// off-chip traffic), sharing and power gating help everywhere, and PR
// benefits most from sharing (widest vertex record).
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_table4",
      "Table 4: energy efficiency vs SRAM size across the 2x2 PG/sharing "
      "grid");
  bench::header("Table 4", "Energy efficiency (MTEPS/W) vs SRAM size");

  const std::uint64_t sizes[] = {units::MiB(2), units::MiB(4), units::MiB(8),
                                 units::MiB(16)};
  struct Variant {
    const char* name;
    bool power_gating;
    bool sharing;
  };
  const Variant variants[] = {
      {"w/o PG, w/o sharing", false, false},
      {"w/o PG, w/ sharing", false, true},
      {"w/ PG, w/o sharing", true, false},
      {"w/ PG, w/ sharing", true, true},
  };
  const std::size_t num_sizes = std::size(sizes);

  // One config per (variant, SRAM size), variant-major like the rows.
  exp::SweepSpec spec;
  for (const Variant& v : variants) {
    for (const std::uint64_t size : sizes) {
      HyveConfig cfg = HyveConfig::hyve_opt();
      cfg.sram_bytes_per_pu = size;
      cfg.power_gating = v.power_gating;
      cfg.data_sharing = v.sharing;
      cfg.label = v.name;
      spec.configs.push_back(cfg);
    }
  }
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::cout << "\n--- " << algorithm_name(spec.algorithms[a]) << " ---\n";
    Table table({"dataset", "variant", "2MB", "4MB", "8MB", "16MB"});
    for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
      for (std::size_t v = 0; v < std::size(variants); ++v) {
        std::vector<std::string> row{dataset_name(opts.datasets[d]),
                                     variants[v].name};
        for (std::size_t s = 0; s < num_sizes; ++s) {
          const RunReport& r = grid.at(v * num_sizes + s, a, d);
          row.push_back(Table::num(r.mteps_per_watt(), 0));
        }
        table.add_row(std::move(row));
      }
    }
    table.print(std::cout);
  }

  bench::paper_note(
      "2 MB is the sweet spot with sharing, 4 MB without; e.g. BFS/YT "
      "870 -> 1207 MTEPS/W from base to both optimisations");
  bench::measured_note(
      "same monotone SRAM trend and 2x2 ordering; scaled datasets make "
      "P smaller, so the SRAM axis moves less than in the paper");
  opts.finish();
  return 0;
}
