// Fig. 17: energy-consumption breakdown — other logic units / edge
// memory / vertex memory — under acc+SRAM+DRAM (SD), acc+HyVE (HyVE) and
// acc+HyVE+power-gating (opt), per algorithm and dataset.
//
// Paper: memory is 88.62% of SD, 75.68% of HyVE, 52.91% of opt; the
// memory subsystem's energy falls 57.57% (HyVE) and 86.17% (opt) vs SD,
// with the edge memory responsible for the drop.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig17",
      "Fig. 17: energy breakdown under SD, HyVE, and HyVE+power-gating");
  bench::header("Fig. 17", "Energy breakdown (logic / edge mem / vertex mem)");

  HyveConfig opt_cfg = HyveConfig::hyve_opt();
  opt_cfg.data_sharing = false;  // Fig. 17's 'opt' = HyVE + power gating
  opt_cfg.label = "opt";

  exp::SweepSpec spec;
  spec.configs = {HyveConfig::sram_dram(), HyveConfig::hyve(), opt_cfg};
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  Table table({"config", "algorithm", "dataset", "logic %", "edge mem %",
               "vertex mem %", "memory total %"});
  std::vector<double> mem_share_sd, mem_share_hyve, mem_share_opt;
  std::vector<double> mem_drop_hyve, mem_drop_opt;
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
      double sd_memory_pj = 0;
      for (std::size_t c = 0; c < spec.configs.size(); ++c) {
        const HyveConfig& cfg = spec.configs[c];
        const RunReport& r = grid.at(c, a, d);
        const double total = r.total_energy_pj();
        const double mem_share = r.energy.memory_pj() / total;
        table.add_row(
            {cfg.label == "acc+SRAM+DRAM" ? "SD"
             : cfg.label == "acc+HyVE"    ? "HyVE"
                                          : "opt",
             algorithm_name(spec.algorithms[a]),
             dataset_name(opts.datasets[d]),
             Table::num(100.0 * r.energy.logic_pj() / total, 1),
             Table::num(100.0 * r.energy.edge_memory_pj() / total, 1),
             Table::num(100.0 * r.energy.vertex_memory_pj() / total, 1),
             Table::num(100.0 * mem_share, 1)});
        if (cfg.label == "acc+SRAM+DRAM") {
          sd_memory_pj = r.energy.memory_pj();
          mem_share_sd.push_back(mem_share);
        } else if (cfg.label == "acc+HyVE") {
          mem_share_hyve.push_back(mem_share);
          mem_drop_hyve.push_back(1.0 - r.energy.memory_pj() / sd_memory_pj);
        } else {
          mem_share_opt.push_back(mem_share);
          mem_drop_opt.push_back(1.0 - r.energy.memory_pj() / sd_memory_pj);
        }
      }
    }
  }
  table.print(std::cout);

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / v.size();
  };
  Table summary({"quantity", "paper", "measured"});
  summary.add_row({"memory share, SD", "88.62%",
                   Table::num(100 * mean(mem_share_sd), 2) + "%"});
  summary.add_row({"memory share, HyVE", "75.68%",
                   Table::num(100 * mean(mem_share_hyve), 2) + "%"});
  summary.add_row({"memory share, opt", "52.91%",
                   Table::num(100 * mean(mem_share_opt), 2) + "%"});
  summary.add_row({"memory energy drop vs SD, HyVE", "57.57%",
                   Table::num(100 * mean(mem_drop_hyve), 2) + "%"});
  summary.add_row({"memory energy drop vs SD, opt", "86.17%",
                   Table::num(100 * mean(mem_drop_opt), 2) + "%"});
  summary.print(std::cout);

  bench::paper_note("memory dominates SD and shrinks through HyVE to opt");
  bench::measured_note(
      "same monotone pattern; the edge-memory bucket provides the drop");
  opts.finish();
  return 0;
}
