// Table 3: ReRAM bank power under different configurations — energy per
// access, cycle period, and mW/bit for the energy- vs latency-optimised
// NVSim designs at 64..512-bit output widths. The paper picks the
// energy-optimised 512-bit design (lowest power per bit).
#include <iostream>

#include "bench/common.hpp"
#include "memmodel/reram.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_table3",
      "Table 3: ReRAM bank power for the NVSim design points");
  bench::header("Table 3", "ReRAM bank configurations (NVSim models)");

  const ReramOptTarget targets[] = {ReramOptTarget::kEnergyOptimized,
                                    ReramOptTarget::kLatencyOptimized};
  const int widths[] = {64, 128, 256, 512};

  struct Cell {
    std::vector<std::string> row;
    double power_per_bit;
  };
  const std::vector<Cell> cells = bench::run_cells(
      std::size(targets) * std::size(widths), opts, [&](std::size_t i) {
        const ReramOptTarget opt = targets[i / std::size(widths)];
        const int bits = widths[i % std::size(widths)];
        ReramConfig cfg;
        cfg.optimization = opt;
        cfg.output_bits = bits;
        const ReramModel m(cfg);
        const double power_per_bit =
            m.access_energy_pj() / m.access_period_ns() / bits;
        return Cell{{opt == ReramOptTarget::kEnergyOptimized
                         ? "energy-optimized"
                         : "latency-optimized",
                     std::to_string(bits), Table::num(m.access_energy_pj(), 2),
                     Table::num(m.access_period_ns() * 1000.0, 0),
                     Table::num(power_per_bit, 2)},
                    power_per_bit};
      });

  Table table({"optimisation", "output bits", "energy (pJ)", "period (ps)",
               "power/bit (mW/bit)"});
  double best_power_per_bit = 1e18;
  std::size_t best_cell = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.add_row(cells[i].row);
    if (cells[i].power_per_bit < best_power_per_bit) {
      best_power_per_bit = cells[i].power_per_bit;
      best_cell = i;
    }
  }
  table.print(std::cout);

  std::cout << "selected design: "
            << (targets[best_cell / std::size(widths)] ==
                        ReramOptTarget::kEnergyOptimized
                    ? "energy-optimized "
                    : "latency-optimized ")
            << widths[best_cell % std::size(widths)] << "-bit output ("
            << Table::num(best_power_per_bit, 2) << " mW/bit)\n";
  bench::paper_note(
      "energy-optimized 512-bit achieves the optimal 0.10 mW/bit (§7.2.2)");
  bench::measured_note("identical — Table 3 is embedded as the NVSim model");
  opts.finish();
  return 0;
}
