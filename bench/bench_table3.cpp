// Table 3: ReRAM bank power under different configurations — energy per
// access, cycle period, and mW/bit for the energy- vs latency-optimised
// NVSim designs at 64..512-bit output widths. The paper picks the
// energy-optimised 512-bit design (lowest power per bit).
#include <iostream>

#include "bench/common.hpp"
#include "memmodel/reram.hpp"

int main() {
  using namespace hyve;
  bench::header("Table 3", "ReRAM bank configurations (NVSim models)");

  Table table({"optimisation", "output bits", "energy (pJ)", "period (ps)",
               "power/bit (mW/bit)"});
  double best_power_per_bit = 1e18;
  int best_bits = 0;
  ReramOptTarget best_opt = ReramOptTarget::kEnergyOptimized;
  for (const ReramOptTarget opt : {ReramOptTarget::kEnergyOptimized,
                                   ReramOptTarget::kLatencyOptimized}) {
    for (const int bits : {64, 128, 256, 512}) {
      ReramConfig cfg;
      cfg.optimization = opt;
      cfg.output_bits = bits;
      const ReramModel m(cfg);
      const double power_per_bit =
          m.access_energy_pj() / m.access_period_ns() / bits;
      table.add_row(
          {opt == ReramOptTarget::kEnergyOptimized ? "energy-optimized"
                                                   : "latency-optimized",
           std::to_string(bits), Table::num(m.access_energy_pj(), 2),
           Table::num(m.access_period_ns() * 1000.0, 0),
           Table::num(power_per_bit, 2)});
      if (power_per_bit < best_power_per_bit) {
        best_power_per_bit = power_per_bit;
        best_bits = bits;
        best_opt = opt;
      }
    }
  }
  table.print(std::cout);

  std::cout << "selected design: "
            << (best_opt == ReramOptTarget::kEnergyOptimized
                    ? "energy-optimized "
                    : "latency-optimized ")
            << best_bits << "-bit output ("
            << Table::num(best_power_per_bit, 2) << " mW/bit)\n";
  bench::paper_note(
      "energy-optimized 512-bit achieves the optimal 0.10 mW/bit (§7.2.2)");
  bench::measured_note("identical — Table 3 is embedded as the NVSim model");
  return 0;
}
