// Extension study: numerical accuracy of computing PageRank *in* the
// ReRAM crossbars (GraphR's substrate) instead of on CMOS.
//
// The paper's §6.4 comparison is about energy/latency; this bench adds
// the orthogonal axis the analytic model cannot see — the 16-bit
// fixed-point weights + 8-bit DAC quantisation of analog MVM — by
// running PageRank functionally through bit-sliced crossbars
// (src/baselines/crossbar_compute) and comparing against float CMOS.
#include <iostream>

#include "baselines/crossbar_compute.hpp"
#include "bench/common.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace hyve;
  bench::header("Crossbar accuracy",
                "PageRank in quantised crossbars vs float CMOS");

  Table table({"graph", "V", "E", "blocks/iter", "cells programmed",
               "mean |err|", "max |err|", "1/V (rank scale)"});
  struct Input {
    const char* name;
    Graph graph;
  };
  const Input inputs[] = {
      {"rmat-4k", generate_rmat(4096, 20000, {}, 11)},
      {"rmat-16k", generate_rmat(16384, 90000, {}, 12)},
      {"YT", dataset_graph(DatasetId::kYT)},
  };
  for (const Input& in : inputs) {
    const CrossbarPagerankResult r = crossbar_pagerank(in.graph, 10);
    table.add_row(
        {in.name, std::to_string(in.graph.num_vertices()),
         std::to_string(in.graph.num_edges()),
         std::to_string(r.blocks_evaluated / 10),
         std::to_string(r.cells_programmed),
         Table::num(r.mean_abs_error * 1e6, 3) + "e-6",
         Table::num(r.max_abs_error * 1e6, 2) + "e-6",
         Table::num(1e6 / in.graph.num_vertices(), 2) + "e-6"});
  }
  table.print(std::cout);

  bench::paper_note(
      "not evaluated — the paper compares energy/latency only (§6.4)");
  bench::measured_note(
      "mean quantisation noise sits 1-2 orders below the 1/V rank scale "
      "(max error concentrates at hub vertices whose ranks dwarf it): the "
      "crossbars lose on energy (one 3.91 nJ write per edge), not on "
      "accuracy");
  return 0;
}
