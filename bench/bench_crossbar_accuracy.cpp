// Extension study: numerical accuracy of computing PageRank *in* the
// ReRAM crossbars (GraphR's substrate) instead of on CMOS.
//
// The paper's §6.4 comparison is about energy/latency; this bench adds
// the orthogonal axis the analytic model cannot see — the 16-bit
// fixed-point weights + 8-bit DAC quantisation of analog MVM — by
// running PageRank functionally through bit-sliced crossbars
// (src/baselines/crossbar_compute) and comparing against float CMOS.
#include <iostream>

#include "baselines/crossbar_compute.hpp"
#include "bench/common.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_crossbar_accuracy",
      "Accuracy of PageRank computed in quantised ReRAM crossbars");
  bench::header("Crossbar accuracy",
                "PageRank in quantised crossbars vs float CMOS");

  struct Input {
    const char* name;
    Graph (*make)();
  };
  const Input inputs[] = {
      {"rmat-4k", [] { return generate_rmat(4096, 20000, {}, 11); }},
      {"rmat-16k", [] { return generate_rmat(16384, 90000, {}, 12); }},
      {"YT", [] { return dataset_graph(DatasetId::kYT); }},
  };

  const auto rows = bench::run_cells(
      std::size(inputs), opts,
      [&](std::size_t i) -> std::vector<std::string> {
        const Graph graph = inputs[i].make();
        const CrossbarPagerankResult r = crossbar_pagerank(graph, 10);
        return {inputs[i].name, std::to_string(graph.num_vertices()),
                std::to_string(graph.num_edges()),
                std::to_string(r.blocks_evaluated / 10),
                std::to_string(r.cells_programmed),
                Table::num(r.mean_abs_error * 1e6, 3) + "e-6",
                Table::num(r.max_abs_error * 1e6, 2) + "e-6",
                Table::num(1e6 / graph.num_vertices(), 2) + "e-6"};
      });

  Table table({"graph", "V", "E", "blocks/iter", "cells programmed",
               "mean |err|", "max |err|", "1/V (rank scale)"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  bench::paper_note(
      "not evaluated — the paper compares energy/latency only (§6.4)");
  bench::measured_note(
      "mean quantisation noise sits 1-2 orders below the 1/V rank scale "
      "(max error concentrates at hub vertices whose ranks dwarf it): the "
      "crossbars lose on energy (one 3.91 nJ write per edge), not on "
      "accuracy");
  opts.finish();
  return 0;
}
