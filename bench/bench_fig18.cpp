// Fig. 18: absolute system performance — execution time of acc+SRAM+DRAM
// relative to acc+HyVE (SD/HyVE, < 1 means HyVE slower). The paper's
// point: swapping the DRAM edge memory for ReRAM costs only 1.9% / 2.5% /
// 15.1% (geometric mean over datasets) on BFS / CC / PR.
#include <iostream>
#include <map>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig18",
      "Fig. 18: execution time of acc+SRAM+DRAM relative to acc+HyVE");
  bench::header("Fig. 18", "Execution time, SD/HyVE (<1 = HyVE slower)");

  exp::SweepSpec spec;
  spec.configs = {HyveConfig::sram_dram(), HyveConfig::hyve()};
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  Table table({"algorithm", "dataset", "SD time (ms)", "HyVE time (ms)",
               "SD/HyVE"});
  std::map<std::string, std::vector<double>> degradation;
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
      const RunReport& sd = grid.at(0, a, d);
      const RunReport& hyve = grid.at(1, a, d);
      table.add_row({algorithm_name(spec.algorithms[a]),
                     dataset_name(opts.datasets[d]),
                     Table::num(sd.exec_time_ns / 1e6, 3),
                     Table::num(hyve.exec_time_ns / 1e6, 3),
                     Table::num(sd.exec_time_ns / hyve.exec_time_ns, 3)});
      degradation[algorithm_name(spec.algorithms[a])].push_back(
          hyve.exec_time_ns / sd.exec_time_ns);
    }
  }
  table.print(std::cout);

  for (auto& [algo, ratios] : degradation)
    std::cout << algo << " performance degradation: "
              << Table::num(100.0 * (bench::geomean(ratios) - 1.0), 1)
              << "%\n";

  bench::paper_note("degradation of merely 1.9% / 2.5% / 15.1% (BFS/CC/PR)");
  bench::measured_note(
      "HyVE within a few percent of SD — the ReRAM channel streams "
      "slightly below the DDR4 channel");
  opts.finish();
  return 0;
}
