// Fig. 18: absolute system performance — execution time of acc+SRAM+DRAM
// relative to acc+HyVE (SD/HyVE, < 1 means HyVE slower). The paper's
// point: swapping the DRAM edge memory for ReRAM costs only 1.9% / 2.5% /
// 15.1% (geometric mean over datasets) on BFS / CC / PR.
#include <iostream>
#include <map>

#include "bench/common.hpp"

int main() {
  using namespace hyve;
  bench::header("Fig. 18", "Execution time, SD/HyVE (<1 = HyVE slower)");

  Table table({"algorithm", "dataset", "SD time (ms)", "HyVE time (ms)",
               "SD/HyVE"});
  std::map<std::string, std::vector<double>> degradation;
  for (const Algorithm algo : kCoreAlgorithms) {
    for (const DatasetId id : kAllDatasets) {
      const Graph& g = dataset_graph(id);
      const RunReport sd = HyveMachine(HyveConfig::sram_dram()).run(g, algo);
      const RunReport hyve = HyveMachine(HyveConfig::hyve()).run(g, algo);
      table.add_row({algorithm_name(algo), dataset_name(id),
                     Table::num(sd.exec_time_ns / 1e6, 3),
                     Table::num(hyve.exec_time_ns / 1e6, 3),
                     Table::num(sd.exec_time_ns / hyve.exec_time_ns, 3)});
      degradation[algorithm_name(algo)].push_back(hyve.exec_time_ns /
                                                  sd.exec_time_ns);
    }
  }
  table.print(std::cout);

  for (auto& [algo, ratios] : degradation)
    std::cout << algo << " performance degradation: "
              << Table::num(100.0 * (bench::geomean(ratios) - 1.0), 1)
              << "%\n";

  bench::paper_note("degradation of merely 1.9% / 2.5% / 15.1% (BFS/CC/PR)");
  bench::measured_note(
      "HyVE within a few percent of SD — the ReRAM channel streams "
      "slightly below the DDR4 channel");
  return 0;
}
