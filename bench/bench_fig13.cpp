// Fig. 13: energy efficiency (MTEPS/W) using 1-, 2-, and 3-bit ReRAM
// cells. MLC raises density but the parallel-sensing scheme's extra
// reference steps cost read energy, so SLC wins — the design decision of
// §7.2.1.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig13",
      "Fig. 13: energy efficiency vs ReRAM cell bits (BFS)");
  bench::header("Fig. 13", "Energy efficiency vs ReRAM cell bits (BFS)");

  exp::SweepSpec spec;
  for (const int bits : {1, 2, 3}) {
    HyveConfig cfg = HyveConfig::hyve_opt();
    cfg.reram.cell_bits = bits;
    spec.configs.push_back(cfg);
  }
  spec.algorithms = {Algorithm::kBfs};
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  Table table({"dataset", "1 bit", "2 bits", "3 bits"});
  bool slc_wins_everywhere = true;
  for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
    std::vector<std::string> row{dataset_name(opts.datasets[d])};
    const double slc = grid.at(0, 0, d).mteps_per_watt();
    for (std::size_t c = 0; c < 3; ++c) {
      const double eff = grid.at(c, 0, d).mteps_per_watt();
      if (c > 0 && eff >= slc) slc_wins_everywhere = false;
      row.push_back(Table::num(eff, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  bench::paper_note("SLC outperforms MLC on every dataset (§7.2.1)");
  bench::measured_note(std::string("SLC best on every dataset: ") +
                       (slc_wins_everywhere ? "yes" : "NO (check model)"));
  opts.finish();
  return 0;
}
