// Fig. 13: energy efficiency (MTEPS/W) using 1-, 2-, and 3-bit ReRAM
// cells. MLC raises density but the parallel-sensing scheme's extra
// reference steps cost read energy, so SLC wins — the design decision of
// §7.2.1.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace hyve;
  bench::header("Fig. 13", "Energy efficiency vs ReRAM cell bits (BFS)");

  Table table({"dataset", "1 bit", "2 bits", "3 bits"});
  bool slc_wins_everywhere = true;
  for (const DatasetId id : kAllDatasets) {
    std::vector<std::string> row{dataset_name(id)};
    double slc = 0;
    for (const int bits : {1, 2, 3}) {
      HyveConfig cfg = HyveConfig::hyve_opt();
      cfg.reram.cell_bits = bits;
      const RunReport r = bench::run_dataset(cfg, id, Algorithm::kBfs);
      const double eff = r.mteps_per_watt();
      if (bits == 1)
        slc = eff;
      else if (eff >= slc)
        slc_wins_everywhere = false;
      row.push_back(Table::num(eff, 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  bench::paper_note("SLC outperforms MLC on every dataset (§7.2.1)");
  bench::measured_note(std::string("SLC best on every dataset: ") +
                       (slc_wins_everywhere ? "yes" : "NO (check model)"));
  return 0;
}
