// Fig. 20: dynamic-graph throughput (million requests/s, single thread)
// for HyVE's reserved-slack layout vs the same strategy on GraphR's
// 8x8-vertex block grid, under the §7.4.2 request mix (45% add edge,
// 45% delete edge, 5% add vertex, 5% delete vertex).
//
// Paper: HyVE sustains up to 46.98 M edge changes/s (42.43 M average),
// 8.04x more than GraphR.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/requests.hpp"

int main() {
  using namespace hyve;
  bench::header("Fig. 20", "Dynamic graph throughput (single thread)");

  constexpr std::uint64_t kRequests = 400000;

  Table table({"dataset", "HyVE (M req/s)", "GraphR (M req/s)",
               "HyVE/GraphR"});
  std::vector<double> ratios;
  std::vector<double> hyve_rates;
  for (const DatasetId id : kAllDatasets) {
    const Graph& g = dataset_graph(id);
    const auto requests = generate_requests(g, kRequests, {}, 0xD15C0 + 7);

    DynamicGraphOptions hyve_opts;
    hyve_opts.num_intervals =
        HyveMachine(HyveConfig::hyve_opt()).choose_num_intervals(g, 4);
    DynamicGraphOptions graphr_opts;
    graphr_opts.num_intervals = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>((g.num_vertices() + 7) / 8));
    graphr_opts.hashed_block_directory = true;

    double hyve_mps = 0;
    double graphr_mps = 0;
    for (int rep = 0; rep < 3; ++rep) {
      DynamicGraphStore hyve_store(g, hyve_opts);
      DynamicGraphStore graphr_store(g, graphr_opts);
      hyve_mps = std::max(
          hyve_mps, apply_requests(hyve_store, requests).millions_per_second());
      graphr_mps = std::max(
          graphr_mps,
          apply_requests(graphr_store, requests).millions_per_second());
    }
    table.add_row({dataset_name(id), Table::num(hyve_mps, 2),
                   Table::num(graphr_mps, 2),
                   Table::num(hyve_mps / graphr_mps, 2) + "x"});
    ratios.push_back(hyve_mps / graphr_mps);
    hyve_rates.push_back(hyve_mps);
  }
  table.print(std::cout);
  std::cout << "average HyVE/GraphR: " << Table::num(bench::geomean(ratios), 2)
            << "x; best HyVE rate: "
            << Table::num(*std::max_element(hyve_rates.begin(),
                                            hyve_rates.end()),
                          2)
            << " M req/s\n";

  bench::paper_note("up to 46.98 M edges/s for HyVE, 8.04x over GraphR");
  bench::measured_note(
      "HyVE's direct-indexed slack layout sustains tens of millions of "
      "requests per second and beats the hashed 8x8 grid on every dataset "
      "(absolute rates depend on the host CPU)");
  return 0;
}
