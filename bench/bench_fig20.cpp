// Fig. 20: dynamic-graph throughput (million requests/s, single thread)
// for HyVE's reserved-slack layout vs the same strategy on GraphR's
// 8x8-vertex block grid, under the §7.4.2 request mix (45% add edge,
// 45% delete edge, 5% add vertex, 5% delete vertex).
//
// Paper: HyVE sustains up to 46.98 M edge changes/s (42.43 M average),
// 8.04x more than GraphR.
//
// Under --smoke the stores still apply a reduced request stream (the
// correctness checks inside DynamicGraphStore stay live), but the
// reported rates are deterministic per-layout proxies (direct-indexed
// slack vs hashed block directory), not wall-clock measurements.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/requests.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig20",
      "Fig. 20: dynamic-graph throughput, HyVE layout vs GraphR grid");
  bench::header("Fig. 20", "Dynamic graph throughput (single thread)");

  const std::uint64_t kRequests = opts.smoke ? 20000 : 400000;
  // Deterministic --smoke proxies: ns per request for the direct-indexed
  // slack layout vs the hashed 8x8 block directory.
  constexpr double kSmokeHyveNsPerReq = 25.0;
  constexpr double kSmokeGraphrNsPerReq = 200.0;

  struct Cell {
    double hyve_mps;
    double graphr_mps;
  };
  const std::vector<Cell> cells = bench::run_cells(
      opts.datasets.size(), opts, [&](std::size_t i) {
        const Graph& g = dataset_graph(opts.datasets[i]);
        const auto requests = generate_requests(g, kRequests, {}, 0xD15C0 + 7);

        DynamicGraphOptions hyve_opts;
        hyve_opts.num_intervals =
            HyveMachine(HyveConfig::hyve_opt()).choose_num_intervals(g, 4);
        DynamicGraphOptions graphr_opts;
        graphr_opts.num_intervals = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>((g.num_vertices() + 7) / 8));
        graphr_opts.hashed_block_directory = true;

        if (opts.smoke) {
          DynamicGraphStore hyve_store(g, hyve_opts);
          DynamicGraphStore graphr_store(g, graphr_opts);
          apply_requests(hyve_store, requests);
          apply_requests(graphr_store, requests);
          return Cell{1e3 / kSmokeHyveNsPerReq, 1e3 / kSmokeGraphrNsPerReq};
        }

        // Stopwatch serialised against other cells so --jobs > 1 cannot
        // perturb the single-thread measurement.
        const std::scoped_lock timing(bench::timing_mutex());
        Cell cell{0, 0};
        for (int rep = 0; rep < 3; ++rep) {
          DynamicGraphStore hyve_store(g, hyve_opts);
          DynamicGraphStore graphr_store(g, graphr_opts);
          cell.hyve_mps = std::max(
              cell.hyve_mps,
              apply_requests(hyve_store, requests).millions_per_second());
          cell.graphr_mps = std::max(
              cell.graphr_mps,
              apply_requests(graphr_store, requests).millions_per_second());
        }
        return cell;
      });

  Table table({"dataset", "HyVE (M req/s)", "GraphR (M req/s)",
               "HyVE/GraphR"});
  std::vector<double> ratios;
  std::vector<double> hyve_rates;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    table.add_row({dataset_name(opts.datasets[i]),
                   Table::num(cell.hyve_mps, 2),
                   Table::num(cell.graphr_mps, 2),
                   Table::num(cell.hyve_mps / cell.graphr_mps, 2) + "x"});
    ratios.push_back(cell.hyve_mps / cell.graphr_mps);
    hyve_rates.push_back(cell.hyve_mps);
  }
  table.print(std::cout);
  std::cout << "average HyVE/GraphR: " << Table::num(bench::geomean(ratios), 2)
            << "x; best HyVE rate: "
            << Table::num(*std::max_element(hyve_rates.begin(),
                                            hyve_rates.end()),
                          2)
            << " M req/s\n";

  bench::paper_note("up to 46.98 M edges/s for HyVE, 8.04x over GraphR");
  bench::measured_note(
      "HyVE's direct-indexed slack layout sustains tens of millions of "
      "requests per second and beats the hashed 8x8 grid on every dataset "
      "(absolute rates depend on the host CPU)");
  opts.finish();
  return 0;
}
