// Shared harness for the bench binaries.
//
// Every bench regenerates one table or figure of the paper: it prints the
// measured table in the paper's layout, followed by a "paper vs measured"
// note for the headline number(s) of that experiment. EXPERIMENTS.md is
// the curated record of these comparisons.
//
// All benches share one command line (parse_args) and run their grid
// cells on the src/exp sweep engine: regular (config × algorithm ×
// dataset) grids go through run_grid/SweepEngine, irregular cell lists
// through run_cells/exp::parallel_cells. Cells are computed into
// index-addressed slots and rendered serially afterwards, so stdout is
// byte-identical for any --jobs value (asserted by the bench-smoke ctest
// label, which diffs --jobs 1 against --jobs 8).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "algos/frontier.hpp"
#include "core/bench_json.hpp"
#include "core/machine.hpp"
#include "exp/cache.hpp"
#include "exp/sweep.hpp"
#include "graph/datasets.hpp"
#include "obs/host_profiler.hpp"
#include "obs/live.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace hyve::bench {

// Process-wide caches shared by the fig/table benches: a binary that
// sweeps many configs over the datasets hash-balances and partitions
// each graph once instead of once per (config, algorithm) cell.
inline exp::GraphCache& graph_cache() {
  static exp::GraphCache cache;
  return cache;
}

inline exp::PartitionCache& partition_cache() {
  static exp::PartitionCache cache;
  return cache;
}

inline exp::FunctionalCache& functional_cache() {
  static exp::FunctionalCache cache;
  return cache;
}

// Null until --functional-cache is parsed; passed through to
// run_cached/SweepEngine so memoisation stays strictly opt-in.
inline exp::FunctionalCache*& functional_cache_if_enabled() {
  static exp::FunctionalCache* enabled = nullptr;
  return enabled;
}

// The --partitioner strategy, applied to every cell that flows through
// run_dataset/run_grid. Stays the default interval-block split unless
// the flag was given, so existing bench output is untouched.
inline PartitionerSpec& partitioner_spec() {
  static PartitionerSpec spec;
  return spec;
}

// Collector behind --json: every report that flows through run_dataset /
// run_grid is captured here and serialised by Options::finish(). Off by
// default so benches without --json pay one branch per cell.
struct JsonCollector {
  std::mutex mu;
  bool enabled = false;
  std::vector<BenchRun> runs;
};

inline JsonCollector& json_collector() {
  static JsonCollector collector;
  return collector;
}

inline void record_report(const std::string& graph_key,
                          const RunReport& report) {
  JsonCollector& collector = json_collector();
  if (!collector.enabled) return;
  const std::scoped_lock lock(collector.mu);
  collector.runs.push_back(BenchRun{graph_key, report});
}

// The shared bench command line (every bench_* binary accepts these):
//   --jobs N              sweep worker threads (0 = hardware concurrency)
//   --datasets YT,WK,...  restrict the dataset axis of dataset benches
//   --partitioner SPEC    partitioning strategy for every cell
//   --smoke               deterministic stand-ins for wall-clock timings
//   --graph-cache-mb N    byte budget for the shared graph cache
//   --ooc-window-mb N     decode-window budget per blocked graph reader
//   --partition-cache N   entry cap for the shared partition cache
//   --functional-cache    memoise functional phases across cells
//   --functional-cache-mb N  byte budget for the functional cache
//   --no-pattern-reuse    disable per-iteration pattern reuse in
//                         frontier runs (identical output)
//   --cache-stats         print cache counters to stderr after the run
//   --metrics             dump the full metrics registry to stderr
//   --host-profile        wall-clock spans, memory sampling and stage
//                         rates (host.* metrics; extra trace track)
//   --trace PATH          write a Chrome trace-event JSON of the run
//   --json PATH           write a versioned bench report JSON of the run
//                         (validate/diff/record with hyve_report)
//   --live-status PATH[,interval_ms[,stall_ms]]
//                         publish a live status JSON snapshot (progress,
//                         ETA, worker heartbeats, metrics, RSS) to PATH
//                         on the interval; watch with tools/hyve_top
struct Options {
  int jobs = 1;
  bool smoke = false;
  std::vector<DatasetId> datasets{kAllDatasets.begin(), kAllDatasets.end()};
  bool functional_cache = false;
  bool cache_stats = false;
  bool metrics = false;
  bool host_profile = false;          // --host-profile was given
  std::string trace_path;
  std::shared_ptr<obs::Trace> trace;  // set when --trace was given
  std::string json_path;              // set when --json was given
  // Set when --live-status was given; live_telemetry() runs for the
  // whole bench and finish()/flight_save() publish the final state.
  std::optional<obs::LiveStatusOptions> live;
  std::string bench_name;             // the binary's prog name
  int resolved_jobs = 1;              // jobs with 0 resolved to the machine
  // Process wall-clock epoch for the report's host section, pinned at
  // parse_args time (≈ process start).
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();

  // Emits the requested telemetry. Everything goes to stderr (or the
  // --trace file) so stdout keeps the byte-identical --jobs guarantee
  // (wall times and eviction order depend on worker scheduling). Call at
  // the end of main().
  void finish() const {
    // Stop before the trace/report writes so host.wall_us, the rate
    // gauges, and the final memory sample land in both.
    if (host_profile) obs::host_profiler().stop();
    if (cache_stats || metrics) {
      obs::Registry& reg = obs::registry();
      // The instantaneous occupancy gauges are refreshed here so the
      // dump reflects end-of-run state even if the last touch was an
      // out-of-band eviction (set_byte_budget shrinking a live cache).
      reg.gauge("exp.graph_cache.resident_bytes")
          .set(static_cast<std::int64_t>(graph_cache().resident_bytes()));
      reg.gauge("exp.graph_cache.byte_budget")
          .set(static_cast<std::int64_t>(graph_cache().byte_budget()));
      reg.gauge("exp.partition_cache.resident")
          .set(static_cast<std::int64_t>(partition_cache().resident()));
      reg.gauge("exp.functional_cache.bytes")
          .set(static_cast<std::int64_t>(
              bench::functional_cache().resident_bytes()));
      if (cache_stats) {
        std::cerr << "cache stats: graphs loads="
                  << reg.counter("exp.graph_cache.loads").value()
                  << " evictions="
                  << reg.counter("exp.graph_cache.evictions").value()
                  << " resident_bytes="
                  << reg.gauge("exp.graph_cache.resident_bytes").value()
                  << "; partitions builds="
                  << reg.counter("exp.partition_cache.builds").value()
                  << " evictions="
                  << reg.counter("exp.partition_cache.evictions").value()
                  << " resident="
                  << reg.gauge("exp.partition_cache.resident").value()
                  << "\n";
        for (const auto& [strategy, stats] :
             partition_cache().strategy_stats())
          std::cerr << "partition cache[" << strategy
                    << "]: hits=" << stats.hits
                    << " builds=" << stats.builds
                    << " evictions=" << stats.evictions << "\n";
        if (functional_cache)
          std::cerr << "functional cache: hits="
                    << reg.counter("exp.functional_cache.hits").value()
                    << " misses="
                    << reg.counter("exp.functional_cache.misses").value()
                    << " evictions="
                    << reg.counter("exp.functional_cache.evictions").value()
                    << " bytes="
                    << reg.gauge("exp.functional_cache.bytes").value()
                    << " hit_rate="
                    << bench::functional_cache().hit_rate() << "\n";
      }
      if (metrics) reg.dump(std::cerr);
    }
    if (trace) trace->write_file(trace_path);
    if (!json_path.empty()) write_json_report();
    // Last, so the final "done" snapshot reflects end-of-run metrics.
    if (obs::live_telemetry().enabled()) obs::live_telemetry().stop("done");
  }

  // Flight-recorder save path: runs once on the recorder thread after
  // SIGINT/SIGTERM (or a hooked abort) and finalizes whatever partial
  // outputs the run was asked for — a truncated but loadable trace, a
  // partial (still --check-clean) bench report, a final "interrupted"
  // status snapshot, and a registry dump to stderr. Sweep workers are
  // still running; every file goes through temp + rename so nothing is
  // ever half-written.
  void flight_save(int signum) const {
    if (obs::live_telemetry().enabled())
      obs::live_telemetry().stop("interrupted");
    if (host_profile) obs::host_profiler().stop();
    if (trace) {
      try {
        trace->write_file_atomic(trace_path, /*truncated=*/true);
        std::cerr << bench_name << ": flight-recorded truncated trace "
                  << trace_path << "\n";
      } catch (const std::exception& e) {
        std::cerr << bench_name
                  << ": trace flight record failed: " << e.what() << "\n";
      }
    }
    if (!json_path.empty()) {
      try {
        write_json_report();
      } catch (const std::exception& e) {
        std::cerr << bench_name
                  << ": report flight record failed: " << e.what() << "\n";
      }
    }
    if (obs::enabled()) obs::registry().dump(std::cerr);
    std::cerr << bench_name << ": flight record complete (signal "
              << signum << ")\n";
  }

 private:
  // Builds and writes the BenchReportDoc from everything the collector
  // captured. Only deterministic content goes in: runs are sorted and
  // deduplicated by (config, algorithm, graph) — run order depends on
  // worker scheduling, the reports themselves do not — and the metrics
  // rollup keeps only sim.* instruments (simulated counts; exp.* mixes
  // in wall clock and eviction order). This is what lets the bench-json
  // CI step byte-diff --jobs 1 against --jobs 8.
  void write_json_report() const {
    BenchReportDoc doc;
    doc.bench = bench_name;
    doc.git_rev = build_git_rev();
    doc.smoke = smoke;
    for (const DatasetId id : datasets)
      doc.datasets.push_back(dataset_name(id));
    {
      JsonCollector& collector = json_collector();
      const std::scoped_lock lock(collector.mu);
      doc.runs = collector.runs;
    }
    const auto key = [](const BenchRun& r) {
      return std::tie(r.report.config_label, r.report.algorithm,
                      r.graph_key);
    };
    std::sort(doc.runs.begin(), doc.runs.end(),
              [&](const BenchRun& a, const BenchRun& b) {
                return key(a) < key(b);
              });
    doc.runs.erase(std::unique(doc.runs.begin(), doc.runs.end(),
                               [&](const BenchRun& a, const BenchRun& b) {
                                 return key(a) == key(b);
                               }),
                   doc.runs.end());
    for (const BenchRun& run : doc.runs) doc.ledger_rollup += run.report.ledger;
    // The host section is the one wall-clock corner of the report —
    // always filled, so any --json run is recordable into the perf
    // history without extra flags. Deterministic byte-diffs strip the
    // single "host":{...} object (scripts/verify.sh does).
    doc.host.present = true;
    doc.host.wall_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            std::chrono::steady_clock::now() - started)
            .count();
    doc.host.max_rss_kb = obs::read_host_memory().peak_rss_kb;
    doc.host.jobs = resolved_jobs;
    std::istringstream dump(obs::registry().dump_string());
    std::string line;
    while (std::getline(dump, line)) {
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) continue;
      const std::string name = line.substr(0, eq);
      if (name.rfind("sim.", 0) == 0)
        doc.metrics.emplace(name, line.substr(eq + 1));
    }
    // Temp + rename: the flight recorder can fire while (or after) the
    // normal finish() writes, and readers must never see partial bytes.
    const std::string tmp = json_path + ".part";
    write_bench_report_file(tmp, doc);
    if (std::rename(tmp.c_str(), json_path.c_str()) != 0)
      throw std::runtime_error("cannot publish bench report " + json_path);
    std::cerr << bench_name << ": wrote " << json_path << " ("
              << doc.runs.size() << " run(s))\n";
  }
};

inline Options parse_args(int argc, char** argv, const std::string& prog,
                          const std::string& summary) {
  Options opts;
  opts.bench_name = prog;
  bool explicit_graph_budget = false;
  cli::ArgParser parser(prog, summary);
  parser.option("--jobs", "N",
                "worker threads (0 = hardware concurrency; default 1)",
                [&](const std::string& v) {
                  opts.jobs = static_cast<int>(
                      cli::parse_int(parser, "--jobs", v, 0, 4096));
                });
  parser.option("--datasets", "YT,WK,...",
                "datasets to include (default all five)",
                [&](const std::string& v) {
                  opts.datasets.clear();
                  for (const std::string& name : cli::split_csv(v)) {
                    const auto id = parse_dataset(name);
                    if (!id) parser.fail("unknown dataset " + name);
                    opts.datasets.push_back(*id);
                  }
                  if (opts.datasets.empty())
                    parser.fail("--datasets needs at least one dataset");
                });
  parser.option("--partitioner", "interval|hep:tau=T|splitmerge:chunks=C",
                "partitioning strategy for every cell (default interval)",
                [&](const std::string& v) {
                  const auto p = parse_partitioner(v);
                  if (!p) parser.fail("unknown partitioner " + v);
                  partitioner_spec() = *p;
                });
  parser.flag("--smoke",
              "deterministic stand-ins for wall-clock measurements "
              "(bench-smoke CI; numbers are not measurements)",
              &opts.smoke);
  parser.option("--graph-cache-mb", "N",
                "graph cache byte budget in MiB (0 = unbounded; default "
                "auto-sized from available memory)",
                [&](const std::string& v) {
                  explicit_graph_budget = true;
                  graph_cache().set_byte_budget(
                      units::MiB(static_cast<std::uint64_t>(cli::parse_int(
                          parser, "--graph-cache-mb", v, 0, 1 << 20))));
                });
  parser.option("--ooc-window-mb", "N",
                "decoded-block window budget per out-of-core blocked graph "
                "reader in MiB (0 = unbounded; default 0)",
                [&](const std::string& v) {
                  graph_cache().set_ooc_window_budget(
                      units::MiB(static_cast<std::uint64_t>(cli::parse_int(
                          parser, "--ooc-window-mb", v, 0, 1 << 20))));
                });
  parser.option("--partition-cache", "N",
                "partition cache entry cap (0 = unbounded; default 0)",
                [&](const std::string& v) {
                  partition_cache().set_max_entries(
                      static_cast<std::size_t>(cli::parse_int(
                          parser, "--partition-cache", v, 0, 1 << 20)));
                });
  parser.flag("--functional-cache",
              "memoise functional phases across cells that share a graph "
              "image, algorithm, P and frontier mode (identical output)",
              &opts.functional_cache);
  parser.option("--functional-cache-mb", "N",
                "functional cache byte budget in MiB (0 = unbounded; "
                "default 0; implies --functional-cache)",
                [&](const std::string& v) {
                  opts.functional_cache = true;
                  functional_cache().set_byte_budget(
                      units::MiB(static_cast<std::uint64_t>(cli::parse_int(
                          parser, "--functional-cache-mb", v, 0, 1 << 20))));
                });
  parser.flag("--no-pattern-reuse",
              "disable per-iteration pattern reuse in frontier runs "
              "(identical output, more host work)",
              [&] { set_pattern_reuse_enabled(false); });
  parser.flag("--cache-stats", "print cache counters to stderr",
              &opts.cache_stats);
  parser.flag("--metrics", "dump the metrics registry to stderr",
              &opts.metrics);
  parser.flag("--host-profile",
              "profile the host process: wall-clock spans, RSS sampling "
              "and stage rates as host.* metrics (and a wall-clock trace "
              "track with --trace)",
              &opts.host_profile);
  parser.option("--trace", "PATH",
                "write a Chrome trace-event JSON (chrome://tracing, "
                "Perfetto) of the sweep to PATH",
                [&](const std::string& v) { opts.trace_path = v; });
  parser.option("--json", "PATH",
                "write a versioned bench report JSON (run reports, energy "
                "ledger rollup, sim.* metrics) to PATH; validate or diff "
                "with hyve_report",
                [&](const std::string& v) { opts.json_path = v; });
  parser.option("--live-status", "PATH[,interval_ms[,stall_ms]]",
                "publish a live status JSON snapshot (progress, ETA, "
                "worker heartbeats, metrics, RSS) to PATH on the "
                "interval (default 500 ms); watch with hyve_top",
                [&](const std::string& v) {
                  const auto live = obs::parse_live_status(v);
                  if (!live) parser.fail("bad --live-status spec " + v);
                  opts.live = *live;
                });
  parser.parse(argc, argv);
  // Telemetry is opt-in: the registry stays a single relaxed-load branch
  // in the hot paths unless one of these flags asks for it. Enabling
  // happens before any cell runs, so registry counters match the
  // caches' own whole-run counters.
  if (opts.cache_stats || opts.metrics || !opts.json_path.empty() ||
      opts.host_profile || opts.live)
    obs::set_enabled(true);
  if (!opts.trace_path.empty()) {
    opts.trace = std::make_shared<obs::Trace>();
    add_attribution_metadata(*opts.trace, argc, argv);
  }
  if (!opts.json_path.empty()) json_collector().enabled = true;
  opts.resolved_jobs =
      opts.jobs == 0
          ? static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()))
          : opts.jobs;
  if (opts.host_profile) obs::host_profiler().start(opts.trace.get());
  if (opts.live) {
    opts.live->bench = prog;
    obs::live_telemetry().start(*opts.live);
  }
  // Any run with durable outputs is worth flight-recording: partial
  // results are finalized instead of lost when the run is interrupted.
  if (opts.trace || !opts.json_path.empty() || opts.live) {
    const Options snapshot = opts;
    obs::install_flight_recorder(
        [snapshot](int signum) { snapshot.flight_save(signum); });
  }
  if (opts.functional_cache)
    functional_cache_if_enabled() = &functional_cache();
  // Without --graph-cache-mb the budget is sized from the machine
  // (fixed 256 MiB under --smoke so CI output is host-independent)
  // instead of growing without bound. Logged to stderr — stdout keeps
  // the byte-identical --jobs guarantee.
  if (!explicit_graph_budget) {
    const std::size_t budget = exp::default_graph_cache_budget(opts.smoke);
    graph_cache().set_byte_budget(budget);
    std::cerr << prog << ": graph cache budget auto-sized to ";
    if (budget > 0)
      std::cerr << budget / (1024 * 1024) << " MiB";
    else
      std::cerr << "unbounded (available memory unknown)";
    std::cerr << " (override with --graph-cache-mb)\n";
  }
  return opts;
}

// Cached equivalent of HyveMachine(cfg).run(dataset_graph(id), algo);
// the report is identical (tested in exp_test).
inline RunReport run_dataset(const HyveConfig& cfg, DatasetId id,
                             Algorithm algo) {
  HyveConfig cell_cfg = cfg;
  if (!partitioner_spec().is_default())
    cell_cfg.set_partitioner(partitioner_spec());
  RunReport report = exp::run_cached(graph_cache(), partition_cache(),
                                     cell_cfg, algo, dataset_name(id),
                                     /*trace=*/nullptr, /*trace_pid=*/1,
                                     functional_cache_if_enabled());
  record_report(dataset_name(id), report);
  return report;
}

// The --datasets filter as GraphCache keys, for SweepSpec::graphs.
inline std::vector<std::string> dataset_keys(const Options& opts) {
  std::vector<std::string> keys;
  keys.reserve(opts.datasets.size());
  for (const DatasetId id : opts.datasets) keys.push_back(dataset_name(id));
  return keys;
}

// A (configs × algorithms × graphs) grid run through the SweepEngine,
// indexable by axis position (row-major, configs outermost).
class GridResults {
 public:
  GridResults(exp::SweepSpec spec, std::vector<exp::SweepResult> results)
      : spec_(std::move(spec)), results_(std::move(results)) {}

  const exp::SweepSpec& spec() const { return spec_; }

  const RunReport& at(std::size_t config, std::size_t algorithm,
                      std::size_t graph) const {
    HYVE_CHECK_MSG(config < spec_.configs.size() &&
                       algorithm < spec_.algorithms.size() &&
                       graph < spec_.graphs.size(),
                   "grid index out of range");
    return results_[(config * spec_.algorithms.size() + algorithm) *
                        spec_.graphs.size() +
                    graph]
        .report;
  }

 private:
  exp::SweepSpec spec_;
  std::vector<exp::SweepResult> results_;
};

// Declarative grid → engine → indexed results, on the shared caches.
inline GridResults run_grid(const exp::SweepSpec& spec, const Options& opts) {
  exp::SweepSpec grid_spec = spec;
  // --partitioner overrides the grid's strategy axis unless the bench
  // set one deliberately.
  if (!partitioner_spec().is_default() && grid_spec.partitioners.size() == 1 &&
      grid_spec.partitioners.front().is_default())
    grid_spec.partitioners = {partitioner_spec()};
  exp::SweepEngine engine(graph_cache(), partition_cache(),
                          functional_cache_if_enabled());
  exp::SweepOptions options;
  options.jobs = opts.jobs;
  options.trace = opts.trace.get();
  // Capture reports as cells flush (not after the sweep returns): a
  // flight-recorded partial --json then carries every finished cell.
  options.on_result = [](const exp::SweepCell& cell,
                         const RunReport& report) {
    record_report(cell.graph_key, report);
  };
  std::vector<exp::SweepResult> results = engine.run(grid_spec, options);
  return GridResults(spec, std::move(results));
}

// Order-stable parallel map for irregular cell lists: computes fn(i) for
// every i in [0, n) on opts.jobs workers and returns the results in index
// order, so rendering from the returned vector is byte-identical for any
// --jobs value.
template <typename Fn>
auto run_cells(std::size_t n, const Options& opts, Fn&& fn) {
  using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<std::optional<T>> slots(n);
  exp::parallel_cells(n, opts.jobs,
                      [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

// Wall-clock benches take this around their timed sections so
// measurements stay meaningful under --jobs > 1: cells overlap in their
// untimed work (graph builds, request generation) but never while a
// stopwatch runs.
inline std::mutex& timing_mutex() {
  static std::mutex mu;
  return mu;
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n================================================\n"
            << id << " — " << title << "\n"
            << "================================================\n";
}

inline void paper_note(const std::string& note) {
  std::cout << "paper: " << note << "\n";
}

inline void measured_note(const std::string& note) {
  std::cout << "measured: " << note << "\n";
}

// Geometric mean of ratios (the paper's "on average" improvements).
// Ratios must be positive — a zero or negative ratio would silently turn
// the headline "measured" number into NaN/-inf, so it throws instead.
// The empty case stays an explicit 0.0 ("no ratios, no claim").
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  for (const double x : xs) {
    HYVE_CHECK_MSG(x > 0,
                   "geomean requires positive ratios, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / xs.size());
}

}  // namespace hyve::bench
