// Shared helpers for the bench binaries.
//
// Every bench regenerates one table or figure of the paper: it prints the
// measured table in the paper's layout, followed by a "paper vs measured"
// note for the headline number(s) of that experiment. EXPERIMENTS.md is
// the curated record of these comparisons.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "exp/cache.hpp"
#include "exp/sweep.hpp"
#include "graph/datasets.hpp"
#include "util/table.hpp"

namespace hyve::bench {

// Process-wide caches shared by the fig/table benches: a binary that
// sweeps many configs over the datasets hash-balances and partitions
// each graph once instead of once per (config, algorithm) cell.
inline exp::GraphCache& graph_cache() {
  static exp::GraphCache cache;
  return cache;
}

inline exp::PartitionCache& partition_cache() {
  static exp::PartitionCache cache;
  return cache;
}

// Cached equivalent of HyveMachine(cfg).run(dataset_graph(id), algo);
// the report is identical (tested in exp_test).
inline RunReport run_dataset(const HyveConfig& cfg, DatasetId id,
                             Algorithm algo) {
  return exp::run_cached(graph_cache(), partition_cache(), cfg, algo,
                         dataset_name(id));
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n================================================\n"
            << id << " — " << title << "\n"
            << "================================================\n";
}

inline void paper_note(const std::string& note) {
  std::cout << "paper: " << note << "\n";
}

inline void measured_note(const std::string& note) {
  std::cout << "measured: " << note << "\n";
}

// Geometric mean of ratios (the paper's "on average" improvements).
inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0;
  for (const double x : xs) log_sum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(log_sum / xs.size());
}

}  // namespace hyve::bench
