// Shared harness for the bench binaries.
//
// Every bench regenerates one table or figure of the paper: it prints the
// measured table in the paper's layout, followed by a "paper vs measured"
// note for the headline number(s) of that experiment. EXPERIMENTS.md is
// the curated record of these comparisons.
//
// All benches share one command line (parse_args) and run their grid
// cells on the src/exp sweep engine: regular (config × algorithm ×
// dataset) grids go through run_grid/SweepEngine, irregular cell lists
// through run_cells/exp::parallel_cells. Cells are computed into
// index-addressed slots and rendered serially afterwards, so stdout is
// byte-identical for any --jobs value (asserted by the bench-smoke ctest
// label, which diffs --jobs 1 against --jobs 8).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/machine.hpp"
#include "exp/cache.hpp"
#include "exp/sweep.hpp"
#include "graph/datasets.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace hyve::bench {

// Process-wide caches shared by the fig/table benches: a binary that
// sweeps many configs over the datasets hash-balances and partitions
// each graph once instead of once per (config, algorithm) cell.
inline exp::GraphCache& graph_cache() {
  static exp::GraphCache cache;
  return cache;
}

inline exp::PartitionCache& partition_cache() {
  static exp::PartitionCache cache;
  return cache;
}

// The shared bench command line (every bench_* binary accepts these):
//   --jobs N              sweep worker threads (0 = hardware concurrency)
//   --datasets YT,WK,...  restrict the dataset axis of dataset benches
//   --smoke               deterministic stand-ins for wall-clock timings
//   --graph-cache-mb N    byte budget for the shared graph cache
//   --partition-cache N   entry cap for the shared partition cache
//   --cache-stats         print cache counters to stderr after the run
//   --metrics             dump the full metrics registry to stderr
//   --trace PATH          write a Chrome trace-event JSON of the run
struct Options {
  int jobs = 1;
  bool smoke = false;
  std::vector<DatasetId> datasets{kAllDatasets.begin(), kAllDatasets.end()};
  bool cache_stats = false;
  bool metrics = false;
  std::string trace_path;
  std::shared_ptr<obs::Trace> trace;  // set when --trace was given

  // Emits the requested telemetry. Everything goes to stderr (or the
  // --trace file) so stdout keeps the byte-identical --jobs guarantee
  // (wall times and eviction order depend on worker scheduling). Call at
  // the end of main().
  void finish() const {
    if (cache_stats || metrics) {
      obs::Registry& reg = obs::registry();
      // The instantaneous occupancy gauges are refreshed here so the
      // dump reflects end-of-run state even if the last touch was an
      // out-of-band eviction (set_byte_budget shrinking a live cache).
      reg.gauge("exp.graph_cache.resident_bytes")
          .set(static_cast<std::int64_t>(graph_cache().resident_bytes()));
      reg.gauge("exp.partition_cache.resident")
          .set(static_cast<std::int64_t>(partition_cache().resident()));
      if (cache_stats)
        std::cerr << "cache stats: graphs loads="
                  << reg.counter("exp.graph_cache.loads").value()
                  << " evictions="
                  << reg.counter("exp.graph_cache.evictions").value()
                  << " resident_bytes="
                  << reg.gauge("exp.graph_cache.resident_bytes").value()
                  << "; partitions builds="
                  << reg.counter("exp.partition_cache.builds").value()
                  << " evictions="
                  << reg.counter("exp.partition_cache.evictions").value()
                  << " resident="
                  << reg.gauge("exp.partition_cache.resident").value()
                  << "\n";
      if (metrics) reg.dump(std::cerr);
    }
    if (trace) trace->write_file(trace_path);
  }
};

inline Options parse_args(int argc, char** argv, const std::string& prog,
                          const std::string& summary) {
  Options opts;
  cli::ArgParser parser(prog, summary);
  parser.option("--jobs", "N",
                "worker threads (0 = hardware concurrency; default 1)",
                [&](const std::string& v) {
                  opts.jobs = static_cast<int>(
                      cli::parse_int(parser, "--jobs", v, 0, 4096));
                });
  parser.option("--datasets", "YT,WK,...",
                "datasets to include (default all five)",
                [&](const std::string& v) {
                  opts.datasets.clear();
                  for (const std::string& name : cli::split_csv(v)) {
                    const auto id = parse_dataset(name);
                    if (!id) parser.fail("unknown dataset " + name);
                    opts.datasets.push_back(*id);
                  }
                  if (opts.datasets.empty())
                    parser.fail("--datasets needs at least one dataset");
                });
  parser.flag("--smoke",
              "deterministic stand-ins for wall-clock measurements "
              "(bench-smoke CI; numbers are not measurements)",
              &opts.smoke);
  parser.option("--graph-cache-mb", "N",
                "graph cache byte budget in MiB (0 = unbounded; default 0)",
                [&](const std::string& v) {
                  graph_cache().set_byte_budget(
                      units::MiB(static_cast<std::uint64_t>(cli::parse_int(
                          parser, "--graph-cache-mb", v, 0, 1 << 20))));
                });
  parser.option("--partition-cache", "N",
                "partition cache entry cap (0 = unbounded; default 0)",
                [&](const std::string& v) {
                  partition_cache().set_max_entries(
                      static_cast<std::size_t>(cli::parse_int(
                          parser, "--partition-cache", v, 0, 1 << 20)));
                });
  parser.flag("--cache-stats", "print cache counters to stderr",
              &opts.cache_stats);
  parser.flag("--metrics", "dump the metrics registry to stderr",
              &opts.metrics);
  parser.option("--trace", "PATH",
                "write a Chrome trace-event JSON (chrome://tracing, "
                "Perfetto) of the sweep to PATH",
                [&](const std::string& v) { opts.trace_path = v; });
  parser.parse(argc, argv);
  // Telemetry is opt-in: the registry stays a single relaxed-load branch
  // in the hot paths unless one of these flags asks for it. Enabling
  // happens before any cell runs, so registry counters match the
  // caches' own whole-run counters.
  if (opts.cache_stats || opts.metrics) obs::set_enabled(true);
  if (!opts.trace_path.empty()) opts.trace = std::make_shared<obs::Trace>();
  return opts;
}

// Cached equivalent of HyveMachine(cfg).run(dataset_graph(id), algo);
// the report is identical (tested in exp_test).
inline RunReport run_dataset(const HyveConfig& cfg, DatasetId id,
                             Algorithm algo) {
  return exp::run_cached(graph_cache(), partition_cache(), cfg, algo,
                         dataset_name(id));
}

// The --datasets filter as GraphCache keys, for SweepSpec::graphs.
inline std::vector<std::string> dataset_keys(const Options& opts) {
  std::vector<std::string> keys;
  keys.reserve(opts.datasets.size());
  for (const DatasetId id : opts.datasets) keys.push_back(dataset_name(id));
  return keys;
}

// A (configs × algorithms × graphs) grid run through the SweepEngine,
// indexable by axis position (row-major, configs outermost).
class GridResults {
 public:
  GridResults(exp::SweepSpec spec, std::vector<exp::SweepResult> results)
      : spec_(std::move(spec)), results_(std::move(results)) {}

  const exp::SweepSpec& spec() const { return spec_; }

  const RunReport& at(std::size_t config, std::size_t algorithm,
                      std::size_t graph) const {
    HYVE_CHECK_MSG(config < spec_.configs.size() &&
                       algorithm < spec_.algorithms.size() &&
                       graph < spec_.graphs.size(),
                   "grid index out of range");
    return results_[(config * spec_.algorithms.size() + algorithm) *
                        spec_.graphs.size() +
                    graph]
        .report;
  }

 private:
  exp::SweepSpec spec_;
  std::vector<exp::SweepResult> results_;
};

// Declarative grid → engine → indexed results, on the shared caches.
inline GridResults run_grid(const exp::SweepSpec& spec, const Options& opts) {
  exp::SweepEngine engine(graph_cache(), partition_cache());
  exp::SweepOptions options;
  options.jobs = opts.jobs;
  options.trace = opts.trace.get();
  return GridResults(spec, engine.run(spec, options));
}

// Order-stable parallel map for irregular cell lists: computes fn(i) for
// every i in [0, n) on opts.jobs workers and returns the results in index
// order, so rendering from the returned vector is byte-identical for any
// --jobs value.
template <typename Fn>
auto run_cells(std::size_t n, const Options& opts, Fn&& fn) {
  using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<std::optional<T>> slots(n);
  exp::parallel_cells(n, opts.jobs,
                      [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

// Wall-clock benches take this around their timed sections so
// measurements stay meaningful under --jobs > 1: cells overlap in their
// untimed work (graph builds, request generation) but never while a
// stopwatch runs.
inline std::mutex& timing_mutex() {
  static std::mutex mu;
  return mu;
}

inline void header(const std::string& id, const std::string& title) {
  std::cout << "\n================================================\n"
            << id << " — " << title << "\n"
            << "================================================\n";
}

inline void paper_note(const std::string& note) {
  std::cout << "paper: " << note << "\n";
}

inline void measured_note(const std::string& note) {
  std::cout << "measured: " << note << "\n";
}

// Geometric mean of ratios (the paper's "on average" improvements).
// Ratios must be positive — a zero or negative ratio would silently turn
// the headline "measured" number into NaN/-inf, so it throws instead.
// The empty case stays an explicit 0.0 ("no ratios, no claim").
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  for (const double x : xs) {
    HYVE_CHECK_MSG(x > 0,
                   "geomean requires positive ratios, got " << x);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / xs.size());
}

}  // namespace hyve::bench
