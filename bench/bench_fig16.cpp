// Fig. 16: energy efficiency (MTEPS/W) of the seven evaluated
// configurations — CPU+DRAM, CPU+DRAM-opt, acc+DRAM, acc+ReRAM,
// acc+SRAM+DRAM, acc+HyVE, acc+HyVE-opt — for BFS / CC / PR on all five
// datasets.
//
// Headline multipliers (paper): acc+HyVE = 1.51x / 3.10x / 4.03x over
// acc+SRAM+DRAM / acc+ReRAM / acc+DRAM; acc+HyVE-opt = 5.90x over
// acc+DRAM and ~2 orders of magnitude over the CPUs.
#include <iostream>
#include <map>

#include "baselines/cpu.hpp"
#include "bench/common.hpp"

int main() {
  using namespace hyve;
  bench::header("Fig. 16", "Energy efficiency across configurations");

  std::map<std::string, std::vector<double>> efficiency;  // per config
  for (const Algorithm algo : kCoreAlgorithms) {
    std::cout << "\n--- " << algorithm_name(algo) << " (MTEPS/W) ---\n";
    Table table({"config", "YT", "WK", "AS", "LJ", "TW"});
    for (const CpuBaseline kind :
         {CpuBaseline::kNaive, CpuBaseline::kOptimized}) {
      const CpuModel cpu(kind);
      std::vector<std::string> row{CpuModel::label(kind)};
      for (const DatasetId id : kAllDatasets) {
        const double eff =
            cpu.run(dataset_graph(id), algo).mteps_per_watt();
        row.push_back(Table::num(eff, 1));
        efficiency[CpuModel::label(kind)].push_back(eff);
      }
      table.add_row(std::move(row));
    }
    for (const HyveConfig& cfg : fig16_accelerator_configs()) {
      std::vector<std::string> row{cfg.label};
      for (const DatasetId id : kAllDatasets) {
        const double eff = bench::run_dataset(cfg, id, algo).mteps_per_watt();
        row.push_back(Table::num(eff, 0));
        efficiency[cfg.label].push_back(eff);
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  auto avg_ratio = [&](const std::string& a, const std::string& b) {
    std::vector<double> r;
    for (std::size_t i = 0; i < efficiency[a].size(); ++i)
      r.push_back(efficiency[a][i] / efficiency[b][i]);
    return bench::geomean(r);
  };

  std::cout << "\naverage improvements (geomean):\n";
  Table summary({"comparison", "paper", "measured"});
  summary.add_row({"acc+HyVE vs acc+SRAM+DRAM", "1.51x",
                   Table::num(avg_ratio("acc+HyVE", "acc+SRAM+DRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE vs acc+ReRAM", "3.10x",
                   Table::num(avg_ratio("acc+HyVE", "acc+ReRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE vs acc+DRAM", "4.03x",
                   Table::num(avg_ratio("acc+HyVE", "acc+DRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE vs CPU+DRAM", "114.42x",
                   Table::num(avg_ratio("acc+HyVE", "CPU+DRAM"), 1) + "x"});
  summary.add_row({"acc+HyVE vs CPU+DRAM-opt", "83.31x",
                   Table::num(avg_ratio("acc+HyVE", "CPU+DRAM-opt"), 1) + "x"});
  summary.add_row({"acc+HyVE-opt vs acc+SRAM+DRAM", "2.00x",
                   Table::num(avg_ratio("acc+HyVE-opt", "acc+SRAM+DRAM"), 2) +
                       "x"});
  summary.add_row({"acc+HyVE-opt vs acc+ReRAM", "4.54x",
                   Table::num(avg_ratio("acc+HyVE-opt", "acc+ReRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE-opt vs acc+DRAM", "5.90x",
                   Table::num(avg_ratio("acc+HyVE-opt", "acc+DRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE-opt vs CPU+DRAM", "145.71x",
                   Table::num(avg_ratio("acc+HyVE-opt", "CPU+DRAM"), 1) + "x"});
  summary.print(std::cout);

  bench::paper_note("see the 'paper' column of the summary");
  bench::measured_note(
      "ordering reproduced everywhere; note the paper's own two multiplier "
      "sets (vs acc+HyVE and vs acc+HyVE-opt) are mutually inconsistent by "
      "~1.7x, so per-cell agreement within ~2x is the attainable target");
  return 0;
}
