// Fig. 16: energy efficiency (MTEPS/W) of the seven evaluated
// configurations — CPU+DRAM, CPU+DRAM-opt, acc+DRAM, acc+ReRAM,
// acc+SRAM+DRAM, acc+HyVE, acc+HyVE-opt — for BFS / CC / PR on all five
// datasets.
//
// Headline multipliers (paper): acc+HyVE = 1.51x / 3.10x / 4.03x over
// acc+SRAM+DRAM / acc+ReRAM / acc+DRAM; acc+HyVE-opt = 5.90x over
// acc+DRAM and ~2 orders of magnitude over the CPUs.
#include <iostream>
#include <map>

#include "baselines/cpu.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig16",
      "Fig. 16: energy efficiency of all seven evaluated configurations");
  bench::header("Fig. 16", "Energy efficiency across configurations");

  const std::size_t num_datasets = opts.datasets.size();
  const CpuBaseline cpu_kinds[] = {CpuBaseline::kNaive,
                                   CpuBaseline::kOptimized};

  // Accelerator rows through the sweep engine; CPU baselines have no
  // partitioning to share, so they run as a plain cell list.
  exp::SweepSpec spec;
  spec.configs = fig16_accelerator_configs();
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  const std::vector<double> cpu_eff = bench::run_cells(
      std::size(cpu_kinds) * spec.algorithms.size() * num_datasets, opts,
      [&](std::size_t i) {
        const CpuBaseline kind = cpu_kinds[i / (spec.algorithms.size() *
                                                num_datasets)];
        const Algorithm algo =
            spec.algorithms[(i / num_datasets) % spec.algorithms.size()];
        const DatasetId id = opts.datasets[i % num_datasets];
        return CpuModel(kind).run(dataset_graph(id), algo).mteps_per_watt();
      });
  const auto cpu_at = [&](std::size_t kind, std::size_t algo,
                          std::size_t dataset) {
    return cpu_eff[(kind * spec.algorithms.size() + algo) * num_datasets +
                   dataset];
  };

  std::vector<std::string> columns{"config"};
  for (const DatasetId id : opts.datasets) columns.push_back(dataset_name(id));

  std::map<std::string, std::vector<double>> efficiency;  // per config
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    std::cout << "\n--- " << algorithm_name(spec.algorithms[a])
              << " (MTEPS/W) ---\n";
    Table table(columns);
    for (std::size_t k = 0; k < std::size(cpu_kinds); ++k) {
      std::vector<std::string> row{CpuModel::label(cpu_kinds[k])};
      for (std::size_t d = 0; d < num_datasets; ++d) {
        const double eff = cpu_at(k, a, d);
        row.push_back(Table::num(eff, 1));
        efficiency[CpuModel::label(cpu_kinds[k])].push_back(eff);
      }
      table.add_row(std::move(row));
    }
    for (std::size_t c = 0; c < spec.configs.size(); ++c) {
      std::vector<std::string> row{spec.configs[c].label};
      for (std::size_t d = 0; d < num_datasets; ++d) {
        const double eff = grid.at(c, a, d).mteps_per_watt();
        row.push_back(Table::num(eff, 0));
        efficiency[spec.configs[c].label].push_back(eff);
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }

  auto avg_ratio = [&](const std::string& a, const std::string& b) {
    std::vector<double> r;
    for (std::size_t i = 0; i < efficiency[a].size(); ++i)
      r.push_back(efficiency[a][i] / efficiency[b][i]);
    return bench::geomean(r);
  };

  std::cout << "\naverage improvements (geomean):\n";
  Table summary({"comparison", "paper", "measured"});
  summary.add_row({"acc+HyVE vs acc+SRAM+DRAM", "1.51x",
                   Table::num(avg_ratio("acc+HyVE", "acc+SRAM+DRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE vs acc+ReRAM", "3.10x",
                   Table::num(avg_ratio("acc+HyVE", "acc+ReRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE vs acc+DRAM", "4.03x",
                   Table::num(avg_ratio("acc+HyVE", "acc+DRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE vs CPU+DRAM", "114.42x",
                   Table::num(avg_ratio("acc+HyVE", "CPU+DRAM"), 1) + "x"});
  summary.add_row({"acc+HyVE vs CPU+DRAM-opt", "83.31x",
                   Table::num(avg_ratio("acc+HyVE", "CPU+DRAM-opt"), 1) + "x"});
  summary.add_row({"acc+HyVE-opt vs acc+SRAM+DRAM", "2.00x",
                   Table::num(avg_ratio("acc+HyVE-opt", "acc+SRAM+DRAM"), 2) +
                       "x"});
  summary.add_row({"acc+HyVE-opt vs acc+ReRAM", "4.54x",
                   Table::num(avg_ratio("acc+HyVE-opt", "acc+ReRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE-opt vs acc+DRAM", "5.90x",
                   Table::num(avg_ratio("acc+HyVE-opt", "acc+DRAM"), 2) + "x"});
  summary.add_row({"acc+HyVE-opt vs CPU+DRAM", "145.71x",
                   Table::num(avg_ratio("acc+HyVE-opt", "CPU+DRAM"), 1) + "x"});
  summary.print(std::cout);

  bench::paper_note("see the 'paper' column of the summary");
  bench::measured_note(
      "ordering reproduced everywhere; note the paper's own two multiplier "
      "sets (vs acc+HyVE and vs acc+HyVE-opt) are mutually inconsistent by "
      "~1.7x, so per-cell agreement within ~2x is the attainable target");
  opts.finish();
  return 0;
}
