// Fig. 10: normalised EDP (DRAM/ReRAM) of the *global vertex memory*
// under the HyVE and GraphR partitioning schemes, per dataset, at 4/8/16
// Gb chip density.
//
// The paper's point (§6.3): the winner depends on the read:write ratio,
// which the partitioning sets — HyVE reads each vertex only (P/N) times
// per pass (Eq. 8), so DRAM's fast writes keep it competitive; GraphR
// re-reads vertices 16x per non-empty 8x8 block (Eq. 9), a read-dominated
// pattern where ReRAM wins.
#include <iostream>

#include "bench/common.hpp"
#include "graph/stats.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"
#include "model/analytic.hpp"

namespace {

struct VertexTraffic {
  std::uint64_t read_bytes;
  std::uint64_t write_bytes;
};

// Per-operation EDP of the global vertex traffic (like §6.3's T*E terms,
// this is a dynamic device comparison; provisioning/background belongs to
// the system-level experiments).
double edp_on(const hyve::MemoryModel& m, const VertexTraffic& t) {
  const double delay = m.stream_read_time_ns(t.read_bytes) +
                       m.stream_write_time_ns(t.write_bytes);
  const double energy = m.stream_read_energy_pj(t.read_bytes) +
                        m.stream_write_energy_pj(t.write_bytes);
  return delay * energy;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig10",
      "Fig. 10: global vertex memory EDP, DRAM/ReRAM per scheme and dataset");
  bench::header("Fig. 10",
                "Global vertex memory EDP, DRAM/ReRAM (>1 favours ReRAM)");

  constexpr std::uint32_t kValueBytes = 4;
  constexpr std::uint32_t kNumPus = 8;

  const std::size_t num_datasets = opts.datasets.size();
  const auto rows = bench::run_cells(
      2 * num_datasets, opts, [&](std::size_t i) -> std::vector<std::string> {
        const bool graphr = i < num_datasets;  // GraphR rows first
        const DatasetId id = opts.datasets[i % num_datasets];
        const Graph& g = dataset_graph(id);
        VertexTraffic t{};
        if (graphr) {
          const BlockOccupancy occ = block_occupancy(g, 8);
          t.read_bytes =
              model::graphr_vertex_loads(occ.non_empty_blocks) * kValueBytes;
        } else {
          // P from the default 2 MB SRAM sections.
          const HyveMachine machine(HyveConfig::hyve_opt());
          const std::uint32_t p = machine.choose_num_intervals(g, kValueBytes);
          t.read_bytes =
              model::hyve_vertex_loads(p, kNumPus, g.num_vertices()) *
              kValueBytes;
        }
        t.write_bytes = static_cast<std::uint64_t>(g.num_vertices()) *
                        kValueBytes;  // Eq. 7

        std::vector<std::string> row{graphr ? "GraphR" : "HyVE",
                                     dataset_name(id)};
        for (const int gbit : {4, 8, 16}) {
          DramConfig dc;
          dc.chip_capacity_bytes = units::Gbit(gbit);
          ReramConfig rc;
          rc.chip_capacity_bytes = units::Gbit(gbit);
          const double ratio =
              edp_on(DramModel(dc), t) / edp_on(ReramModel(rc), t);
          row.push_back(Table::num(ratio, 2));
        }
        return row;
      });

  Table table({"scheme", "dataset", "4Gb", "8Gb", "16Gb"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  bench::paper_note(
      "DRAM achieves lower EDP under HyVE's few-partition schedule; "
      "ReRAM wins under GraphR's read-dominated 16x-per-block pattern");
  bench::measured_note(
      "GraphR rows sit above the HyVE rows (ReRAM relatively stronger "
      "when reads dominate); see per-cell values above");
  opts.finish();
  return 0;
}
