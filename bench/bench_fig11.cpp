// Fig. 11: vertex-storage comparison GraphR vs HyVE — global read/write
// counts and total delay / energy / EDP of the whole vertex-storage
// subsystem (local register files vs SRAM, plus global memory traffic),
// reported as GraphR/HyVE ratios (>1 means HyVE better).
//
// §6.3's conclusion: despite GraphR's faster register files, HyVE wins
// because tiny 8-vertex partitions force far more global vertex traffic.
#include <iostream>

#include "bench/common.hpp"
#include "graph/stats.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"
#include "memmodel/sram.hpp"
#include "model/analytic.hpp"

namespace {

struct VertexStorageCost {
  std::uint64_t global_reads;
  std::uint64_t global_writes;
  double delay_ns;
  double energy_pj;
  double edp() const { return delay_ns * energy_pj; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig11",
      "Fig. 11: vertex-storage GraphR/HyVE ratios per dataset and memory");
  bench::header("Fig. 11",
                "Vertex storage, GraphR/HyVE ratios (>1 favours HyVE)");

  constexpr std::uint32_t kValueBytes = 4;
  constexpr std::uint32_t kNumPus = 8;
  const SramModel sram(units::MiB(2));
  const RegisterFileModel regfile;

  const auto rows = bench::run_cells(
      opts.datasets.size() * 2, opts,
      [&](std::size_t cell) -> std::vector<std::string> {
    const DatasetId id = opts.datasets[cell / 2];
    const bool use_reram = (cell % 2) != 0;
    const Graph& g = dataset_graph(id);
    const std::uint64_t e = g.num_edges();
    const BlockOccupancy occ = block_occupancy(g, 8);

    auto build = [&](bool graphr, const MemoryModel& gmem) {
      VertexStorageCost c{};
      if (graphr) {
        c.global_reads = model::graphr_vertex_loads(occ.non_empty_blocks);
      } else {
        const HyveMachine machine(HyveConfig::hyve_opt());
        const std::uint32_t p = machine.choose_num_intervals(g, kValueBytes);
        c.global_reads =
            model::hyve_vertex_loads(p, kNumPus, g.num_vertices());
      }
      c.global_writes = g.num_vertices();  // Eq. 7
      const std::uint64_t rb = c.global_reads * kValueBytes;
      const std::uint64_t wb = c.global_writes * kValueBytes;
      // Local traffic: Eq. 3/4 — 2 reads + 1 write per edge.
      double local_energy;
      double local_delay;
      if (graphr) {
        local_energy = e * (2.0 * regfile.read_energy_pj(kValueBytes) +
                            regfile.write_energy_pj(kValueBytes));
        local_delay = e * regfile.read_latency_ns();
      } else {
        local_energy = e * (2.0 * sram.read_energy_pj(kValueBytes) +
                            sram.write_energy_pj(kValueBytes));
        local_delay = e * sram.cycle_ns() / kNumPus;
      }
      c.delay_ns = gmem.stream_read_time_ns(rb) +
                   gmem.stream_write_time_ns(wb) + local_delay;
      c.energy_pj = gmem.stream_read_energy_pj(rb) +
                    gmem.stream_write_energy_pj(wb) + local_energy;
      return c;
    };

    const DramModel dram;
    const ReramModel reram;
    const MemoryModel& gmem =
        use_reram ? static_cast<const MemoryModel&>(reram)
                  : static_cast<const MemoryModel&>(dram);
    const VertexStorageCost gr = build(true, gmem);
    const VertexStorageCost hv = build(false, gmem);
    return std::vector<std::string>{
        dataset_name(id), use_reram ? "ReRAM" : "DRAM",
        Table::num(static_cast<double>(gr.global_reads) / hv.global_reads, 2),
        Table::num(static_cast<double>(gr.global_writes) / hv.global_writes,
                   2),
        Table::num(gr.delay_ns / hv.delay_ns, 2),
        Table::num(gr.energy_pj / hv.energy_pj, 2),
        Table::num(gr.edp() / hv.edp(), 2)};
  });

  Table table({"dataset", "global mem", "reads (G/H)", "writes (G/H)",
               "delay (G/H)", "energy (G/H)", "EDP (G/H)"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  bench::paper_note(
      "HyVE reads fewer vertices globally than GraphR and wins delay, "
      "energy and EDP despite GraphR's register files");
  bench::measured_note("read-count and EDP ratios above 1 across datasets");
  opts.finish();
  return 0;
}
