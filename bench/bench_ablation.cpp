// Ablation studies of HyVE's individual design decisions (DESIGN.md):
//   A. sub-bank interleaving (§3.1) — the edge memory's bandwidth scheme;
//   B. energy- vs latency-optimised ReRAM banks (Table 3's two columns);
//   C. processing-unit count scaling (the N in Algorithm 2);
//   D. weighted (12-byte) vs unweighted (8-byte) edges.
// Each section runs the full machine so the knob's system-level effect —
// not just its device-level effect — is visible.
#include <iostream>
#include <vector>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_ablation",
      "Ablations: PageRank under single-knob design changes");
  // Default study dataset is AS (mid-sized); --datasets picks another.
  const DatasetId id = opts.datasets.size() == std::size(kAllDatasets)
                           ? DatasetId::kAS
                           : opts.datasets.front();
  const Algorithm algo = Algorithm::kPageRank;
  bench::header("Ablations", std::string("PageRank on ") + dataset_name(id) +
                                 " under single-knob changes");

  // The full 11-run cell list: A on/off, B energy/latency, C five PU
  // counts, D 8/12-byte edges.
  std::vector<HyveConfig> configs;
  const auto add = [&](HyveConfig cfg, const char* label) {
    cfg.label = label;
    configs.push_back(std::move(cfg));
  };
  add(HyveConfig::hyve_opt(), "subbank ilv ON");
  {
    HyveConfig off = HyveConfig::hyve_opt();
    off.reram.subbank_interleaving = false;
    add(off, "subbank ilv OFF");
  }
  add(HyveConfig::hyve_opt(), "energy-opt banks");
  {
    HyveConfig lat = HyveConfig::hyve_opt();
    lat.reram.optimization = ReramOptTarget::kLatencyOptimized;
    add(lat, "latency-opt banks");
  }
  const int pu_counts[] = {2, 4, 8, 16, 32};
  for (const int pus : pu_counts) {
    HyveConfig cfg = HyveConfig::hyve_opt();
    cfg.num_pus = pus;
    add(cfg, "pu-sweep");
  }
  add(HyveConfig::hyve_opt(), "8B edges");
  {
    HyveConfig weighted = HyveConfig::hyve_opt();
    weighted.edge_bytes = 12;
    add(weighted, "12B edges");
  }

  const std::vector<RunReport> reports = bench::run_cells(
      configs.size(), opts,
      [&](std::size_t i) { return bench::run_dataset(configs[i], id, algo); });

  // ---- A: sub-bank interleaving ----
  {
    const RunReport& with = reports[0];
    const RunReport& without = reports[1];
    Table t({"sub-bank interleaving", "time (ms)", "MTEPS/W"});
    t.add_row({"on (HyVE)", Table::num(with.exec_time_ns / 1e6, 3),
               Table::num(with.mteps_per_watt(), 0)});
    t.add_row({"off", Table::num(without.exec_time_ns / 1e6, 3),
               Table::num(without.mteps_per_watt(), 0)});
    t.print(std::cout);
    std::cout << "slowdown without interleaving: "
              << Table::num(without.exec_time_ns / with.exec_time_ns, 2)
              << "x — a single mat cannot feed the PU pipeline (§3.1)\n";
  }

  // ---- B: bank optimisation target ----
  {
    const RunReport& eopt = reports[2];
    const RunReport& lopt = reports[3];
    Table t({"ReRAM bank design", "edge-mem dynamic (uJ)", "MTEPS/W"});
    t.add_row({"energy-optimized (HyVE)",
               Table::num(eopt.energy[EnergyComponent::kEdgeMemDynamic] / 1e6,
                          1),
               Table::num(eopt.mteps_per_watt(), 0)});
    t.add_row({"latency-optimized",
               Table::num(lopt.energy[EnergyComponent::kEdgeMemDynamic] / 1e6,
                          1),
               Table::num(lopt.mteps_per_watt(), 0)});
    t.print(std::cout);
    std::cout << "Table 3's 512-bit energy-optimized pick wins system-wide.\n";
  }

  // ---- C: PU count ----
  {
    Table t({"PUs", "P", "time (ms)", "MTEPS/W", "router share"});
    for (std::size_t i = 0; i < std::size(pu_counts); ++i) {
      const RunReport& r = reports[4 + i];
      t.add_row({std::to_string(pu_counts[i]),
                 std::to_string(r.num_intervals),
                 Table::num(r.exec_time_ns / 1e6, 3),
                 Table::num(r.mteps_per_watt(), 0),
                 Table::num(100.0 * r.energy[EnergyComponent::kRouter] /
                                r.total_energy_pj(),
                            2) +
                     "%"});
    }
    t.print(std::cout);
    std::cout << "more PUs buy time until the edge stream saturates; the\n"
              << "N-to-N router stays a negligible energy share (§4.2).\n";
  }

  // ---- D: weighted edges ----
  {
    const RunReport& w8 = reports[9];
    const RunReport& w12 = reports[10];
    Table t({"edge record", "edge-mem energy (uJ)", "time (ms)", "MTEPS/W"});
    t.add_row({"8 B (src,dst)",
               Table::num(w8.energy.edge_memory_pj() / 1e6, 1),
               Table::num(w8.exec_time_ns / 1e6, 3),
               Table::num(w8.mteps_per_watt(), 0)});
    t.add_row({"12 B (src,dst,weight)",
               Table::num(w12.energy.edge_memory_pj() / 1e6, 1),
               Table::num(w12.exec_time_ns / 1e6, 3),
               Table::num(w12.mteps_per_watt(), 0)});
    t.print(std::cout);
    std::cout << "weights cost ~50% more edge traffic but the read-only\n"
              << "ReRAM stream absorbs it without a write penalty (§3.1).\n";
  }
  opts.finish();
  return 0;
}
