// Fig. 9: normalised DRAM/ReRAM performance (delay, energy, EDP) for
// sequential read, sequential write, and a 50/50 mix, at chip densities
// of 4 / 8 / 16 Gb. Values > 1 favour ReRAM.
//
// The paper's shape: ReRAM wins sequential-read energy and EDP (and the
// win grows with density as DRAM refresh scales), DRAM wins sequential
// writes outright, and the mixed pattern sits in between.
#include <iostream>

#include "bench/common.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"

namespace {

struct StreamCost {
  double delay_ns;
  double energy_pj;
  double edp() const { return delay_ns * energy_pj; }
};

// Streams `bytes` with the given read fraction. Like the paper's Fig. 9,
// this is a per-operation (dynamic) device comparison — module background
// is a provisioning question handled by the system-level experiments —
// and chip density enters through the array energies (longer word/bit
// lines on denser dies).
StreamCost stream_cost(const hyve::MemoryModel& m, std::uint64_t bytes,
                       double read_fraction) {
  const auto rd = static_cast<std::uint64_t>(bytes * read_fraction);
  const std::uint64_t wr = bytes - rd;
  StreamCost cost;
  cost.delay_ns = m.stream_read_time_ns(rd) + m.stream_write_time_ns(wr);
  cost.energy_pj = m.stream_read_energy_pj(rd) + m.stream_write_energy_pj(wr);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig09",
      "Fig. 9: normalised DRAM/ReRAM delay, energy, EDP per access pattern");
  bench::header("Fig. 9",
                "Normalised DRAM/ReRAM delay, energy, EDP (>1 favours ReRAM)");

  const std::uint64_t bytes = units::MiB(64);
  struct Pattern {
    const char* name;
    double read_fraction;
  };
  const Pattern patterns[] = {{"sequential read", 1.0},
                              {"sequential write", 0.0},
                              {"read 50% + write 50%", 0.5}};
  const int densities[] = {4, 8, 16};

  const auto rows = bench::run_cells(
      std::size(patterns) * std::size(densities), opts,
      [&](std::size_t i) -> std::vector<std::string> {
        const Pattern& p = patterns[i / std::size(densities)];
        const int gbit = densities[i % std::size(densities)];
        DramConfig dc;
        dc.chip_capacity_bytes = units::Gbit(gbit);
        ReramConfig rc;
        rc.chip_capacity_bytes = units::Gbit(gbit);
        const DramModel dram(dc);
        const ReramModel reram(rc);
        const StreamCost d = stream_cost(dram, bytes, p.read_fraction);
        const StreamCost r = stream_cost(reram, bytes, p.read_fraction);
        return {p.name, std::to_string(gbit) + "Gb",
                Table::num(d.delay_ns / r.delay_ns, 2),
                Table::num(d.energy_pj / r.energy_pj, 2),
                Table::num(d.edp() / r.edp(), 2)};
      });

  Table table({"pattern", "density", "delay (D/R)", "energy (D/R)",
               "EDP (D/R)"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  bench::paper_note(
      "reads: ReRAM wins energy (~4-6x) and EDP, DRAM slightly wins delay; "
      "writes: DRAM wins delay and EDP; density growth favours ReRAM");
  bench::measured_note(
      "same sign pattern in every cell; see the table above");
  opts.finish();
  return 0;
}
