// Fig. 15: energy-efficiency improvement from bank-level power gating
// (§4.1), per algorithm and dataset — the non-volatile edge memory keeps
// one bank awake under the sequential scan and gates the rest.
//
// Paper: 1.53x average over acc+HyVE.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig15",
      "Fig. 15: energy-efficiency improvement from bank-level power gating");
  bench::header("Fig. 15", "Power-gating improvement (w/ vs w/o BPG)");

  const HyveConfig gated = HyveConfig::hyve_opt();
  HyveConfig ungated = gated;
  ungated.power_gating = false;

  exp::SweepSpec spec;
  spec.configs = {ungated, gated};
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  Table table({"algorithm", "dataset", "w/o PG (MTEPS/W)", "w/ PG (MTEPS/W)",
               "improvement", "edge-mem bg saved"});
  std::vector<double> all;
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
      const RunReport& ru = grid.at(0, a, d);
      const RunReport& rg = grid.at(1, a, d);
      const double improvement = rg.mteps_per_watt() / ru.mteps_per_watt();
      const double saved =
          1.0 - rg.energy[EnergyComponent::kEdgeMemBackground] /
                    ru.energy[EnergyComponent::kEdgeMemBackground];
      table.add_row({algorithm_name(spec.algorithms[a]),
                     dataset_name(opts.datasets[d]),
                     Table::num(ru.mteps_per_watt(), 0),
                     Table::num(rg.mteps_per_watt(), 0),
                     Table::num(improvement, 2) + "x",
                     Table::num(saved * 100.0, 1) + "%"});
      all.push_back(improvement);
    }
  }
  table.print(std::cout);
  std::cout << "average improvement: " << Table::num(bench::geomean(all), 2)
            << "x\n";

  bench::paper_note("1.53x average improvement over acc+HyVE");
  bench::measured_note(
      "BPG removes most of the edge-memory background on every workload; "
      "average printed above");
  opts.finish();
  return 0;
}
