// Fig. 15: energy-efficiency improvement from bank-level power gating
// (§4.1), per algorithm and dataset — the non-volatile edge memory keeps
// one bank awake under the sequential scan and gates the rest.
//
// Paper: 1.53x average over acc+HyVE.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace hyve;
  bench::header("Fig. 15", "Power-gating improvement (w/ vs w/o BPG)");

  Table table({"algorithm", "dataset", "w/o PG (MTEPS/W)", "w/ PG (MTEPS/W)",
               "improvement", "edge-mem bg saved"});
  std::vector<double> all;
  for (const Algorithm algo : kCoreAlgorithms) {
    for (const DatasetId id : kAllDatasets) {
      const Graph& g = dataset_graph(id);
      const HyveConfig gated = HyveConfig::hyve_opt();
      HyveConfig ungated = gated;
      ungated.power_gating = false;
      const RunReport rg = HyveMachine(gated).run(g, algo);
      const RunReport ru = HyveMachine(ungated).run(g, algo);
      const double improvement = rg.mteps_per_watt() / ru.mteps_per_watt();
      const double saved =
          1.0 - rg.energy[EnergyComponent::kEdgeMemBackground] /
                    ru.energy[EnergyComponent::kEdgeMemBackground];
      table.add_row({algorithm_name(algo), dataset_name(id),
                     Table::num(ru.mteps_per_watt(), 0),
                     Table::num(rg.mteps_per_watt(), 0),
                     Table::num(improvement, 2) + "x",
                     Table::num(saved * 100.0, 1) + "%"});
      all.push_back(improvement);
    }
  }
  table.print(std::cout);
  std::cout << "average improvement: " << Table::num(bench::geomean(all), 2)
            << "x\n";

  bench::paper_note("1.53x average improvement over acc+HyVE");
  bench::measured_note(
      "BPG removes most of the edge-memory background on every workload; "
      "average printed above");
  return 0;
}
