// §6 analytical-model decomposition: the Eq. 1/2 terms and the Eq. 6
// Cauchy-Schwarz EDP lower bound, instantiated with each memory
// technology in each role — the table behind §6.6's design instructions
// ("ReRAM for edges, SRAM+DRAM for vertices, CMOS for processing").
#include <iostream>

#include "bench/common.hpp"
#include "graph/stats.hpp"
#include "memmodel/crossbar.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"
#include "memmodel/sram.hpp"
#include "memmodel/techparams.hpp"
#include "model/analytic.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  using model::ModelInputs;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_model",
      "§6 analytical model: Eq. 1/2/6 decomposition per design choice");
  bench::header("§6 model", "Eq. 1/2/6 decomposition per design choice");

  const Graph& g = dataset_graph(DatasetId::kYT);
  const std::uint64_t e = g.num_edges();
  const std::uint64_t v = g.num_vertices();

  const DramModel dram;
  const ReramModel reram;
  const SramModel sram(units::MiB(2));
  const RegisterFileModel regfile;
  const CrossbarModel crossbar;

  auto base_inputs = [&](std::uint32_t p, std::uint32_t n) {
    ModelInputs in;
    in.n_read_edge = e;
    in.n_read_vertex_seq = model::hyve_vertex_loads(p, n, v);
    in.n_write_vertex_seq = v;  // Eq. 7
    return in;
  };

  Table table({"design", "edge store", "local vertex", "PU", "T (ms)",
               "E (uJ)", "EDP (mJ*ms)", "Eq.6 bound/EDP"});
  struct Design {
    const char* name;
    bool reram_edges;
    bool sram_vertices;  // else register files (GraphR granularity)
    bool cmos_pu;
  };
  const Design designs[] = {
      {"HyVE (§6.6 picks)", true, true, true},
      {"DRAM edges", false, true, true},
      {"GraphR-style", true, false, false},
  };
  const auto rows = bench::run_cells(
      std::size(designs), opts,
      [&](std::size_t cell) -> std::vector<std::string> {
    const Design& d = designs[cell];
    ModelInputs in = base_inputs(16, 8);
    const MemoryModel& edge_mem =
        d.reram_edges ? static_cast<const MemoryModel&>(reram)
                      : static_cast<const MemoryModel&>(dram);
    in.read_edge = {edge_mem.stream_read_time_ns(8),
                    edge_mem.stream_read_energy_pj(8)};
    in.read_vertex_seq = {dram.stream_read_time_ns(4),
                          dram.stream_read_energy_pj(4)};
    in.write_vertex_seq = {dram.stream_write_time_ns(4),
                           dram.stream_write_energy_pj(4)};
    if (d.sram_vertices) {
      in.read_vertex_rand = {sram.cycle_ns(), sram.read_energy_pj(4)};
      in.write_vertex_rand = {sram.cycle_ns(), sram.write_energy_pj(4)};
    } else {
      in.read_vertex_rand = {regfile.read_latency_ns(),
                             regfile.read_energy_pj(4)};
      in.write_vertex_rand = {regfile.write_latency_ns(),
                              regfile.write_energy_pj(4)};
      // Tiny partitions re-read vertices 16x per non-empty block (Eq. 9).
      const BlockOccupancy occ = block_occupancy(g, 8);
      in.n_read_vertex_seq = model::graphr_vertex_loads(occ.non_empty_blocks);
    }
    if (d.cmos_pu) {
      in.process = {tech::kPuPipelineCycleNs, tech::kCmosEdgeOpEnergyPj};
    } else {
      const BlockOccupancy occ = block_occupancy(g, 8);
      in.process = {crossbar.per_edge_latency_mvm_ns(
                        occ.avg_edges_per_non_empty),
                    crossbar.per_edge_energy_mvm_pj(
                        occ.avg_edges_per_non_empty)};
    }
    const double t = model::execution_time_ns(in);
    const double energy = model::energy_pj(in);
    return std::vector<std::string>{
        d.name, d.reram_edges ? "ReRAM" : "DRAM",
        d.sram_vertices ? "SRAM" : "regfile",
        d.cmos_pu ? "CMOS" : "crossbar", Table::num(t / 1e6, 3),
        Table::num(energy / 1e6, 1), Table::num(model::edp(in) / 1e15, 2),
        Table::num(model::edp_lower_bound(in) / model::edp(in), 3)};
  });
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  bench::paper_note(
      "§6.6: ReRAM edges + SRAM/DRAM vertices + CMOS PUs minimise every "
      "term; crossbar PUs lose on the 3.91 nJ per-edge write");
  bench::measured_note(
      "the §6.6 pick has the lowest Eq.-5 EDP of the three designs; the "
      "Eq.-6 bound stays below 1 as required");
  opts.finish();
  return 0;
}
