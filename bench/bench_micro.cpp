// Component microbenchmarks (google-benchmark): generator, partitioner,
// functional engine, dynamic store and full-machine simulation throughput.
// These are engineering benchmarks for the library itself; the per-table/
// figure reproductions live in the bench_table*/bench_fig* binaries.
#include <benchmark/benchmark.h>

#include "algos/runner.hpp"
#include "core/machine.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/requests.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace {

using namespace hyve;

const Graph& bench_graph() {
  static const Graph g = generate_rmat(100000, 600000, {}, 0xBE7C);
  return g;
}

void BM_RmatGeneration(benchmark::State& state) {
  const auto vertices = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    const Graph g = generate_rmat(vertices, vertices * 6, {}, 99);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 6);
}
BENCHMARK(BM_RmatGeneration)->Arg(10000)->Arg(100000);

void BM_Partitioning(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto p = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const Partitioning part(g, p);
    benchmark::DoNotOptimize(part.non_empty_blocks());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Partitioning)->Arg(8)->Arg(64)->Arg(512);

void BM_HashedRemap(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    const Graph h = g.hashed_remap(1);
    benchmark::DoNotOptimize(h.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_HashedRemap);

void BM_FunctionalPass(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto algo = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    const auto prog = make_program(algo);
    const auto result = run_functional(g, *prog);
    benchmark::DoNotOptimize(result.edges_traversed);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_FunctionalPass)
    ->Arg(static_cast<int>(Algorithm::kBfs))
    ->Arg(static_cast<int>(Algorithm::kPageRank))
    ->Arg(static_cast<int>(Algorithm::kSpmv));

void BM_FullMachineSimulation(benchmark::State& state) {
  const Graph& g = bench_graph();
  const HyveMachine machine(HyveConfig::hyve_opt());
  for (auto _ : state) {
    const RunReport r = machine.run(g, Algorithm::kBfs);
    benchmark::DoNotOptimize(r.total_energy_pj());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_FullMachineSimulation);

void BM_DynamicRequests(benchmark::State& state) {
  const Graph& g = bench_graph();
  const bool hashed = state.range(0) != 0;
  DynamicGraphOptions opts;
  opts.num_intervals = hashed ? (g.num_vertices() + 7) / 8 : 16;
  opts.hashed_block_directory = hashed;
  const auto requests = generate_requests(g, 100000, {}, 5);
  for (auto _ : state) {
    state.PauseTiming();
    DynamicGraphStore store(g, opts);
    state.ResumeTiming();
    const auto result = apply_requests(store, requests);
    benchmark::DoNotOptimize(result.requests_applied);
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}
BENCHMARK(BM_DynamicRequests)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
