// Component microbenchmarks (google-benchmark): generator, partitioner,
// functional engine, dynamic store and full-machine simulation throughput.
// These are engineering benchmarks for the library itself; the per-table/
// figure reproductions live in the bench_table*/bench_fig* binaries.
//
// Accepts the shared bench flags --jobs/--smoke for a uniform command
// line (google-benchmark's own timing loop stays single-threaded):
// --smoke maps to --benchmark_list_tests=true so the smoke run is
// deterministic, and --jobs is validated then ignored.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algos/runner.hpp"
#include "core/machine.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/requests.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace {

using namespace hyve;

const Graph& bench_graph() {
  static const Graph g = generate_rmat(100000, 600000, {}, 0xBE7C);
  return g;
}

void BM_RmatGeneration(benchmark::State& state) {
  const auto vertices = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    const Graph g = generate_rmat(vertices, vertices * 6, {}, 99);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 6);
}
BENCHMARK(BM_RmatGeneration)->Arg(10000)->Arg(100000);

void BM_Partitioning(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto p = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const Partitioning part(g, p);
    benchmark::DoNotOptimize(part.non_empty_blocks());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Partitioning)->Arg(8)->Arg(64)->Arg(512);

void BM_HashedRemap(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    const Graph h = g.hashed_remap(1);
    benchmark::DoNotOptimize(h.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_HashedRemap);

void BM_FunctionalPass(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto algo = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    const auto prog = make_program(algo);
    const auto result = run_functional(g, *prog);
    benchmark::DoNotOptimize(result.edges_traversed);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_FunctionalPass)
    ->Arg(static_cast<int>(Algorithm::kBfs))
    ->Arg(static_cast<int>(Algorithm::kPageRank))
    ->Arg(static_cast<int>(Algorithm::kSpmv));

// Per-edge virtual dispatch vs the batched block kernel, over the same
// partitioned edge blocks: the gap is the cost process_block eliminates
// from every functional pass.
void BM_ProcessEdge(benchmark::State& state) {
  const Graph& g = bench_graph();
  const Partitioning part(g, 64);
  const auto algo = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const auto prog = make_program(algo);
    prog->init(g);
    state.ResumeTiming();
    std::uint64_t writes = 0;
    for (std::uint32_t y = 0; y < 64; ++y)
      for (std::uint32_t x = 0; x < 64; ++x)
        for (const Edge& e : part.block(x, y))
          writes += prog->process_edge(e) ? 1 : 0;
    benchmark::DoNotOptimize(writes);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ProcessEdge)
    ->Arg(static_cast<int>(Algorithm::kBfs))
    ->Arg(static_cast<int>(Algorithm::kPageRank))
    ->Arg(static_cast<int>(Algorithm::kSpmv));

void BM_ProcessBlock(benchmark::State& state) {
  const Graph& g = bench_graph();
  const Partitioning part(g, 64);
  const auto algo = static_cast<Algorithm>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    const auto prog = make_program(algo);
    prog->init(g);
    state.ResumeTiming();
    std::uint64_t writes = 0;
    for (std::uint32_t y = 0; y < 64; ++y)
      for (std::uint32_t x = 0; x < 64; ++x)
        writes += prog->process_block(part.block(x, y));
    benchmark::DoNotOptimize(writes);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ProcessBlock)
    ->Arg(static_cast<int>(Algorithm::kBfs))
    ->Arg(static_cast<int>(Algorithm::kPageRank))
    ->Arg(static_cast<int>(Algorithm::kSpmv));

void BM_FullMachineSimulation(benchmark::State& state) {
  const Graph& g = bench_graph();
  const HyveMachine machine(HyveConfig::hyve_opt());
  for (auto _ : state) {
    const RunReport r = machine.run(g, Algorithm::kBfs);
    benchmark::DoNotOptimize(r.total_energy_pj());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_FullMachineSimulation);

void BM_DynamicRequests(benchmark::State& state) {
  const Graph& g = bench_graph();
  const bool hashed = state.range(0) != 0;
  DynamicGraphOptions opts;
  opts.num_intervals = hashed ? (g.num_vertices() + 7) / 8 : 16;
  opts.hashed_block_directory = hashed;
  const auto requests = generate_requests(g, 100000, {}, 5);
  for (auto _ : state) {
    state.PauseTiming();
    DynamicGraphStore store(g, opts);
    state.ResumeTiming();
    const auto result = apply_requests(store, requests);
    benchmark::DoNotOptimize(result.requests_applied);
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}
BENCHMARK(BM_DynamicRequests)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  // Pull out the shared bench flags before google-benchmark sees argv.
  std::vector<char*> rest{argv[0]};
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs needs a value\n");
        return 2;
      }
      char* end = nullptr;
      const long jobs = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || jobs < 0) {
        std::fprintf(stderr, "error: --jobs expects an integer, got \"%s\"\n",
                     argv[i]);
        return 2;
      }
    } else {
      rest.push_back(argv[i]);
    }
  }
  std::string list_flag = "--benchmark_list_tests=true";
  if (smoke) rest.push_back(list_flag.data());

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
