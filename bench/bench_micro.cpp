// Kernel-regression microbenchmarks: every vertex program through every
// edge-layout the functional engine has grown — one case per graph family
// x algorithm x {per-edge, block-AoS, block-SoA, SoA+reuse} over shared
// interval-block schedules.
//
//   per-edge   — one virtual process_edge() call per edge (the original
//                reference path, kept as the honesty baseline)
//   block-AoS  — process_block() over std::span<const Edge> blocks
//   block-SoA  — process_block_soa() over the transposed src/dst/hash
//                columns (the vectorization-friendly kernels)
//   SoA+reuse  — the full frontier walk (run_frontier) with per-iteration
//                pattern reuse, i.e. what sweeps actually execute; honours
//                --no-pattern-reuse like every other frontier consumer
//
// The dense layouts must produce identical iteration counts, write
// totals and a bit-identical fingerprint of the final vertex state, and
// the frontier walk the same fingerprint — the binary aborts otherwise,
// so a kernel that drifts from the per-edge reference cannot time
// anything. The headline is the geomean speedup of the SoA layouts over
// the block-AoS kernels.
//
// Under --smoke each case still runs once (the equivalence checks stay),
// but the reported seconds are deterministic work proxies (edges the host
// actually streamed / 1e9), so stdout and --json are byte-identical
// across runs and --jobs values. These are engineering benchmarks for
// the library itself; the per-table/figure reproductions live in the
// bench_table*/bench_fig* binaries.
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/gas.hpp"
#include "algos/pagerank.hpp"
#include "algos/spmv.hpp"
#include "algos/sssp.hpp"
#include "bench/common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace hyve;
using clock_type = std::chrono::steady_clock;

constexpr std::uint32_t kNumIntervals = 64;

// FNV-1a over the raw bytes of a program's final vertex state. Doubles
// are hashed bit-exactly: the layouts preserve edge order (and the
// frontier walk only skips provably write-free blocks), so even the
// floating-point programs must match to the last bit.
template <typename T>
std::uint64_t fingerprint(const std::vector<T>& values) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const T& value : values) {
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  }
  return h;
}

struct ProgramCase {
  const char* label;
  std::unique_ptr<VertexProgram> (*make)();
  std::uint64_t (*state_fingerprint)(const VertexProgram&);
};

const ProgramCase kPrograms[] = {
    {"BFS", [] { return make_program(Algorithm::kBfs); },
     [](const VertexProgram& p) {
       return fingerprint(dynamic_cast<const BfsProgram&>(p).distances());
     }},
    {"CC", [] { return make_program(Algorithm::kCc); },
     [](const VertexProgram& p) {
       return fingerprint(dynamic_cast<const CcProgram&>(p).labels());
     }},
    {"PR", [] { return make_program(Algorithm::kPageRank); },
     [](const VertexProgram& p) {
       return fingerprint(dynamic_cast<const PageRankProgram&>(p).ranks());
     }},
    {"SSSP", [] { return make_program(Algorithm::kSssp); },
     [](const VertexProgram& p) {
       return fingerprint(dynamic_cast<const SsspProgram&>(p).distances());
     }},
    {"SpMV", [] { return make_program(Algorithm::kSpmv); },
     [](const VertexProgram& p) {
       return fingerprint(dynamic_cast<const SpmvProgram&>(p).result());
     }},
    {"REACH",
     []() -> std::unique_ptr<VertexProgram> {
       return std::make_unique<GasProgram<std::uint32_t>>(
           make_reachability_program(0));
     },
     [](const VertexProgram& p) {
       return fingerprint(
           dynamic_cast<const GasProgram<std::uint32_t>&>(p).values());
     }},
};
constexpr std::size_t kNumPrograms = std::size(kPrograms);

enum class Layout { kPerEdge, kBlockAos, kBlockSoa, kSoaReuse };
constexpr Layout kLayouts[] = {Layout::kPerEdge, Layout::kBlockAos,
                               Layout::kBlockSoa, Layout::kSoaReuse};
constexpr std::size_t kNumLayouts = std::size(kLayouts);

const char* layout_name(Layout layout) {
  switch (layout) {
    case Layout::kPerEdge: return "per-edge";
    case Layout::kBlockAos: return "block-AoS";
    case Layout::kBlockSoa: return "block-SoA";
    case Layout::kSoaReuse: return "SoA+reuse";
  }
  return "?";
}

struct RunOutcome {
  std::uint32_t iterations = 0;
  std::uint64_t writes = 0;          // process_edge() returned true
  std::uint64_t edges_streamed = 0;  // edges the host actually visited
  std::uint64_t checksum = 0;        // fingerprint of the final state
};

// Runs `program` to convergence through one layout's dispatch path, in
// the same destination-major block order for all of them. SoA+reuse is
// the real frontier walk: its edges_streamed subtracts both the blocks
// interval skipping never visited and the ones pattern reuse replayed.
RunOutcome run_layout(const Graph& g, const Partitioning& part,
                      VertexProgram& program, Layout layout) {
  RunOutcome out;
  if (layout == Layout::kSoaReuse) {
    const FrontierTrace trace = run_frontier(g, program, part);
    out.iterations = trace.result.iterations;
    out.writes = trace.result.destination_writes;
    out.edges_streamed = trace.result.edges_traversed - trace.edges_skipped;
    return out;
  }
  program.init(g);
  bool more = true;
  while (more && out.iterations < program.max_iterations()) {
    for (std::uint32_t y = 0; y < kNumIntervals; ++y) {
      for (std::uint32_t x = 0; x < kNumIntervals; ++x) {
        switch (layout) {
          case Layout::kPerEdge:
            for (const Edge& e : part.block(x, y))
              out.writes += program.process_edge(e) ? 1 : 0;
            break;
          case Layout::kBlockAos:
            out.writes += program.process_block(part.block(x, y));
            break;
          case Layout::kBlockSoa:
            out.writes += program.process_block_soa(part.block_soa(x, y));
            break;
          case Layout::kSoaReuse: break;  // handled above
        }
      }
    }
    out.edges_streamed += g.num_edges();
    ++out.iterations;
    more = program.end_iteration(out.iterations);
  }
  return out;
}

struct Cell {
  RunOutcome outcome;
  double seconds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_micro",
      "kernel-regression suite: algorithm x edge-layout grid with "
      "cross-layout equivalence checks");
  bench::header("Kernels",
                "Vertex-program kernels per edge layout (identical results "
                "enforced)");

  // Two synthetic families, one schedule each, shared by every cell:
  // Erdős–Rényi at mean degree 6 (no hubs, a scattered frontier that
  // narrows over ~5 passes — the regime block-level pattern reuse
  // targets) and Barabási–Albert (heavy-tail, hub-rooted traversals that
  // converge in a burst and then coast on clean blocks). Smaller under
  // --smoke so the determinism ctest stays quick. The SoA columns and
  // the reuse index are forced here, outside any stopwatch — sweeps
  // amortise them across a whole grid the same way.
  struct GraphCase {
    const char* label;     // table column
    std::string key;       // --json graph key
    Graph graph;
    Partitioning part;
  };
  const auto make_case = [&](const char* label, std::string key, Graph g) {
    Partitioning part(g, kNumIntervals);
    part.edge_columns();
    part.source_block_index();
    return GraphCase{label, std::move(key), std::move(g), std::move(part)};
  };
  std::vector<GraphCase> graphs;
  graphs.push_back(
      opts.smoke
          ? make_case("er", "er-20000x60000",
                      generate_erdos_renyi(20000, 60000, 0xBE7C))
          : make_case("er", "er-100000x300000",
                      generate_erdos_renyi(100000, 300000, 0xBE7C)));
  graphs.push_back(
      opts.smoke
          ? make_case("ba", "ba-20000x6",
                      generate_barabasi_albert(20000, 6, 0xBE7C))
          : make_case("ba", "ba-100000x6",
                      generate_barabasi_albert(100000, 6, 0xBE7C)));

  const std::size_t cells_per_graph = kNumPrograms * kNumLayouts;
  const auto cells = bench::run_cells(
      graphs.size() * cells_per_graph, opts, [&](std::size_t i) {
        const GraphCase& gc = graphs[i / cells_per_graph];
        const Graph& graph = gc.graph;
        const Partitioning& part = gc.part;
        const ProgramCase& pc = kPrograms[(i % cells_per_graph) / kNumLayouts];
        const Layout layout = kLayouts[i % kNumLayouts];
        Cell cell;
        if (opts.smoke) {
          const auto program = pc.make();
          cell.outcome = run_layout(graph, part, *program, layout);
          cell.outcome.checksum = pc.state_fingerprint(*program);
          cell.seconds =
              static_cast<double>(cell.outcome.edges_streamed) / 1e9;
          return cell;
        }
        // Best of three, stopwatch serialised against other cells so
        // --jobs > 1 cannot perturb the measurement.
        cell.seconds = 1e100;
        const std::scoped_lock timing(bench::timing_mutex());
        for (int rep = 0; rep < 3; ++rep) {
          const auto program = pc.make();
          const auto start = clock_type::now();
          cell.outcome = run_layout(graph, part, *program, layout);
          const auto stop = clock_type::now();
          cell.outcome.checksum = pc.state_fingerprint(*program);
          cell.seconds = std::min(
              cell.seconds, std::chrono::duration<double>(stop - start).count());
        }
        return cell;
      });

  // The regression gate: the three dense layouts must agree exactly —
  // iteration count, write total and final-state fingerprint. The
  // frontier walk is held to the fingerprint only: skipping a block
  // forfeits that pass's in-pass propagation through it, so it may take
  // an extra iteration (with correspondingly fewer intermediate writes)
  // on its way to the bit-identical final state.
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (std::size_t a = 0; a < kNumPrograms; ++a) {
      const std::size_t base = g * cells_per_graph + a * kNumLayouts;
      const RunOutcome& ref = cells[base].outcome;
      for (std::size_t l = 1; l < kNumLayouts; ++l) {
        const RunOutcome& got = cells[base + l].outcome;
        const bool dense = kLayouts[l] != Layout::kSoaReuse;
        HYVE_CHECK_MSG((!dense || (got.iterations == ref.iterations &&
                                   got.writes == ref.writes)) &&
                           got.checksum == ref.checksum,
                       kPrograms[a].label
                           << " " << layout_name(kLayouts[l]) << " on "
                           << graphs[g].label << " diverged from per-edge: "
                           << got.iterations << "/" << got.writes << "/"
                           << got.checksum << " vs " << ref.iterations << "/"
                           << ref.writes << "/" << ref.checksum);
      }
    }
  }

  Table table({"graph", "algorithm", "layout", "iters", "Medges streamed",
               "ms", "vs block-AoS"});
  std::vector<double> soa_ratios;
  std::vector<double> reuse_ratios;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (std::size_t a = 0; a < kNumPrograms; ++a) {
      const std::size_t base = g * cells_per_graph + a * kNumLayouts;
      const double aos_s = cells[base + 1].seconds;  // kLayouts[1] = AoS
      for (std::size_t l = 0; l < kNumLayouts; ++l) {
        const Cell& cell = cells[base + l];
        const double ratio = aos_s / cell.seconds;
        table.add_row({graphs[g].label, kPrograms[a].label,
                       layout_name(kLayouts[l]),
                       std::to_string(cell.outcome.iterations),
                       Table::num(static_cast<double>(
                                      cell.outcome.edges_streamed) /
                                      1e6,
                                  2),
                       Table::num(cell.seconds * 1e3, 2),
                       Table::num(ratio, 2) + "x"});
        if (kLayouts[l] == Layout::kBlockSoa) soa_ratios.push_back(ratio);
        if (kLayouts[l] == Layout::kSoaReuse) reuse_ratios.push_back(ratio);
      }
    }
  }
  table.print(std::cout);

  // Recorded so --json runs land in the perf history: one synthetic run
  // per cell whose exec time is the kernel measurement (all of it
  // attributed to the process phase; there is no simulated machine here).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    RunReport report;
    report.config_label =
        std::string("kernel:") + layout_name(kLayouts[i % kNumLayouts]);
    report.algorithm = kPrograms[(i % cells_per_graph) / kNumLayouts].label;
    report.num_intervals = kNumIntervals;
    report.iterations = cell.outcome.iterations;
    report.edges_traversed = cell.outcome.edges_streamed;
    report.exec_time_ns = cell.seconds * 1e9;
    report.phases.time(Phase::kProcess) = report.exec_time_ns;
    bench::record_report(graphs[i / cells_per_graph].key, report);
  }

  bench::paper_note(
      "engineering suite, not a paper figure: the functional engine must "
      "get faster without changing a single result");
  bench::measured_note(
      "geomean vs block-AoS kernels: block-SoA " +
      Table::num(bench::geomean(soa_ratios), 2) + "x, SoA+reuse " +
      Table::num(bench::geomean(reuse_ratios), 2) + "x" +
      (opts.smoke ? " (smoke: work proxies, not wall clock)" : ""));
  opts.finish();
  return 0;
}
