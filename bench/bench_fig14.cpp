// Fig. 14: energy-efficiency improvement from the inter-PU data-sharing
// scheme (§4.2), per algorithm and dataset. Baseline: identical machine
// that writes vertex data back to global memory and reloads every block's
// source interval (N^2 loads per super block instead of N).
//
// Paper: 1.15x (BFS), 1.47x (CC), 2.19x (PR) — 1.60x on average; PR
// gains most because its vertex record is the widest.
#include <iostream>
#include <map>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig14",
      "Fig. 14: energy-efficiency improvement from inter-PU data sharing");
  bench::header("Fig. 14", "Data-sharing improvement (w/ vs w/o sharing)");

  HyveConfig with = HyveConfig::hyve_opt();
  with.power_gating = false;  // isolate the sharing effect (Table 4)
  HyveConfig without = with;
  without.data_sharing = false;

  exp::SweepSpec spec;
  spec.configs = {without, with};
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  spec.graphs = bench::dataset_keys(opts);
  const bench::GridResults grid = bench::run_grid(spec, opts);

  Table table({"algorithm", "dataset", "w/o sharing (MTEPS/W)",
               "w/ sharing (MTEPS/W)", "improvement"});
  std::vector<double> all;
  std::map<std::string, std::vector<double>> by_algo;
  for (std::size_t a = 0; a < spec.algorithms.size(); ++a) {
    for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
      const double wo = grid.at(0, a, d).mteps_per_watt();
      const double w = grid.at(1, a, d).mteps_per_watt();
      table.add_row({algorithm_name(spec.algorithms[a]),
                     dataset_name(opts.datasets[d]), Table::num(wo, 0),
                     Table::num(w, 0), Table::num(w / wo, 2) + "x"});
      all.push_back(w / wo);
      by_algo[algorithm_name(spec.algorithms[a])].push_back(w / wo);
    }
  }
  table.print(std::cout);

  for (auto& [algo, ratios] : by_algo)
    std::cout << algo << " average improvement: "
              << Table::num(bench::geomean(ratios), 2) << "x\n";
  std::cout << "overall average improvement: "
            << Table::num(bench::geomean(all), 2) << "x\n";

  bench::paper_note("1.15x / 1.47x / 2.19x on BFS / CC / PR, 1.60x average");
  bench::measured_note(
      "same ordering (PR > CC > BFS) — PR's 8-byte record moves the most "
      "interval traffic");
  opts.finish();
  return 0;
}
