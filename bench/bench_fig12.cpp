// Fig. 12: normalised preprocessing speed as the number of blocks grows
// (4x4 ... 512x512). Wall-clock measurement of the interval-block
// partitioner — the paper's finding is that preprocessing speed is flat
// up to ~32x32 blocks and collapses beyond 64x64 (block addressing
// overheads dominate).
//
// Under --smoke the measured seconds are replaced by a deterministic
// work-proportional proxy ((E + P^2) / 1e9) so the output is stable
// across runs and --jobs values; those numbers are not measurements.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "graph/partition.hpp"

namespace {

double partition_seconds(const hyve::Graph& g, std::uint32_t p, bool smoke) {
  if (smoke) {
    const hyve::Partitioning part(g, p);
    if (part.num_edges() != g.num_edges()) std::abort();  // keep it honest
    return (static_cast<double>(g.num_edges()) +
            static_cast<double>(p) * p) /
           1e9;
  }
  using clock = std::chrono::steady_clock;
  // Serialise the stopwatch against other cells so --jobs > 1 cannot
  // perturb the measurement.
  const std::scoped_lock timing(hyve::bench::timing_mutex());
  // Best of three to de-noise the single-core machine.
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = clock::now();
    const hyve::Partitioning part(g, p);
    const auto stop = clock::now();
    best = std::min(best, std::chrono::duration<double>(stop - start).count());
    if (part.num_edges() != g.num_edges()) std::abort();  // keep it honest
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig12",
      "Fig. 12: preprocessing speed of the interval-block partitioner");
  bench::header("Fig. 12", "Normalised preprocessing speed vs #blocks");

  const std::uint32_t interval_counts[] = {4, 8, 16, 32, 64, 128, 256, 512};
  const std::size_t num_counts = std::size(interval_counts);

  const std::vector<double> seconds = bench::run_cells(
      opts.datasets.size() * num_counts, opts, [&](std::size_t i) {
        const DatasetId id = opts.datasets[i / num_counts];
        const std::uint32_t p = interval_counts[i % num_counts];
        return partition_seconds(dataset_graph(id), p, opts.smoke);
      });

  Table table({"dataset", "#blocks", "time (ms)", "normalised speed"});
  for (std::size_t d = 0; d < opts.datasets.size(); ++d) {
    const double base = seconds[d * num_counts];
    for (std::size_t c = 0; c < num_counts; ++c) {
      const std::uint32_t p = interval_counts[c];
      const double secs = seconds[d * num_counts + c];
      table.add_row({dataset_name(opts.datasets[d]),
                     std::to_string(p) + "x" + std::to_string(p),
                     Table::num(secs * 1e3, 2), Table::num(base / secs, 3)});
    }
  }
  table.print(std::cout);

  bench::paper_note(
      "speed is flat up to 32x32 blocks and drops sharply from 64x64 on");
  bench::measured_note(
      "normalised speed stays near 1 for small grids and falls for large "
      "ones (histogram of P^2 counters stops fitting in cache)");
  opts.finish();
  return 0;
}
