// Fig. 12: normalised preprocessing speed as the number of blocks grows
// (4x4 ... 512x512). Wall-clock measurement of the interval-block
// partitioner — the paper's finding is that preprocessing speed is flat
// up to ~32x32 blocks and collapses beyond 64x64 (block addressing
// overheads dominate).
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "graph/partition.hpp"

namespace {

double partition_seconds(const hyve::Graph& g, std::uint32_t p) {
  using clock = std::chrono::steady_clock;
  // Best of three to de-noise the single-core machine.
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = clock::now();
    const hyve::Partitioning part(g, p);
    const auto stop = clock::now();
    best = std::min(best, std::chrono::duration<double>(stop - start).count());
    if (part.num_edges() != g.num_edges()) std::abort();  // keep it honest
  }
  return best;
}

}  // namespace

int main() {
  using namespace hyve;
  bench::header("Fig. 12", "Normalised preprocessing speed vs #blocks");

  const std::uint32_t interval_counts[] = {4, 8, 16, 32, 64, 128, 256, 512};

  Table table({"dataset", "#blocks", "time (ms)", "normalised speed"});
  for (const DatasetId id : kAllDatasets) {
    const Graph& g = dataset_graph(id);
    double base = -1;
    for (const std::uint32_t p : interval_counts) {
      const double secs = partition_seconds(g, p);
      if (base < 0) base = secs;
      table.add_row({dataset_name(id),
                     std::to_string(p) + "x" + std::to_string(p),
                     Table::num(secs * 1e3, 2), Table::num(base / secs, 3)});
    }
  }
  table.print(std::cout);

  bench::paper_note(
      "speed is flat up to 32x32 blocks and drops sharply from 64x64 on");
  bench::measured_note(
      "normalised speed stays near 1 for small grids and falls for large "
      "ones (histogram of P^2 counters stops fitting in cache)");
  return 0;
}
