// Fig. 21: overall GraphR vs HyVE comparison — delay, energy and EDP
// ratios (GraphR/HyVE, > 1 favours HyVE) for BFS, CC, PR, SSSP and SpMV
// on all five datasets.
//
// Paper: HyVE is 5.12x faster with 2.83x lower energy, i.e. 17.63x lower
// EDP, because GraphR must write every edge into a crossbar (3.91 nJ,
// 50.88 ns) before computing on it.
#include <algorithm>
#include <iostream>

#include "baselines/graphr.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_fig21",
      "Fig. 21: GraphR vs HyVE delay, energy, and EDP ratios");
  bench::header("Fig. 21", "GraphR/HyVE delay, energy, EDP (>1 favours HyVE)");

  const std::size_t num_datasets = opts.datasets.size();
  const std::size_t num_algos = std::size(kAllAlgorithms);

  struct Cell {
    double delay;
    double energy;
  };
  const std::vector<Cell> cells = bench::run_cells(
      num_algos * num_datasets, opts, [&](std::size_t i) {
        const Algorithm algo = kAllAlgorithms[i / num_datasets];
        const DatasetId id = opts.datasets[i % num_datasets];
        const RunReport h =
            bench::run_dataset(HyveConfig::hyve_opt(), id, algo);
        const GraphRReport r = GraphRModel().run(dataset_graph(id), algo);
        return Cell{r.exec_time_ns / h.exec_time_ns,
                    r.total_energy_pj() / h.total_energy_pj()};
      });

  Table table({"algorithm", "dataset", "delay (G/H)", "energy (G/H)",
               "EDP (G/H)"});
  std::vector<double> delays, energies, edps;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double d = cells[i].delay;
    const double e = cells[i].energy;
    table.add_row({algorithm_name(kAllAlgorithms[i / num_datasets]),
                   dataset_name(opts.datasets[i % num_datasets]),
                   Table::num(d, 2), Table::num(e, 2), Table::num(d * e, 2)});
    delays.push_back(d);
    energies.push_back(e);
    edps.push_back(d * e);
  }
  table.print(std::cout);

  Table summary({"metric", "paper", "measured (geomean)"});
  summary.add_row({"speedup", "5.12x", Table::num(bench::geomean(delays), 2) + "x"});
  summary.add_row(
      {"energy reduction", "2.83x", Table::num(bench::geomean(energies), 2) + "x"});
  summary.add_row({"EDP reduction", "17.63x", Table::num(bench::geomean(edps), 2) + "x"});
  summary.print(std::cout);

  bench::paper_note("5.12x / 2.83x / 17.63x (delay / energy / EDP)");
  bench::measured_note(
      "HyVE wins every cell; crossbar configuration writes dominate "
      "GraphR exactly as §6.4 predicts");
  opts.finish();
  return 0;
}
