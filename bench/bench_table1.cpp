// Table 1: average number of edges in non-empty 8x8 blocks (N_avg).
//
// The paper's point: even after dividing the adjacency matrix into 8x8
// blocks (64 possible edges each), real graphs average only 1.23-2.38
// edges per non-empty block, so GraphR's crossbars run nearly empty.
#include <cmath>
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace hyve;
  const bench::Options opts = bench::parse_args(
      argc, argv, "bench_table1",
      "Table 1: average edges per non-empty 8x8 block");
  bench::header("Table 1", "Average edges in non-empty 8x8 blocks");

  const std::map<DatasetId, double> paper_n_avg = {
      {DatasetId::kYT, 1.44}, {DatasetId::kWK, 1.23}, {DatasetId::kAS, 2.38},
      {DatasetId::kLJ, 1.49}, {DatasetId::kTW, 1.73}};

  const auto rows = bench::run_cells(
      opts.datasets.size(), opts,
      [&](std::size_t i) -> std::vector<std::string> {
        const DatasetId id = opts.datasets[i];
        const BlockOccupancy occ = block_occupancy(dataset_graph(id), 8);
        return {dataset_name(id), std::to_string(occ.non_empty_blocks),
                Table::num(occ.avg_edges_per_non_empty, 2),
                Table::num(paper_n_avg.at(id), 2),
                std::to_string(occ.max_edges_in_block)};
      });

  Table table({"dataset", "non-empty blocks", "N_avg (measured)",
               "N_avg (paper)", "max edges in a block"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);

  bench::paper_note(
      "N_avg is 1.23-2.38: 8x8 crossbars hold ~2% of their capacity");
  bench::measured_note(
      "synthetic stand-ins land in the same sparse band (shape preserved)");
  opts.finish();
  return 0;
}
