// Cross-commit perf trajectory: an append-only ledger of bench runs.
//
// A bench report (core/bench_json.hpp) is one run at one commit. The
// perf history is the trajectory: `hyve_report --record` folds each
// report into one PerfRecord — headline numbers plus provenance (git
// rev, host fingerprint, jobs, timestamp) — appended as one JSON line
// to <dir>/<bench>.jsonl. Records are tiny and self-identifying, so
// the ledger survives schema-stable across commits and machines, and
// `--trend` / `--compare-to-baseline` can flag regressions without the
// original reports.
//
// Comparability: wall-clock numbers only mean something against the
// same machine and worker count, so trend analysis compares the latest
// record only against prior records with the same (hostname, jobs,
// smoke) signature and says so when none match.
//
// Named baselines are single-record files under <dir>/baselines/,
// pinned snapshots for "never regress past the v1.2 numbers" checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyve {

struct BenchReportDoc;

inline constexpr int kPerfHistorySchemaVersion = 1;
inline constexpr const char* kPerfHistorySchemaName = "hyve-perf-history";

// One bench run summarised for the trajectory ledger.
struct PerfRecord {
  std::string bench;        // producing binary, e.g. "bench_fig10"
  std::string git_rev;      // commit of the producing binary
  std::string recorded_at;  // ISO-8601 UTC at --record time
  std::string hostname;     // measuring machine (fingerprint)
  std::string cpu_model;    // "" when /proc/cpuinfo is unreadable
  std::uint64_t cpus = 0;   // hardware threads on the machine
  std::int64_t jobs = 0;    // resolved worker count of the run
  bool smoke = false;       // smoke-sized run, not a measurement
  std::uint64_t cells = 0;  // simulated cells in the report
  // Headline numbers. wall_ms/max_rss_kb are host-side (lower is
  // better); energy_pj/exec_time_ns are simulated totals, carried for
  // context and compared only across identical grids.
  double wall_ms = 0;
  std::uint64_t max_rss_kb = 0;
  double energy_pj = 0;
  double exec_time_ns = 0;
};

// The ledger-relevant summary of a parsed report. Provenance fields the
// report does not carry (recorded_at, host fingerprint) stay empty for
// the caller to fill.
PerfRecord perf_record_from_report(const BenchReportDoc& doc);

// Single-line JSON with sorted keys; parse validates schema and types
// and throws std::runtime_error naming the problem.
std::string perf_record_to_json(const PerfRecord& record);
PerfRecord perf_record_from_json(const std::string& json);

// The ledger file for a bench under the history directory.
std::string perf_history_path(const std::string& dir,
                              const std::string& bench);

// Appends one record line to <dir>/<bench>.jsonl, creating the
// directory when missing. Round-trips the record first, so a line the
// parser would reject never reaches the ledger.
void append_perf_record(const std::string& dir, const PerfRecord& record);

// All records of one ledger file in append order. Throws on unreadable
// files or any malformed line (the ledger is append-only and proofed on
// write, so a bad line means outside interference worth failing on).
std::vector<PerfRecord> load_perf_history(const std::string& path);

// Every ledger under the history directory, sorted by bench name.
std::vector<std::string> list_perf_histories(const std::string& dir);

// Named baseline snapshots: single-record files under <dir>/baselines/.
void save_perf_baseline(const std::string& dir, const std::string& name,
                        const PerfRecord& record);
PerfRecord load_perf_baseline(const std::string& dir,
                              const std::string& name);

// One headline metric of the latest record vs its reference value.
struct PerfTrendLine {
  std::string metric;      // "wall_ms", "max_rss_kb", ...
  double reference = 0;    // median of comparable priors, or baseline
  double latest = 0;
  double delta_pct = 0;    // (latest - reference) / reference * 100
  bool regressed = false;  // beyond threshold in the worse direction
};

struct PerfTrendResult {
  std::string bench;
  std::size_t records = 0;     // ledger length
  std::size_t comparable = 0;  // priors matching the latest's signature
  std::vector<PerfTrendLine> lines;
  std::size_t regressions = 0;
  std::string note;  // why nothing was compared, when comparable == 0
};

// Latest record vs the median of prior records with the same
// (hostname, jobs, smoke) signature. wall_ms and max_rss_kb regress
// when they grow more than threshold_pct percent; energy_pj and
// exec_time_ns are additionally compared when the cell count matches
// (different grids are incomparable).
PerfTrendResult trend_perf_history(const std::vector<PerfRecord>& records,
                                   double threshold_pct);

// Latest record vs one pinned baseline record, same metric rules.
PerfTrendResult compare_to_baseline(const PerfRecord& baseline,
                                    const PerfRecord& latest,
                                    double threshold_pct);

// Human-readable rendering, one line per metric plus a summary line.
std::string format_perf_trend(const PerfTrendResult& result,
                              double threshold_pct);

}  // namespace hyve
