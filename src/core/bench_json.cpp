#include "core/bench_json.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/report_io.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

using FieldMap = std::map<std::string, std::string>;

const std::string& get(const FieldMap& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end())
    throw std::runtime_error("bench report: missing field \"" + key + "\"");
  return it->second;
}

double get_num(const FieldMap& fields, const std::string& key) {
  const std::string& token = get(fields, key);
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("bench report: field \"" + key +
                             "\" is not a number: \"" + token + "\"");
  }
}

EnergyComponent component_from_name(const std::string& name) {
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    if (component_name(c) == name) return c;
  }
  throw std::runtime_error("bench report: unknown energy component \"" +
                           name + "\"");
}

Phase phase_from_name(const std::string& name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (phase_name(p) == name) return p;
  }
  throw std::runtime_error("bench report: unknown phase \"" + name + "\"");
}

bool close(double a, double b, double rel_tol) {
  return std::abs(a - b) <= rel_tol * std::max({std::abs(a), std::abs(b), 1.0});
}

std::string run_key(const std::string& config, const std::string& algorithm,
                    const std::string& graph) {
  return config + "/" + algorithm + "/" + graph;
}

void write_ledger_cells(std::ostream& os, const EnergyLedger& ledger) {
  os << '[';
  bool first = true;
  for (const auto& [key, pj] : ledger.cells()) {
    if (!first) os << ',';
    first = false;
    os << "{\"component\":";
    write_escaped(os, component_name(key.component));
    os << ",\"phase\":";
    write_escaped(os, phase_name(key.phase));
    os << ",\"unit\":";
    write_escaped(os, key.unit);
    os << ",\"pj\":" << std::setprecision(12) << pj << '}';
  }
  os << ']';
}

EnergyLedger parse_ledger_cells(const FieldMap& fields,
                                const std::string& prefix) {
  EnergyLedger ledger;
  for (std::size_t i = 0;; ++i) {
    const std::string base = prefix + std::to_string(i) + ".";
    if (fields.count(base + "component") == 0) break;
    ledger.charge(component_from_name(get(fields, base + "component")),
                  phase_from_name(get(fields, base + "phase")),
                  get(fields, base + "unit"), get_num(fields, base + "pj"));
  }
  return ledger;
}

bool ledgers_close(const EnergyLedger& a, const EnergyLedger& b,
                   double rel_tol) {
  if (a.size() != b.size()) return false;
  auto ita = a.cells().begin();
  auto itb = b.cells().begin();
  for (; ita != a.cells().end(); ++ita, ++itb) {
    if (ita->first.component != itb->first.component ||
        ita->first.phase != itb->first.phase ||
        ita->first.unit != itb->first.unit ||
        !close(ita->second, itb->second, rel_tol))
      return false;
  }
  return true;
}

}  // namespace

std::string build_git_rev() {
#ifdef HYVE_GIT_REV
  return HYVE_GIT_REV;
#else
  return "unknown";
#endif
}

std::string build_type() {
#ifdef HYVE_BUILD_TYPE
  return HYVE_BUILD_TYPE;
#else
  return "unknown";
#endif
}

void add_attribution_metadata(obs::Trace& trace, int argc,
                              const char* const* argv) {
  std::string cmdline;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) cmdline += ' ';
    cmdline += argv[i];
  }
  trace.metadata("run_attribution", {{"build_type", build_type()},
                                     {"cmdline", cmdline},
                                     {"git_rev", build_git_rev()}});
}

std::string bench_report_to_json(const BenchReportDoc& doc) {
  // Refuse to serialise anything the checker would reject.
  for (const BenchRun& run : doc.runs) {
    run.report.validate_phase_totals();
    run.report.validate_ledger();
  }
  std::ostringstream os;
  os << "{\"schema\":";
  write_escaped(os, kBenchReportSchemaName);
  os << ",\"schema_version\":" << kBenchReportSchemaVersion;
  os << ",\"bench\":";
  write_escaped(os, doc.bench);
  os << ",\"git_rev\":";
  write_escaped(os, doc.git_rev);
  os << ",\"smoke\":" << (doc.smoke ? "true" : "false");
  if (doc.host.present) {
    // The one wall-clock-dependent object; a single "host":{...} group
    // of numeric fields so byte-diff scripts can strip it wholesale.
    os << ",\"host\":{\"jobs\":" << doc.host.jobs
       << ",\"max_rss_kb\":" << doc.host.max_rss_kb
       << ",\"wall_ms\":" << std::setprecision(12) << doc.host.wall_ms
       << '}';
  }
  os << ",\"datasets\":[";
  for (std::size_t i = 0; i < doc.datasets.size(); ++i) {
    if (i > 0) os << ',';
    write_escaped(os, doc.datasets[i]);
  }
  os << ']';
  os << ",\"runs\":[";
  for (std::size_t i = 0; i < doc.runs.size(); ++i) {
    if (i > 0) os << ',';
    os << "{\"graph\":";
    write_escaped(os, doc.runs[i].graph_key);
    os << ",\"report\":";
    write_report_json(os, doc.runs[i].report);
    os << '}';
  }
  os << ']';
  os << ",\"ledger_rollup\":";
  write_ledger_cells(os, doc.ledger_rollup);
  os << ",\"metrics\":{";
  bool first = true;
  for (const auto& [name, value] : doc.metrics) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':' << value;
  }
  os << "}}";
  return os.str();
}

void write_bench_report_file(const std::string& path,
                             const BenchReportDoc& doc) {
  const std::string json = bench_report_to_json(doc);
  // Parse-back proof before anything reaches disk, mirroring
  // validated_report_json(): no tool can write a file --check rejects.
  bench_report_from_json(json);
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open bench report " + path);
  os << json << '\n';
  if (!os.good())
    throw std::runtime_error("failed writing bench report " + path);
}

BenchReportDoc bench_report_from_json(const std::string& json) {
  const FieldMap fields = parse_flat_json(json);

  if (get(fields, "schema") != kBenchReportSchemaName)
    throw std::runtime_error("bench report: schema is \"" +
                             get(fields, "schema") + "\", expected \"" +
                             kBenchReportSchemaName + "\"");
  const double version = get_num(fields, "schema_version");
  if (version != kBenchReportSchemaVersion)
    throw std::runtime_error(
        "bench report: schema_version " + get(fields, "schema_version") +
        " is not supported (this build reads version " +
        std::to_string(kBenchReportSchemaVersion) + ")");

  BenchReportDoc doc;
  doc.bench = get(fields, "bench");
  doc.git_rev = get(fields, "git_rev");
  const std::string& smoke = get(fields, "smoke");
  if (smoke != "true" && smoke != "false")
    throw std::runtime_error("bench report: smoke is \"" + smoke +
                             "\", expected true or false");
  doc.smoke = smoke == "true";

  if (fields.count("host.jobs") != 0) {
    doc.host.present = true;
    doc.host.jobs = static_cast<int>(get_num(fields, "host.jobs"));
    doc.host.max_rss_kb =
        static_cast<std::uint64_t>(get_num(fields, "host.max_rss_kb"));
    doc.host.wall_ms = get_num(fields, "host.wall_ms");
    if (doc.host.wall_ms < 0 || doc.host.jobs < 0)
      throw std::runtime_error("bench report: negative host measurement");
  }

  for (std::size_t i = 0;; ++i) {
    const auto it = fields.find("datasets." + std::to_string(i));
    if (it == fields.end()) break;
    doc.datasets.push_back(it->second);
  }

  EnergyLedger expected_rollup;
  for (std::size_t i = 0;; ++i) {
    const std::string base = "runs." + std::to_string(i) + ".";
    if (fields.count(base + "graph") == 0) break;
    BenchRun run;
    run.graph_key = get(fields, base + "graph");
    run.report = run_report_from_fields(fields, base + "report.");
    expected_rollup += run.report.ledger;
    doc.runs.push_back(std::move(run));
  }

  try {
    doc.ledger_rollup = parse_ledger_cells(fields, "ledger_rollup.");
  } catch (const InvariantError& e) {
    throw std::runtime_error(
        std::string("bench report: ledger rollup invalid: ") + e.what());
  }
  if (!ledgers_close(doc.ledger_rollup, expected_rollup, 1e-6))
    throw std::runtime_error(
        "bench report: ledger_rollup does not equal the cell-wise sum of "
        "the runs' ledgers");

  const std::string metrics_prefix = "metrics.";
  for (auto it = fields.lower_bound(metrics_prefix);
       it != fields.end() && it->first.rfind(metrics_prefix, 0) == 0; ++it) {
    const std::string name = it->first.substr(metrics_prefix.size());
    get_num(fields, it->first);  // numeric or reject
    doc.metrics.emplace(name, it->second);
  }

  return doc;
}

BenchReportDoc read_bench_report_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open bench report " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return bench_report_from_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

BenchCompareResult compare_bench_reports(const BenchReportDoc& old_doc,
                                         const BenchReportDoc& new_doc,
                                         double threshold_pct) {
  struct Metric {
    const char* name;
    double (*value)(const RunReport&);
    bool lower_is_better;
  };
  static const Metric kMetrics[] = {
      {"exec_time_ns", [](const RunReport& r) { return r.exec_time_ns; },
       true},
      {"energy_pj", [](const RunReport& r) { return r.total_energy_pj(); },
       true},
      {"mteps", [](const RunReport& r) { return r.mteps(); }, false},
      {"mteps_per_watt",
       [](const RunReport& r) { return r.mteps_per_watt(); }, false},
  };

  std::map<std::string, const RunReport*> old_runs;
  for (const BenchRun& run : old_doc.runs)
    old_runs.emplace(run_key(run.report.config_label, run.report.algorithm,
                             run.graph_key),
                     &run.report);

  BenchCompareResult result;
  std::map<std::string, const RunReport*> matched;
  for (const BenchRun& run : new_doc.runs) {
    const std::string key = run_key(run.report.config_label,
                                    run.report.algorithm, run.graph_key);
    const auto it = old_runs.find(key);
    if (it == old_runs.end()) {
      result.added.push_back(key);
      continue;
    }
    matched.emplace(key, it->second);
    ++result.cells_compared;
    for (const Metric& m : kMetrics) {
      BenchCompareLine line;
      line.cell = key;
      line.metric = m.name;
      line.old_value = m.value(*it->second);
      line.new_value = m.value(run.report);
      const double base = line.old_value != 0 ? line.old_value : 1.0;
      line.delta_pct = (line.new_value - line.old_value) / base * 100.0;
      line.regressed = m.lower_is_better ? line.delta_pct > threshold_pct
                                         : line.delta_pct < -threshold_pct;
      if (line.regressed) ++result.regressions;
      result.lines.push_back(std::move(line));
    }
  }
  for (const auto& [key, report] : old_runs)
    if (matched.count(key) == 0) result.removed.push_back(key);
  return result;
}

std::string format_bench_compare(const BenchCompareResult& result,
                                 double threshold_pct) {
  std::ostringstream os;
  os << std::setprecision(6);
  for (const BenchCompareLine& line : result.lines) {
    os << line.cell << ' ' << line.metric << ' ' << line.old_value << " -> "
       << line.new_value << " (" << (line.delta_pct >= 0 ? "+" : "")
       << std::setprecision(3) << line.delta_pct << std::setprecision(6)
       << "%)";
    if (line.regressed) os << " REGRESSION";
    os << '\n';
  }
  for (const std::string& key : result.added) os << key << " added\n";
  for (const std::string& key : result.removed) os << key << " removed\n";
  os << result.cells_compared << " cells compared, " << result.added.size()
     << " added, " << result.removed.size() << " removed, "
     << result.regressions << " regression(s) beyond " << threshold_pct
     << "%\n";
  return os.str();
}

}  // namespace hyve
