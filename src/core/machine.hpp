// HyveMachine: the simulated graph-processing accelerator (paper §3-§4).
//
// A run has two halves:
//   * functional — the vertex program executes for real over the
//     interval-block schedule (src/algos), yielding correct algorithm
//     output and the iteration count;
//   * architectural — Algorithm 2's phases (loading, assigning,
//     rerouting, processing, synchronising, updating) are walked block by
//     block to integrate time (Eq. 1 pipeline bound, per-step synchronis-
//     ation across the N processing units) and energy (traffic counts x
//     the technology models of src/memmodel, plus background power over
//     the busy windows, with bank-level power gating where enabled).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algos/frontier.hpp"
#include "algos/runner.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"
#include "graph/partitioner.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"
#include "memmodel/sram.hpp"
#include "sim/energy.hpp"
#include "sim/power_gating.hpp"

namespace hyve {

namespace obs {
class Trace;
}  // namespace obs

struct RunReport {
  std::string config_label;
  std::string algorithm;
  std::uint32_t num_intervals = 0;  // P
  std::uint32_t iterations = 0;
  std::uint64_t edges_traversed = 0;
  // Strategy the schedule was built with (PartitionerSpec::to_string
  // form) and the schedule-quality metrics the paper ties to it:
  // Table 1 N_avg, replication, balance, Fig. 14 sharing, Fig. 15 wake.
  std::string partitioner = "interval";
  PartitionStats partition;
  double exec_time_ns = 0;
  double streaming_time_ns = 0;  // edge memory actively streaming
  AccessStats stats;
  EnergyBreakdown energy;
  // Per-phase attribution of exec_time_ns and the energy total (see
  // Phase in sim/energy.hpp). Its sums equal the run totals; report
  // validation enforces this at 1e-9 relative tolerance so breakdowns
  // can never silently drift from the totals.
  PhaseBreakdown phases;
  // The full energy-attribution ledger: every joule the simulator
  // charged, tagged (component × phase × PU-or-bank). The machine
  // derives `energy` and `phases.energy` from these cells, so the
  // marginals agree by construction; validate_ledger() re-proves it
  // before any serialisation. Empty on hand-built reports.
  EnergyLedger ledger;
  PowerGatingResult bpg;  // zeros when power gating is off/ inapplicable

  // Throws InvariantError unless phases sums to exec_time_ns and
  // total_energy_pj() within `rel_tol` relative tolerance.
  void validate_phase_totals(double rel_tol = 1e-9) const;
  // Throws InvariantError unless the ledger's per-component marginals
  // equal `energy`, its per-phase marginals equal `phases.energy`, and
  // its grand total equals total_energy_pj(), all within `rel_tol`
  // relative tolerance. A report with no ledger cells passes (reports
  // assembled by hand carry no attribution).
  void validate_ledger(double rel_tol = 1e-9) const;

  double total_energy_pj() const { return energy.total_pj(); }
  // Million traversed edges per second.
  double mteps() const;
  // The paper's headline metric (Figs. 13, 16, Table 4).
  double mteps_per_watt() const;
  double edp_pj_ns() const { return total_energy_pj() * exec_time_ns; }
};

// The outcome of the functional half of a run: the algorithm's
// iteration/traversal counts plus, when frontier block skipping is on,
// the per-iteration block trace the accounting walk replays. It depends
// only on (graph image, program, P, frontier mode) — not on the memory
// technologies — so sweeps over memory configs can compute it once and
// replay it per cell (see exp::FunctionalCache).
struct FunctionalOutcome {
  FunctionalResult result;
  std::optional<FrontierTrace> frontier;  // set iff frontier mode was on
  std::uint32_t num_intervals = 0;        // P the schedule was built with

  // Honest size estimate for cache accounting.
  std::size_t approx_bytes() const;
};

class HyveMachine {
 public:
  explicit HyveMachine(HyveConfig config);

  const HyveConfig& config() const { return config_; }

  // Number of vertex intervals P for a graph/algorithm combination: the
  // smallest multiple of N whose intervals fit a per-PU SRAM section.
  std::uint32_t choose_num_intervals(const Graph& graph,
                                     std::uint32_t vertex_value_bytes) const;

  // Simulates the full run of `algorithm` on `graph`. When `trace` is
  // non-null the architectural walk additionally emits Chrome trace
  // events (per-PU block spans, interval transfers, router sharing,
  // power-gating windows) on tracks of process `trace_pid`, with
  // timestamps in simulated nanoseconds.
  RunReport run(const Graph& graph, Algorithm algorithm,
                obs::Trace* trace = nullptr,
                std::uint32_t trace_pid = 1) const;

  // As above with a caller-supplied program (custom algorithms).
  RunReport run(const Graph& graph, VertexProgram& program,
                obs::Trace* trace = nullptr,
                std::uint32_t trace_pid = 1) const;

  // Runs on a graph whose layout preparation was done by the caller —
  // e.g. the memoising caches of src/exp. `graph` must already reflect
  // config().hash_balance (i.e. be the hashed_remap image when that
  // option is on) and `schedule` must partition `graph` into
  // choose_num_intervals() intervals; both are checked. Produces a
  // report identical to run()'s.
  RunReport run_with_schedule(const Graph& graph, const Partitioning& schedule,
                              Algorithm algorithm,
                              obs::Trace* trace = nullptr,
                              std::uint32_t trace_pid = 1) const;
  RunReport run_with_schedule(const Graph& graph, const Partitioning& schedule,
                              VertexProgram& program,
                              obs::Trace* trace = nullptr,
                              std::uint32_t trace_pid = 1) const;

  // The two halves of run_with_schedule(), split so callers can memoize
  // the functional phase across runs whose memory configuration differs
  // but whose functional inputs agree.
  //
  // run_functional_phase executes the vertex program for real (dense or
  // frontier-skipping per config().frontier_block_skipping) and returns
  // everything accounting needs. run_with_functional replays a
  // previously computed outcome through the architectural walk; the
  // outcome must have been produced by a machine with the same frontier
  // mode and P (checked). Composing the two is byte-identical to
  // run_with_schedule().
  FunctionalOutcome run_functional_phase(const Graph& graph,
                                         const Partitioning& schedule,
                                         VertexProgram& program) const;
  RunReport run_with_functional(const Graph& graph,
                                const Partitioning& schedule,
                                VertexProgram& program,
                                const FunctionalOutcome& functional,
                                obs::Trace* trace = nullptr,
                                std::uint32_t trace_pid = 1) const;

 private:
  struct TraceSink;  // trace + pid + track layout (null trace = no-op)

  // Per-PU operation tallies gathered by the architectural walk, so the
  // energy ledger can attribute PU-local energies (pipeline ops, SRAM
  // accesses, router hops) to the unit that incurred them. Empty for the
  // SRAM-less baselines, whose walk has no per-PU structure.
  struct UnitTallies {
    std::vector<std::uint64_t> pu_edges;   // edges processed per PU
    std::vector<std::uint64_t> pu_remote;  // router hops per PU
    std::vector<std::uint64_t> pu_apply;   // apply-step ops per PU
  };

  const MemoryModel& edge_memory() const;
  const MemoryModel& offchip_vertex_memory() const;

  RunReport account(const Graph& graph, VertexProgram& program,
                    const Partitioning& schedule,
                    const FunctionalResult& functional,
                    const FrontierTrace* frontier,
                    const TraceSink& sink) const;
  void account_with_sram(const Graph& graph, const Partitioning& schedule,
                         std::uint32_t value_bytes, bool has_apply,
                         const FrontierTrace* frontier, const TraceSink& sink,
                         RunReport& report, UnitTallies& tallies) const;
  void account_without_sram(const Graph& graph, std::uint32_t value_bytes,
                            RunReport& report) const;

  HyveConfig config_;
  ReramModel reram_;
  DramModel dram_;
  std::optional<SramModel> sram_;
};

}  // namespace hyve
