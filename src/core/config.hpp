// HyVE machine configuration (paper §3, §7.1) and the named configuration
// variants evaluated in Fig. 16/17.
//
// A configuration picks the technology of each level of the hierarchy:
//   edge memory        — ReRAM in HyVE, DRAM in the conventional baselines;
//   off-chip vertex    — DRAM in HyVE (write bandwidth, §3.2), ReRAM in
//                        the acc+ReRAM strawman;
//   on-chip vertex     — per-PU SRAM (source + destination sections), or
//                        absent in acc+DRAM / acc+ReRAM, whose vertex
//                        accesses then go off-chip directly;
// plus the two §4 optimisations: inter-PU data sharing and bank-level
// power gating (only meaningful for a non-volatile edge memory).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/partitioner.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/memtech.hpp"
#include "memmodel/reram.hpp"
#include "util/units.hpp"

namespace hyve {

struct HyveConfig {
  std::string label = "acc+HyVE-opt";

  int num_pus = 8;  // §7.1: 8 processing units

  // Bytes per stored edge: 8 = two 32-bit vertex ids (§6.2); 12 adds a
  // 32-bit constant weight (§3.1 "possibly a constant edge weight").
  std::uint32_t edge_bytes = 8;

  // Per-PU on-chip vertex SRAM (holds one source + one destination
  // interval); 0 disables the on-chip level entirely.
  std::uint64_t sram_bytes_per_pu = units::MiB(2);

  bool data_sharing = true;   // §4.2
  bool power_gating = true;   // §4.1 (requires ReRAM edge memory)

  // Hash-based vertex remapping before interval-block partitioning
  // (ForeGraph/GraphH, §4.3) to balance block populations across PUs.
  // When on, the machine simulates the permuted layout; algorithm outputs
  // are then in permuted id space — use run_functional() directly when
  // per-vertex results matter.
  bool hash_balance = true;
  std::uint64_t hash_balance_seed = 0x48795645;

  // Vertex→interval partitioning strategy (graph/partitioner.hpp). The
  // default interval-block split is the paper's equal-width scheme;
  // set_partitioner() switches strategy and annotates the label so
  // reports and caches distinguish strategies.
  PartitionerSpec partitioner;

  // Extension beyond the paper's dense model: skip blocks whose source
  // interval saw no change in the previous iteration (exact for the
  // monotone-relaxation algorithms; PageRank degenerates to full passes).
  // Skipped blocks stream no edges, issue no PU ops, and leave their
  // banks power-gated. Default off = paper-faithful dense passes.
  bool frontier_block_skipping = false;

  MemTech edge_memory_tech = MemTech::kReram;
  MemTech offchip_vertex_tech = MemTech::kDram;

  ReramConfig reram;  // applied wherever a level uses ReRAM
  DramConfig dram;    // applied wherever a level uses DRAM

  bool has_onchip_vertex_memory() const { return sram_bytes_per_pu > 0; }

  // Switches the partitioning strategy and keeps the label in sync:
  // a non-default strategy appends "~<spec>" (e.g. "acc+HyVE-opt~hep:tau=2")
  // so sweep dedup keys and report rows stay distinct per strategy.
  void set_partitioner(const PartitionerSpec& spec);

  // Throws InvariantError on inconsistent combinations.
  void validate() const;

  // ---- the named variants of Fig. 16 ----
  static HyveConfig hyve_opt();    // acc+HyVE-opt: sharing + power gating
  static HyveConfig hyve();        // acc+HyVE: hybrid hierarchy only
  static HyveConfig sram_dram();   // acc+SRAM+DRAM ("SD")
  static HyveConfig acc_dram();    // acc+DRAM: no on-chip vertex memory
  static HyveConfig acc_reram();   // acc+ReRAM: ReRAM everywhere
};

// The accelerator variants of Fig. 16, in the paper's bar order.
std::vector<HyveConfig> fig16_accelerator_configs();

// Inverse of the named-variant labels — the single source of truth for
// string→HyveConfig mapping. Accepts both the CLI short names ("opt",
// "hyve", "sd", "dram", "reram") and the full Fig. 16 labels
// ("acc+HyVE-opt", ...).
std::optional<HyveConfig> parse_config_label(const std::string& name);

}  // namespace hyve
