#include "core/report_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace hyve {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  HYVE_CHECK_MSG(std::isfinite(v), "non-finite value in report");
  os << std::setprecision(12) << v;
}

}  // namespace

void write_report_json(std::ostream& os, const RunReport& r) {
  os << '{';
  os << "\"config\":";
  write_escaped(os, r.config_label);
  os << ",\"algorithm\":";
  write_escaped(os, r.algorithm);
  os << ",\"num_intervals\":" << r.num_intervals;
  os << ",\"iterations\":" << r.iterations;
  os << ",\"edges_traversed\":" << r.edges_traversed;
  os << ",\"partitioner\":";
  write_escaped(os, r.partitioner);
  os << ",\"partition\":{\"n_avg\":";
  write_number(os, r.partition.n_avg);
  os << ",\"replication_factor\":";
  write_number(os, r.partition.replication_factor);
  os << ",\"interval_balance\":";
  write_number(os, r.partition.interval_balance);
  os << ",\"remote_edge_fraction\":";
  write_number(os, r.partition.remote_edge_fraction);
  os << ",\"bank_wake_fraction\":";
  write_number(os, r.partition.bank_wake_fraction);
  os << '}';
  os << ",\"exec_time_ns\":";
  write_number(os, r.exec_time_ns);
  os << ",\"streaming_time_ns\":";
  write_number(os, r.streaming_time_ns);
  os << ",\"energy_pj\":";
  write_number(os, r.total_energy_pj());
  os << ",\"mteps\":";
  write_number(os, r.mteps());
  os << ",\"mteps_per_watt\":";
  write_number(os, r.mteps_per_watt());
  os << ",\"energy_breakdown_pj\":{";
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    if (i > 0) os << ',';
    write_escaped(os, component_name(c));
    os << ':';
    write_number(os, r.energy[c]);
  }
  os << '}';
  os << ",\"phase_time_ns\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (i > 0) os << ',';
    write_escaped(os, phase_name(p));
    os << ':';
    write_number(os, r.phases.time(p));
  }
  os << '}';
  os << ",\"phase_energy_pj\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (i > 0) os << ',';
    write_escaped(os, phase_name(p));
    os << ':';
    write_number(os, r.phases.energy(p));
  }
  os << '}';
  // The attribution ledger, one cell per element; the map iterates in
  // key order so the array is deterministic. Absent (empty) for
  // hand-assembled reports and pre-ledger files.
  if (!r.ledger.empty()) {
    os << ",\"energy_ledger\":[";
    bool first = true;
    for (const auto& [key, pj] : r.ledger.cells()) {
      if (!first) os << ',';
      first = false;
      os << "{\"component\":";
      write_escaped(os, component_name(key.component));
      os << ",\"phase\":";
      write_escaped(os, phase_name(key.phase));
      os << ",\"unit\":";
      write_escaped(os, key.unit);
      os << ",\"pj\":";
      write_number(os, pj);
      os << '}';
    }
    os << ']';
  }
  os << ",\"stats\":{"
     << "\"edge_bytes_read\":" << r.stats.edge_bytes_read
     << ",\"edge_stream_passes\":" << r.stats.edge_stream_passes
     << ",\"offchip_vertex_bytes_read\":" << r.stats.offchip_vertex_bytes_read
     << ",\"offchip_vertex_bytes_written\":"
     << r.stats.offchip_vertex_bytes_written
     << ",\"offchip_vertex_random_reads\":"
     << r.stats.offchip_vertex_random_reads
     << ",\"offchip_vertex_random_writes\":"
     << r.stats.offchip_vertex_random_writes
     << ",\"sram_random_reads\":" << r.stats.sram_random_reads
     << ",\"sram_random_writes\":" << r.stats.sram_random_writes
     << ",\"sram_fill_bytes\":" << r.stats.sram_fill_bytes
     << ",\"sram_drain_bytes\":" << r.stats.sram_drain_bytes
     << ",\"router_hops\":" << r.stats.router_hops
     << ",\"edge_ops\":" << r.stats.edge_ops
     << ",\"vertex_ops\":" << r.stats.vertex_ops
     << ",\"interval_loads\":" << r.stats.interval_loads
     << ",\"interval_writebacks\":" << r.stats.interval_writebacks << '}';
  os << ",\"power_gating\":{"
     << "\"gated_background_pj\":";
  write_number(os, r.bpg.gated_background_pj);
  os << ",\"awake_background_pj\":";
  write_number(os, r.bpg.awake_background_pj);
  os << ",\"idle_background_pj\":";
  write_number(os, r.bpg.idle_background_pj);
  os << ",\"ungated_background_pj\":";
  write_number(os, r.bpg.ungated_background_pj);
  os << ",\"wake_energy_pj\":";
  write_number(os, r.bpg.wake_energy_pj);
  os << ",\"exposed_wake_time_ns\":";
  write_number(os, r.bpg.exposed_wake_time_ns);
  os << ",\"bank_wakes\":" << r.bpg.bank_wakes << '}';
  os << '}';
}

std::string report_to_json(const RunReport& report) {
  std::ostringstream os;
  write_report_json(os, report);
  return os.str();
}

namespace {

// Recursive-descent parser for the flat two-level schema above. Values
// land in a dotted-key map ("stats.edge_ops" → raw token); strings are
// unescaped, numbers kept as text so integers round-trip exactly.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : s_(text) {}

  std::map<std::string, std::string> parse() {
    object("");
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return std::move(fields_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("run_report_from_json: " + what +
                             " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string string_token() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          out += static_cast<char>(
              std::stoi(s_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::string number_token() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a number");
    return s_.substr(start, pos_ - start);
  }

  std::string literal_token() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isalpha(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    const std::string token = s_.substr(start, pos_ - start);
    if (token != "true" && token != "false" && token != "null")
      fail("unknown literal \"" + token + "\"");
    return token;
  }

  void value(const std::string& key) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      object(key + ".");
    } else if (c == '[') {
      array(key + ".");
    } else if (c == '"') {
      fields_[key] = string_token();
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      fields_[key] = literal_token();
    } else {
      fields_[key] = number_token();
    }
  }

  void object(const std::string& prefix) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = prefix + string_token();
      skip_ws();
      expect(':');
      value(key);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  // Array elements land under "prefix.N" keys (N = element index), so
  // consumers walk them with has("prefix.0..."), has("prefix.1..."), ...
  void array(const std::string& prefix) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    std::size_t index = 0;
    while (true) {
      value(prefix + std::to_string(index));
      ++index;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string> fields_;
};

// Typed access over the dotted-key map. Every conversion failure —
// missing key, non-numeric token, negative value for an unsigned field,
// trailing garbage — surfaces as std::runtime_error naming the field, so
// malformed records fail loudly instead of half-parsing.
class FieldReader {
 public:
  FieldReader(const std::map<std::string, std::string>& fields,
              std::string prefix)
      : fields_(fields), prefix_(std::move(prefix)) {}

  bool has(const std::string& key) const {
    return fields_.count(prefix_ + key) > 0;
  }

  const std::string& raw(const std::string& key) const {
    const auto it = fields_.find(prefix_ + key);
    if (it == fields_.end())
      throw std::runtime_error("run_report_from_json: missing field \"" +
                               prefix_ + key + "\"");
    return it->second;
  }

  std::string str(const std::string& key) const { return raw(key); }

  double num(const std::string& key) const {
    const std::string& token = raw(key);
    try {
      std::size_t used = 0;
      const double v = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument("trailing");
      return v;
    } catch (const std::exception&) {
      fail_type(key, token, "a number");
    }
  }

  std::uint64_t u64(const std::string& key) const {
    const std::string& token = raw(key);
    try {
      // stoull happily wraps negatives; refuse them explicitly.
      if (!token.empty() && token[0] == '-')
        throw std::invalid_argument("negative");
      std::size_t used = 0;
      const std::uint64_t v = std::stoull(token, &used);
      if (used != token.size()) throw std::invalid_argument("trailing");
      return v;
    } catch (const std::exception&) {
      fail_type(key, token, "a non-negative integer");
    }
  }

  std::uint32_t u32(const std::string& key) const {
    const std::uint64_t v = u64(key);
    if (v > std::numeric_limits<std::uint32_t>::max())
      fail_type(key, raw(key), "a 32-bit integer");
    return static_cast<std::uint32_t>(v);
  }

 private:
  [[noreturn]] void fail_type(const std::string& key,
                              const std::string& token,
                              const std::string& expected) const {
    throw std::runtime_error("run_report_from_json: field \"" + prefix_ +
                             key + "\" is not " + expected + ": \"" + token +
                             "\"");
  }

  const std::map<std::string, std::string>& fields_;
  std::string prefix_;
};

bool close(double a, double b, double rel_tol) {
  return std::abs(a - b) <= rel_tol * std::max({std::abs(a), std::abs(b), 1.0});
}

EnergyComponent component_from_name(const std::string& name) {
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    if (component_name(c) == name) return c;
  }
  throw std::runtime_error(
      "run_report_from_json: unknown energy component \"" + name + "\"");
}

Phase phase_from_name(const std::string& name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (phase_name(p) == name) return p;
  }
  throw std::runtime_error("run_report_from_json: unknown phase \"" + name +
                           "\"");
}

}  // namespace

std::map<std::string, std::string> parse_flat_json(const std::string& text) {
  return FlatJsonParser(text).parse();
}

RunReport run_report_from_fields(
    const std::map<std::string, std::string>& fields,
    const std::string& prefix) {
  const FieldReader f(fields, prefix);

  RunReport r;
  r.config_label = f.str("config");
  r.algorithm = f.str("algorithm");
  r.num_intervals = f.u32("num_intervals");
  r.iterations = f.u32("iterations");
  r.edges_traversed = f.u64("edges_traversed");
  r.exec_time_ns = f.num("exec_time_ns");
  r.streaming_time_ns = f.num("streaming_time_ns");

  // Partitioner fields postdate the original schema; absent fields
  // (pre-partitioner files) keep the defaults (interval strategy, zeros).
  if (f.has("partitioner")) r.partitioner = f.str("partitioner");
  if (f.has("partition.n_avg")) {
    r.partition.n_avg = f.num("partition.n_avg");
    r.partition.replication_factor = f.num("partition.replication_factor");
    r.partition.interval_balance = f.num("partition.interval_balance");
    r.partition.remote_edge_fraction = f.num("partition.remote_edge_fraction");
    r.partition.bank_wake_fraction = f.num("partition.bank_wake_fraction");
  }

  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    r.energy[c] = f.num("energy_breakdown_pj." + component_name(c));
  }

  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    r.phases.time(p) = f.num("phase_time_ns." + phase_name(p));
    r.phases.energy(p) = f.num("phase_energy_pj." + phase_name(p));
  }

  AccessStats& s = r.stats;
  s.edge_bytes_read = f.u64("stats.edge_bytes_read");
  s.edge_stream_passes = f.u64("stats.edge_stream_passes");
  s.offchip_vertex_bytes_read = f.u64("stats.offchip_vertex_bytes_read");
  s.offchip_vertex_bytes_written = f.u64("stats.offchip_vertex_bytes_written");
  s.offchip_vertex_random_reads = f.u64("stats.offchip_vertex_random_reads");
  s.offchip_vertex_random_writes = f.u64("stats.offchip_vertex_random_writes");
  s.sram_random_reads = f.u64("stats.sram_random_reads");
  s.sram_random_writes = f.u64("stats.sram_random_writes");
  s.sram_fill_bytes = f.u64("stats.sram_fill_bytes");
  s.sram_drain_bytes = f.u64("stats.sram_drain_bytes");
  s.router_hops = f.u64("stats.router_hops");
  s.edge_ops = f.u64("stats.edge_ops");
  s.vertex_ops = f.u64("stats.vertex_ops");
  s.interval_loads = f.u64("stats.interval_loads");
  s.interval_writebacks = f.u64("stats.interval_writebacks");

  r.bpg.gated_background_pj = f.num("power_gating.gated_background_pj");
  r.bpg.ungated_background_pj = f.num("power_gating.ungated_background_pj");
  r.bpg.wake_energy_pj = f.num("power_gating.wake_energy_pj");
  r.bpg.exposed_wake_time_ns = f.num("power_gating.exposed_wake_time_ns");
  r.bpg.bank_wakes = f.u64("power_gating.bank_wakes");
  // The awake/idle decomposition postdates the original schema; absent
  // fields (pre-ledger files) read as zero.
  if (f.has("power_gating.awake_background_pj"))
    r.bpg.awake_background_pj = f.num("power_gating.awake_background_pj");
  if (f.has("power_gating.idle_background_pj"))
    r.bpg.idle_background_pj = f.num("power_gating.idle_background_pj");

  // Attribution ledger (optional: pre-ledger files carry none).
  try {
    for (std::size_t i = 0;; ++i) {
      const std::string base = "energy_ledger." + std::to_string(i) + ".";
      if (!f.has(base + "component")) break;
      r.ledger.charge(component_from_name(f.str(base + "component")),
                      phase_from_name(f.str(base + "phase")),
                      f.str(base + "unit"), f.num(base + "pj"));
    }
    // Cells must re-sum to the breakdowns they claim to attribute
    // (looser than the runtime invariant: the parts were rounded).
    r.validate_ledger(1e-6);
  } catch (const InvariantError& e) {
    throw std::runtime_error(
        std::string("run_report_from_json: energy ledger invalid: ") +
        e.what());
  }

  // The derived fields must agree with the reconstructed components
  // (looser than the write precision: the totals re-sum rounded parts).
  if (!close(f.num("energy_pj"), r.total_energy_pj(), 1e-6) ||
      !close(f.num("mteps"), r.mteps(), 1e-6) ||
      !close(f.num("mteps_per_watt"), r.mteps_per_watt(), 1e-6))
    throw std::runtime_error(
        "run_report_from_json: derived fields inconsistent with components");
  // The per-phase breakdown must re-sum to the run totals (same
  // slack for the rounded parts).
  if (!close(r.phases.total_time_ns(), r.exec_time_ns, 1e-6) ||
      !close(r.phases.total_energy_pj(), r.total_energy_pj(), 1e-6))
    throw std::runtime_error(
        "run_report_from_json: phase breakdown inconsistent with totals");
  return r;
}

RunReport run_report_from_json(const std::string& json) {
  return run_report_from_fields(parse_flat_json(json), "");
}

bool reports_equivalent(const RunReport& a, const RunReport& b,
                        double rel_tol) {
  if (a.config_label != b.config_label || a.algorithm != b.algorithm ||
      a.num_intervals != b.num_intervals || a.iterations != b.iterations ||
      a.edges_traversed != b.edges_traversed || a.partitioner != b.partitioner)
    return false;
  if (!close(a.partition.n_avg, b.partition.n_avg, rel_tol) ||
      !close(a.partition.replication_factor, b.partition.replication_factor,
             rel_tol) ||
      !close(a.partition.interval_balance, b.partition.interval_balance,
             rel_tol) ||
      !close(a.partition.remote_edge_fraction,
             b.partition.remote_edge_fraction, rel_tol) ||
      !close(a.partition.bank_wake_fraction, b.partition.bank_wake_fraction,
             rel_tol))
    return false;
  if (!close(a.exec_time_ns, b.exec_time_ns, rel_tol) ||
      !close(a.streaming_time_ns, b.streaming_time_ns, rel_tol))
    return false;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    if (!close(a.energy[c], b.energy[c], rel_tol)) return false;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    if (!close(a.phases.time(p), b.phases.time(p), rel_tol) ||
        !close(a.phases.energy(p), b.phases.energy(p), rel_tol))
      return false;
  }
  const AccessStats& x = a.stats;
  const AccessStats& y = b.stats;
  if (x.edge_bytes_read != y.edge_bytes_read ||
      x.edge_stream_passes != y.edge_stream_passes ||
      x.offchip_vertex_bytes_read != y.offchip_vertex_bytes_read ||
      x.offchip_vertex_bytes_written != y.offchip_vertex_bytes_written ||
      x.offchip_vertex_random_reads != y.offchip_vertex_random_reads ||
      x.offchip_vertex_random_writes != y.offchip_vertex_random_writes ||
      x.sram_random_reads != y.sram_random_reads ||
      x.sram_random_writes != y.sram_random_writes ||
      x.sram_fill_bytes != y.sram_fill_bytes ||
      x.sram_drain_bytes != y.sram_drain_bytes ||
      x.router_hops != y.router_hops || x.edge_ops != y.edge_ops ||
      x.vertex_ops != y.vertex_ops || x.interval_loads != y.interval_loads ||
      x.interval_writebacks != y.interval_writebacks)
    return false;
  if (!(close(a.bpg.gated_background_pj, b.bpg.gated_background_pj,
              rel_tol) &&
        close(a.bpg.awake_background_pj, b.bpg.awake_background_pj,
              rel_tol) &&
        close(a.bpg.idle_background_pj, b.bpg.idle_background_pj, rel_tol) &&
        close(a.bpg.ungated_background_pj, b.bpg.ungated_background_pj,
              rel_tol) &&
        close(a.bpg.wake_energy_pj, b.bpg.wake_energy_pj, rel_tol) &&
        close(a.bpg.exposed_wake_time_ns, b.bpg.exposed_wake_time_ns,
              rel_tol) &&
        a.bpg.bank_wakes == b.bpg.bank_wakes))
    return false;
  // Ledgers must agree cell-for-cell (both empty is agreement too).
  const auto& la = a.ledger.cells();
  const auto& lb = b.ledger.cells();
  if (la.size() != lb.size()) return false;
  auto ita = la.begin();
  auto itb = lb.begin();
  for (; ita != la.end(); ++ita, ++itb) {
    if (ita->first.component != itb->first.component ||
        ita->first.phase != itb->first.phase ||
        ita->first.unit != itb->first.unit ||
        !close(ita->second, itb->second, rel_tol))
      return false;
  }
  return true;
}

std::string validated_report_json(const RunReport& report) {
  // Breakdowns can never silently drift from the totals: every record
  // any tool emits first proves its phase sums and its ledger marginals
  // (1e-9 relative).
  report.validate_phase_totals();
  report.validate_ledger();
  const std::string json = report_to_json(report);
  RunReport parsed;
  try {
    parsed = run_report_from_json(json);
  } catch (const std::exception& e) {
    throw std::runtime_error("report failed JSON round-trip validation (" +
                             report.config_label + "/" + report.algorithm +
                             "): " + e.what());
  }
  if (!reports_equivalent(parsed, report))
    throw std::runtime_error(
        "report failed JSON round-trip validation: parsed record differs "
        "for " +
        report.config_label + "/" + report.algorithm);
  return json;
}

}  // namespace hyve
