#include "core/report_io.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hyve {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  HYVE_CHECK_MSG(std::isfinite(v), "non-finite value in report");
  os << std::setprecision(12) << v;
}

}  // namespace

void write_report_json(std::ostream& os, const RunReport& r) {
  os << '{';
  os << "\"config\":";
  write_escaped(os, r.config_label);
  os << ",\"algorithm\":";
  write_escaped(os, r.algorithm);
  os << ",\"num_intervals\":" << r.num_intervals;
  os << ",\"iterations\":" << r.iterations;
  os << ",\"edges_traversed\":" << r.edges_traversed;
  os << ",\"exec_time_ns\":";
  write_number(os, r.exec_time_ns);
  os << ",\"energy_pj\":";
  write_number(os, r.total_energy_pj());
  os << ",\"mteps\":";
  write_number(os, r.mteps());
  os << ",\"mteps_per_watt\":";
  write_number(os, r.mteps_per_watt());
  os << ",\"energy_breakdown_pj\":{";
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    if (i > 0) os << ',';
    write_escaped(os, component_name(c));
    os << ':';
    write_number(os, r.energy[c]);
  }
  os << '}';
  os << ",\"stats\":{"
     << "\"edge_bytes_read\":" << r.stats.edge_bytes_read
     << ",\"offchip_vertex_bytes_read\":" << r.stats.offchip_vertex_bytes_read
     << ",\"offchip_vertex_bytes_written\":"
     << r.stats.offchip_vertex_bytes_written
     << ",\"sram_random_reads\":" << r.stats.sram_random_reads
     << ",\"sram_random_writes\":" << r.stats.sram_random_writes
     << ",\"router_hops\":" << r.stats.router_hops
     << ",\"edge_ops\":" << r.stats.edge_ops
     << ",\"interval_loads\":" << r.stats.interval_loads << '}';
  os << ",\"power_gating\":{"
     << "\"gated_background_pj\":";
  write_number(os, r.bpg.gated_background_pj);
  os << ",\"ungated_background_pj\":";
  write_number(os, r.bpg.ungated_background_pj);
  os << ",\"bank_wakes\":" << r.bpg.bank_wakes << '}';
  os << '}';
}

std::string report_to_json(const RunReport& report) {
  std::ostringstream os;
  write_report_json(os, report);
  return os.str();
}

}  // namespace hyve
