#include "core/config.hpp"

#include "util/check.hpp"

namespace hyve {

void HyveConfig::validate() const {
  HYVE_CHECK_MSG(num_pus >= 1 && num_pus <= 64, "num_pus = " << num_pus);
  HYVE_CHECK_MSG(edge_bytes == 8 || edge_bytes == 12,
                 "edge_bytes must be 8 (unweighted) or 12 (weighted)");
  HYVE_CHECK_MSG(!power_gating || edge_memory_tech == MemTech::kReram,
                 "bank-level power gating relies on non-volatile banks "
                 "(§4.1); enable it only with a ReRAM edge memory");
  HYVE_CHECK_MSG(!data_sharing || has_onchip_vertex_memory(),
                 "data sharing routes between on-chip vertex memories and "
                 "needs SRAM sections present");
  HYVE_CHECK_MSG(!frontier_block_skipping || has_onchip_vertex_memory(),
                 "block skipping piggybacks on the interval scheduler and "
                 "needs the on-chip vertex level");
  partitioner.validate();
}

void HyveConfig::set_partitioner(const PartitionerSpec& spec) {
  spec.validate();
  // Strip any previous annotation before re-annotating.
  const std::size_t tilde = label.find('~');
  if (tilde != std::string::npos) label.erase(tilde);
  partitioner = spec;
  if (!spec.is_default()) label += "~" + spec.to_string();
}

HyveConfig HyveConfig::hyve_opt() {
  HyveConfig c;
  c.label = "acc+HyVE-opt";
  return c;
}

HyveConfig HyveConfig::hyve() {
  HyveConfig c;
  c.label = "acc+HyVE";
  c.data_sharing = false;
  c.power_gating = false;
  return c;
}

HyveConfig HyveConfig::sram_dram() {
  HyveConfig c;
  c.label = "acc+SRAM+DRAM";
  c.data_sharing = false;
  c.power_gating = false;
  c.edge_memory_tech = MemTech::kDram;
  return c;
}

HyveConfig HyveConfig::acc_dram() {
  HyveConfig c;
  c.label = "acc+DRAM";
  c.data_sharing = false;
  c.power_gating = false;
  c.edge_memory_tech = MemTech::kDram;
  c.offchip_vertex_tech = MemTech::kDram;
  c.sram_bytes_per_pu = 0;
  return c;
}

HyveConfig HyveConfig::acc_reram() {
  HyveConfig c;
  c.label = "acc+ReRAM";
  c.data_sharing = false;
  c.power_gating = false;
  c.edge_memory_tech = MemTech::kReram;
  c.offchip_vertex_tech = MemTech::kReram;
  c.sram_bytes_per_pu = 0;
  return c;
}

std::vector<HyveConfig> fig16_accelerator_configs() {
  return {HyveConfig::acc_dram(), HyveConfig::acc_reram(),
          HyveConfig::sram_dram(), HyveConfig::hyve(),
          HyveConfig::hyve_opt()};
}

std::optional<HyveConfig> parse_config_label(const std::string& name) {
  // A "~<partitioner>" suffix (set_partitioner's annotation) composes
  // with any variant name: "opt~hep:tau=2", "acc+HyVE-opt~splitmerge:chunks=8".
  const std::size_t tilde = name.find('~');
  if (tilde != std::string::npos) {
    auto base = parse_config_label(name.substr(0, tilde));
    if (!base) return std::nullopt;
    const auto spec = parse_partitioner(name.substr(tilde + 1));
    if (!spec) return std::nullopt;
    base->set_partitioner(*spec);
    return base;
  }

  struct Variant {
    const char* short_name;
    HyveConfig (*make)();
  };
  static constexpr Variant kVariants[] = {
      {"opt", &HyveConfig::hyve_opt},   {"hyve", &HyveConfig::hyve},
      {"sd", &HyveConfig::sram_dram},   {"dram", &HyveConfig::acc_dram},
      {"reram", &HyveConfig::acc_reram},
  };
  for (const Variant& v : kVariants) {
    if (name == v.short_name) return v.make();
    const HyveConfig c = v.make();
    if (name == c.label) return c;
  }
  return std::nullopt;
}

}  // namespace hyve
