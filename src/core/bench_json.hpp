// Versioned machine-readable bench reports.
//
// Every bench binary can emit one BENCH_<name>.json document (--json
// PATH via the shared bench harness) holding the run reports of every
// cell it simulated, the cross-run energy-ledger rollup, the
// deterministic sim.* metrics of the run, and provenance (bench name,
// git revision, --smoke). The schema is versioned and self-identifying
// so CI can archive the files and `hyve_report` can validate any file
// (--check) or diff two of them for regressions (--compare).
//
// Documents are byte-deterministic for a given binary and flag set:
// runs are sorted by (config, algorithm, graph), the ledger rollup and
// metrics are sorted maps, and nothing wall-clock-dependent is included
// — the bench-json CI step byte-diffs --jobs 1 against --jobs 8.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/machine.hpp"

namespace hyve {

namespace obs {
class Trace;
}  // namespace obs

inline constexpr int kBenchReportSchemaVersion = 1;
inline constexpr const char* kBenchReportSchemaName = "hyve-bench-report";

// The git revision the binary was configured from ("unknown" outside a
// checkout).
std::string build_git_rev();
// The CMake build type the binary was configured with ("unknown" when
// not recorded).
std::string build_type();

struct BenchRun {
  std::string graph_key;  // GraphCache key, usually the dataset name
  RunReport report;
};

// Host-side measurements of the producing process. This is the ONLY
// wall-clock-dependent corner of a bench report, kept to three numeric
// fields so deterministic byte-diffs can strip the single
// "host":{...} object and compare the rest (scripts/verify.sh does).
// Strings about the machine (hostname, cpu model) deliberately live in
// the perf-history record, not here.
struct BenchHostInfo {
  bool present = false;        // host object emitted / found on parse
  double wall_ms = 0;          // bench wall time, parse to report write
  std::uint64_t max_rss_kb = 0;  // VmHWM at report time (0 if unreadable)
  int jobs = 0;                // resolved worker count the bench ran with
};

struct BenchReportDoc {
  std::string bench;      // bench binary name, e.g. "bench_fig13"
  std::string git_rev;    // provenance; not compared across files
  bool smoke = false;     // numbers are smoke stand-ins, not measurements
  std::vector<std::string> datasets;  // the run's --datasets axis
  // Every simulated cell, sorted by (config, algorithm, graph).
  std::vector<BenchRun> runs;
  // Cell-wise sum of the runs' energy ledgers; parsing re-proves the
  // equality, so a rollup can never drift from its runs.
  EnergyLedger ledger_rollup;
  // Deterministic registry rollup: only sim.* instruments (simulated
  // counts), never exp.* (wall clock, scheduling). Values are the dump's
  // raw numeric tokens.
  std::map<std::string, std::string> metrics;
  // Wall-clock/RSS of the producing run; optional for hand-built docs,
  // always filled by the bench harness.
  BenchHostInfo host;
};

// Serialises the document (single line). Validates every run's ledger
// and phase invariants first — throws rather than emit a file the
// checker would reject.
std::string bench_report_to_json(const BenchReportDoc& doc);
void write_bench_report_file(const std::string& path,
                             const BenchReportDoc& doc);

// Parses and fully validates a document: schema name/version, every
// run record (via run_report_from_fields, which enforces the breakdown
// and ledger invariants), and rollup == sum of run ledgers. Throws
// std::runtime_error naming the problem on any violation — `hyve_report
// --check` is exactly this call.
BenchReportDoc bench_report_from_json(const std::string& json);
BenchReportDoc read_bench_report_file(const std::string& path);

// One metric delta of one cell between two documents.
struct BenchCompareLine {
  std::string cell;    // "config/algorithm/graph"
  std::string metric;  // e.g. "exec_time_ns"
  double old_value = 0;
  double new_value = 0;
  double delta_pct = 0;  // (new - old) / old * 100
  bool regressed = false;
};

struct BenchCompareResult {
  std::vector<BenchCompareLine> lines;  // every compared (cell, metric)
  std::vector<std::string> added;       // cells only in the new document
  std::vector<std::string> removed;     // cells only in the old document
  std::size_t cells_compared = 0;
  std::size_t regressions = 0;
};

// Cell-by-cell comparison of the headline metrics (exec_time_ns and
// energy_pj lower-is-better; mteps and mteps_per_watt higher-is-better).
// A metric regresses when it moves in the worse direction by more than
// `threshold_pct` percent. Cells present on only one side are listed but
// are not regressions (grids legitimately grow and shrink).
BenchCompareResult compare_bench_reports(const BenchReportDoc& old_doc,
                                         const BenchReportDoc& new_doc,
                                         double threshold_pct);

// Human-readable rendering of a comparison, one line per delta plus a
// summary line.
std::string format_bench_compare(const BenchCompareResult& result,
                                 double threshold_pct);

// Attaches a "run_attribution" metadata event to the trace: git_rev,
// build_type, and the full command line joined with spaces. Sorts with
// the other metadata events at the top of the written file, so a trace
// always says which binary, flags, and build produced it.
void add_attribution_metadata(obs::Trace& trace, int argc,
                              const char* const* argv);

}  // namespace hyve
