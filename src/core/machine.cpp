#include "core/machine.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "memmodel/techparams.hpp"
#include "obs/host_profiler.hpp"
#include "obs/live.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/pipeline.hpp"
#include "util/check.hpp"

namespace hyve {

using namespace tech;

// Track layout of a traced run: one process per run (`pid`), fixed
// thread ids for the scheduler, the interval-transfer stream, the
// router, the power-gating controller, and one track per PU.
struct HyveMachine::TraceSink {
  obs::Trace* trace = nullptr;
  std::uint32_t pid = 1;

  static constexpr std::uint32_t kScheduler = 0;
  static constexpr std::uint32_t kTransfer = 1;
  static constexpr std::uint32_t kRouter = 2;
  static constexpr std::uint32_t kBpg = 3;
  static constexpr std::uint32_t kCounters = 4;  // "ph":"C" sample tracks
  static constexpr std::uint32_t kPuBase = 10;

  bool on() const { return trace != nullptr; }

  void name_tracks(const std::string& run_name, int num_pus) const {
    if (!on()) return;
    trace->process_name(pid, run_name);
    trace->thread_name(pid, kScheduler, "scheduler");
    trace->thread_name(pid, kTransfer, "interval transfer");
    trace->thread_name(pid, kRouter, "router");
    trace->thread_name(pid, kBpg, "power gating");
    trace->thread_name(pid, kCounters, "counters");
    for (int pu = 0; pu < num_pus; ++pu)
      trace->thread_name(pid, kPuBase + static_cast<std::uint32_t>(pu),
                         "PU " + std::to_string(pu));
  }
};

double RunReport::mteps() const {
  return exec_time_ns <= 0
             ? 0.0
             : static_cast<double>(edges_traversed) / exec_time_ns * 1e3;
}

double RunReport::mteps_per_watt() const {
  return units::mteps_per_watt(static_cast<double>(edges_traversed),
                               total_energy_pj());
}

HyveMachine::HyveMachine(HyveConfig config)
    : config_(std::move(config)), reram_(config_.reram), dram_(config_.dram) {
  config_.validate();
  if (config_.has_onchip_vertex_memory())
    sram_.emplace(config_.sram_bytes_per_pu);
}

const MemoryModel& HyveMachine::edge_memory() const {
  if (config_.edge_memory_tech == MemTech::kReram)
    return static_cast<const MemoryModel&>(reram_);
  return dram_;
}

const MemoryModel& HyveMachine::offchip_vertex_memory() const {
  if (config_.offchip_vertex_tech == MemTech::kReram)
    return static_cast<const MemoryModel&>(reram_);
  return dram_;
}

std::uint32_t HyveMachine::choose_num_intervals(
    const Graph& graph, std::uint32_t vertex_value_bytes) const {
  const auto n = static_cast<std::uint32_t>(config_.num_pus);
  HYVE_CHECK_MSG(graph.num_vertices() >= n,
                 "graph smaller than the PU count");
  if (!config_.has_onchip_vertex_memory()) return n;
  // Each PU's SRAM is split into a source and a destination section, each
  // holding one interval (§3.2): interval_bytes <= sram/2.
  const double section_bytes =
      static_cast<double>(config_.sram_bytes_per_pu) / 2.0;
  const double total_vertex_bytes =
      static_cast<double>(graph.num_vertices()) * vertex_value_bytes;
  const auto needed = static_cast<std::uint32_t>(
      std::ceil(total_vertex_bytes / section_bytes));
  const std::uint32_t p = std::max(n, ((needed + n - 1) / n) * n);
  HYVE_CHECK_MSG(p <= graph.num_vertices(),
                 "SRAM sections too small: P=" << p << " exceeds V="
                                               << graph.num_vertices());
  return p;
}

RunReport HyveMachine::run(const Graph& graph, Algorithm algorithm,
                           obs::Trace* trace,
                           std::uint32_t trace_pid) const {
  const auto program = make_program(algorithm);
  return run(graph, *program, trace, trace_pid);
}

RunReport HyveMachine::run(const Graph& graph, VertexProgram& program,
                           obs::Trace* trace,
                           std::uint32_t trace_pid) const {
  const std::uint32_t p =
      choose_num_intervals(graph, program.vertex_value_bytes());
  const auto partitioner = make_partitioner(config_.partitioner);
  if (config_.hash_balance) {
    // Simulate the hash-balanced layout (§4.3): block populations even
    // out across PUs, which the per-step synchronisation rewards. The
    // remap is memoized on the source graph, so repeated runs (sweeps
    // over memory configs, back-to-back algorithms) pay for it once.
    const std::shared_ptr<const Graph> balanced =
        graph.hashed_remap_shared(config_.hash_balance_seed);
    return run_with_schedule(*balanced, partitioner->partition(*balanced, p),
                             program, trace, trace_pid);
  }
  return run_with_schedule(graph, partitioner->partition(graph, p), program,
                           trace, trace_pid);
}

RunReport HyveMachine::run_with_schedule(const Graph& graph,
                                         const Partitioning& schedule,
                                         Algorithm algorithm,
                                         obs::Trace* trace,
                                         std::uint32_t trace_pid) const {
  const auto program = make_program(algorithm);
  return run_with_schedule(graph, schedule, *program, trace, trace_pid);
}

RunReport HyveMachine::run_with_schedule(const Graph& graph,
                                         const Partitioning& schedule,
                                         VertexProgram& program,
                                         obs::Trace* trace,
                                         std::uint32_t trace_pid) const {
  const FunctionalOutcome functional =
      run_functional_phase(graph, schedule, program);
  return run_with_functional(graph, schedule, program, functional, trace,
                             trace_pid);
}

std::size_t FunctionalOutcome::approx_bytes() const {
  std::size_t bytes = sizeof(FunctionalOutcome);
  if (frontier.has_value()) bytes += frontier->approx_bytes();
  return bytes;
}

FunctionalOutcome HyveMachine::run_functional_phase(
    const Graph& graph, const Partitioning& schedule,
    VertexProgram& program) const {
  const obs::HostSpan host_span("machine.functional");
  HYVE_CHECK_MSG(schedule.num_vertices() == graph.num_vertices(),
                 "schedule built for a different graph");
  const std::uint32_t p =
      choose_num_intervals(graph, program.vertex_value_bytes());
  HYVE_CHECK_MSG(schedule.num_intervals() == p,
                 "schedule has P=" << schedule.num_intervals()
                                   << " but this machine needs P=" << p);
  FunctionalOutcome outcome;
  outcome.num_intervals = p;
  if (config_.frontier_block_skipping) {
    outcome.frontier = run_frontier(graph, program, schedule);
    outcome.result = outcome.frontier->result;
  } else {
    outcome.result = run_functional(graph, program, &schedule);
  }
  return outcome;
}

RunReport HyveMachine::run_with_functional(const Graph& graph,
                                           const Partitioning& schedule,
                                           VertexProgram& program,
                                           const FunctionalOutcome& functional,
                                           obs::Trace* trace,
                                           std::uint32_t trace_pid) const {
  const obs::HostSpan host_span("machine.run");
  HYVE_CHECK_MSG(schedule.num_vertices() == graph.num_vertices(),
                 "schedule built for a different graph");
  const std::uint32_t p =
      choose_num_intervals(graph, program.vertex_value_bytes());
  HYVE_CHECK_MSG(schedule.num_intervals() == p,
                 "schedule has P=" << schedule.num_intervals()
                                   << " but this machine needs P=" << p);
  HYVE_CHECK_MSG(functional.num_intervals == p,
                 "functional outcome was computed for P="
                     << functional.num_intervals
                     << " but this machine needs P=" << p);
  HYVE_CHECK_MSG(
      functional.frontier.has_value() == config_.frontier_block_skipping,
      "functional outcome frontier mode disagrees with this config");
  if (functional.frontier.has_value())
    HYVE_CHECK_MSG(functional.frontier->num_intervals == p,
                   "frontier trace P mismatch");
  const TraceSink sink{trace, trace_pid};
  const FrontierTrace* ftrace =
      functional.frontier.has_value() ? &*functional.frontier : nullptr;
  return account(graph, program, schedule, functional.result, ftrace, sink);
}

namespace {

// Pipeline stage times of one processing unit (Eq. 1's max() argument).
PipelineStageTimes stage_times(double edge_stream_bytes_per_ns, int num_pus,
                               double local_vertex_cycle_ns,
                               std::uint32_t edge_bytes) {
  PipelineStageTimes stages;
  // All N PUs stream their blocks concurrently and share the channel.
  stages.edge_read_ns =
      static_cast<double>(edge_bytes) * num_pus / edge_stream_bytes_per_ns;
  stages.vertex_read_ns = local_vertex_cycle_ns;
  stages.update_ns = kPuPipelineCycleNs;
  stages.vertex_write_ns = local_vertex_cycle_ns;
  // Pipe fill: edge fetch + two vertex accesses + the unpipelined
  // multiplier latency, once per block.
  stages.fill_latency_ns = 30.0 + kCmosMultiplierLatencyNs +
                           2.0 * local_vertex_cycle_ns;
  return stages;
}

// The dynamic-energy formulas of one run, shared between the whole-run
// ledger charges in account() and the per-iteration power-draw counter
// samples: both must price an operation identically or the counter
// timeline would drift from the ledger it previews.
struct DynCosts {
  const MemoryModel& emem;
  const MemoryModel& vmem;
  const SramModel* sram;
  std::uint32_t value_bytes;

  double edge_stream_pj(std::uint64_t bytes) const {
    return emem.stream_read_energy_pj(bytes);
  }
  double vmem_stream_pj(std::uint64_t read, std::uint64_t written) const {
    return vmem.stream_read_energy_pj(read) +
           vmem.stream_write_energy_pj(written);
  }
  double vmem_random_pj(std::uint64_t reads, std::uint64_t writes) const {
    return static_cast<double>(reads) * vmem.random_read_energy_pj(
                                            value_bytes) *
               kNoSramVertexLocalityFactor +
           static_cast<double>(writes) * vmem.random_write_energy_pj(
                                             value_bytes) *
               kNoSramVertexLocalityFactor;
  }
  // Source read + destination read + destination write per edge (Eq. 4).
  double sram_edge_pj(std::uint64_t edges) const {
    if (sram == nullptr) return 0;
    return static_cast<double>(edges) *
           (2.0 * sram->read_energy_pj(value_bytes) +
            sram->write_energy_pj(value_bytes));
  }
  // One read + one write per applied vertex.
  double sram_apply_pj(std::uint64_t ops) const {
    if (sram == nullptr) return 0;
    return static_cast<double>(ops) * (sram->read_energy_pj(value_bytes) +
                                       sram->write_energy_pj(value_bytes));
  }
  double sram_fill_pj(std::uint64_t fill_bytes,
                      std::uint64_t drain_bytes) const {
    if (sram == nullptr) return 0;
    return sram->write_energy_pj(4) * (static_cast<double>(fill_bytes) / 4.0) +
           sram->read_energy_pj(4) * (static_cast<double>(drain_bytes) / 4.0);
  }
  double pu_edge_pj(std::uint64_t edges) const {
    return static_cast<double>(edges) *
           (kCmosEdgeOpEnergyPj + kControllerPerEdgeEnergyPj);
  }
  double pu_apply_pj(std::uint64_t ops) const {
    return static_cast<double>(ops) * kCmosEdgeOpEnergyPj;
  }
  double router_pj(std::uint64_t hops) const {
    return static_cast<double>(hops) * kRouterHopEnergyPj;
  }

  // All dynamic energy implied by one iteration's access stats — the
  // numerator of the simulated power-draw counter track.
  double iteration_dynamic_pj(const AccessStats& it) const {
    return edge_stream_pj(it.edge_bytes_read) +
           vmem_stream_pj(it.offchip_vertex_bytes_read,
                          it.offchip_vertex_bytes_written) +
           vmem_random_pj(it.offchip_vertex_random_reads,
                          it.offchip_vertex_random_writes) +
           sram_edge_pj(it.edge_ops) + sram_apply_pj(it.vertex_ops) +
           sram_fill_pj(it.sram_fill_bytes, it.sram_drain_bytes) +
           pu_edge_pj(it.edge_ops) + pu_apply_pj(it.vertex_ops) +
           router_pj(it.router_hops);
  }
};

}  // namespace

void HyveMachine::account_with_sram(const Graph& graph,
                                    const Partitioning& schedule,
                                    std::uint32_t value_bytes, bool has_apply,
                                    const FrontierTrace* frontier,
                                    const TraceSink& sink,
                                    RunReport& report,
                                    UnitTallies& tallies) const {
  const auto n = static_cast<std::uint32_t>(config_.num_pus);
  const std::uint32_t p = schedule.num_intervals();
  const std::uint32_t k = p / n;
  HYVE_CHECK(k * n == p);
  const std::uint64_t v = graph.num_vertices();
  const std::uint32_t edge_bytes = config_.edge_bytes;

  tallies.pu_edges.assign(n, 0);
  tallies.pu_remote.assign(n, 0);
  tallies.pu_apply.assign(n, 0);
  // Destination interval y lives in PU y % n, which also runs its apply
  // step — the per-PU apply populations the ledger attributes to.
  std::vector<std::uint64_t> apply_pop(n, 0);
  if (has_apply)
    for (std::uint32_t y = 0; y < p; ++y)
      apply_pop[y % n] += schedule.interval_population(y);

  // Per-iteration views of the frontier trace, refreshed at the top of
  // the iteration loop: a dense P*P expansion of the sparse trace plus
  // the per-source-row activity bitmap. Precomputing both turns the old
  // O(P) interval_active scan (O(iters * P^3) overall) into O(1) lookups.
  std::vector<std::uint64_t> frontier_blocks;
  std::vector<char> row_active;
  // Edges of block (x, y) streamed during the current iteration
  // (frontier skipping zeroes whole source-rows of the block grid).
  auto block_edges = [&](std::uint32_t x, std::uint32_t y) -> std::uint64_t {
    if (frontier != nullptr)
      return frontier_blocks[static_cast<std::uint64_t>(x) * p + y];
    return schedule.block_edge_count(x, y);
  };
  // Whether source interval x participates at all in this iteration.
  auto interval_active = [&](std::uint32_t x) {
    return frontier == nullptr || row_active[x] != 0;
  };

  const MemoryModel& vmem = offchip_vertex_memory();
  const MemoryModel& emem = edge_memory();
  const double edge_bw =
      static_cast<double>(edge_bytes) /
      emem.stream_read_time_ns(edge_bytes);  // bytes per ns
  const PipelineStageTimes stages =
      stage_times(edge_bw, config_.num_pus, sram_->cycle_ns(), edge_bytes);

  AccessStats total;
  double exec_time = 0;
  double streaming_time = 0;

  // The architectural iteration walk is the longest uninterrupted
  // stretch of a cell; beating here keeps the stall watchdog quiet on
  // large graphs. One relaxed-class load per iteration when live
  // telemetry is off.
  obs::LiveTelemetry& live = obs::live_telemetry();

  for (std::uint32_t iter = 0; iter < report.iterations; ++iter) {
    live.beat("machine.iteration");
    AccessStats it;
    if (frontier != nullptr) {
      frontier->expand_iteration(iter, frontier_blocks);
      frontier->source_activity(iter, row_active);
    }

    // ---- Loading / Updating phases (Algorithm 2) ----
    // Destination intervals: each loaded once and written back once per
    // iteration. Source intervals: with data sharing, loaded once per
    // super-block column (k times each active interval); without, once
    // per *block*, since every step replaces the PU's source section.
    std::uint64_t src_bytes = 0;
    std::uint64_t src_loads = 0;
    for (std::uint32_t x = 0; x < p; ++x) {
      const std::uint64_t interval_bytes =
          static_cast<std::uint64_t>(schedule.interval_population(x)) *
          value_bytes;
      if (config_.data_sharing) {
        if (interval_active(x)) {
          src_bytes += k * interval_bytes;
          src_loads += k;
        }
      } else {
        for (std::uint32_t y = 0; y < p; ++y) {
          if (frontier == nullptr || block_edges(x, y) > 0) {
            src_bytes += interval_bytes;
            ++src_loads;
          }
        }
      }
    }
    const std::uint64_t vertex_bytes_total = v * value_bytes;
    it.interval_loads = p /*dst*/ + src_loads;
    it.interval_writebacks = p;
    it.offchip_vertex_bytes_read = src_bytes + vertex_bytes_total;
    it.offchip_vertex_bytes_written = vertex_bytes_total;
    it.sram_fill_bytes = src_bytes + vertex_bytes_total;
    it.sram_drain_bytes = vertex_bytes_total;

    // ---- Processing phase ----
    std::uint64_t edges_this_iter = 0;
    std::uint64_t remote_edges = 0;
    double processing_time = 0;
    // Simulated clock of the processing stream within this iteration
    // (only advanced for trace spans; exec_time uses processing_time).
    const double iter_start_ns = exec_time;
    double step_start_ns = iter_start_ns;
    for (std::uint32_t sb_y = 0; sb_y < k; ++sb_y) {
      for (std::uint32_t sb_x = 0; sb_x < k; ++sb_x) {
        for (std::uint32_t step = 0; step < n; ++step) {
          // Synchronising: the step lasts as long as its slowest PU.
          double step_time = 0;
          std::uint32_t active_pus = 0;
          for (std::uint32_t pu = 0; pu < n; ++pu) {
            const std::uint32_t x = sb_x * n + (pu + step) % n;
            const std::uint32_t y = sb_y * n + pu;
            const std::uint64_t e = block_edges(x, y);
            edges_this_iter += e;
            tallies.pu_edges[pu] += e;
            if (e > 0) ++active_pus;
            const bool remote = config_.data_sharing && x % n != y % n;
            if (remote) {
              remote_edges += e;
              tallies.pu_remote[pu] += e;
            }
            const double block_ns = block_processing_time_ns(e, stages);
            step_time = std::max(step_time, block_ns);
            if (sink.on() && e > 0) {
              sink.trace->complete(
                  sink.pid, TraceSink::kPuBase + pu, "block",
                  "process", step_start_ns, block_ns,
                  {{"x", static_cast<double>(x)},
                   {"y", static_cast<double>(y)},
                   {"edges", static_cast<double>(e)}});
              if (remote)
                sink.trace->complete(
                    sink.pid, TraceSink::kRouter, "share",
                    "router", step_start_ns, block_ns,
                    {{"src_interval", static_cast<double>(x)},
                     {"pu", static_cast<double>(pu)},
                     {"edges", static_cast<double>(e)}});
            }
          }
          // Pipeline occupancy: how many of the N PUs this synchronised
          // step actually kept busy (frontier skipping and skew idle the
          // rest until the step barrier).
          if (sink.on() && step_time > 0)
            sink.trace->counter(
                sink.pid, TraceSink::kCounters, "pipeline occupancy",
                step_start_ns,
                {{"active_pus", static_cast<double>(active_pus)}});
          processing_time += step_time;
          step_start_ns += step_time;
        }
      }
    }
    it.edge_bytes_read = edges_this_iter * edge_bytes;
    it.edge_stream_passes = 1;
    it.edge_ops = edges_this_iter;
    it.sram_random_reads = 2 * edges_this_iter;  // source + destination
    it.sram_random_writes = edges_this_iter;     // destination (Eq. 4)
    it.router_hops = remote_edges;

    if (has_apply) {
      it.vertex_ops = v;
      it.sram_random_reads += v;
      it.sram_random_writes += v;
      for (std::uint32_t pu = 0; pu < n; ++pu)
        tallies.pu_apply[pu] += apply_pop[pu];
    }

    // ---- Timing ----
    const double offchip_time =
        vmem.stream_read_time_ns(it.offchip_vertex_bytes_read) +
        vmem.stream_write_time_ns(it.offchip_vertex_bytes_written);
    const double fill_time =
        (static_cast<double>(it.sram_fill_bytes + it.sram_drain_bytes) /
         kSramFillPortBytes) *
        sram_->cycle_ns() / n;  // the N arrays fill in parallel
    const double transfer_time = std::max(offchip_time, fill_time);
    const double apply_time =
        has_apply ? (static_cast<double>(v) / n) * sram_->cycle_ns() : 0.0;

    // Interval loading double-buffers against processing (Fig. 8's step
    // 1/6 overlap with steps 2-5), so an iteration is bound by the slower
    // of the two streams. The phase breakdown attributes the iteration
    // to whichever stream bound it, so phase times sum to exec_time_ns.
    const double busy_time = processing_time + apply_time;
    if (transfer_time > busy_time) {
      report.phases.time(Phase::kLoad) += transfer_time;
    } else {
      report.phases.time(Phase::kProcess) += processing_time;
      report.phases.time(Phase::kApply) += apply_time;
    }

    if (sink.on()) {
      const double iter_time = std::max(transfer_time, busy_time);
      sink.trace->complete(sink.pid, TraceSink::kScheduler, "iteration",
                           "iteration", iter_start_ns, iter_time,
                           {{"iter", static_cast<double>(iter)},
                            {"edges", static_cast<double>(edges_this_iter)}});
      if (transfer_time > 0)
        sink.trace->complete(
            sink.pid, TraceSink::kTransfer, "interval load+update", "load",
            iter_start_ns, transfer_time,
            {{"loads", static_cast<double>(it.interval_loads)},
             {"writebacks", static_cast<double>(it.interval_writebacks)}});
      if (apply_time > 0)
        sink.trace->complete(sink.pid, TraceSink::kScheduler, "apply",
                             "apply", iter_start_ns + processing_time,
                             apply_time,
                             {{"vertices", static_cast<double>(v)}});
      if (config_.edge_memory_tech == MemTech::kReram &&
          config_.power_gating && processing_time > 0) {
        sink.trace->complete(sink.pid, TraceSink::kBpg, "bank awake",
                             "bpg", iter_start_ns, processing_time);
        // BPG gate state: one bank awake while the edge stream runs,
        // everything re-gated for the rest of the iteration.
        sink.trace->counter(sink.pid, TraceSink::kCounters, "banks awake",
                            iter_start_ns, {{"awake", 1.0}});
        sink.trace->counter(sink.pid, TraceSink::kCounters, "banks awake",
                            iter_start_ns + processing_time,
                            {{"awake", 0.0}});
      }
      // Simulated power draw: the iteration's dynamic energy over its
      // wall-clock (pJ/ns = mW), sampled at each iteration boundary.
      if (iter_time > 0) {
        const DynCosts costs{edge_memory(), offchip_vertex_memory(),
                             sram_ ? &*sram_ : nullptr, value_bytes};
        sink.trace->counter(
            sink.pid, TraceSink::kCounters, "power",
            iter_start_ns,
            {{"dynamic_mw", costs.iteration_dynamic_pj(it) / iter_time}});
      }
    }

    exec_time += std::max(transfer_time, busy_time);
    streaming_time += processing_time;
    total += it;
  }

  report.exec_time_ns = exec_time;
  report.streaming_time_ns = streaming_time;
  report.stats = total;
}

void HyveMachine::account_without_sram(const Graph& graph,
                                       std::uint32_t value_bytes,
                                       RunReport& report) const {
  const std::uint64_t e = graph.num_edges();
  AccessStats per_iter;
  per_iter.edge_bytes_read = e * config_.edge_bytes;
  per_iter.edge_stream_passes = 1;
  per_iter.edge_ops = e;
  // Without an on-chip vertex level every vertex touch goes off-chip
  // (2 reads + 1 write per edge, Eq. 3/4).
  per_iter.offchip_vertex_random_reads = 2 * e;
  per_iter.offchip_vertex_random_writes = e;
  (void)value_bytes;

  const MemoryModel& emem = edge_memory();
  const MemoryModel& vmem = offchip_vertex_memory();
  const double edge_stream_ns_per_edge =
      emem.stream_read_time_ns(e * config_.edge_bytes) /
      static_cast<double>(e);
  // Scheduling locality overlaps independent reads, but the destination
  // write of each edge is a dependent read-modify-write that occupies the
  // device at its raw write rate (ruinous for ReRAM's 10 ns set pulse).
  const double vertex_ns_per_edge =
      2.0 * vmem.random_access_throughput_ns() * kNoSramVertexLocalityFactor +
      vmem.random_write_throughput_ns();
  const double pu_ns_per_edge = kPuPipelineCycleNs / config_.num_pus;
  const double ns_per_edge =
      std::max({edge_stream_ns_per_edge, vertex_ns_per_edge, pu_ns_per_edge});

  const double iter_time = static_cast<double>(e) * ns_per_edge;
  const std::uint32_t iters = report.iterations;
  report.exec_time_ns = iter_time * iters;
  report.streaming_time_ns = report.exec_time_ns;
  // No on-chip level: every iteration is one bound edge/vertex stream,
  // so the whole wall-clock is processing.
  report.phases.time(Phase::kProcess) = report.exec_time_ns;
  AccessStats total;
  for (std::uint32_t i = 0; i < iters; ++i) total += per_iter;
  report.stats = total;
}

RunReport HyveMachine::account(const Graph& graph, VertexProgram& program,
                               const Partitioning& schedule,
                               const FunctionalResult& functional,
                               const FrontierTrace* frontier,
                               const TraceSink& sink) const {
  RunReport report;
  report.config_label = config_.label;
  report.algorithm = program.name();
  report.num_intervals = schedule.num_intervals();
  report.iterations = functional.iterations;
  report.edges_traversed = functional.edges_traversed;
  report.partitioner = config_.partitioner.to_string();
  report.partition = compute_partition_stats(schedule, config_.num_pus);
  if (obs::enabled()) {
    // Integer-scaled so histogram rollups (count/sum/min/max) stay
    // order-independent across worker interleavings.
    static obs::Histogram& n_avg =
        obs::registry().histogram("sim.partition.n_avg_milli");
    static obs::Histogram& replication =
        obs::registry().histogram("sim.partition.replication_milli");
    static obs::Histogram& balance =
        obs::registry().histogram("sim.partition.balance_milli");
    static obs::Histogram& remote =
        obs::registry().histogram("sim.partition.remote_edges_permille");
    static obs::Histogram& wake =
        obs::registry().histogram("sim.partition.bank_wake_permille");
    n_avg.observe(static_cast<std::uint64_t>(1000.0 * report.partition.n_avg));
    replication.observe(static_cast<std::uint64_t>(
        1000.0 * report.partition.replication_factor));
    balance.observe(static_cast<std::uint64_t>(
        1000.0 * report.partition.interval_balance));
    remote.observe(static_cast<std::uint64_t>(
        1000.0 * report.partition.remote_edge_fraction));
    wake.observe(static_cast<std::uint64_t>(
        1000.0 * report.partition.bank_wake_fraction));
  }
  if (obs::enabled() && frontier != nullptr) {
    // Host-side pattern-reuse tallies carried on the trace (zero when
    // reuse is off). Observed from the trace rather than at skip time so
    // functional-cache replays account identically to fresh runs.
    static obs::Counter& blocks_skipped =
        obs::registry().counter("sim.kernel.blocks_skipped");
    static obs::Counter& edges_skipped =
        obs::registry().counter("sim.kernel.edges_skipped");
    blocks_skipped.add(frontier->blocks_skipped);
    edges_skipped.add(frontier->edges_skipped);
  }

  if (sink.on())
    sink.name_tracks(config_.label + " / " + program.name(),
                     config_.num_pus);

  const std::uint32_t value_bytes = program.vertex_value_bytes();
  UnitTallies tallies;
  const DynCosts costs{edge_memory(), offchip_vertex_memory(),
                       sram_ ? &*sram_ : nullptr, value_bytes};
  if (config_.has_onchip_vertex_memory()) {
    account_with_sram(graph, schedule, value_bytes, program.has_apply_phase(),
                      frontier, sink, report, tallies);
  } else {
    account_without_sram(graph, value_bytes, report);
    if (sink.on() && report.iterations > 0) {
      const double iter_time =
          report.exec_time_ns / report.iterations;
      AccessStats per_iter = report.stats;
      // Uniform iterations: the per-iteration power sample is the run
      // average (this walk has no per-iteration structure to refine it).
      const double iter_dynamic_pj =
          costs.iteration_dynamic_pj(per_iter) / report.iterations;
      for (std::uint32_t i = 0; i < report.iterations; ++i) {
        sink.trace->complete(sink.pid, TraceSink::kScheduler, "iteration",
                             "iteration", i * iter_time, iter_time,
                             {{"iter", static_cast<double>(i)}});
        if (iter_time > 0)
          sink.trace->counter(sink.pid, TraceSink::kCounters, "power",
                              i * iter_time,
                              {{"dynamic_mw", iter_dynamic_pj / iter_time}});
      }
    }
  }

  const AccessStats& s = report.stats;
  EnergyBreakdown& energy = report.energy;
  EnergyLedger& ledger = report.ledger;
  const double t = report.exec_time_ns;
  // Per-PU attribution only where the walk produced per-PU counts; the
  // SRAM-less baselines charge whole-module units instead.
  const bool per_pu = !tallies.pu_edges.empty();
  const auto pu_unit = [](std::uint32_t pu) {
    return "pu" + std::to_string(pu);
  };

  // ---- edge memory ----
  // The module must both hold the edges and feed N PUs at full pipeline
  // rate; whichever requirement needs more chips sets the provisioning.
  const MemoryModel& emem = edge_memory();
  const double required_edge_gbps = config_.num_pus *
                                    static_cast<double>(config_.edge_bytes) /
                                    kPuPipelineCycleNs;
  const auto edge_capacity = std::max(
      static_cast<std::uint64_t>(static_cast<double>(graph.num_edges()) *
                                 config_.edge_bytes * kCapacitySlackFactor),
      emem.min_capacity_for_bandwidth_gbps(required_edge_gbps));
  ledger.charge(EnergyComponent::kEdgeMemDynamic, Phase::kProcess, "edge-mem",
                costs.edge_stream_pj(s.edge_bytes_read));
  if (config_.edge_memory_tech == MemTech::kReram && config_.power_gating) {
    EdgeMemoryActivity activity;
    activity.total_time_ns = t;
    activity.streaming_time_ns = report.streaming_time_ns;
    activity.bytes_streamed = s.edge_bytes_read;
    activity.capacity_bytes = edge_capacity;
    report.bpg = evaluate_power_gating(reram_, activity);
    // Bank-state attribution: the single streaming bank, the re-gated
    // remainder of the module, and the gate-open pulses (the wake
    // energy, charged to the wake phase it buys back).
    ledger.charge(EnergyComponent::kEdgeMemBackground, Phase::kBackground,
                  "banks:awake", report.bpg.awake_background_pj);
    ledger.charge(EnergyComponent::kEdgeMemBackground, Phase::kBackground,
                  "banks:gated", report.bpg.idle_background_pj);
    ledger.charge(EnergyComponent::kEdgeMemBackground, Phase::kWake,
                  "banks:wake", report.bpg.wake_energy_pj);
    report.exec_time_ns += report.bpg.exposed_wake_time_ns;
    report.phases.time(Phase::kWake) += report.bpg.exposed_wake_time_ns;
    if (sink.on() && report.bpg.exposed_wake_time_ns > 0)
      sink.trace->complete(sink.pid, TraceSink::kBpg, "exposed wake", "bpg",
                           t, report.bpg.exposed_wake_time_ns,
                           {{"bank_wakes",
                             static_cast<double>(report.bpg.bank_wakes)}});
  } else {
    ledger.charge(
        EnergyComponent::kEdgeMemBackground, Phase::kBackground, "edge-mem",
        units::power_over(emem.background_power_mw(edge_capacity), t));
  }

  // ---- off-chip vertex memory ----
  const MemoryModel& vmem = offchip_vertex_memory();
  const auto vertex_capacity = static_cast<std::uint64_t>(
      static_cast<double>(graph.num_vertices()) * value_bytes *
      kCapacitySlackFactor);
  // acc+DRAM / acc+ReRAM keep everything in one module: its background is
  // already accounted under the edge memory (whose capacity covers both).
  const bool shared_module =
      !config_.has_onchip_vertex_memory() &&
      config_.edge_memory_tech == config_.offchip_vertex_tech;
  // Stream traffic is the interval loading/updating phase; random
  // traffic (baselines without on-chip SRAM) happens per processed edge.
  ledger.charge(EnergyComponent::kOffchipVertexDynamic, Phase::kLoad,
                "vertex-mem",
                costs.vmem_stream_pj(s.offchip_vertex_bytes_read,
                                     s.offchip_vertex_bytes_written));
  ledger.charge(EnergyComponent::kOffchipVertexDynamic, Phase::kProcess,
                "vertex-mem",
                costs.vmem_random_pj(s.offchip_vertex_random_reads,
                                     s.offchip_vertex_random_writes));
  if (!shared_module)
    ledger.charge(
        EnergyComponent::kOffchipVertexBackground, Phase::kBackground,
        "vertex-mem",
        units::power_over(vmem.background_power_mw(vertex_capacity), t));

  // ---- on-chip vertex memory ----
  if (sram_) {
    ledger.charge(EnergyComponent::kSramDynamic, Phase::kLoad, "sram",
                  costs.sram_fill_pj(s.sram_fill_bytes, s.sram_drain_bytes));
    const double pu_leak_pj =
        units::power_over(sram_->leakage_power_mw(), t);
    for (std::uint32_t pu = 0; pu < tallies.pu_edges.size(); ++pu) {
      ledger.charge(EnergyComponent::kSramDynamic, Phase::kProcess,
                    pu_unit(pu), costs.sram_edge_pj(tallies.pu_edges[pu]));
      ledger.charge(EnergyComponent::kSramDynamic, Phase::kApply,
                    pu_unit(pu), costs.sram_apply_pj(tallies.pu_apply[pu]));
      ledger.charge(EnergyComponent::kSramLeakage, Phase::kBackground,
                    pu_unit(pu), pu_leak_pj);
    }
  }

  // ---- router / PUs / control ----
  if (per_pu) {
    for (std::uint32_t pu = 0; pu < tallies.pu_edges.size(); ++pu) {
      ledger.charge(EnergyComponent::kRouter, Phase::kProcess, pu_unit(pu),
                    costs.router_pj(tallies.pu_remote[pu]));
      ledger.charge(EnergyComponent::kPuDynamic, Phase::kProcess, pu_unit(pu),
                    costs.pu_edge_pj(tallies.pu_edges[pu]));
      ledger.charge(EnergyComponent::kPuDynamic, Phase::kApply, pu_unit(pu),
                    costs.pu_apply_pj(tallies.pu_apply[pu]));
    }
  } else {
    ledger.charge(EnergyComponent::kRouter, Phase::kProcess, "pus",
                  costs.router_pj(s.router_hops));
    ledger.charge(EnergyComponent::kPuDynamic, Phase::kProcess, "pus",
                  costs.pu_edge_pj(s.edge_ops));
    ledger.charge(EnergyComponent::kPuDynamic, Phase::kApply, "pus",
                  costs.pu_apply_pj(s.vertex_ops));
  }
  ledger.charge(EnergyComponent::kLogicStatic, Phase::kBackground, "logic",
                units::power_over(kLogicStaticMw, t));

  // ---- derive the breakdowns from the ledger ----
  // The ledger is the single accounting surface: every joule above went
  // through charge(), so the component/phase breakdowns are its marginal
  // sums and agree with it by construction. validate_ledger() re-proves
  // the agreement (and validate_phase_totals the phase/total one) so a
  // future charge added outside this block cannot silently skew them.
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(EnergyComponent::kCount); ++c)
    energy[static_cast<EnergyComponent>(c)] =
        ledger.component_pj(static_cast<EnergyComponent>(c));
  for (std::size_t p = 0; p < static_cast<std::size_t>(Phase::kCount); ++p)
    report.phases.energy(static_cast<Phase>(p)) =
        ledger.phase_pj(static_cast<Phase>(p));

  report.validate_phase_totals();
  report.validate_ledger();

  return report;
}

void RunReport::validate_phase_totals(double rel_tol) const {
  const auto close = [rel_tol](double a, double b) {
    return std::abs(a - b) <=
           rel_tol * std::max({std::abs(a), std::abs(b), 1.0});
  };
  HYVE_CHECK_MSG(close(phases.total_time_ns(), exec_time_ns),
                 "phase times sum to " << phases.total_time_ns()
                                       << " ns but exec_time_ns is "
                                       << exec_time_ns);
  HYVE_CHECK_MSG(close(phases.total_energy_pj(), total_energy_pj()),
                 "phase energies sum to " << phases.total_energy_pj()
                                          << " pJ but the total is "
                                          << total_energy_pj());
}

void RunReport::validate_ledger(double rel_tol) const {
  // Reports assembled by hand (tests, parsers fed pre-ledger files)
  // carry no attribution cells; only a machine-produced ledger makes
  // claims to check.
  if (ledger.empty()) return;
  const auto close = [rel_tol](double a, double b) {
    return std::abs(a - b) <=
           rel_tol * std::max({std::abs(a), std::abs(b), 1.0});
  };
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    HYVE_CHECK_MSG(close(ledger.component_pj(c), energy[c]),
                   "ledger cells for " << component_name(c) << " sum to "
                                       << ledger.component_pj(c)
                                       << " pJ but the breakdown has "
                                       << energy[c]);
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const auto p = static_cast<Phase>(i);
    HYVE_CHECK_MSG(close(ledger.phase_pj(p), phases.energy(p)),
                   "ledger cells for phase " << phase_name(p) << " sum to "
                                             << ledger.phase_pj(p)
                                             << " pJ but the breakdown has "
                                             << phases.energy(p));
  }
  HYVE_CHECK_MSG(close(ledger.total_pj(), total_energy_pj()),
                 "ledger total " << ledger.total_pj()
                                 << " pJ but the report total is "
                                 << total_energy_pj());
}

}  // namespace hyve
