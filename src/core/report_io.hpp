// Machine-readable serialisation of run reports.
//
// Emits a flat JSON object per RunReport so downstream tooling (plotting
// scripts, CI dashboards) can consume simulation results without parsing
// the human tables. No external JSON dependency: the schema is flat and
// the only strings are identifiers we control (escaped defensively).
#pragma once

#include <iosfwd>
#include <string>

#include "core/machine.hpp"

namespace hyve {

// Writes one report as a single-line JSON object.
void write_report_json(std::ostream& os, const RunReport& report);

// Convenience: the JSON text.
std::string report_to_json(const RunReport& report);

}  // namespace hyve
