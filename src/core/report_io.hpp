// Machine-readable serialisation of run reports.
//
// Emits a flat JSON object per RunReport so downstream tooling (plotting
// scripts, CI dashboards) can consume simulation results without parsing
// the human tables. No external JSON dependency: the schema is flat and
// the only strings are identifiers we control (escaped defensively).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "core/machine.hpp"

namespace hyve {

// Writes one report as a single-line JSON object. The schema is complete:
// run_report_from_json() recovers every RunReport field.
void write_report_json(std::ostream& os, const RunReport& report);

// Convenience: the JSON text.
std::string report_to_json(const RunReport& report);

// Inverse of write_report_json(). Parses one JSON object produced by it
// (unknown keys are ignored, so the schema can grow) and rebuilds the
// RunReport. Throws std::runtime_error on malformed input or when the
// record's derived fields (energy_pj, mteps) are inconsistent with its
// components. The sweep engine's ResultSink round-trips every record it
// emits through this to guarantee the output stays machine-readable.
RunReport run_report_from_json(const std::string& json);

// The underlying flat-JSON parse: dotted keys ("stats.edge_ops"), array
// elements under "prefix.N" keys, values kept as raw tokens. Shared with
// the bench-report tooling, which embeds run records in a larger
// document. Throws std::runtime_error on malformed input.
std::map<std::string, std::string> parse_flat_json(const std::string& text);

// Rebuilds a RunReport from parsed fields whose keys start with `prefix`
// (e.g. "runs.3." for the fourth element of a bench report's runs
// array). run_report_from_json() is parse_flat_json + this with an empty
// prefix. Same validation and failure behaviour.
RunReport run_report_from_fields(
    const std::map<std::string, std::string>& fields,
    const std::string& prefix = "");

// Field-by-field equality with relative tolerance `rel_tol` on doubles
// (serialisation rounds to 12 significant digits); exact on integers and
// strings.
bool reports_equivalent(const RunReport& a, const RunReport& b,
                        double rel_tol = 1e-9);

// Serialises `report`, parses the text back and checks field equivalence;
// returns the validated JSON line. Throws std::runtime_error when the
// record would not survive the round trip (e.g. a NaN field serialising
// to invalid JSON) — the guarantee that no tool can emit a report the
// tooling cannot parse back. Used by the sweep ResultSink for every
// record and by hyve_sim's single-run output path.
std::string validated_report_json(const RunReport& report);
inline void validate_report_round_trip(const RunReport& report) {
  validated_report_json(report);
}

}  // namespace hyve
