#include "core/perf_history.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/bench_json.hpp"
#include "core/report_io.hpp"

namespace hyve {
namespace {

namespace fs = std::filesystem;

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

using FieldMap = std::map<std::string, std::string>;

const std::string& get(const FieldMap& fields, const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end())
    throw std::runtime_error("perf record: missing field \"" + key + "\"");
  return it->second;
}

double get_num(const FieldMap& fields, const std::string& key) {
  const std::string& token = get(fields, key);
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("perf record: field \"" + key +
                             "\" is not a number: \"" + token + "\"");
  }
}

// The ledger file name is derived from the bench name; refuse names
// that would escape the history directory.
void check_path_component(const std::string& name, const char* what) {
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name == "." || name == "..")
    throw std::runtime_error(std::string(what) + " \"" + name +
                             "\" is not a valid file name");
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

// Records are only comparable when they measured the same workload on
// the same machine shape.
bool comparable(const PerfRecord& a, const PerfRecord& b) {
  return a.bench == b.bench && a.hostname == b.hostname &&
         a.jobs == b.jobs && a.smoke == b.smoke && a.cells == b.cells;
}

// All four headline metrics are lower-is-better (time, memory, energy).
struct Metric {
  const char* name;
  double (*value)(const PerfRecord&);
};
constexpr Metric kMetrics[] = {
    {"energy_pj", [](const PerfRecord& r) { return r.energy_pj; }},
    {"exec_time_ns", [](const PerfRecord& r) { return r.exec_time_ns; }},
    {"max_rss_kb",
     [](const PerfRecord& r) { return static_cast<double>(r.max_rss_kb); }},
    {"wall_ms", [](const PerfRecord& r) { return r.wall_ms; }},
};

PerfTrendResult compare_against(const PerfRecord& latest,
                                const std::vector<const PerfRecord*>& refs,
                                double threshold_pct) {
  PerfTrendResult result;
  result.bench = latest.bench;
  result.comparable = refs.size();
  for (const Metric& m : kMetrics) {
    std::vector<double> values;
    values.reserve(refs.size());
    for (const PerfRecord* r : refs) values.push_back(m.value(*r));
    PerfTrendLine line;
    line.metric = m.name;
    line.reference = median(std::move(values));
    line.latest = m.value(latest);
    const double base = line.reference != 0 ? line.reference : 1.0;
    line.delta_pct = (line.latest - line.reference) / base * 100.0;
    line.regressed = line.delta_pct > threshold_pct;
    if (line.regressed) ++result.regressions;
    result.lines.push_back(std::move(line));
  }
  return result;
}

}  // namespace

PerfRecord perf_record_from_report(const BenchReportDoc& doc) {
  PerfRecord record;
  record.bench = doc.bench;
  record.git_rev = doc.git_rev;
  record.smoke = doc.smoke;
  record.cells = doc.runs.size();
  record.energy_pj = doc.ledger_rollup.total_pj();
  for (const BenchRun& run : doc.runs)
    record.exec_time_ns += run.report.exec_time_ns;
  if (doc.host.present) {
    record.wall_ms = doc.host.wall_ms;
    record.max_rss_kb = doc.host.max_rss_kb;
    record.jobs = doc.host.jobs;
  }
  return record;
}

std::string perf_record_to_json(const PerfRecord& record) {
  std::ostringstream os;
  os << "{\"bench\":";
  write_escaped(os, record.bench);
  os << ",\"cells\":" << record.cells;
  os << ",\"cpu_model\":";
  write_escaped(os, record.cpu_model);
  os << ",\"cpus\":" << record.cpus;
  os << ",\"energy_pj\":" << std::setprecision(12) << record.energy_pj;
  os << ",\"exec_time_ns\":" << record.exec_time_ns;
  os << ",\"git_rev\":";
  write_escaped(os, record.git_rev);
  os << ",\"hostname\":";
  write_escaped(os, record.hostname);
  os << ",\"jobs\":" << record.jobs;
  os << ",\"max_rss_kb\":" << record.max_rss_kb;
  os << ",\"recorded_at\":";
  write_escaped(os, record.recorded_at);
  os << ",\"schema\":";
  write_escaped(os, kPerfHistorySchemaName);
  os << ",\"schema_version\":" << kPerfHistorySchemaVersion;
  os << ",\"smoke\":" << (record.smoke ? "true" : "false");
  os << ",\"wall_ms\":" << record.wall_ms;
  os << '}';
  return os.str();
}

PerfRecord perf_record_from_json(const std::string& json) {
  const FieldMap fields = parse_flat_json(json);
  if (get(fields, "schema") != kPerfHistorySchemaName)
    throw std::runtime_error("perf record: schema is \"" +
                             get(fields, "schema") + "\", expected \"" +
                             kPerfHistorySchemaName + "\"");
  if (get_num(fields, "schema_version") != kPerfHistorySchemaVersion)
    throw std::runtime_error(
        "perf record: schema_version " + get(fields, "schema_version") +
        " is not supported (this build reads version " +
        std::to_string(kPerfHistorySchemaVersion) + ")");

  PerfRecord record;
  record.bench = get(fields, "bench");
  record.git_rev = get(fields, "git_rev");
  record.recorded_at = get(fields, "recorded_at");
  record.hostname = get(fields, "hostname");
  record.cpu_model = get(fields, "cpu_model");
  record.cpus = static_cast<std::uint64_t>(get_num(fields, "cpus"));
  record.jobs = static_cast<std::int64_t>(get_num(fields, "jobs"));
  const std::string& smoke = get(fields, "smoke");
  if (smoke != "true" && smoke != "false")
    throw std::runtime_error("perf record: smoke is \"" + smoke +
                             "\", expected true or false");
  record.smoke = smoke == "true";
  record.cells = static_cast<std::uint64_t>(get_num(fields, "cells"));
  record.wall_ms = get_num(fields, "wall_ms");
  record.max_rss_kb =
      static_cast<std::uint64_t>(get_num(fields, "max_rss_kb"));
  record.energy_pj = get_num(fields, "energy_pj");
  record.exec_time_ns = get_num(fields, "exec_time_ns");
  if (record.wall_ms < 0 || record.energy_pj < 0 ||
      record.exec_time_ns < 0)
    throw std::runtime_error("perf record: negative measurement");
  return record;
}

std::string perf_history_path(const std::string& dir,
                              const std::string& bench) {
  check_path_component(bench, "perf history: bench name");
  return (fs::path(dir) / (bench + ".jsonl")).string();
}

void append_perf_record(const std::string& dir, const PerfRecord& record) {
  const std::string path = perf_history_path(dir, record.bench);
  const std::string line = perf_record_to_json(record);
  perf_record_from_json(line);  // parse-back proof before touching disk
  fs::create_directories(dir);
  std::ofstream os(path, std::ios::app);
  if (!os) throw std::runtime_error("cannot open perf history " + path);
  os << line << '\n';
  if (!os.good())
    throw std::runtime_error("failed writing perf history " + path);
}

std::vector<PerfRecord> load_perf_history(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open perf history " + path);
  std::vector<PerfRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      records.push_back(perf_record_from_json(line));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return records;
}

std::vector<std::string> list_perf_histories(const std::string& dir) {
  std::vector<std::string> paths;
  if (!fs::is_directory(dir)) return paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl")
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  return paths;
}

void save_perf_baseline(const std::string& dir, const std::string& name,
                        const PerfRecord& record) {
  check_path_component(name, "perf baseline: name");
  const fs::path base = fs::path(dir) / "baselines";
  fs::create_directories(base);
  const std::string path = (base / (name + ".json")).string();
  const std::string line = perf_record_to_json(record);
  perf_record_from_json(line);
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open baseline " + path);
  os << line << '\n';
  if (!os.good())
    throw std::runtime_error("failed writing baseline " + path);
}

PerfRecord load_perf_baseline(const std::string& dir,
                              const std::string& name) {
  check_path_component(name, "perf baseline: name");
  const std::string path =
      (fs::path(dir) / "baselines" / (name + ".json")).string();
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open baseline " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return perf_record_from_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

PerfTrendResult trend_perf_history(const std::vector<PerfRecord>& records,
                                   double threshold_pct) {
  PerfTrendResult result;
  result.records = records.size();
  if (records.empty()) {
    result.note = "no records";
    return result;
  }
  const PerfRecord& latest = records.back();
  result.bench = latest.bench;
  std::vector<const PerfRecord*> refs;
  for (std::size_t i = 0; i + 1 < records.size(); ++i)
    if (comparable(records[i], latest)) refs.push_back(&records[i]);
  if (refs.empty()) {
    result.note =
        "no comparable prior records (same bench, host, jobs, smoke, "
        "cells)";
    return result;
  }
  PerfTrendResult compared =
      compare_against(latest, refs, threshold_pct);
  compared.records = result.records;
  return compared;
}

PerfTrendResult compare_to_baseline(const PerfRecord& baseline,
                                    const PerfRecord& latest,
                                    double threshold_pct) {
  if (!comparable(baseline, latest)) {
    PerfTrendResult result;
    result.bench = latest.bench;
    result.records = 1;
    result.note =
        "baseline is not comparable (bench, host, jobs, smoke or cells "
        "differ)";
    return result;
  }
  PerfTrendResult result =
      compare_against(latest, {&baseline}, threshold_pct);
  result.records = 1;
  return result;
}

std::string format_perf_trend(const PerfTrendResult& result,
                              double threshold_pct) {
  std::ostringstream os;
  os << std::setprecision(6);
  if (!result.note.empty())
    os << result.bench << (result.bench.empty() ? "" : ": ")
       << result.note << " (" << result.records << " record(s))\n";
  for (const PerfTrendLine& line : result.lines) {
    os << result.bench << ' ' << line.metric << ' ' << line.reference
       << " -> " << line.latest << " ("
       << (line.delta_pct >= 0 ? "+" : "") << std::setprecision(3)
       << line.delta_pct << std::setprecision(6) << "%)";
    if (line.regressed) os << " REGRESSION";
    os << '\n';
  }
  if (result.note.empty())
    os << result.records << " record(s), " << result.comparable
       << " comparable, " << result.regressions
       << " regression(s) beyond " << threshold_pct << "%\n";
  return os.str();
}

}  // namespace hyve
