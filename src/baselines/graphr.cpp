#include "baselines/graphr.hpp"

#include <algorithm>

#include "graph/stats.hpp"
#include "memmodel/sram.hpp"
#include "memmodel/techparams.hpp"
#include "util/check.hpp"

namespace hyve {

using namespace tech;

double GraphRReport::mteps_per_watt() const {
  return units::mteps_per_watt(static_cast<double>(edges_traversed),
                               total_energy_pj());
}

GraphRModel::GraphRModel(GraphRConfig config)
    : config_(config), reram_(config_.reram), dram_(config_.dram) {
  HYVE_CHECK(config_.parallel_crossbars >= 1);
}

namespace {

bool is_mvm_algorithm(Algorithm algorithm) {
  return algorithm == Algorithm::kPageRank || algorithm == Algorithm::kSpmv;
}

constexpr std::uint32_t kEdgeBytes = 8;

}  // namespace

GraphRReport GraphRModel::run(const Graph& graph, Algorithm algorithm) const {
  const auto program = make_program(algorithm);
  const FunctionalResult functional = run_functional(graph, *program);

  const BlockOccupancy occ = block_occupancy(graph, kCrossbarDim);

  GraphRReport report;
  report.algorithm = algorithm_name(algorithm);
  report.iterations = functional.iterations;
  report.edges_traversed = functional.edges_traversed;
  report.non_empty_blocks = occ.non_empty_blocks;
  report.n_avg = occ.avg_edges_per_non_empty;

  const std::uint64_t e = graph.num_edges();
  const std::uint64_t neb = occ.non_empty_blocks;
  const double iters = report.iterations;
  const std::uint32_t value_bytes = program->vertex_value_bytes();

  // ---- processing on crossbars (per iteration) ----
  // Configure: every edge of every non-empty block is written into a
  // crossbar cell before the block can be evaluated.
  const double write_energy = static_cast<double>(e) * kCrossbarWriteEnergyPj;
  double read_energy = 0;
  if (is_mvm_algorithm(algorithm)) {
    // Eq. 11: 4 bit-sliced replicas read per block.
    read_energy = static_cast<double>(neb) * kCrossbarsPerValue *
                  kCrossbarReadEnergyPj;
  } else {
    // Eq. 12: rows selected in turn (8 reads) + a CMOS op per edge at the
    // output ports.
    read_energy = static_cast<double>(neb) * kCrossbarDim *
                      kCrossbarsPerValue * kCrossbarReadEnergyPj +
                  static_cast<double>(e) * kCmosEdgeOpEnergyPj;
  }
  EnergyBreakdown& energy = report.energy;
  energy[EnergyComponent::kPuDynamic] = (write_energy + read_energy) * iters;

  // ---- local vertex storage: register files (§6.3) ----
  RegisterFileModel regfile;
  energy[EnergyComponent::kSramDynamic] =
      iters * static_cast<double>(e) *
      (2.0 * regfile.read_energy_pj(value_bytes) +
       regfile.write_energy_pj(value_bytes));

  // ---- global memory traffic ----
  const MemoryModel& gmem =
      config_.global_memory_tech == MemTech::kReram
          ? static_cast<const MemoryModel&>(reram_)
          : static_cast<const MemoryModel&>(dram_);
  // Eq. 9 vertex loads + Eq. 7 write-backs, plus the edge stream feeding
  // the crossbar configuration.
  const std::uint64_t vertex_read_bytes =
      global_vertex_loads(neb) * value_bytes;
  const std::uint64_t vertex_write_bytes =
      static_cast<std::uint64_t>(graph.num_vertices()) * value_bytes;
  energy[EnergyComponent::kOffchipVertexDynamic] =
      iters * (gmem.stream_read_energy_pj(vertex_read_bytes) +
               gmem.stream_write_energy_pj(vertex_write_bytes));
  energy[EnergyComponent::kEdgeMemDynamic] =
      iters * gmem.stream_read_energy_pj(e * kEdgeBytes);

  // ---- timing ----
  // Per block: serial edge writes then the block read(s); blocks are
  // spread over the crossbar fleet. Eq. 16's per-edge form.
  const double reads_per_block =
      is_mvm_algorithm(algorithm) ? 1.0 : static_cast<double>(kCrossbarDim);
  const double block_time =
      occ.avg_edges_per_non_empty * kCrossbarWriteLatencyNs +
      reads_per_block * kCrossbarReadLatencyNs;
  const double processing_time =
      iters * static_cast<double>(neb) * block_time /
      config_.parallel_crossbars;
  const double traffic_time =
      iters * (gmem.stream_read_time_ns(vertex_read_bytes + e * kEdgeBytes) +
               gmem.stream_write_time_ns(vertex_write_bytes));
  report.exec_time_ns = std::max(processing_time, traffic_time);

  // ---- backgrounds ----
  const auto capacity = static_cast<std::uint64_t>(
      (static_cast<double>(e) * kEdgeBytes +
       static_cast<double>(graph.num_vertices()) * value_bytes) *
      kCapacitySlackFactor);
  energy[EnergyComponent::kOffchipVertexBackground] =
      units::power_over(gmem.background_power_mw(capacity),
                        report.exec_time_ns);
  energy[EnergyComponent::kLogicStatic] =
      units::power_over(kLogicStaticMw, report.exec_time_ns);

  return report;
}

}  // namespace hyve
