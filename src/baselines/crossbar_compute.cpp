#include "baselines/crossbar_compute.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "algos/pagerank.hpp"
#include "algos/runner.hpp"
#include "util/check.hpp"

namespace hyve {

QuantizedCrossbarBlock::QuantizedCrossbarBlock(
    const std::array<std::array<double, kDim>, kDim>& weights) {
  for (int s = 0; s < kDim; ++s) {
    for (int d = 0; d < kDim; ++d) {
      const double w = weights[s][d];
      HYVE_CHECK_MSG(w >= 0.0 && w <= 1.0,
                     "crossbar weight " << w << " outside [0, 1]");
      // 16-bit fixed point, bit-sliced into 4-bit conductance levels.
      const auto q = static_cast<std::uint32_t>(std::lround(w * 65535.0));
      for (int slice = 0; slice < kSlices; ++slice) {
        const auto level =
            static_cast<std::uint8_t>((q >> (slice * kCellBits)) & 0xF);
        cell_[slice][s][d] = level;
      }
      if (q != 0) cells_programmed_ += kSlices;
    }
  }
}

std::array<double, QuantizedCrossbarBlock::kDim> QuantizedCrossbarBlock::mvm(
    const std::array<double, kDim>& x, double x_scale) const {
  HYVE_CHECK(x_scale > 0.0);
  // 8-bit DACs drive the wordlines: quantise the input voltages.
  constexpr int kDacLevels = (1 << kDacBits) - 1;
  std::array<double, kDim> xq{};
  for (int s = 0; s < kDim; ++s) {
    const double clamped = std::clamp(x[s] / x_scale, 0.0, 1.0);
    xq[s] = std::lround(clamped * kDacLevels) /
            static_cast<double>(kDacLevels) * x_scale;
  }
  // Analog MAC per slice (bitline current summation), recombined with the
  // slice weights 16^k / 65535.
  std::array<double, kDim> y{};
  for (int slice = 0; slice < kSlices; ++slice) {
    const double slice_weight = std::pow(16.0, slice) / 65535.0;
    for (int d = 0; d < kDim; ++d) {
      double current = 0;
      for (int s = 0; s < kDim; ++s) current += cell_[slice][s][d] * xq[s];
      y[d] += current * slice_weight;
    }
  }
  return y;
}

CrossbarPagerankResult crossbar_pagerank(const Graph& graph,
                                         std::uint32_t iterations,
                                         double damping) {
  const VertexId v = graph.num_vertices();
  HYVE_CHECK(v > 0);
  const auto out_degree = graph.out_degrees();

  // Group edges by 8x8 block and program one quantised crossbar each;
  // the programmed weight is the PR transition entry 1/outdeg(src).
  struct BlockKey {
    std::uint32_t bx, by;
    bool operator<(const BlockKey& o) const {
      return bx != o.bx ? bx < o.bx : by < o.by;
    }
  };
  std::map<BlockKey, std::array<std::array<double, 8>, 8>> block_weights;
  for (const Edge& e : graph.edges()) {
    const BlockKey key{e.src / 8, e.dst / 8};
    auto [it, inserted] = block_weights.try_emplace(key);
    if (inserted)
      for (auto& row : it->second) row.fill(0.0);
    it->second[e.src % 8][e.dst % 8] = 1.0 / out_degree[e.src];
  }

  CrossbarPagerankResult result;
  std::map<BlockKey, QuantizedCrossbarBlock> crossbars;
  for (const auto& [key, weights] : block_weights) {
    const auto [it, inserted] = crossbars.try_emplace(key, weights);
    result.cells_programmed += it->second.cells_programmed();
  }

  // Synchronous PageRank through block MVMs.
  std::vector<double> rank(v, 1.0 / v);
  std::vector<double> accum(v, 0.0);
  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    std::fill(accum.begin(), accum.end(), 0.0);
    const double x_scale =
        *std::max_element(rank.begin(), rank.end()) + 1e-300;
    for (const auto& [key, crossbar] : crossbars) {
      std::array<double, 8> x{};
      for (int s = 0; s < 8; ++s) {
        const VertexId src = key.bx * 8 + s;
        if (src < v) x[s] = rank[src];
      }
      const std::array<double, 8> y = crossbar.mvm(x, x_scale);
      for (int d = 0; d < 8; ++d) {
        const VertexId dst = key.by * 8 + d;
        if (dst < v) accum[dst] += y[d];
      }
      ++result.blocks_evaluated;
    }
    for (VertexId u = 0; u < v; ++u)
      rank[u] = (1.0 - damping) / v + damping * accum[u];
  }
  result.ranks = std::move(rank);

  // Reference float PageRank for the error report.
  PageRankProgram reference(iterations, damping);
  run_functional(graph, reference);
  double sum_err = 0;
  for (VertexId u = 0; u < v; ++u) {
    const double err = std::abs(result.ranks[u] - reference.ranks()[u]);
    result.max_abs_error = std::max(result.max_abs_error, err);
    sum_err += err;
  }
  result.mean_abs_error = sum_err / v;
  return result;
}

}  // namespace hyve
