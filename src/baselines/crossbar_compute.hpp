// Functional simulation of GraphR's analog crossbar compute (§2.3, §6.4).
//
// The analytic GraphRModel charges time and energy; this module computes
// the *values* a crossbar MVM actually produces: an 8x8 block of edge
// weights is quantised to 16-bit fixed point and bit-sliced across 4
// crossbars of 4-bit cells (the paper's configuration); the input vector
// passes through 8-bit DACs. The result is exact up to those two
// quantisations — which is precisely the accuracy cost of computing in
// the adjacency matrix instead of on CMOS, a dimension the paper's
// energy comparison leaves implicit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace hyve {

class QuantizedCrossbarBlock {
 public:
  static constexpr int kDim = 8;         // 8x8 crossbars
  static constexpr int kCellBits = 4;    // per-cell conductance levels
  static constexpr int kSlices = 4;      // 4 crossbars for 16-bit weights
  static constexpr int kDacBits = 8;     // input DAC resolution

  // Programs the block: weights[src][dst] in [0, 1].
  explicit QuantizedCrossbarBlock(
      const std::array<std::array<double, kDim>, kDim>& weights);

  // Analog matrix-vector product: y[dst] = sum_src W[src][dst] * x[src],
  // x quantised through the DACs relative to x_scale (the max |x| the
  // DAC range is calibrated to).
  std::array<double, kDim> mvm(const std::array<double, kDim>& x,
                               double x_scale) const;

  // Cells written while programming (= non-zero weights x slices).
  std::uint64_t cells_programmed() const { return cells_programmed_; }

 private:
  // cell_[slice][src][dst] in [0, 15].
  std::array<std::array<std::array<std::uint8_t, kDim>, kDim>, kSlices>
      cell_{};
  std::uint64_t cells_programmed_ = 0;
};

// PageRank executed through quantised crossbar MVMs, block by block over
// the 8x8-vertex grid — the functional twin of GraphRModel's PR run.
struct CrossbarPagerankResult {
  std::vector<double> ranks;
  std::uint64_t blocks_evaluated = 0;   // per iteration sum
  std::uint64_t cells_programmed = 0;
  // Error of the crossbar ranks against float PageRank.
  double max_abs_error = 0;
  double mean_abs_error = 0;
};

CrossbarPagerankResult crossbar_pagerank(const Graph& graph,
                                         std::uint32_t iterations,
                                         double damping = 0.85);

}  // namespace hyve
