// GraphR baseline model (Song et al., HPCA'18), as modelled by the HyVE
// paper in §6 and evaluated in §7.4.
//
// GraphR processes the graph in 8x8-vertex blocks on ReRAM crossbars:
// every edge of a non-empty block is first *written* into a crossbar cell
// (50.88 ns / 3.91 nJ each), then the block is evaluated — one analog
// read for MVM-style algorithms (PR, SpMV; Eq. 11) or 8 row-selected
// reads plus a CMOS op per edge for the rest (BFS, CC, SSSP; Eq. 12).
// Local vertex values live in register files; globally, vertices are
// re-streamed 16x per non-empty block (Eq. 9), far more often than
// HyVE's (P/N) passes (Eq. 8), because the 8-vertex partitions are tiny.
//
// All device constants come from the GraphR paper as quoted by HyVE
// (§7.4.3); the fleet of concurrently-operating crossbars is the one
// [calibrated] parameter (the HyVE paper does not restate GraphR's
// engine count).
#pragma once

#include <string>

#include "algos/runner.hpp"
#include "graph/graph.hpp"
#include "memmodel/crossbar.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/memtech.hpp"
#include "memmodel/reram.hpp"
#include "sim/energy.hpp"

namespace hyve {

struct GraphRConfig {
  // Crossbars evaluating distinct blocks concurrently. [calibrated]
  int parallel_crossbars = 64;
  // Global vertex/edge memory technology; GraphR profits from ReRAM here
  // (Fig. 10) because its partition count is huge.
  MemTech global_memory_tech = MemTech::kReram;
  ReramConfig reram;
  DramConfig dram;
};

struct GraphRReport {
  std::string algorithm;
  std::uint32_t iterations = 0;
  std::uint64_t edges_traversed = 0;
  std::uint64_t non_empty_blocks = 0;
  double n_avg = 0;  // Table 1
  double exec_time_ns = 0;
  EnergyBreakdown energy;

  double total_energy_pj() const { return energy.total_pj(); }
  double mteps_per_watt() const;
  double edp_pj_ns() const { return total_energy_pj() * exec_time_ns; }
};

class GraphRModel {
 public:
  explicit GraphRModel(GraphRConfig config = {});

  GraphRReport run(const Graph& graph, Algorithm algorithm) const;

  // Eq. 9: global sequential vertex loads per iteration.
  static std::uint64_t global_vertex_loads(std::uint64_t non_empty_blocks) {
    return 16 * non_empty_blocks;
  }

 private:
  GraphRConfig config_;
  CrossbarModel crossbar_;
  ReramModel reram_;
  DramModel dram_;
};

}  // namespace hyve
