// CPU+DRAM software baselines (§7.1): an NXgraph-like in-memory system
// ("CPU+DRAM") and Galois ("CPU+DRAM-opt") on a hexa-core i7 at 3.3 GHz,
// measured in the paper with Intel PCM. Here they are modelled at the
// package + DRAM power and per-edge throughput that reproduce the
// paper's two-orders-of-magnitude efficiency gap (§7.3.3).
#pragma once

#include <string>

#include "algos/runner.hpp"
#include "graph/graph.hpp"

namespace hyve {

enum class CpuBaseline { kNaive, kOptimized };  // NXgraph-like vs Galois

struct CpuReport {
  std::string config_label;
  std::string algorithm;
  std::uint32_t iterations = 0;
  std::uint64_t edges_traversed = 0;
  double exec_time_ns = 0;
  double energy_pj = 0;

  double mteps_per_watt() const;
};

class CpuModel {
 public:
  explicit CpuModel(CpuBaseline kind) : kind_(kind) {}

  CpuReport run(const Graph& graph, Algorithm algorithm) const;

  static std::string label(CpuBaseline kind);

 private:
  CpuBaseline kind_;
};

}  // namespace hyve
