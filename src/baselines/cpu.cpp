#include "baselines/cpu.hpp"

#include "memmodel/techparams.hpp"
#include "util/units.hpp"

namespace hyve {

using namespace tech;

double CpuReport::mteps_per_watt() const {
  return units::mteps_per_watt(static_cast<double>(edges_traversed),
                               energy_pj);
}

std::string CpuModel::label(CpuBaseline kind) {
  return kind == CpuBaseline::kNaive ? "CPU+DRAM" : "CPU+DRAM-opt";
}

CpuReport CpuModel::run(const Graph& graph, Algorithm algorithm) const {
  const auto program = make_program(algorithm);
  const FunctionalResult functional = run_functional(graph, *program);

  CpuReport report;
  report.config_label = label(kind_);
  report.algorithm = algorithm_name(algorithm);
  report.iterations = functional.iterations;
  report.edges_traversed = functional.edges_traversed;

  const double ns_per_edge =
      kind_ == CpuBaseline::kNaive ? kCpuNaiveNsPerEdge : kCpuOptNsPerEdge;
  report.exec_time_ns =
      static_cast<double>(functional.edges_traversed) * ns_per_edge;
  report.energy_pj = units::power_over(kCpuPackagePowerMw + kCpuDramPowerMw,
                                       report.exec_time_ns);
  return report;
}

}  // namespace hyve
