#include "model/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hyve::model {

double execution_time_ns(const ModelInputs& in) {
  const double pipeline_interval =
      std::max({in.read_vertex_rand.time_ns, in.read_edge.time_ns,
                in.process.time_ns, in.write_vertex_rand.time_ns});
  return static_cast<double>(in.n_read_vertex_seq) *
             in.read_vertex_seq.time_ns +
         static_cast<double>(in.n_read_edge) * pipeline_interval +
         static_cast<double>(in.n_write_vertex_seq) *
             in.write_vertex_seq.time_ns;
}

double energy_pj(const ModelInputs& in) {
  // Eq. 2: 2 random vertex reads (source and destination) and 1 random
  // write per edge, plus sequential traffic and compute.
  return static_cast<double>(in.n_read_vertex_seq) *
             in.read_vertex_seq.energy_pj +
         2.0 * static_cast<double>(n_read_vertex_rand(in)) *
             in.read_vertex_rand.energy_pj +
         static_cast<double>(in.n_read_edge) * in.read_edge.energy_pj +
         static_cast<double>(in.n_read_edge) * in.process.energy_pj +
         static_cast<double>(n_write_vertex_rand(in)) *
             in.write_vertex_rand.energy_pj +
         static_cast<double>(in.n_write_vertex_seq) *
             in.write_vertex_seq.energy_pj;
}

double edp(const ModelInputs& in) {
  return execution_time_ns(in) * energy_pj(in);
}

double edp_lower_bound(const ModelInputs& in) {
  // Eq. 6: [ sum_i n_i * sqrt(T_i * E_i) ]^2 with the paper's 1/4 time
  // weights folded in as the sqrt(1/4) = 1/2 coefficients (sqrt(2)/2 for
  // the doubled random-read energy term).
  const auto ne = static_cast<double>(in.n_read_edge);
  const double root =
      static_cast<double>(in.n_read_vertex_seq) *
          std::sqrt(in.read_vertex_seq.time_ns *
                    in.read_vertex_seq.energy_pj) +
      (std::sqrt(2.0) / 2.0) * ne *
          std::sqrt(in.read_vertex_rand.time_ns *
                    in.read_vertex_rand.energy_pj) +
      0.5 * ne * std::sqrt(in.read_edge.time_ns * in.read_edge.energy_pj) +
      0.5 * ne * std::sqrt(in.process.time_ns * in.process.energy_pj) +
      0.5 * ne *
          std::sqrt(in.write_vertex_rand.time_ns *
                    in.write_vertex_rand.energy_pj) +
      static_cast<double>(in.n_write_vertex_seq) *
          std::sqrt(in.write_vertex_seq.time_ns *
                    in.write_vertex_seq.energy_pj);
  return root * root;
}

std::uint64_t hyve_vertex_loads(std::uint32_t num_intervals,
                                std::uint32_t num_pus,
                                std::uint64_t num_vertices) {
  HYVE_CHECK(num_pus > 0 && num_intervals % num_pus == 0);
  return static_cast<std::uint64_t>(num_intervals / num_pus) * num_vertices;
}

std::uint64_t graphr_vertex_loads(std::uint64_t non_empty_blocks) {
  return 16 * non_empty_blocks;
}

}  // namespace hyve::model
