// The paper's §6 analytical model of graph processing on ReRAMs:
// execution time (Eq. 1), energy (Eq. 2), the operation-count identities
// (Eqs. 3-4, 7-9) and the Cauchy-Schwarz EDP lower bound (Eq. 6).
//
// The model decouples the design into edge storage, vertex storage and
// processing units so each can be compared across technologies; HyVE's
// design decisions (§6.6) are exactly the per-term minimisers.
#pragma once

#include <cstdint>

namespace hyve::model {

// Per-operation cost of a pipeline participant.
struct OpCost {
  double time_ns = 0;
  double energy_pj = 0;
};

// The terms of Eq. 1/2. Superscripts R/W = read/write; subscripts:
// (v,s) sequential vertex access, (v,r) random vertex access, e = edge
// access, pu = processing an edge.
struct ModelInputs {
  std::uint64_t n_read_vertex_seq = 0;   // N^R_{v,s}
  std::uint64_t n_write_vertex_seq = 0;  // N^W_{v,s}
  std::uint64_t n_read_edge = 0;         // N^R_e

  OpCost read_vertex_seq;    // T/E^R_{v,s}
  OpCost write_vertex_seq;   // T/E^W_{v,s}
  OpCost read_vertex_rand;   // T/E^R_{v,r}
  OpCost write_vertex_rand;  // T/E^W_{v,r}
  OpCost read_edge;          // T/E^R_e
  OpCost process;            // T/E_pu
};

// Eq. 3/4: each edge triggers one local random read of each endpoint and
// one local random write of the destination.
inline std::uint64_t n_read_vertex_rand(const ModelInputs& in) {
  return in.n_read_edge;
}
inline std::uint64_t n_write_vertex_rand(const ModelInputs& in) {
  return in.n_read_edge;
}

// Eq. 1: pipeline-bound execution time (steps 2-5 overlap; the max is the
// issue interval).
double execution_time_ns(const ModelInputs& in);

// Eq. 2: total energy.
double energy_pj(const ModelInputs& in);

// Eq. 5: energy-delay product.
double edp(const ModelInputs& in);

// Eq. 6: the Cauchy-Schwarz lower bound on the EDP. Guaranteed to be
// <= edp(in); tested as a property.
double edp_lower_bound(const ModelInputs& in);

// Eq. 8: HyVE's global sequential vertex reads per iteration,
// (P/N) * Nv, P intervals on N processing units.
std::uint64_t hyve_vertex_loads(std::uint32_t num_intervals,
                                std::uint32_t num_pus,
                                std::uint64_t num_vertices);

// Eq. 9: GraphR's global sequential vertex reads per iteration.
std::uint64_t graphr_vertex_loads(std::uint64_t non_empty_blocks);

}  // namespace hyve::model
