#include "dynamic/incremental_cc.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace hyve {

IncrementalCc::IncrementalCc(const DynamicGraphStore& store)
    : store_(&store) {
  recompute();
}

VertexId IncrementalCc::find(VertexId v) {
  HYVE_CHECK(v < parent_.size());
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

void IncrementalCc::merge(VertexId a, VertexId b) {
  const VertexId ra = find(a);
  const VertexId rb = find(b);
  if (ra == rb) return;
  // Min-id representative keeps component_of() canonical.
  parent_[std::max(ra, rb)] = std::min(ra, rb);
}

void IncrementalCc::on_add_edge(Edge e) {
  if (recompute_pending_) return;  // will be rebuilt from the store anyway
  if (e.src >= parent_.size() || e.dst >= parent_.size()) {
    recompute_pending_ = true;
    return;
  }
  merge(e.src, e.dst);
}

void IncrementalCc::on_add_vertex(VertexId v) {
  if (recompute_pending_) return;
  if (v != parent_.size()) {
    recompute_pending_ = true;  // unexpected id: resync from the store
    return;
  }
  parent_.push_back(v);  // fresh singleton component
}

void IncrementalCc::on_delete_edge(Edge) { recompute_pending_ = true; }

void IncrementalCc::on_delete_vertex(VertexId) {
  // §5 semantics: the vertex value is invalidated but its edges remain,
  // so connectivity is unchanged; nothing to do.
}

void IncrementalCc::recompute() {
  ++recompute_count_;
  const Graph snapshot = store_->snapshot();
  parent_.resize(snapshot.num_vertices());
  std::iota(parent_.begin(), parent_.end(), VertexId{0});
  for (const Edge& e : snapshot.edges()) merge(e.src, e.dst);
  recompute_pending_ = false;
}

void IncrementalCc::ensure_fresh() {
  if (recompute_pending_) recompute();
}

VertexId IncrementalCc::component_of(VertexId v) {
  ensure_fresh();
  return find(v);
}

std::uint64_t IncrementalCc::num_components() {
  ensure_fresh();
  std::uint64_t count = 0;
  for (VertexId v = 0; v < parent_.size(); ++v) count += (find(v) == v);
  return count;
}

}  // namespace hyve
