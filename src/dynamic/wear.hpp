// ReRAM endurance / wear analysis for the dynamic edge memory.
//
// §2.3 cites ReRAM's >1e10 write endurance as an advantage over other
// NVMs; under the static working flow edges are written once, so wear is
// a non-issue. Dynamic graphs (§5) change that: every add/delete request
// programs cells in the target block's slack region. This module tracks
// per-bank write counts for a request stream and projects the module
// lifetime at a given request rate — quantifying that even write-heavy
// dynamic workloads sit orders of magnitude below the endurance wall,
// and how much block-level slack rotation (wear within the slack slots)
// helps.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/requests.hpp"
#include "graph/graph.hpp"

namespace hyve {

struct WearParams {
  std::uint64_t endurance_cycles = 10'000'000'000ULL;  // §2.3: > 1e10
  std::uint32_t num_intervals = 64;   // block grid of the edge memory
  std::uint32_t banks = 8;            // banks the grid is striped over
  std::uint32_t edge_bytes = 8;
  std::uint32_t cell_write_bytes = 64;  // row programmed per update
};

struct WearReport {
  std::uint64_t total_cell_writes = 0;  // row-programs across the module
  std::vector<std::uint64_t> writes_per_bank;
  double max_over_mean_imbalance = 0;  // hottest bank / average
  // Years until the hottest bank's cells hit the endurance limit,
  // assuming `requests_per_second` sustained and uniform wear levelling
  // within each bank.
  double lifetime_years(double requests_per_second,
                        std::uint64_t bank_capacity_bytes) const;

  std::uint64_t endurance_cycles = 0;
  std::uint64_t stream_requests = 0;
};

// Replays a request stream against the §3.4 block layout and counts the
// row-programs each bank absorbs (adds and deletes both rewrite a slot;
// vertex requests touch the vertex memory, not the edge ReRAM).
WearReport analyze_wear(const Graph& initial,
                        std::span<const DynamicRequest> requests,
                        const WearParams& params = {});

}  // namespace hyve
