#include "dynamic/wear.hpp"

#include <algorithm>
#include <numeric>

#include "graph/partition.hpp"
#include "util/check.hpp"

namespace hyve {

double WearReport::lifetime_years(double requests_per_second,
                                  std::uint64_t bank_capacity_bytes) const {
  HYVE_CHECK(requests_per_second > 0 && bank_capacity_bytes > 0);
  if (writes_per_bank.empty() || stream_requests == 0) return 1e30;
  const std::uint64_t hottest =
      *std::max_element(writes_per_bank.begin(), writes_per_bank.end());
  if (hottest == 0) return 1e30;
  // Row-programs per second landing on the hottest bank.
  const double writes_per_second =
      requests_per_second * static_cast<double>(hottest) /
      static_cast<double>(stream_requests);
  // With wear levelling inside the bank, every row absorbs an equal share:
  // rows * endurance total programs before the first cell dies.
  const double rows = static_cast<double>(bank_capacity_bytes) / 64.0;
  const double total_programs =
      rows * static_cast<double>(endurance_cycles);
  const double seconds = total_programs / writes_per_second;
  return seconds / (365.25 * 24 * 3600);
}

WearReport analyze_wear(const Graph& initial,
                        std::span<const DynamicRequest> requests,
                        const WearParams& params) {
  HYVE_CHECK(params.num_intervals >= 1 && params.banks >= 1);
  WearReport report;
  report.endurance_cycles = params.endurance_cycles;
  report.stream_requests = requests.size();
  report.writes_per_bank.assign(params.banks, 0);

  const VertexMap vmap =
      VertexMap::uniform(initial.num_vertices(), params.num_intervals);
  // Blocks are striped across banks in layout order (§3.4 sequential
  // placement over the bank address space).
  auto bank_of = [&](VertexId src, VertexId dst) {
    const std::uint64_t block =
        static_cast<std::uint64_t>(vmap.interval_of(src)) *
            params.num_intervals +
        vmap.interval_of(dst);
    return static_cast<std::uint32_t>(block % params.banks);
  };

  for (const DynamicRequest& req : requests) {
    switch (req.type) {
      case DynamicRequestType::kAddEdge:
        // Appending into slack programs one row.
        ++report.writes_per_bank[bank_of(req.edge.src, req.edge.dst)];
        ++report.total_cell_writes;
        break;
      case DynamicRequestType::kDeleteEdge:
        // Swap-with-last rewrites the vacated slot's row.
        ++report.writes_per_bank[bank_of(req.edge.src, req.edge.dst)];
        ++report.total_cell_writes;
        break;
      case DynamicRequestType::kAddVertex:
      case DynamicRequestType::kDeleteVertex:
        break;  // vertex memory (DRAM) traffic, no ReRAM wear
    }
  }

  const double mean =
      std::accumulate(report.writes_per_bank.begin(),
                      report.writes_per_bank.end(), 0.0) /
      params.banks;
  const auto hottest = static_cast<double>(*std::max_element(
      report.writes_per_bank.begin(), report.writes_per_bank.end()));
  report.max_over_mean_imbalance = mean <= 0 ? 0.0 : hottest / mean;
  return report;
}

}  // namespace hyve
