// Dynamic-graph request streams and throughput measurement (§7.4.2).
//
// The paper issues tens of thousands of requests at a 45/45/5/5 mix of
// add-edge / delete-edge / add-vertex / delete-vertex and reports the
// sustained millions of edge changes per second on one thread.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/dynamic_graph.hpp"

namespace hyve {

enum class DynamicRequestType {
  kAddEdge,
  kDeleteEdge,
  kAddVertex,
  kDeleteVertex,
};

struct DynamicRequest {
  DynamicRequestType type = DynamicRequestType::kAddEdge;
  Edge edge;       // for edge requests
  VertexId vertex = 0;  // for delete-vertex
};

struct DynamicRequestMix {
  double add_edge = 0.45;
  double delete_edge = 0.45;
  double add_vertex = 0.05;
  double delete_vertex = 0.05;
};

// Deterministic request stream against `initial`: deletions target edges
// actually present (sampled without replacement), insertions are fresh
// random pairs.
std::vector<DynamicRequest> generate_requests(const Graph& initial,
                                              std::uint64_t count,
                                              const DynamicRequestMix& mix,
                                              std::uint64_t seed);

struct ThroughputResult {
  double seconds = 0;
  std::uint64_t requests_applied = 0;
  double millions_per_second() const {
    return seconds <= 0 ? 0.0 : requests_applied / seconds / 1e6;
  }
};

// Applies the stream and measures wall-clock time.
ThroughputResult apply_requests(DynamicGraphStore& store,
                                std::span<const DynamicRequest> requests);

}  // namespace hyve
