#include "dynamic/requests.hpp"

#include <chrono>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hyve {

std::vector<DynamicRequest> generate_requests(const Graph& initial,
                                              std::uint64_t count,
                                              const DynamicRequestMix& mix,
                                              std::uint64_t seed) {
  HYVE_CHECK(initial.num_vertices() > 1);
  const double total =
      mix.add_edge + mix.delete_edge + mix.add_vertex + mix.delete_vertex;
  HYVE_CHECK_MSG(total > 0, "empty request mix");

  Rng rng(seed);
  std::vector<DynamicRequest> requests;
  requests.reserve(count);
  std::uint64_t delete_cursor =
      rng.next_below(std::max<std::uint64_t>(1, initial.num_edges()));

  for (std::uint64_t i = 0; i < count; ++i) {
    const double r = rng.next_double() * total;
    DynamicRequest req;
    if (r < mix.add_edge) {
      req.type = DynamicRequestType::kAddEdge;
      req.edge = {
          static_cast<VertexId>(rng.next_below(initial.num_vertices())),
          static_cast<VertexId>(rng.next_below(initial.num_vertices()))};
    } else if (r < mix.add_edge + mix.delete_edge &&
               initial.num_edges() > 0) {
      req.type = DynamicRequestType::kDeleteEdge;
      // Walk the edge list at a random stride so deletions rarely repeat.
      delete_cursor = (delete_cursor + 0x9e3779b9ULL) % initial.num_edges();
      req.edge = initial.edges()[delete_cursor];
    } else if (r < mix.add_edge + mix.delete_edge + mix.add_vertex) {
      req.type = DynamicRequestType::kAddVertex;
    } else {
      req.type = DynamicRequestType::kDeleteVertex;
      req.vertex =
          static_cast<VertexId>(rng.next_below(initial.num_vertices()));
    }
    requests.push_back(req);
  }
  return requests;
}

ThroughputResult apply_requests(DynamicGraphStore& store,
                                std::span<const DynamicRequest> requests) {
  ThroughputResult result;
  const auto start = std::chrono::steady_clock::now();
  for (const DynamicRequest& req : requests) {
    switch (req.type) {
      case DynamicRequestType::kAddEdge:
        result.requests_applied += store.add_edge(req.edge) ? 1 : 0;
        break;
      case DynamicRequestType::kDeleteEdge:
        result.requests_applied += store.delete_edge(req.edge) ? 1 : 0;
        break;
      case DynamicRequestType::kAddVertex:
        store.add_vertex();
        ++result.requests_applied;
        break;
      case DynamicRequestType::kDeleteVertex:
        result.requests_applied += store.delete_vertex(req.vertex) ? 1 : 0;
        break;
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

}  // namespace hyve
