// Incremental connected-components maintenance over a dynamic graph —
// the natural algorithmic companion to §5's storage support.
//
// §5 gives HyVE O(1) structural updates; this module keeps an analysis
// result (weakly connected components) fresh under those updates instead
// of re-running label propagation after every change:
//   * add edge    — O(alpha) union-find merge;
//   * add vertex  — new singleton component;
//   * delete edge / delete vertex — connectivity may split, which
//     union-find cannot undo; the change is queued and a recompute over
//     the current snapshot runs lazily on the next query (the same
//     "inductive preprocessing" trade §5 makes for vertex overflow).
// Components are identified by their minimum vertex id, matching
// CcProgram over the symmetrised snapshot (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/dynamic_graph.hpp"

namespace hyve {

class IncrementalCc {
 public:
  explicit IncrementalCc(const DynamicGraphStore& store);

  // Structural notifications (call alongside the store mutation).
  void on_add_edge(Edge e);
  void on_add_vertex(VertexId v);
  void on_delete_edge(Edge e);
  void on_delete_vertex(VertexId v);

  // Component representative (minimum vertex id in the component).
  // Triggers the lazy recompute if a deletion is pending.
  VertexId component_of(VertexId v);
  std::uint64_t num_components();

  // Statistics: how often the expensive path ran.
  std::uint64_t recompute_count() const { return recompute_count_; }
  bool recompute_pending() const { return recompute_pending_; }

 private:
  VertexId find(VertexId v);
  void merge(VertexId a, VertexId b);
  void recompute();
  void ensure_fresh();

  const DynamicGraphStore* store_;
  std::vector<VertexId> parent_;
  bool recompute_pending_ = false;
  std::uint64_t recompute_count_ = 0;
};

}  // namespace hyve
