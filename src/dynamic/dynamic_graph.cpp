#include "dynamic/dynamic_graph.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hyve {

DynamicGraphStore::DynamicGraphStore(const Graph& initial,
                                     DynamicGraphOptions options)
    : options_(options), num_vertices_(initial.num_vertices()) {
  HYVE_CHECK(options_.num_intervals >= 1);
  HYVE_CHECK(options_.slack >= 0.0);
  vertex_capacity_ = static_cast<VertexId>(
      std::ceil(num_vertices_ * (1.0 + options_.slack))) + 1;
  vertex_valid_.assign(vertex_capacity_, false);
  for (VertexId v = 0; v < num_vertices_; ++v) vertex_valid_[v] = true;

  grid_ = options_.num_intervals;
  vmap_ = VertexMap::uniform(vertex_capacity_, grid_);

  if (!options_.hashed_block_directory)
    dense_blocks_.assign(static_cast<std::size_t>(grid_) * grid_, {});

  // Initial placement with per-block slack reservation (one-shot
  // preprocessing; not counted in preprocess_count_).
  locator_.reserve(initial.num_edges());
  for (const Edge& e : initial.edges()) {
    Block& b = block_for(e.src, e.dst);
    b.edges.push_back(e);
    locator_add(e, static_cast<std::uint32_t>(b.edges.size() - 1));
  }
  auto reserve_slack = [&](Block& b) {
    b.capacity = static_cast<std::uint64_t>(
                     std::ceil(b.edges.size() * (1.0 + options_.slack))) +
                 4;
    b.edges.reserve(b.capacity);
  };
  if (options_.hashed_block_directory) {
    for (auto& [key, b] : hashed_blocks_) reserve_slack(b);
  } else {
    for (Block& b : dense_blocks_) reserve_slack(b);
  }
  num_edges_ = initial.num_edges();
}

std::uint64_t DynamicGraphStore::block_key(VertexId src, VertexId dst) const {
  return static_cast<std::uint64_t>(vmap_.interval_of(src)) * grid_ +
         vmap_.interval_of(dst);
}

DynamicGraphStore::Block& DynamicGraphStore::block_for(VertexId src,
                                                       VertexId dst) {
  const std::uint64_t key = block_key(src, dst);
  if (options_.hashed_block_directory) return hashed_blocks_[key];
  return dense_blocks_[key];
}

bool DynamicGraphStore::add_edge(Edge e) {
  if (e.src >= num_vertices_ || e.dst >= num_vertices_) return false;
  Block& b = block_for(e.src, e.dst);
  if (b.edges.size() == b.capacity) {
    // Reserved space exhausted: chain an overflow chunk at the block end.
    const std::uint64_t chunk = std::max<std::uint64_t>(4, b.capacity / 4);
    b.capacity += chunk;
    b.edges.reserve(b.capacity);
    ++overflow_chunks_;
  }
  b.edges.push_back(e);
  locator_add(e, static_cast<std::uint32_t>(b.edges.size() - 1));
  ++num_edges_;
  return true;
}

bool DynamicGraphStore::delete_edge(Edge e) {
  if (e.src >= num_vertices_ || e.dst >= num_vertices_) return false;
  std::uint32_t slot = 0;
  if (!locator_find(e, slot)) return false;
  Block& b = block_for(e.src, e.dst);
  locator_remove(e, slot);
  // §5: replace the edge with the block's last edge, free the tail slot.
  const Edge moved = b.edges.back();
  const auto last = static_cast<std::uint32_t>(b.edges.size() - 1);
  if (slot != last) {
    locator_remove(moved, last);
    b.edges[slot] = moved;
    locator_add(moved, slot);
  }
  b.edges.pop_back();
  --num_edges_;
  return true;
}

void DynamicGraphStore::locator_add(Edge e, std::uint32_t slot) {
  locator_.emplace(pack(e), slot);
}

bool DynamicGraphStore::locator_remove(Edge e, std::uint32_t slot) {
  auto [first, last] = locator_.equal_range(pack(e));
  for (auto it = first; it != last; ++it) {
    if (it->second == slot) {
      locator_.erase(it);
      return true;
    }
  }
  return false;
}

bool DynamicGraphStore::locator_find(Edge e, std::uint32_t& slot) const {
  const auto it = locator_.find(pack(e));
  if (it == locator_.end()) return false;
  slot = it->second;
  return true;
}

VertexId DynamicGraphStore::add_vertex() {
  if (num_vertices_ + 1 > vertex_capacity_) {
    // Interval slack exhausted: vertices are accessed by index, so unlike
    // blocks they cannot chain — re-preprocess with fresh slack (§5).
    rebuild(num_vertices_ + 1);
  }
  const VertexId v = num_vertices_++;
  if (v >= vertex_valid_.size()) vertex_valid_.resize(num_vertices_, false);
  vertex_valid_[v] = true;
  return v;
}

bool DynamicGraphStore::delete_vertex(VertexId v) {
  if (v >= num_vertices_ || !vertex_valid_[v]) return false;
  vertex_valid_[v] = false;  // value set invalid; edges remain (§5)
  return true;
}

bool DynamicGraphStore::is_vertex_valid(VertexId v) const {
  return v < num_vertices_ && vertex_valid_[v];
}

void DynamicGraphStore::rebuild(VertexId new_num_vertices) {
  ++preprocess_count_;
  Graph current = snapshot();
  DynamicGraphStore fresh(
      Graph(std::max(new_num_vertices, current.num_vertices()),
            current.edges()),
      options_);
  fresh.num_vertices_ = num_vertices_;  // caller increments afterwards
  fresh.preprocess_count_ = preprocess_count_;
  fresh.overflow_chunks_ = overflow_chunks_;
  for (VertexId v = 0; v < num_vertices_; ++v)
    fresh.vertex_valid_[v] = vertex_valid_[v];
  *this = std::move(fresh);
}

Graph DynamicGraphStore::snapshot() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  if (options_.hashed_block_directory) {
    for (const auto& [key, b] : hashed_blocks_)
      edges.insert(edges.end(), b.edges.begin(), b.edges.end());
  } else {
    for (const Block& b : dense_blocks_)
      edges.insert(edges.end(), b.edges.begin(), b.edges.end());
  }
  return Graph(num_vertices_, std::move(edges));
}

}  // namespace hyve
