// Dynamic-graph working flow (paper §5).
//
// HyVE keeps the interval-block layout mutable by reserving slack space
// (30% by default) in every block and interval:
//   * add edge    — O(1): append to the block's slack; when the slack is
//     exhausted an overflow chunk is chained from the block's end;
//   * delete edge — the edge is replaced by the block's last edge and the
//     tail slot is freed;
//   * add vertex  — appended into the interval slack; when interval slack
//     runs out a full re-preprocessing pass is triggered (vertex access
//     is not sequential, so chaining does not work there);
//   * delete vertex — the value is invalidated in place (e.g. -1 for PR).
//
// §5 calls the key enabler "address managements for graph data in the
// memory": the host keeps an edge-locator index so a delete request goes
// straight to the edge's slot instead of scanning its block.
//
// The same store parameterised at GraphR's 8x8-vertex granularity is the
// Fig. 20 baseline: its block grid is too large for direct indexing and
// must be addressed through a hash directory, which is where the
// throughput gap comes from.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace hyve {

struct DynamicGraphOptions {
  std::uint32_t num_intervals = 64;
  double slack = 0.30;  // reserved fraction per block/interval
  // Address blocks through a hash map instead of a dense grid (GraphR's
  // (V/8)^2 blocks cannot be directly indexed).
  bool hashed_block_directory = false;
};

class DynamicGraphStore {
 public:
  DynamicGraphStore(const Graph& initial, DynamicGraphOptions options);

  // O(1) amortised; returns false for out-of-range endpoints.
  bool add_edge(Edge e);
  // Removes one occurrence; returns false if absent. Locating the edge
  // scans its (small) block; removal itself is swap-with-last, O(1).
  bool delete_edge(Edge e);

  // Appends a vertex; triggers re-preprocessing when the interval slack
  // is exhausted. Returns the new vertex id.
  VertexId add_vertex();
  // Invalidates a vertex (its edges stay, matching §5's semantics).
  bool delete_vertex(VertexId v);
  bool is_vertex_valid(VertexId v) const;

  VertexId num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return num_edges_; }
  std::uint64_t preprocess_count() const { return preprocess_count_; }
  std::uint64_t overflow_chunks() const { return overflow_chunks_; }

  // Materialises the current edge set (valid vertices only are the
  // caller's concern; edges of invalidated vertices are included as §5
  // leaves them in place).
  Graph snapshot() const;

 private:
  struct Block {
    std::vector<Edge> edges;      // size() <= capacity, then chained
    std::uint64_t capacity = 0;   // reserved slots before chaining
  };

  std::uint64_t block_key(VertexId src, VertexId dst) const;
  Block& block_for(VertexId src, VertexId dst);
  void rebuild(VertexId new_num_vertices);

  static std::uint64_t pack(Edge e) {
    return (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
  }
  void locator_add(Edge e, std::uint32_t slot);
  // Removes the locator entry for e at `slot`; returns false if absent.
  bool locator_remove(Edge e, std::uint32_t slot);
  // Finds any slot holding e in its block; returns false if absent.
  bool locator_find(Edge e, std::uint32_t& slot) const;

  DynamicGraphOptions options_;
  VertexId num_vertices_ = 0;
  VertexId vertex_capacity_ = 0;  // reserved vertex slots
  std::uint64_t num_edges_ = 0;
  // Uniform map over vertex_capacity_ (the slack grid may have more
  // intervals than live vertices; trailing intervals sit empty).
  VertexMap vmap_;
  std::uint32_t grid_ = 1;  // intervals per axis
  std::vector<Block> dense_blocks_;                      // HyVE layout
  std::unordered_map<std::uint64_t, Block> hashed_blocks_;  // GraphR layout
  // Host-side address management (§5): edge -> slot within its block.
  std::unordered_multimap<std::uint64_t, std::uint32_t> locator_;
  std::vector<bool> vertex_valid_;
  std::uint64_t preprocess_count_ = 0;
  std::uint64_t overflow_chunks_ = 0;
};

}  // namespace hyve
