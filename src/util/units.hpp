// Units and conversion helpers used throughout the HyVE models.
//
// All energy bookkeeping is done in picojoules (pJ) and all time in
// nanoseconds (ns) as plain doubles; powers are derived as pJ/ns == mW.
// The helpers below exist so literals in the technology tables read the
// same way the paper quotes them (e.g. "3.91 nJ", "50.88 ns", "0.16 uW").
#pragma once

#include <cstdint>

namespace hyve::units {

// ---- energy (canonical unit: picojoule) ----
constexpr double pJ(double v) { return v; }
constexpr double nJ(double v) { return v * 1e3; }
constexpr double uJ(double v) { return v * 1e6; }
constexpr double mJ(double v) { return v * 1e9; }
constexpr double J(double v) { return v * 1e12; }

constexpr double pj_to_joule(double pj) { return pj * 1e-12; }
constexpr double pj_to_uj(double pj) { return pj * 1e-6; }

// ---- time (canonical unit: nanosecond) ----
constexpr double ps(double v) { return v * 1e-3; }
constexpr double ns(double v) { return v; }
constexpr double us(double v) { return v * 1e3; }
constexpr double ms(double v) { return v * 1e6; }
constexpr double s(double v) { return v * 1e9; }

constexpr double ns_to_s(double t) { return t * 1e-9; }

// ---- power (canonical unit: milliwatt == pJ/ns) ----
constexpr double mW(double v) { return v; }
constexpr double uW(double v) { return v * 1e-3; }
constexpr double W(double v) { return v * 1e3; }

// Energy accumulated by a power draw over a duration.
constexpr double power_over(double power_mw, double time_ns) {
  return power_mw * time_ns;  // mW * ns == pJ
}

// ---- capacity ----
constexpr std::uint64_t KiB(std::uint64_t v) { return v << 10; }
constexpr std::uint64_t MiB(std::uint64_t v) { return v << 20; }
constexpr std::uint64_t GiB(std::uint64_t v) { return v << 30; }
// Memory-chip densities are quoted in gigabits in the paper (4/8/16 Gb).
constexpr std::uint64_t Gbit(std::uint64_t v) { return (v << 30) / 8; }

// ---- derived figures of merit ----

// Million traversed edges per second per watt, the paper's headline metric.
// MTEPS/W == traversed_edges / total_energy_in_microjoules.
constexpr double mteps_per_watt(double traversed_edges, double energy_pj) {
  return energy_pj <= 0.0 ? 0.0 : traversed_edges / pj_to_uj(energy_pj);
}

// Energy-delay product in pJ*ns; only ever used in ratios.
constexpr double edp(double energy_pj, double delay_ns) {
  return energy_pj * delay_ns;
}

}  // namespace hyve::units
