// Precondition / invariant checking.
//
// Model code validates its inputs with HYVE_CHECK and throws
// hyve::InvariantError on violation; tests assert on these throws so
// contract violations surface loudly instead of corrupting results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hyve {

class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace hyve

#define HYVE_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::hyve::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define HYVE_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream hyve_check_os_;                              \
      hyve_check_os_ << msg;                                          \
      ::hyve::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   hyve_check_os_.str());             \
    }                                                                 \
  } while (false)
