// Deterministic pseudo-random number generation.
//
// All stochastic inputs to the reproduction (synthetic graphs, request
// streams, property-test fixtures) draw from this generator so every run
// of every bench and test is bit-identical. xoshiro256** seeded via
// SplitMix64, following the reference implementations by Blackman/Vigna.
#pragma once

#include <cstdint>

namespace hyve {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform over [0, 2^64).
  std::uint64_t next_u64();

  // Uniform over [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform over [0, 1).
  double next_double();

  // Bernoulli draw.
  bool next_bool(double p_true) { return next_double() < p_true; }

  // Uniform over [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

 private:
  std::uint64_t s_[4];
};

}  // namespace hyve
