// Plain-text table rendering for the bench binaries.
//
// Every bench prints its reproduction of a paper table/figure as an
// aligned ASCII table plus an optional CSV block, so results can be
// eyeballed against the paper and machine-parsed from the same output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hyve {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner ("==== title ====") used by bench binaries.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace hyve
