#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hyve {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HYVE_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  HYVE_CHECK_MSG(cells.size() == header_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n";
}

}  // namespace hyve
