// Minimal command-line parser shared by the hyve_* tools and the sweep
// engine drivers. Replaces the three hand-rolled argv loops that used to
// live in tools/: options are registered with a handler, --help and
// unknown-option reporting are uniform, and parse errors exit with the
// historical status 2.
//
//   cli::ArgParser parser("hyve_sim", "drive the HyVE simulator");
//   parser.option("--dataset", "NAME", "built-in dataset",
//                 [&](const std::string& v) { ... });
//   parser.flag("--compare", "also run the baselines", &compare);
//   parser.parse(argc, argv);
//
// Handlers may call parser.fail("unknown dataset " + v) to reject a
// value with the standard usage message.
#pragma once

#include <charconv>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace hyve::cli {

inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) out.push_back(item);
  return out;
}

class ArgParser {
 public:
  ArgParser(std::string prog, std::string summary)
      : prog_(std::move(prog)), summary_(std::move(summary)) {}

  // --name VALUE option; the handler receives the value.
  ArgParser& option(std::string name, std::string value_name,
                    std::string help,
                    std::function<void(const std::string&)> handler) {
    options_.push_back({std::move(name), std::move(value_name),
                        std::move(help), std::move(handler), {}});
    return *this;
  }

  // Valueless --name flag.
  ArgParser& flag(std::string name, std::string help,
                  std::function<void()> handler) {
    options_.push_back(
        {std::move(name), "", std::move(help), {}, std::move(handler)});
    return *this;
  }

  ArgParser& flag(std::string name, std::string help, bool* target) {
    return flag(std::move(name), std::move(help), [target] { *target = true; });
  }

  // Free-form usage lines shown before the option list, for tools whose
  // interface is positional modes (e.g. hyve_graphgen).
  ArgParser& positional_usage(std::string text) {
    positional_usage_ = std::move(text);
    return *this;
  }

  // Accept up to `max` non-option arguments (default: none).
  ArgParser& allow_positionals(std::size_t max) {
    max_positionals_ = max;
    return *this;
  }

  void parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::cout << usage();
        std::exit(0);
      }
      const Opt* opt = find(arg);
      if (opt != nullptr) {
        if (opt->on_value) {
          // An --option given as the last argv token must fail with the
          // usage message, never read past argv (pinned by cli_test).
          if (i + 1 >= argc) fail(arg + " needs a value");
          opt->on_value(argv[++i]);
        } else {
          opt->on_set();
        }
      } else if (!arg.empty() && arg.front() == '-') {
        fail("unknown option " + arg);
      } else if (positionals_.size() < max_positionals_) {
        positionals_.push_back(arg);
      } else {
        fail("unexpected argument " + arg);
      }
    }
  }

  const std::vector<std::string>& positionals() const { return positionals_; }

  std::string usage() const {
    std::ostringstream os;
    os << "usage: " << prog_;
    if (!positional_usage_.empty()) {
      os << '\n' << positional_usage_;
      if (positional_usage_.back() != '\n') os << '\n';
    } else {
      os << " [options]\n";
    }
    if (!summary_.empty()) os << summary_ << '\n';
    if (!options_.empty()) {
      os << "options:\n";
      std::size_t width = 0;
      for (const Opt& o : options_) width = std::max(width, head(o).size());
      for (const Opt& o : options_) {
        const std::string h = head(o);
        os << "  " << h << std::string(width - h.size() + 2, ' ') << o.help
           << '\n';
      }
    }
    return os.str();
  }

  [[noreturn]] void fail(const std::string& error) const {
    std::cerr << "error: " << error << "\n" << usage();
    std::exit(2);
  }

 private:
  struct Opt {
    std::string name;
    std::string value_name;
    std::string help;
    std::function<void(const std::string&)> on_value;  // set for options
    std::function<void()> on_set;                      // set for flags
  };

  const Opt* find(const std::string& name) const {
    for (const Opt& o : options_)
      if (o.name == name) return &o;
    return nullptr;
  }

  static std::string head(const Opt& o) {
    return o.value_name.empty() ? o.name : o.name + " " + o.value_name;
  }

  std::string prog_;
  std::string summary_;
  std::string positional_usage_;
  std::size_t max_positionals_ = 0;
  std::vector<Opt> options_;
  std::vector<std::string> positionals_;
};

// Strictly parses an integer option value — the whole token must be a
// base-10 integer within [min_value, max_value], otherwise the parser
// fails with the standard usage message (exit status 2). Shared by every
// tool and bench that takes numeric options such as --jobs, instead of
// std::stoi whose exceptions would escape main.
inline long long parse_int(
    const ArgParser& parser, const std::string& name,
    const std::string& value, long long min_value,
    long long max_value = std::numeric_limits<long long>::max()) {
  long long parsed = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || ptr != end)
    parser.fail(name + " expects an integer, got \"" + value + "\"");
  if (parsed < min_value || parsed > max_value)
    parser.fail(name + " expects a value in [" + std::to_string(min_value) +
                ", " + std::to_string(max_value) + "], got " + value);
  return parsed;
}

}  // namespace hyve::cli
