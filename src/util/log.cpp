#include "util/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace hyve {
namespace {

LogLevel parse_level() {
  const char* env = std::getenv("HYVE_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() {
  static const LogLevel threshold = parse_level();
  return threshold;
}

void log_line(LogLevel level, const std::string& message) {
  static std::mutex mu;
  const std::scoped_lock lock(mu);
  std::cerr << "[hyve " << level_name(level) << "] " << message << '\n';
}

}  // namespace hyve
