#include "util/log.hpp"

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace hyve {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string v(name);
  for (char& c : v)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return std::nullopt;
}

LogLevel log_threshold() {
  static const LogLevel threshold = [] {
    const char* env = std::getenv("HYVE_LOG");
    if (env == nullptr) return LogLevel::kInfo;
    return parse_log_level(env).value_or(LogLevel::kInfo);
  }();
  return threshold;
}

void log_line(LogLevel level, const std::string& message) {
  // Compose the full line first and insert it with a single stream
  // write: stderr is unbuffered, so a multi-part << from two threads
  // could interleave fragments even under a process-local mutex once
  // another process shares the descriptor.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[hyve ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  static std::mutex mu;
  const std::scoped_lock lock(mu);
  std::cerr << line;
}

}  // namespace hyve
