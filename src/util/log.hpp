// Minimal leveled logging to stderr.
//
// Benches and examples stay quiet at Info level unless something is
// noteworthy; set HYVE_LOG=debug in the environment for verbose traces.
#pragma once

#include <sstream>
#include <string>

namespace hyve {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Current threshold (from HYVE_LOG env var; defaults to Info).
LogLevel log_threshold();

void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hyve

#define HYVE_LOG(level)                                        \
  if (::hyve::LogLevel::level < ::hyve::log_threshold()) {     \
  } else                                                       \
    ::hyve::detail::LogMessage(::hyve::LogLevel::level).stream()
