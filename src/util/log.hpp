// Minimal leveled logging to stderr.
//
// Benches and examples stay quiet at Info level unless something is
// noteworthy; set HYVE_LOG=debug in the environment for verbose traces.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hyve {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Parses a threshold name case-insensitively: debug, info, warn (or
// warning), error. Returns nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

// Current threshold (from HYVE_LOG env var; defaults to Info, also for
// values parse_log_level rejects).
LogLevel log_threshold();

// Formats and writes "[hyve LEVEL] message\n" to stderr as one write,
// so lines from concurrent sweep workers never interleave mid-line.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hyve

#define HYVE_LOG(level)                                        \
  if (::hyve::LogLevel::level < ::hyve::log_threshold()) {     \
  } else                                                       \
    ::hyve::detail::LogMessage(::hyve::LogLevel::level).stream()
