#include "algos/gas.hpp"

#include <algorithm>

namespace hyve {

GasProgram<std::uint32_t> make_reachability_program(VertexId root) {
  GasProgram<std::uint32_t>::Spec spec;
  spec.name = "REACH";
  spec.init = [root](VertexId v, const Graph&) -> std::uint32_t {
    return v == root ? 1u : 0u;
  };
  spec.scatter = [](const Edge&, const std::uint32_t& src,
                    const std::uint32_t& dst)
      -> std::optional<std::uint32_t> {
    if (src != 0 && dst == 0) return 1u;
    return std::nullopt;
  };
  spec.scatter_block_soa = [](const EdgeBlockSoA& block,
                              std::uint32_t* values,
                              std::vector<char>* changed) -> std::uint64_t {
    const VertexId* const src = block.src;
    const VertexId* const dst = block.dst;
    std::uint64_t writes = 0;
    for (std::size_t i = 0; i < block.count; ++i) {
      if (values[src[i]] != 0 && values[dst[i]] == 0) {
        values[dst[i]] = 1;
        ++writes;
        if (changed != nullptr) (*changed)[dst[i]] = 1;
      }
    }
    return writes;
  };
  return GasProgram<std::uint32_t>(std::move(spec));
}

GasProgram<std::uint32_t> make_widest_path_program(
    VertexId root, std::uint32_t max_capacity) {
  GasProgram<std::uint32_t>::Spec spec;
  spec.name = "WIDEST";
  spec.init = [root, max_capacity](VertexId v, const Graph&) {
    // The root has unbounded inflow; everything else starts unreachable.
    return v == root ? max_capacity + 1 : 0u;
  };
  spec.scatter = [max_capacity](const Edge& e, const std::uint32_t& src,
                                const std::uint32_t& dst)
      -> std::optional<std::uint32_t> {
    if (src == 0) return std::nullopt;
    const std::uint32_t through =
        std::min(src, Graph::edge_weight(e, max_capacity));
    if (through > dst) return through;
    return std::nullopt;
  };
  spec.scatter_block_soa = [max_capacity](
                               const EdgeBlockSoA& block,
                               std::uint32_t* values,
                               std::vector<char>* changed) -> std::uint64_t {
    const VertexId* const src = block.src;
    const VertexId* const dst = block.dst;
    const std::uint64_t* const hash = block.weight_hash;
    std::uint64_t writes = 0;
    for (std::size_t i = 0; i < block.count; ++i) {
      const std::uint32_t s = values[src[i]];
      if (s == 0) continue;
      // The precomputed column replaces the per-edge SplitMix64 the
      // scatter callable pays through Graph::edge_weight.
      const std::uint32_t through =
          std::min(s, Graph::edge_weight_from_hash(hash[i], max_capacity));
      if (through > values[dst[i]]) {
        values[dst[i]] = through;
        ++writes;
        if (changed != nullptr) (*changed)[dst[i]] = 1;
      }
    }
    return writes;
  };
  return GasProgram<std::uint32_t>(std::move(spec));
}

}  // namespace hyve
