#include "algos/cc.hpp"

#include <algorithm>
#include <numeric>

namespace hyve {

void CcProgram::init(const Graph& graph) {
  label_.assign(graph.num_vertices(), 0);
  std::iota(label_.begin(), label_.end(), VertexId{0});
  changed_ = false;
}

bool CcProgram::process_edge(const Edge& e) {
  if (label_[e.src] < label_[e.dst]) {
    label_[e.dst] = label_[e.src];
    changed_ = true;
    return true;
  }
  return false;
}

std::uint64_t CcProgram::process_block(std::span<const Edge> edges,
                                       std::vector<char>* changed) {
  VertexId* const label = label_.data();
  std::uint64_t writes = 0;
  for (const Edge& e : edges) {
    if (label[e.src] < label[e.dst]) {
      label[e.dst] = label[e.src];
      ++writes;
      if (changed != nullptr) (*changed)[e.dst] = 1;
    }
  }
  changed_ |= writes > 0;
  return writes;
}

std::uint64_t CcProgram::process_block_soa(const EdgeBlockSoA& block,
                                           std::vector<char>* changed) {
  debug_check_changed_cover(changed, block);
  VertexId* const label = label_.data();
  const VertexId* const src = block.src;
  const VertexId* const dst = block.dst;
  std::uint64_t writes = 0;
  // Sequential by necessity: min-label propagation within the block is
  // in-pass (an edge may read a label an earlier edge just lowered).
  for (std::size_t i = 0; i < block.count; ++i) {
    const VertexId ls = label[src[i]];
    if (ls < label[dst[i]]) {
      label[dst[i]] = ls;
      ++writes;
      if (changed != nullptr) (*changed)[dst[i]] = 1;
    }
  }
  changed_ |= writes > 0;
  return writes;
}

bool CcProgram::end_iteration(std::uint32_t) {
  const bool more = changed_;
  changed_ = false;
  return more;
}

Graph symmetrized(const Graph& g) {
  std::vector<Edge> edges = g.edges();
  edges.reserve(edges.size() * 2);
  for (const Edge& e : g.edges())
    if (e.src != e.dst) edges.push_back({e.dst, e.src});
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph(g.num_vertices(), std::move(edges));
}

}  // namespace hyve
