#include "algos/cc.hpp"

#include <algorithm>
#include <numeric>

namespace hyve {

void CcProgram::init(const Graph& graph) {
  label_.assign(graph.num_vertices(), 0);
  std::iota(label_.begin(), label_.end(), VertexId{0});
  changed_ = false;
}

bool CcProgram::process_edge(const Edge& e) {
  if (label_[e.src] < label_[e.dst]) {
    label_[e.dst] = label_[e.src];
    changed_ = true;
    return true;
  }
  return false;
}

bool CcProgram::end_iteration(std::uint32_t) {
  const bool more = changed_;
  changed_ = false;
  return more;
}

Graph symmetrized(const Graph& g) {
  std::vector<Edge> edges = g.edges();
  edges.reserve(edges.size() * 2);
  for (const Edge& e : g.edges())
    if (e.src != e.dst) edges.push_back({e.dst, e.src});
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return Graph(g.num_vertices(), std::move(edges));
}

}  // namespace hyve
