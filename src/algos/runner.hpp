// Functional execution of a vertex program over a graph.
//
// This is the *functional* half of the simulator: it runs the algorithm
// for real (actual ranks, distances, labels — verified against reference
// implementations in the tests) and reports the iteration/traversal
// counts that the architectural accounting in src/core multiplies with
// the technology models. Edges are visited in interval-block order when a
// Partitioning is supplied, matching the hardware's schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "algos/vertex_program.hpp"
#include "graph/partition.hpp"

namespace hyve {

enum class Algorithm { kBfs, kCc, kPageRank, kSssp, kSpmv };

inline constexpr Algorithm kCoreAlgorithms[] = {
    Algorithm::kBfs, Algorithm::kCc, Algorithm::kPageRank};
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kBfs, Algorithm::kCc, Algorithm::kPageRank, Algorithm::kSssp,
    Algorithm::kSpmv};

std::unique_ptr<VertexProgram> make_program(Algorithm algorithm);
const char* algorithm_name(Algorithm algorithm);
// Inverse of algorithm_name(): case-insensitive, so it accepts both the
// canonical names ("PR", "SpMV") and the CLI short forms ("pr", "spmv").
// The single source of truth for string→Algorithm mapping.
std::optional<Algorithm> parse_algorithm(const std::string& name);

struct FunctionalResult {
  std::uint32_t iterations = 0;
  std::uint64_t edges_traversed = 0;    // E * iterations
  std::uint64_t destination_writes = 0; // process_edge() returned true
};

// Runs `program` to convergence (or its max_iterations cap). If
// `schedule` is non-null, edges are visited block by block in the
// interval-block scan order; otherwise in edge-list order.
FunctionalResult run_functional(const Graph& graph, VertexProgram& program,
                                const Partitioning* schedule = nullptr);

}  // namespace hyve
