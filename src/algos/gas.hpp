// Gather-Apply-Scatter adapter (paper §2.1).
//
// The paper frames HyVE's edge-centric execution as the shared-memory
// specialisation of the GAS model: per edge, the destination is updated
// from the source's property. GasProgram lets users express a new
// algorithm as three small callables instead of a VertexProgram subclass:
//
//   auto program = GasProgram<std::uint32_t>({
//       .name = "reach",
//       .init = [](VertexId v, const Graph&) { return v == root ? 1u : 0u; },
//       .scatter = [](const Edge&, const std::uint32_t& src,
//                     const std::uint32_t& dst)
//           -> std::optional<std::uint32_t> {
//         return (src && !dst) ? std::make_optional(1u) : std::nullopt;
//       },
//   });
//   HyveMachine(HyveConfig::hyve_opt()).run(graph, program);
//
// scatter() returning a value writes the destination (and keeps the
// iteration going); std::nullopt leaves it untouched. The contract of
// §4.2 is preserved by construction: scatter cannot write the source.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "algos/vertex_program.hpp"
#include "util/check.hpp"

namespace hyve {

template <typename Value>
class GasProgram final : public VertexProgram {
 public:
  struct Spec {
    std::string name = "gas";
    // Initial vertex value.
    std::function<Value(VertexId, const Graph&)> init;
    // Edge update: new destination value, or nullopt for no change.
    std::function<std::optional<Value>(const Edge&, const Value& src,
                                       const Value& dst)>
        scatter;
    // Optional end-of-iteration apply over every vertex (marks the
    // program as having an apply phase, like PageRank).
    std::function<Value(VertexId, const Value&)> apply;
    // Optional fused SoA block kernel: must be observably identical to
    // applying `scatter` edge by edge in block order (same writes, same
    // write count, same changed-marking). Ready-made programs install
    // one so the hot path pays one call per block instead of one
    // std::function dispatch per edge; when absent the adapter loops
    // `scatter` itself.
    std::function<std::uint64_t(const EdgeBlockSoA& block, Value* values,
                                std::vector<char>* changed)>
        scatter_block_soa;
    // Stop after this many iterations even if still changing.
    std::uint32_t max_iterations = 1000;
  };

  explicit GasProgram(Spec spec) : spec_(std::move(spec)) {
    HYVE_CHECK_MSG(spec_.init && spec_.scatter,
                   "GasProgram needs init and scatter callables");
  }

  std::string name() const override { return spec_.name; }
  std::uint32_t vertex_value_bytes() const override { return sizeof(Value); }
  bool has_apply_phase() const override { return bool{spec_.apply}; }
  std::uint32_t max_iterations() const override {
    return spec_.max_iterations;
  }

  void init(const Graph& graph) override {
    values_.clear();
    values_.reserve(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v)
      values_.push_back(spec_.init(v, graph));
    changed_ = false;
  }

  bool process_edge(const Edge& e) override {
    const std::optional<Value> next =
        spec_.scatter(e, values_[e.src], values_[e.dst]);
    if (!next.has_value()) return false;
    values_[e.dst] = *next;
    changed_ = true;
    return true;
  }

  std::uint64_t process_block(std::span<const Edge> edges,
                              std::vector<char>* changed) override {
    debug_check_changed_cover(changed, edges);
    Value* const values = values_.data();
    std::uint64_t writes = 0;
    for (const Edge& e : edges) {
      const std::optional<Value> next =
          spec_.scatter(e, values[e.src], values[e.dst]);
      if (!next.has_value()) continue;
      values[e.dst] = *next;
      ++writes;
      if (changed != nullptr) (*changed)[e.dst] = 1;
    }
    changed_ |= writes > 0;
    return writes;
  }

  std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                  std::vector<char>* changed) override {
    debug_check_changed_cover(changed, block);
    if (spec_.scatter_block_soa) {
      const std::uint64_t writes =
          spec_.scatter_block_soa(block, values_.data(), changed);
      changed_ |= writes > 0;
      return writes;
    }
    // The scatter callable takes the AoS edge, so the SoA win here is
    // the hoisted column streams, not a tighter inner body; user
    // programs keep their exact per-edge semantics.
    Value* const values = values_.data();
    const VertexId* const src = block.src;
    const VertexId* const dst = block.dst;
    std::uint64_t writes = 0;
    for (std::size_t i = 0; i < block.count; ++i) {
      const Edge e{src[i], dst[i]};
      const std::optional<Value> next =
          spec_.scatter(e, values[src[i]], values[dst[i]]);
      if (!next.has_value()) continue;
      values[dst[i]] = *next;
      ++writes;
      if (changed != nullptr) (*changed)[dst[i]] = 1;
    }
    changed_ |= writes > 0;
    return writes;
  }

  bool end_iteration(std::uint32_t completed) override {
    if (spec_.apply) {
      for (VertexId v = 0; v < values_.size(); ++v)
        values_[v] = spec_.apply(v, values_[v]);
    }
    const bool more = changed_ || spec_.apply != nullptr;
    changed_ = false;
    return more && completed < spec_.max_iterations;
  }

  const std::vector<Value>& values() const { return values_; }

 private:
  Spec spec_;
  std::vector<Value> values_;
  bool changed_ = false;
};

// ---- ready-made GAS programs beyond the paper's five ----

// Reachability from `root`: 1 iff a directed path exists.
GasProgram<std::uint32_t> make_reachability_program(VertexId root);

// Widest path (maximum bottleneck capacity) from `root`, using the
// deterministic hash weights as capacities.
GasProgram<std::uint32_t> make_widest_path_program(
    VertexId root, std::uint32_t max_capacity = 64);

}  // namespace hyve
