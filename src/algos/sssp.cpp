#include "algos/sssp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hyve {

void SsspProgram::init(const Graph& graph) {
  HYVE_CHECK(graph.num_vertices() > 0);
  if (root_ == kAutoRoot) {
    const auto deg = graph.out_degrees();
    root_ = static_cast<VertexId>(
        std::max_element(deg.begin(), deg.end()) - deg.begin());
  }
  HYVE_CHECK(root_ < graph.num_vertices());
  dist_.assign(graph.num_vertices(), kUnreached);
  dist_[root_] = 0;
  changed_ = false;
}

bool SsspProgram::process_edge(const Edge& e) {
  if (dist_[e.src] == kUnreached) return false;
  const std::uint64_t candidate =
      dist_[e.src] + Graph::edge_weight(e, max_weight_);
  if (candidate < dist_[e.dst]) {
    dist_[e.dst] = candidate;
    changed_ = true;
    return true;
  }
  return false;
}

std::uint64_t SsspProgram::process_block(std::span<const Edge> edges,
                                         std::vector<char>* changed) {
  std::uint64_t* const dist = dist_.data();
  std::uint64_t writes = 0;
  for (const Edge& e : edges) {
    if (dist[e.src] == kUnreached) continue;
    const std::uint64_t candidate =
        dist[e.src] + Graph::edge_weight(e, max_weight_);
    if (candidate < dist[e.dst]) {
      dist[e.dst] = candidate;
      ++writes;
      if (changed != nullptr) (*changed)[e.dst] = 1;
    }
  }
  changed_ |= writes > 0;
  return writes;
}

std::uint64_t SsspProgram::process_block_soa(const EdgeBlockSoA& block,
                                             std::vector<char>* changed) {
  debug_check_changed_cover(changed, block);
  std::uint64_t* const dist = dist_.data();
  const VertexId* const src = block.src;
  const VertexId* const dst = block.dst;
  const std::uint64_t* const hash = block.weight_hash;
  const std::uint32_t max_weight = max_weight_;
  std::uint64_t writes = 0;
  // The precomputed hash column replaces the per-edge SplitMix64
  // avalanche of the AoS kernel with one modulo — the bulk of this
  // kernel's SoA win. The relaxation stays sequential (in-pass
  // propagation), with a saturating branchless candidate: kUnreached
  // plus any weight wraps below kUnreached, so guard with a select
  // instead of the reference's early-out branch.
  for (std::size_t i = 0; i < block.count; ++i) {
    const std::uint64_t ds = dist[src[i]];
    const std::uint64_t candidate =
        ds == kUnreached
            ? kUnreached
            : ds + Graph::edge_weight_from_hash(hash[i], max_weight);
    if (candidate < dist[dst[i]]) {
      dist[dst[i]] = candidate;
      ++writes;
      if (changed != nullptr) (*changed)[dst[i]] = 1;
    }
  }
  changed_ |= writes > 0;
  return writes;
}

bool SsspProgram::end_iteration(std::uint32_t) {
  const bool more = changed_;
  changed_ = false;
  return more;
}

}  // namespace hyve
