// Breadth-first search under the edge-centric model.
//
// Every iteration streams all edges and relaxes dist[dst] towards
// dist[src] + 1; iteration k settles all vertices at depth k, so the
// pass count equals the eccentricity of the root. The paper runs BFS
// "to convergence" with no frontier-specific datapath (§7.1: HyVE is
// general-purpose, no queue-based BFS specialisation).
#pragma once

#include <limits>
#include <vector>

#include "algos/vertex_program.hpp"

namespace hyve {

class BfsProgram final : public VertexProgram {
 public:
  static constexpr std::uint32_t kUnreached =
      std::numeric_limits<std::uint32_t>::max();

  // root = kAutoRoot picks the highest-out-degree vertex, which keeps the
  // traversal meaningful on synthetic graphs with isolated vertices.
  static constexpr VertexId kAutoRoot = static_cast<VertexId>(-1);

  explicit BfsProgram(VertexId root = kAutoRoot) : root_(root) {}

  std::string name() const override { return "BFS"; }
  std::uint32_t vertex_value_bytes() const override { return 4; }

  void init(const Graph& graph) override;
  bool process_edge(const Edge& e) override;
  std::uint64_t process_block(std::span<const Edge> edges,
                              std::vector<char>* changed) override;
  std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                  std::vector<char>* changed) override;
  bool end_iteration(std::uint32_t completed_iterations) override;

  const std::vector<std::uint32_t>& distances() const { return dist_; }
  VertexId root() const { return root_; }

 private:
  VertexId root_;
  std::vector<std::uint32_t> dist_;
  bool changed_ = false;
};

}  // namespace hyve
