#include "algos/pagerank.hpp"

#include "util/check.hpp"

namespace hyve {

void PageRankProgram::init(const Graph& graph) {
  num_vertices_ = graph.num_vertices();
  HYVE_CHECK(num_vertices_ > 0);
  out_degree_ = graph.out_degrees();
  const double initial = 1.0 / num_vertices_;
  rank_.assign(num_vertices_, initial);
  accum_.assign(num_vertices_, 0.0);
  contribution_.assign(num_vertices_, 0.0f);
  for (VertexId v = 0; v < num_vertices_; ++v)
    contribution_[v] = out_degree_[v] == 0
                           ? 0.0f
                           : static_cast<float>(rank_[v] / out_degree_[v]);
}

bool PageRankProgram::process_edge(const Edge& e) {
  // The source's contribution is frozen at iteration start (synchronous
  // PageRank), which is exactly what HyVE's read-only source intervals
  // provide.
  accum_[e.dst] += contribution_[e.src];
  return true;
}

std::uint64_t PageRankProgram::process_block(std::span<const Edge> edges,
                                             std::vector<char>* changed) {
  double* const accum = accum_.data();
  const float* const contribution = contribution_.data();
  for (const Edge& e : edges) accum[e.dst] += contribution[e.src];
  if (changed != nullptr)
    for (const Edge& e : edges) (*changed)[e.dst] = 1;
  return edges.size();
}

bool PageRankProgram::end_iteration(std::uint32_t completed_iterations) {
  const double base = (1.0 - damping_) / num_vertices_;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    rank_[v] = base + damping_ * accum_[v];
    accum_[v] = 0.0;
    contribution_[v] = out_degree_[v] == 0
                           ? 0.0f
                           : static_cast<float>(rank_[v] / out_degree_[v]);
  }
  return completed_iterations < num_iterations_;
}

}  // namespace hyve
