#include "algos/pagerank.hpp"

#include "util/check.hpp"

namespace hyve {

void PageRankProgram::init(const Graph& graph) {
  num_vertices_ = graph.num_vertices();
  HYVE_CHECK(num_vertices_ > 0);
  out_degree_ = graph.out_degrees();
  const double initial = 1.0 / num_vertices_;
  rank_.assign(num_vertices_, initial);
  accum_.assign(num_vertices_, 0.0);
  contribution_.assign(num_vertices_, 0.0f);
  for (VertexId v = 0; v < num_vertices_; ++v)
    contribution_[v] = out_degree_[v] == 0
                           ? 0.0f
                           : static_cast<float>(rank_[v] / out_degree_[v]);
}

bool PageRankProgram::process_edge(const Edge& e) {
  // The source's contribution is frozen at iteration start (synchronous
  // PageRank), which is exactly what HyVE's read-only source intervals
  // provide.
  accum_[e.dst] += contribution_[e.src];
  return true;
}

std::uint64_t PageRankProgram::process_block(std::span<const Edge> edges,
                                             std::vector<char>* changed) {
  double* const accum = accum_.data();
  const float* const contribution = contribution_.data();
  for (const Edge& e : edges) accum[e.dst] += contribution[e.src];
  if (changed != nullptr)
    for (const Edge& e : edges) (*changed)[e.dst] = 1;
  return edges.size();
}

std::uint64_t PageRankProgram::process_block_soa(const EdgeBlockSoA& block,
                                                 std::vector<char>* changed) {
  debug_check_changed_cover(changed, block);
  double* const accum = accum_.data();
  const float* const contribution = contribution_.data();
  const VertexId* const src = block.src;
  const VertexId* const dst = block.dst;
  // The accumulation order is the result (FP addition is non-
  // associative and the reference is sequential), so the gather-add
  // loop stays scalar; splitting the changed-marking out of it keeps it
  // branch-free either way.
  for (std::size_t i = 0; i < block.count; ++i)
    accum[dst[i]] += contribution[src[i]];
  if (changed != nullptr) {
    char* const mark = changed->data();
    // Stores of the constant 1 — duplicate destinations are benign and
    // order-free, so this scatter is safe to vectorize.
#pragma omp simd
    for (std::size_t i = 0; i < block.count; ++i) mark[dst[i]] = 1;
  }
  return block.count;
}

bool PageRankProgram::end_iteration(std::uint32_t completed_iterations) {
  const double base = (1.0 - damping_) / num_vertices_;
  double* const rank = rank_.data();
  double* const accum = accum_.data();
  float* const contribution = contribution_.data();
  const std::uint32_t* const out_degree = out_degree_.data();
  // Pure elementwise apply phase — vectorizes cleanly, and per-element
  // FP order is unchanged so results stay byte-identical.
#pragma omp simd
  for (VertexId v = 0; v < num_vertices_; ++v) {
    rank[v] = base + damping_ * accum[v];
    accum[v] = 0.0;
    contribution[v] = out_degree[v] == 0
                          ? 0.0f
                          : static_cast<float>(rank[v] / out_degree[v]);
  }
  return completed_iterations < num_iterations_;
}

}  // namespace hyve
