// Block-level frontier tracking — an extension on top of the paper's
// dense edge-centric model.
//
// HyVE (like X-Stream) streams EVERY edge each iteration. For monotone
// relaxation algorithms (BFS, CC, SSSP) a block B[x][y] can be skipped
// exactly when no vertex of source interval I_x changed in the previous
// iteration: its edges cannot relax anything. ForeGraph-class designs
// track this with one bit per interval; the non-volatile edge memory
// makes it especially attractive because skipped blocks stay power-gated.
//
// PageRank's apply phase touches every vertex every iteration, so it
// degenerates to full passes — the trace then matches the dense model
// exactly (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "algos/runner.hpp"
#include "graph/partition.hpp"

namespace hyve {

struct FrontierTrace {
  // One processed block of an iteration: the flattened block index
  // (x * P + y) and the number of edges it contained. Skipped and empty
  // blocks are not stored; on the later frontier iterations of BFS/SSSP
  // only a handful of blocks remain active, so the sparse form is far
  // smaller than the dense iter x P^2 table it replaces.
  struct BlockCount {
    std::uint64_t block = 0;
    std::uint64_t edges = 0;
  };

  std::uint32_t num_intervals = 0;
  // iteration_blocks[iter] = the non-empty blocks processed in that
  // iteration, sorted by flattened block index.
  std::vector<std::vector<BlockCount>> iteration_blocks;
  FunctionalResult result;  // edges_traversed counts processed edges only

  std::uint32_t iterations() const {
    return static_cast<std::uint32_t>(iteration_blocks.size());
  }

  // Dense-compatible accessor: edges processed in block (x, y) during
  // `iter` (0 for skipped/empty blocks). Binary search over the sorted
  // sparse list; prefer expand_iteration() in per-iteration hot loops.
  std::uint64_t block_edges(std::uint32_t iter, std::uint32_t x,
                            std::uint32_t y) const;

  // Expands one iteration into a dense P*P table (resized and zeroed).
  void expand_iteration(std::uint32_t iter,
                        std::vector<std::uint64_t>& dense) const;

  // Marks active[x] = 1 for every source interval x with at least one
  // processed block in `iter` (others 0; resized to P).
  void source_activity(std::uint32_t iter, std::vector<char>& active) const;

  std::uint64_t edges_in_iteration(std::uint32_t iter) const;
  std::uint64_t active_blocks_in_iteration(std::uint32_t iter) const;

  // Honest size estimate for cache accounting.
  std::size_t approx_bytes() const;
};

// Runs `program` to convergence, skipping blocks with inactive source
// intervals. Results are identical to the dense run for programs whose
// process_edge() returns false whenever the destination is unchanged.
FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule);

}  // namespace hyve
