// Block-level frontier tracking — an extension on top of the paper's
// dense edge-centric model.
//
// HyVE (like X-Stream) streams EVERY edge each iteration. For monotone
// relaxation algorithms (BFS, CC, SSSP) a block B[x][y] can be skipped
// exactly when no vertex of source interval I_x changed in the previous
// iteration: its edges cannot relax anything. ForeGraph-class designs
// track this with one bit per interval; the non-volatile edge memory
// makes it especially attractive because skipped blocks stay power-gated.
//
// PageRank's apply phase touches every vertex every iteration, so it
// degenerates to full passes — the trace then matches the dense model
// exactly (tested).
#pragma once

#include <cstdint>
#include <vector>

#include "algos/runner.hpp"
#include "graph/partition.hpp"

namespace hyve {

struct FrontierTrace {
  // block_edges[iter][x * P + y] = edges processed in that block during
  // that iteration (0 for skipped blocks).
  std::vector<std::vector<std::uint64_t>> block_edges;
  FunctionalResult result;  // edges_traversed counts processed edges only

  std::uint64_t edges_in_iteration(std::uint32_t iter) const;
  std::uint64_t active_blocks_in_iteration(std::uint32_t iter) const;
};

// Runs `program` to convergence, skipping blocks with inactive source
// intervals. Results are identical to the dense run for programs whose
// process_edge() returns false whenever the destination is unchanged.
FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule);

}  // namespace hyve
