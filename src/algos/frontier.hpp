// Block-level frontier tracking — an extension on top of the paper's
// dense edge-centric model.
//
// HyVE (like X-Stream) streams EVERY edge each iteration. For monotone
// relaxation algorithms (BFS, CC, SSSP) a block B[x][y] can be skipped
// exactly when no vertex of source interval I_x changed in the previous
// iteration: its edges cannot relax anything. ForeGraph-class designs
// track this with one bit per interval; the non-volatile edge memory
// makes it especially attractive because skipped blocks stay power-gated.
//
// PageRank's apply phase touches every vertex every iteration, so it
// degenerates to full passes — the trace then matches the dense model
// exactly (tested).
//
// On top of the interval-granular skip sits per-iteration *pattern
// reuse* ("Leveraging Recurrent Patterns in Graph Accelerators",
// PAPERS.md): a block whose individual source vertices are all
// unchanged since the previous iteration cannot relax anything even
// when its source interval is active, so it is skipped and *replayed* —
// recorded in the trace with its full edge count and zero writes, as
// streaming it would have produced. Results, traces and reports are
// byte-identical with reuse on or off (tested); only the host-side work
// and the sim.kernel.blocks_skipped / edges_skipped tallies differ.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/runner.hpp"
#include "graph/partition.hpp"

namespace hyve {

struct FrontierTrace {
  // One processed block of an iteration: the flattened block index
  // (x * P + y) and the number of edges it contained. Skipped and empty
  // blocks are not stored; on the later frontier iterations of BFS/SSSP
  // only a handful of blocks remain active, so the sparse form is far
  // smaller than the dense iter x P^2 table it replaces.
  struct BlockCount {
    std::uint64_t block = 0;
    std::uint64_t edges = 0;
  };

  std::uint32_t num_intervals = 0;
  // iteration_blocks[iter] = the non-empty blocks processed in that
  // iteration, sorted by flattened block index.
  std::vector<std::vector<BlockCount>> iteration_blocks;
  FunctionalResult result;  // edges_traversed counts processed edges only

  std::uint32_t iterations() const {
    return static_cast<std::uint32_t>(iteration_blocks.size());
  }

  // Dense-compatible accessor: edges processed in block (x, y) during
  // `iter` (0 for skipped/empty blocks). Binary search over the sorted
  // sparse list; prefer expand_iteration() in per-iteration hot loops.
  std::uint64_t block_edges(std::uint32_t iter, std::uint32_t x,
                            std::uint32_t y) const;

  // Expands one iteration into a dense P*P table (resized and zeroed).
  void expand_iteration(std::uint32_t iter,
                        std::vector<std::uint64_t>& dense) const;

  // Marks active[x] = 1 for every source interval x with at least one
  // processed block in `iter` (others 0; resized to P).
  void source_activity(std::uint32_t iter, std::vector<char>& active) const;

  std::uint64_t edges_in_iteration(std::uint32_t iter) const;
  std::uint64_t active_blocks_in_iteration(std::uint32_t iter) const;

  // Pattern-reuse tallies: blocks replayed instead of re-streamed, and
  // the edges those replays avoided streaming. Replayed blocks still
  // appear in iteration_blocks (and in edges_traversed) with their full
  // counts — the simulated machine streams them either way; these
  // fields record the *host-side* work the reuse saved, surfaced as the
  // sim.kernel.* metrics.
  std::uint64_t blocks_skipped = 0;
  std::uint64_t edges_skipped = 0;

  // Honest size estimate for cache accounting.
  std::size_t approx_bytes() const;
};

// Process-wide default for run_frontier's per-iteration pattern reuse;
// on unless --no-pattern-reuse flipped it off. A global rather than a
// HyveConfig field on purpose: reuse never changes any result or
// report, so it must not split cache keys or config labels.
bool pattern_reuse_enabled();
void set_pattern_reuse_enabled(bool on);

struct FrontierOptions {
  // Skip/replay blocks whose active-source set is unchanged since the
  // previous iteration (sound for the same monotone programs interval
  // skipping is sound for; apply-phase programs degenerate to full
  // passes either way).
  bool pattern_reuse = true;
};

// Runs `program` to convergence, skipping blocks with inactive source
// intervals. Results are identical to the dense run for programs whose
// process_edge() returns false whenever the destination is unchanged.
// The two-argument form takes the process-wide pattern-reuse default.
FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule);
FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule,
                           const FrontierOptions& options);

}  // namespace hyve
