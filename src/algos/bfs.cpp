#include "algos/bfs.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hyve {

void BfsProgram::init(const Graph& graph) {
  HYVE_CHECK(graph.num_vertices() > 0);
  if (root_ == kAutoRoot) {
    const auto deg = graph.out_degrees();
    root_ = static_cast<VertexId>(
        std::max_element(deg.begin(), deg.end()) - deg.begin());
  }
  HYVE_CHECK(root_ < graph.num_vertices());
  dist_.assign(graph.num_vertices(), kUnreached);
  dist_[root_] = 0;
  changed_ = false;
}

bool BfsProgram::process_edge(const Edge& e) {
  if (dist_[e.src] == kUnreached) return false;
  const std::uint32_t candidate = dist_[e.src] + 1;
  if (candidate < dist_[e.dst]) {
    dist_[e.dst] = candidate;
    changed_ = true;
    return true;
  }
  return false;
}

std::uint64_t BfsProgram::process_block(std::span<const Edge> edges,
                                        std::vector<char>* changed) {
  std::uint32_t* const dist = dist_.data();
  std::uint64_t writes = 0;
  for (const Edge& e : edges) {
    if (dist[e.src] == kUnreached) continue;
    const std::uint32_t candidate = dist[e.src] + 1;
    if (candidate < dist[e.dst]) {
      dist[e.dst] = candidate;
      ++writes;
      if (changed != nullptr) (*changed)[e.dst] = 1;
    }
  }
  changed_ |= writes > 0;
  return writes;
}

std::uint64_t BfsProgram::process_block_soa(const EdgeBlockSoA& block,
                                            std::vector<char>* changed) {
  debug_check_changed_cover(changed, block);
  std::uint32_t* const dist = dist_.data();
  const VertexId* const src = block.src;
  const VertexId* const dst = block.dst;
  std::uint64_t writes = 0;
  // Branchless saturating candidate: dist[src] + 1 unless unreached, in
  // which case the candidate saturates at kUnreached and the comparison
  // below rejects it — exactly the reference's early-out, without the
  // unpredictable branch. The relaxation itself must stay sequential
  // (later edges of the block legitimately read values written by
  // earlier ones — in-pass propagation), so no simd pragma here.
  for (std::size_t i = 0; i < block.count; ++i) {
    const std::uint32_t ds = dist[src[i]];
    const std::uint32_t candidate = ds == kUnreached ? kUnreached : ds + 1;
    if (candidate < dist[dst[i]]) {
      dist[dst[i]] = candidate;
      ++writes;
      if (changed != nullptr) (*changed)[dst[i]] = 1;
    }
  }
  changed_ |= writes > 0;
  return writes;
}

bool BfsProgram::end_iteration(std::uint32_t) {
  const bool more = changed_;
  changed_ = false;
  return more;
}

}  // namespace hyve
