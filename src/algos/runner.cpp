#include "algos/runner.hpp"

#include <cctype>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "algos/spmv.hpp"
#include "algos/sssp.hpp"
#include "obs/live.hpp"
#include "util/check.hpp"

namespace hyve {

std::unique_ptr<VertexProgram> make_program(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBfs: return std::make_unique<BfsProgram>();
    case Algorithm::kCc: return std::make_unique<CcProgram>();
    case Algorithm::kPageRank: return std::make_unique<PageRankProgram>();
    case Algorithm::kSssp: return std::make_unique<SsspProgram>();
    case Algorithm::kSpmv: return std::make_unique<SpmvProgram>();
  }
  HYVE_CHECK(false);
  __builtin_unreachable();
}

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBfs: return "BFS";
    case Algorithm::kCc: return "CC";
    case Algorithm::kPageRank: return "PR";
    case Algorithm::kSssp: return "SSSP";
    case Algorithm::kSpmv: return "SpMV";
  }
  return "?";
}

std::optional<Algorithm> parse_algorithm(const std::string& name) {
  auto lower = [](const std::string& s) {
    std::string out = s;
    for (char& c : out)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
  };
  const std::string needle = lower(name);
  for (const Algorithm a : kAllAlgorithms)
    if (needle == lower(algorithm_name(a))) return a;
  return std::nullopt;
}

FunctionalResult run_functional(const Graph& graph, VertexProgram& program,
                                const Partitioning* schedule) {
  program.init(graph);
  FunctionalResult result;

  // Structure-of-arrays hot path: the schedule's columns are transposed
  // lazily once and shared across every run of the same partitioning;
  // the schedule-less path streams the graph's own memoized columns.
  // Edge order matches the AoS layout exactly, so results are pinned
  // identical to the pre-SoA runner.
  std::shared_ptr<const EdgeColumns> whole_graph;
  if (schedule == nullptr) whole_graph = graph.edge_columns_shared();

  auto run_pass = [&] {
    if (schedule != nullptr) {
      const std::uint32_t p = schedule->num_intervals();
      // Column-major (destination-major) scan, the Algorithm 2 order.
      for (std::uint32_t y = 0; y < p; ++y) {
        for (std::uint32_t x = 0; x < p; ++x)
          result.destination_writes +=
              program.process_block_soa(schedule->block_soa(x, y));
      }
    } else {
      result.destination_writes +=
          program.process_block_soa(whole_graph->all());
    }
    result.edges_traversed += graph.num_edges();
  };

  // The functional passes are where a big graph spends its host time;
  // beating per pass keeps the live stall watchdog quiet.
  obs::LiveTelemetry& live = obs::live_telemetry();
  bool more = true;
  while (more && result.iterations < program.max_iterations()) {
    live.beat("functional.pass");
    run_pass();
    ++result.iterations;
    more = program.end_iteration(result.iterations);
  }
  return result;
}

}  // namespace hyve
