// Sparse matrix-vector multiplication over the graph's adjacency matrix,
// the second extra algorithm of the GraphR comparison (§7.4.3).
//
// y[dst] += A[src][dst] * x[src] in one edge pass; A's entries are the
// deterministic hash weights scaled to [0, 1).
#pragma once

#include <vector>

#include "algos/vertex_program.hpp"

namespace hyve {

class SpmvProgram final : public VertexProgram {
 public:
  std::string name() const override { return "SpMV"; }
  std::uint32_t vertex_value_bytes() const override { return 8; }  // x and y
  std::uint32_t max_iterations() const override { return 1; }

  void init(const Graph& graph) override;
  bool process_edge(const Edge& e) override;
  std::uint64_t process_block(std::span<const Edge> edges,
                              std::vector<char>* changed) override;
  std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                  std::vector<char>* changed) override;
  bool end_iteration(std::uint32_t completed_iterations) override;

  // x[v] is a deterministic function of v so results are reproducible.
  static double input_value(VertexId v);
  static double matrix_value(const Edge& e);

  const std::vector<double>& result() const { return y_; }

 private:
  std::vector<double> y_;
  std::vector<double> x_;  // input_value(v) precomputed per vertex
};

}  // namespace hyve
