// Connected components via edge-centric label propagation.
//
// Each vertex starts labelled with its own id; every pass propagates
// label[dst] <- min(label[dst], label[src]). Consistent with HyVE's
// read-only source intervals, propagation is strictly source-to-
// destination, so the fixpoint is the *forward* min-label closure; to
// obtain weakly connected components callers symmetrise the input first
// (symmetrized() below), which is the standard edge-centric practice
// (X-Stream runs CC on undirected edge lists).
#pragma once

#include <vector>

#include "algos/vertex_program.hpp"

namespace hyve {

class CcProgram final : public VertexProgram {
 public:
  std::string name() const override { return "CC"; }
  std::uint32_t vertex_value_bytes() const override { return 4; }

  void init(const Graph& graph) override;
  bool process_edge(const Edge& e) override;
  std::uint64_t process_block(std::span<const Edge> edges,
                              std::vector<char>* changed) override;
  std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                  std::vector<char>* changed) override;
  bool end_iteration(std::uint32_t completed_iterations) override;

  const std::vector<VertexId>& labels() const { return label_; }

 private:
  std::vector<VertexId> label_;
  bool changed_ = false;
};

// Returns g plus the reverse of every edge (deduplicated), the input CC
// needs to compute weakly connected components.
Graph symmetrized(const Graph& g);

}  // namespace hyve
