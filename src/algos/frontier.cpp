#include "algos/frontier.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "obs/live.hpp"
#include "util/check.hpp"

namespace hyve {

std::uint64_t FrontierTrace::block_edges(std::uint32_t iter, std::uint32_t x,
                                         std::uint32_t y) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  HYVE_CHECK(x < num_intervals && y < num_intervals);
  const std::uint64_t flat =
      static_cast<std::uint64_t>(x) * num_intervals + y;
  const auto& blocks = iteration_blocks[iter];
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), flat,
      [](const BlockCount& bc, std::uint64_t key) { return bc.block < key; });
  if (it == blocks.end() || it->block != flat) return 0;
  return it->edges;
}

void FrontierTrace::expand_iteration(std::uint32_t iter,
                                     std::vector<std::uint64_t>& dense) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  dense.assign(static_cast<std::size_t>(num_intervals) * num_intervals, 0);
  for (const BlockCount& bc : iteration_blocks[iter]) dense[bc.block] = bc.edges;
}

void FrontierTrace::source_activity(std::uint32_t iter,
                                    std::vector<char>& active) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  active.assign(num_intervals, 0);
  for (const BlockCount& bc : iteration_blocks[iter])
    active[bc.block / num_intervals] = 1;
}

std::uint64_t FrontierTrace::edges_in_iteration(std::uint32_t iter) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  std::uint64_t total = 0;
  for (const BlockCount& bc : iteration_blocks[iter]) total += bc.edges;
  return total;
}

std::uint64_t FrontierTrace::active_blocks_in_iteration(
    std::uint32_t iter) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  // Only non-empty blocks are stored, so the list length is the count.
  return iteration_blocks[iter].size();
}

std::size_t FrontierTrace::approx_bytes() const {
  std::size_t bytes = sizeof(FrontierTrace);
  for (const auto& blocks : iteration_blocks)
    bytes += sizeof(blocks) + blocks.capacity() * sizeof(BlockCount);
  return bytes;
}

namespace {
std::atomic<bool> g_pattern_reuse{true};
}  // namespace

bool pattern_reuse_enabled() {
  return g_pattern_reuse.load(std::memory_order_relaxed);
}

void set_pattern_reuse_enabled(bool on) {
  g_pattern_reuse.store(on, std::memory_order_relaxed);
}

FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule) {
  return run_frontier(graph, program, schedule,
                      FrontierOptions{.pattern_reuse = pattern_reuse_enabled()});
}

FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule,
                           const FrontierOptions& options) {
  program.init(graph);
  const std::uint32_t p = schedule.num_intervals();

  FrontierTrace trace;
  trace.num_intervals = p;
  // Interval activity: all sources are candidates in the first pass.
  // Every write of block B[x][y] lands in interval y, so "any source in
  // I_y changed" is exactly "some block with destination interval y had
  // writes > 0" — interval activity needs no per-vertex bookkeeping at
  // all. Apply-phase programs rewrite every vertex each iteration, so
  // their activity never narrows; single-pass programs (SpMV) never
  // reach a second iteration. Neither consumes any of the tracking
  // below, so it is skipped wholesale for them.
  const bool has_apply = program.has_apply_phase();
  const bool tracks_activity = !has_apply && program.max_iterations() > 1;
  std::vector<char> interval_active(p, 1);
  std::vector<char> next_active(tracks_activity ? p : 0, 0);

  // Per-iteration pattern reuse: block_dirty[x*p+y] records whether any
  // source vertex of B[x][y] changed since the block was last streamed.
  // A clean block would relax nothing — its sources carry exactly the
  // values it saw then, and those candidates were all applied — so it
  // is replayed into the trace instead of re-streamed. Dirt is kept
  // exact by exploiting the destination-major order: all writes into
  // interval y land during outer iteration y, so walking interval y's
  // changed bits immediately after outer y updates every row before any
  // later block — in this pass or the next — consults it. (Deferring
  // the walk to the end of the pass would miss in-pass propagation: a
  // clean block whose source changed earlier in the same pass must
  // stream, exactly as it would without reuse.) Dirt therefore persists
  // across passes and is cleared per block as it streams. Apply-phase
  // programs rewrite every vertex per iteration; like interval
  // skipping, reuse degenerates to full passes for them. Only reuse
  // needs vertex-granularity change tracking (to walk each changed
  // vertex's destination-interval row); without it the kernels skip the
  // per-write marking entirely (changed_sink stays null).
  const bool reuse = options.pattern_reuse && tracks_activity;
  const SourceBlockIndex* index =
      reuse ? &schedule.source_block_index() : nullptr;
  std::vector<char> vertex_changed(reuse ? graph.num_vertices() : 0, 0);
  std::vector<char>* const changed_sink = reuse ? &vertex_changed : nullptr;
  std::vector<char> block_dirty;
  if (reuse) block_dirty.assign(static_cast<std::size_t>(p) * p, 1);
  const VertexMap& map = schedule.vertex_map();
  const bool contiguous = map.is_contiguous();
  // Non-contiguous maps cannot walk one interval's vertex range, so
  // their per-vertex walk stays at end of pass; the in-pass hole is
  // closed conservatively instead: any write into interval x earlier in
  // the pass forces every later block of row x to stream.
  std::vector<char> wrote_this_pass(reuse && !contiguous ? p : 0, 0);

  // Per-pass block edge counts, written destination-major into a flat
  // scratch grid and compacted into the (flat-ordered) trace rows — the
  // order the binary-search accessor needs — without a sort.
  std::vector<std::uint64_t> pass_edges(static_cast<std::size_t>(p) * p, 0);

  // Consumes (and zeroes) the changed bitmap eight vertices at a time —
  // the all-clean stretches of a narrow frontier cost one word load
  // each — re-dirtying the blocks each changed vertex's out-edges land
  // in.
  char* const changed = vertex_changed.data();
  const auto walk = [&](VertexId lo, VertexId hi, auto row_of) {
    for (VertexId base = lo; base < hi; base += 8) {
      const VertexId limit = std::min<VertexId>(base + 8, hi);
      if (limit - base == 8) {
        std::uint64_t word;
        std::memcpy(&word, changed + base, sizeof word);
        if (word == 0) continue;
      }
      for (VertexId v = base; v < limit; ++v) {
        if (!changed[v]) continue;
        changed[v] = 0;
        const std::size_t row = row_of(v);
        for (const std::uint32_t y : index->row(v)) block_dirty[row + y] = 1;
      }
    }
  };

  obs::LiveTelemetry& live = obs::live_telemetry();
  bool more = true;
  while (more && trace.result.iterations < program.max_iterations()) {
    live.beat("functional.pass");
    if (tracks_activity) std::fill(next_active.begin(), next_active.end(), 0);
    if (!wrote_this_pass.empty())
      std::fill(wrote_this_pass.begin(), wrote_this_pass.end(), 0);

    for (std::uint32_t y = 0; y < p; ++y) {
      std::uint64_t writes_into_y = 0;
      for (std::uint32_t x = 0; x < p; ++x) {
        if (!interval_active[x]) continue;  // block skipped
        const EdgeBlockSoA block = schedule.block_soa(x, y);
        if (block.empty()) continue;
        const std::uint64_t flat = static_cast<std::uint64_t>(x) * p + y;
        // A block is replayed only if no source changed since it last
        // streamed. Dirt from outer iterations < y is already folded
        // in; outer iterations > y have not written yet. The diagonal
        // block B[y][y] alone can see unfolded same-iteration writes
        // (earlier blocks of this inner loop land in its source
        // interval), so any write so far forces it to stream.
        const bool replay =
            reuse && !block_dirty[flat] &&
            (x != y || writes_into_y == 0) &&
            (contiguous || x >= y || !wrote_this_pass[x]);
        if (replay) {
          // Replay: the streamed result is provably zero writes, so the
          // trace records the block exactly as streaming would have.
          ++trace.blocks_skipped;
          trace.edges_skipped += block.size();
        } else {
          const std::uint64_t writes =
              program.process_block_soa(block, changed_sink);
          trace.result.destination_writes += writes;
          if (tracks_activity && writes > 0) next_active[y] = 1;
          if (reuse) block_dirty[flat] = 0;
          writes_into_y += writes;
        }
        trace.result.edges_traversed += block.size();
        pass_edges[flat] = block.size();
      }
      // Destination interval y just closed, so its changed bits are
      // final for this pass: fold them into the dirty grid now. The
      // write count steers the work: no writes means no bits at all,
      // and an interval where most vertices changed gets its whole
      // block row dirtied wholesale (the interval-skipping answer)
      // instead of a per-vertex walk.
      if (reuse && writes_into_y > 0) {
        if (contiguous) {
          const VertexId lo = map.interval_begin(y);
          const VertexId hi = map.interval_end(y);
          const std::size_t row = static_cast<std::size_t>(y) * p;
          if (writes_into_y >= static_cast<std::uint64_t>(hi - lo) / 2) {
            std::fill_n(block_dirty.data() + row, p, char{1});
            std::memset(changed + lo, 0, hi - lo);
          } else {
            walk(lo, hi, [row](VertexId) { return row; });
          }
        } else {
          wrote_this_pass[y] = 1;
        }
      }
    }

    ++trace.result.iterations;
    more = program.end_iteration(trace.result.iterations);
    std::size_t non_empty = 0;
    for (std::uint64_t flat = 0; flat < pass_edges.size(); ++flat)
      non_empty += pass_edges[flat] != 0 ? 1 : 0;
    std::vector<FrontierTrace::BlockCount> this_pass;
    this_pass.reserve(non_empty);
    for (std::uint64_t flat = 0; flat < pass_edges.size(); ++flat) {
      if (pass_edges[flat] == 0) continue;
      this_pass.push_back({flat, pass_edges[flat]});
      pass_edges[flat] = 0;
    }
    trace.iteration_blocks.push_back(std::move(this_pass));

    // Activity only narrows for multi-pass, non-apply programs — the
    // apply phase rewrites every vertex (e.g. PageRank), leaving every
    // interval active, so frontier skipping degenerates safely. The
    // final iteration skips the bookkeeping outright: nothing reads it.
    if (more && tracks_activity) {
      std::swap(interval_active, next_active);
      if (reuse && !contiguous) {
        // Intervals whose vertices are scattered can only be walked as
        // one full sweep, so their dirt propagation lands here.
        walk(0, graph.num_vertices(), [&](VertexId v) {
          return static_cast<std::size_t>(schedule.interval_of(v)) * p;
        });
      }
    }
  }
  return trace;
}

}  // namespace hyve
