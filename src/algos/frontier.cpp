#include "algos/frontier.hpp"

#include <numeric>

#include "util/check.hpp"

namespace hyve {

std::uint64_t FrontierTrace::edges_in_iteration(std::uint32_t iter) const {
  HYVE_CHECK(iter < block_edges.size());
  return std::accumulate(block_edges[iter].begin(), block_edges[iter].end(),
                         std::uint64_t{0});
}

std::uint64_t FrontierTrace::active_blocks_in_iteration(
    std::uint32_t iter) const {
  HYVE_CHECK(iter < block_edges.size());
  std::uint64_t active = 0;
  for (const std::uint64_t e : block_edges[iter]) active += (e > 0) ? 1 : 0;
  return active;
}

FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule) {
  program.init(graph);
  const std::uint32_t p = schedule.num_intervals();

  FrontierTrace trace;
  // Interval activity: all sources are candidates in the first pass.
  std::vector<char> interval_active(p, 1);
  std::vector<char> vertex_changed(graph.num_vertices(), 0);

  bool more = true;
  while (more && trace.result.iterations < program.max_iterations()) {
    std::vector<std::uint64_t> this_pass(schedule.num_blocks(), 0);
    std::fill(vertex_changed.begin(), vertex_changed.end(), 0);

    for (std::uint32_t y = 0; y < p; ++y) {
      for (std::uint32_t x = 0; x < p; ++x) {
        if (!interval_active[x]) continue;  // block skipped
        std::uint64_t processed = 0;
        for (const Edge& e : schedule.block(x, y)) {
          ++processed;
          if (program.process_edge(e)) {
            vertex_changed[e.dst] = 1;
            ++trace.result.destination_writes;
          }
        }
        this_pass[static_cast<std::uint64_t>(x) * p + y] = processed;
        trace.result.edges_traversed += processed;
      }
    }

    ++trace.result.iterations;
    more = program.end_iteration(trace.result.iterations);
    trace.block_edges.push_back(std::move(this_pass));

    if (program.has_apply_phase()) {
      // The apply phase rewrites every vertex (e.g. PageRank), so every
      // interval is active again — frontier skipping degenerates safely.
      std::fill(interval_active.begin(), interval_active.end(), 1);
    } else {
      std::fill(interval_active.begin(), interval_active.end(), 0);
      for (VertexId v = 0; v < graph.num_vertices(); ++v)
        if (vertex_changed[v]) interval_active[schedule.interval_of(v)] = 1;
    }
  }
  return trace;
}

}  // namespace hyve
