#include "algos/frontier.hpp"

#include <algorithm>

#include "obs/live.hpp"
#include "util/check.hpp"

namespace hyve {

std::uint64_t FrontierTrace::block_edges(std::uint32_t iter, std::uint32_t x,
                                         std::uint32_t y) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  HYVE_CHECK(x < num_intervals && y < num_intervals);
  const std::uint64_t flat =
      static_cast<std::uint64_t>(x) * num_intervals + y;
  const auto& blocks = iteration_blocks[iter];
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), flat,
      [](const BlockCount& bc, std::uint64_t key) { return bc.block < key; });
  if (it == blocks.end() || it->block != flat) return 0;
  return it->edges;
}

void FrontierTrace::expand_iteration(std::uint32_t iter,
                                     std::vector<std::uint64_t>& dense) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  dense.assign(static_cast<std::size_t>(num_intervals) * num_intervals, 0);
  for (const BlockCount& bc : iteration_blocks[iter]) dense[bc.block] = bc.edges;
}

void FrontierTrace::source_activity(std::uint32_t iter,
                                    std::vector<char>& active) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  active.assign(num_intervals, 0);
  for (const BlockCount& bc : iteration_blocks[iter])
    active[bc.block / num_intervals] = 1;
}

std::uint64_t FrontierTrace::edges_in_iteration(std::uint32_t iter) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  std::uint64_t total = 0;
  for (const BlockCount& bc : iteration_blocks[iter]) total += bc.edges;
  return total;
}

std::uint64_t FrontierTrace::active_blocks_in_iteration(
    std::uint32_t iter) const {
  HYVE_CHECK(iter < iteration_blocks.size());
  // Only non-empty blocks are stored, so the list length is the count.
  return iteration_blocks[iter].size();
}

std::size_t FrontierTrace::approx_bytes() const {
  std::size_t bytes = sizeof(FrontierTrace);
  for (const auto& blocks : iteration_blocks)
    bytes += sizeof(blocks) + blocks.capacity() * sizeof(BlockCount);
  return bytes;
}

FrontierTrace run_frontier(const Graph& graph, VertexProgram& program,
                           const Partitioning& schedule) {
  program.init(graph);
  const std::uint32_t p = schedule.num_intervals();

  FrontierTrace trace;
  trace.num_intervals = p;
  // Interval activity: all sources are candidates in the first pass.
  std::vector<char> interval_active(p, 1);
  std::vector<char> vertex_changed(graph.num_vertices(), 0);

  obs::LiveTelemetry& live = obs::live_telemetry();
  bool more = true;
  while (more && trace.result.iterations < program.max_iterations()) {
    live.beat("functional.pass");
    std::vector<FrontierTrace::BlockCount> this_pass;
    std::fill(vertex_changed.begin(), vertex_changed.end(), 0);

    for (std::uint32_t y = 0; y < p; ++y) {
      for (std::uint32_t x = 0; x < p; ++x) {
        if (!interval_active[x]) continue;  // block skipped
        const std::span<const Edge> block = schedule.block(x, y);
        if (block.empty()) continue;
        trace.result.destination_writes +=
            program.process_block(block, &vertex_changed);
        trace.result.edges_traversed += block.size();
        this_pass.push_back({static_cast<std::uint64_t>(x) * p + y,
                             block.size()});
      }
    }

    ++trace.result.iterations;
    more = program.end_iteration(trace.result.iterations);
    // The pass visits blocks destination-major (y outer), so sort into
    // flattened-index order for the binary-search accessor.
    std::sort(this_pass.begin(), this_pass.end(),
              [](const FrontierTrace::BlockCount& a,
                 const FrontierTrace::BlockCount& b) {
                return a.block < b.block;
              });
    this_pass.shrink_to_fit();
    trace.iteration_blocks.push_back(std::move(this_pass));

    if (program.has_apply_phase()) {
      // The apply phase rewrites every vertex (e.g. PageRank), so every
      // interval is active again — frontier skipping degenerates safely.
      std::fill(interval_active.begin(), interval_active.end(), 1);
    } else {
      std::fill(interval_active.begin(), interval_active.end(), 0);
      for (VertexId v = 0; v < graph.num_vertices(); ++v)
        if (vertex_changed[v]) interval_active[schedule.interval_of(v)] = 1;
    }
  }
  return trace;
}

}  // namespace hyve
