// Edge-centric vertex programs (paper §2.1, Algorithm 1).
//
// A VertexProgram supplies Initialize() and Update() of the edge-centric
// GAS specialisation: every iteration streams every edge and updates the
// destination vertex from the source's property. Crucially for HyVE's
// data-sharing scheme, Update() never writes the *source* vertex — the
// source interval may live in a remote PU's SRAM behind the router and is
// read-only during processing (§4.2).
//
// Programs also describe their vertex-record width: the PR record is
// wider than the BFS/CC one (rank + accumulator), which is why data
// sharing helps PR the most (Fig. 14).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_block_soa.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace hyve {

// Debug-build enforcement of the `changed` contract of process_block /
// process_block_soa: the vector must be indexable by every destination
// id of the block. The kernels index it unchecked on the hot path, so a
// short vector would corrupt memory silently; debug builds (NDEBUG
// undefined) scan the block up front and fail loudly instead. Release
// builds compile these to nothing.
inline void debug_check_changed_cover(const std::vector<char>* changed,
                                      std::span<const Edge> edges) {
#ifndef NDEBUG
  if (changed == nullptr) return;
  for (const Edge& e : edges)
    HYVE_CHECK_MSG(e.dst < changed->size(),
                   "changed vector of size " << changed->size()
                                             << " cannot index destination "
                                             << e.dst);
#else
  (void)changed;
  (void)edges;
#endif
}

inline void debug_check_changed_cover(const std::vector<char>* changed,
                                      const EdgeBlockSoA& block) {
#ifndef NDEBUG
  if (changed == nullptr) return;
  for (std::size_t i = 0; i < block.count; ++i)
    HYVE_CHECK_MSG(block.dst[i] < changed->size(),
                   "changed vector of size " << changed->size()
                                             << " cannot index destination "
                                             << block.dst[i]);
#else
  (void)changed;
  (void)block;
#endif
}

class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  virtual std::string name() const = 0;

  // Bytes of vertex state moved per vertex between off-chip and on-chip
  // vertex memory (the paper's "bit width of a vertex").
  virtual std::uint32_t vertex_value_bytes() const = 0;

  // Whether the algorithm has an end-of-iteration apply phase over all
  // vertices (PageRank's rank <- (1-d)/V + d*accum).
  virtual bool has_apply_phase() const { return false; }

  // Resets state for `graph` and prepares iteration 1.
  virtual void init(const Graph& graph) = 0;

  // Processes one edge; returns true iff the destination value changed.
  virtual bool process_edge(const Edge& e) = 0;

  // Processes a contiguous block of edges; returns how many of them
  // changed their destination. When `changed` is non-null it must be
  // indexable by every destination id in `edges`; the entry of each
  // changed destination is set to 1 (entries are never cleared — the
  // frontier walk owns the reset). Concrete programs override this with
  // a tight non-virtual loop — one virtual call per block instead of one
  // per edge — and must stay result-equivalent to this per-edge
  // reference, which the process_block equivalence tests pin for every
  // algorithm.
  virtual std::uint64_t process_block(std::span<const Edge> edges,
                                      std::vector<char>* changed = nullptr) {
    debug_check_changed_cover(changed, edges);
    std::uint64_t writes = 0;
    for (const Edge& e : edges) {
      if (process_edge(e)) {
        ++writes;
        if (changed != nullptr) (*changed)[e.dst] = 1;
      }
    }
    return writes;
  }

  // Structure-of-arrays variant of process_block: same edges, same
  // sequential semantics, handed as contiguous src[]/dst[]/weight-hash
  // columns (graph/edge_block_soa.hpp). Concrete programs override this
  // with vectorization-friendly loops (hoisted column pointers,
  // branchless candidates, precomputed weight hashes); the default
  // reconstructs each edge and runs the pinned per-edge reference, so
  // programs without an override stay exactly result-equivalent. The
  // equivalence (results, write counts, changed bitmaps) is pinned per
  // algorithm by the SoA kernel tests.
  virtual std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                          std::vector<char>* changed = nullptr) {
    debug_check_changed_cover(changed, block);
    std::uint64_t writes = 0;
    for (std::size_t i = 0; i < block.count; ++i) {
      const Edge e = block.edge(i);
      if (process_edge(e)) {
        ++writes;
        if (changed != nullptr) (*changed)[e.dst] = 1;
      }
    }
    return writes;
  }

  // Ends the iteration (apply phase, convergence bookkeeping); returns
  // true iff another full edge pass is required.
  virtual bool end_iteration(std::uint32_t completed_iterations) = 0;

  // Safety net for non-converging inputs.
  virtual std::uint32_t max_iterations() const { return 1000; }
};

}  // namespace hyve
