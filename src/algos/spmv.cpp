#include "algos/spmv.hpp"

namespace hyve {

void SpmvProgram::init(const Graph& graph) {
  y_.assign(graph.num_vertices(), 0.0);
}

double SpmvProgram::input_value(VertexId v) {
  // Cheap deterministic hash into [0.5, 1.5) to avoid degenerate zeros.
  std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  return 0.5 + static_cast<double>(z >> 11) * 0x1.0p-53;
}

double SpmvProgram::matrix_value(const Edge& e) {
  return Graph::edge_weight(e, 1024) / 1024.0;
}

bool SpmvProgram::process_edge(const Edge& e) {
  y_[e.dst] += matrix_value(e) * input_value(e.src);
  return true;
}

std::uint64_t SpmvProgram::process_block(std::span<const Edge> edges,
                                         std::vector<char>* changed) {
  double* const y = y_.data();
  for (const Edge& e : edges) y[e.dst] += matrix_value(e) * input_value(e.src);
  if (changed != nullptr)
    for (const Edge& e : edges) (*changed)[e.dst] = 1;
  return edges.size();
}

bool SpmvProgram::end_iteration(std::uint32_t) { return false; }

}  // namespace hyve
