#include "algos/spmv.hpp"

namespace hyve {

void SpmvProgram::init(const Graph& graph) {
  y_.assign(graph.num_vertices(), 0.0);
  // Precompute x so the SoA kernel replaces a per-edge hash of the
  // source id with one gather (same bits: input_value is a pure
  // function of v). Elementwise — vectorizes cleanly.
  x_.resize(graph.num_vertices());
  double* const x = x_.data();
  const VertexId n = graph.num_vertices();
#pragma omp simd
  for (VertexId v = 0; v < n; ++v) x[v] = input_value(v);
}

double SpmvProgram::input_value(VertexId v) {
  // Cheap deterministic hash into [0.5, 1.5) to avoid degenerate zeros.
  std::uint64_t z = v + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 31;
  return 0.5 + static_cast<double>(z >> 11) * 0x1.0p-53;
}

double SpmvProgram::matrix_value(const Edge& e) {
  return Graph::edge_weight(e, 1024) / 1024.0;
}

bool SpmvProgram::process_edge(const Edge& e) {
  y_[e.dst] += matrix_value(e) * input_value(e.src);
  return true;
}

std::uint64_t SpmvProgram::process_block(std::span<const Edge> edges,
                                         std::vector<char>* changed) {
  double* const y = y_.data();
  for (const Edge& e : edges) y[e.dst] += matrix_value(e) * input_value(e.src);
  if (changed != nullptr)
    for (const Edge& e : edges) (*changed)[e.dst] = 1;
  return edges.size();
}

std::uint64_t SpmvProgram::process_block_soa(const EdgeBlockSoA& block,
                                             std::vector<char>* changed) {
  debug_check_changed_cover(changed, block);
  double* const y = y_.data();
  const double* const x = x_.data();
  const VertexId* const src = block.src;
  const VertexId* const dst = block.dst;
  const std::uint64_t* const hash = block.weight_hash;
  // Two per-edge hashes of the AoS kernel (matrix entry and input
  // value) become one modulo and one gather; the accumulation itself
  // stays sequential to preserve the reference's FP order exactly.
  for (std::size_t i = 0; i < block.count; ++i) {
    const double a = Graph::edge_weight_from_hash(hash[i], 1024) / 1024.0;
    y[dst[i]] += a * x[src[i]];
  }
  if (changed != nullptr) {
    char* const mark = changed->data();
#pragma omp simd
    for (std::size_t i = 0; i < block.count; ++i) mark[dst[i]] = 1;
  }
  return block.count;
}

bool SpmvProgram::end_iteration(std::uint32_t) { return false; }

}  // namespace hyve
