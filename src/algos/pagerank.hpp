// PageRank under the edge-centric model.
//
// Scatter: accum[dst] += rank[src] / out_degree[src];
// apply:   rank[v] = (1-d)/V + d * accum[v].
// The paper runs a fixed 10 iterations (§7.1); the vertex record holds
// both rank and accumulator (8 bytes), the widest of the evaluated
// algorithms.
#pragma once

#include <vector>

#include "algos/vertex_program.hpp"

namespace hyve {

class PageRankProgram final : public VertexProgram {
 public:
  explicit PageRankProgram(std::uint32_t num_iterations = 10,
                           double damping = 0.85)
      : num_iterations_(num_iterations), damping_(damping) {}

  std::string name() const override { return "PR"; }
  std::uint32_t vertex_value_bytes() const override { return 8; }
  bool has_apply_phase() const override { return true; }
  std::uint32_t max_iterations() const override { return num_iterations_; }

  void init(const Graph& graph) override;
  bool process_edge(const Edge& e) override;
  std::uint64_t process_block(std::span<const Edge> edges,
                              std::vector<char>* changed) override;
  std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                  std::vector<char>* changed) override;
  bool end_iteration(std::uint32_t completed_iterations) override;

  const std::vector<double>& ranks() const { return rank_; }

 private:
  std::uint32_t num_iterations_;
  double damping_;
  VertexId num_vertices_ = 0;
  std::vector<double> rank_;
  std::vector<double> accum_;
  std::vector<float> contribution_;  // rank[src]/outdeg[src], frozen per pass
  std::vector<std::uint32_t> out_degree_;
};

}  // namespace hyve
