// Single-source shortest paths (Bellman-Ford style relaxation), one of the
// two extra algorithms of the GraphR comparison (§7.4.3).
//
// Edge weights are the deterministic hash-derived weights of
// Graph::edge_weight, standing in for the unweighted SNAP inputs.
#pragma once

#include <limits>
#include <vector>

#include "algos/vertex_program.hpp"

namespace hyve {

class SsspProgram final : public VertexProgram {
 public:
  static constexpr std::uint64_t kUnreached =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr VertexId kAutoRoot = static_cast<VertexId>(-1);

  explicit SsspProgram(VertexId root = kAutoRoot,
                       std::uint32_t max_weight = 64)
      : root_(root), max_weight_(max_weight) {}

  std::string name() const override { return "SSSP"; }
  std::uint32_t vertex_value_bytes() const override { return 4; }

  void init(const Graph& graph) override;
  bool process_edge(const Edge& e) override;
  std::uint64_t process_block(std::span<const Edge> edges,
                              std::vector<char>* changed) override;
  std::uint64_t process_block_soa(const EdgeBlockSoA& block,
                                  std::vector<char>* changed) override;
  bool end_iteration(std::uint32_t completed_iterations) override;

  const std::vector<std::uint64_t>& distances() const { return dist_; }
  VertexId root() const { return root_; }

 private:
  VertexId root_;
  std::uint32_t max_weight_;
  std::vector<std::uint64_t> dist_;
  bool changed_ = false;
};

}  // namespace hyve
