// On-chip SRAM model (CACTI 6.5 style, paper §4.2 / §6.3 / §7.2.3).
//
// HyVE places the source and destination vertex sections of each
// processing unit in SRAM; random vertex reads/writes land here instead
// of in off-chip memory. The model is anchored on the paper's quoted
// 2 MB / 4 MB CACTI points and scales access latency/energy ~sqrt(capacity)
// and leakage ~linearly, which is what makes 16 MB arrays lose to 2 MB
// ones in Table 4 despite the reduced off-chip traffic.
#pragma once

#include <cstdint>
#include <string>

namespace hyve {

class SramModel {
 public:
  // capacity_bytes: size of one SRAM array (per processing unit section
  // pair, i.e. the "SRAM size" axis of Table 4).
  explicit SramModel(std::uint64_t capacity_bytes);

  std::string name() const;
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }

  // 32-bit word access figures (the CACTI quote granularity); wider vertex
  // records issue multiple word accesses.
  double read_energy_pj(std::uint32_t bytes) const;
  double write_energy_pj(std::uint32_t bytes) const;
  double read_latency_ns() const { return read_latency_ns_; }
  double write_latency_ns() const { return write_latency_ns_; }
  // Random-access cycle (array busy time per access).
  double cycle_ns() const { return cycle_ns_; }

  double leakage_power_mw() const { return leakage_mw_; }

 private:
  std::uint64_t capacity_bytes_;
  double word_read_energy_pj_;
  double word_write_energy_pj_;
  double read_latency_ns_;
  double write_latency_ns_;
  double cycle_ns_;
  double leakage_mw_;
};

// GraphR's local vertex storage (§6.3): small register files.
class RegisterFileModel {
 public:
  double read_energy_pj(std::uint32_t bytes) const;
  double write_energy_pj(std::uint32_t bytes) const;
  double read_latency_ns() const;
  double write_latency_ns() const;
};

}  // namespace hyve
