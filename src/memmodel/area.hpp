// Silicon area model (22 nm, §4.1 / §7.1).
//
// NVSim and CACTI report area next to energy/latency; HyVE's §4.1 argues
// the bank-level power gates cost little area because one gate serves a
// whole bank. This module provides the same figures for the reproduction:
// cell-array area from the technology's cell size (4F^2 ReRAM, 6F^2 DRAM,
// ~146F^2 SRAM per the paper's CACTI cell), periphery overheads, and the
// accelerator-side blocks (PUs, router, controller).
#pragma once

#include <cstdint>

#include "memmodel/reram.hpp"

namespace hyve {

struct AreaBreakdown {
  // On-accelerator blocks.
  double sram_mm2 = 0;        // all on-chip vertex sections
  double pu_mm2 = 0;          // processing units
  double router_mm2 = 0;      // N-to-N data-sharing router
  double controller_mm2 = 0;  // HyVE memory controller

  // Edge-memory module (off accelerator, per-chip die area).
  int edge_chips = 0;
  double edge_chip_mm2 = 0;       // one chip, without power gating
  double power_gate_mm2 = 0;      // per chip, the §4.1 BPG additions
  double power_gate_overhead() const {
    return edge_chip_mm2 <= 0 ? 0.0 : power_gate_mm2 / edge_chip_mm2;
  }

  double accelerator_mm2() const {
    return sram_mm2 + pu_mm2 + router_mm2 + controller_mm2;
  }
};

struct AreaInputs {
  int num_pus = 8;
  std::uint64_t sram_bytes_per_pu = 0;
  ReramConfig edge_reram;           // edge-memory chip geometry
  std::uint64_t edge_capacity_bytes = 0;
  bool power_gating = true;
};

AreaBreakdown estimate_area(const AreaInputs& inputs);

// Cell-array densities at 22 nm (mm^2 per gigabit of raw cells).
double reram_array_mm2_per_gbit(int cell_bits);
double sram_mm2_per_mib();

}  // namespace hyve
