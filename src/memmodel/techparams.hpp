// Technology constants for every memory/compute model in the reproduction.
//
// Single source of truth. Three classes of numbers live here:
//   (1) constants quoted verbatim by the paper (cited inline: §x.y / Table n);
//   (2) standard datasheet values the paper consumed through external tools
//       (NVSim, CACTI 6.5, the Micron DDR4 power calculator) but did not
//       reprint — taken from the corresponding public documents;
//   (3) calibrated values, marked [calibrated]: free parameters the paper
//       never states (e.g. peripheral leakage of an energy-optimised ReRAM
//       chip) chosen so the paper's published *ratios* (Figs. 9, 14-17)
//       hold. EXPERIMENTS.md records the resulting paper-vs-measured gaps.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace hyve::tech {

using namespace hyve::units;

// ---------------------------------------------------------------------------
// ReRAM (edge memory) — NVSim-modelled, 22 nm (§7.1, Table 3)
// ---------------------------------------------------------------------------

// Table 3, energy-optimised bank configurations: {output bits, dynamic
// energy per access (pJ), cycle period (ps)}. These are the NVSim outputs
// the paper prints; we embed them directly.
struct ReramBankPoint {
  int output_bits;
  double energy_pj;
  double period_ps;
};
inline constexpr ReramBankPoint kReramEnergyOpt[] = {
    {64, 20.13, 1221.0},
    {128, 33.87, 1983.0},
    {256, 57.31, 1983.0},
    {512, 102.07, 1983.0},
};
inline constexpr ReramBankPoint kReramLatencyOpt[] = {
    {64, 381.47, 653.0},
    {128, 378.57, 590.0},
    {256, 382.37, 590.0},
    {512, 660.23, 527.0},
};

// Cell programming (§7.1): 10 ns set pulse, 0.6 pJ set energy per cell.
inline constexpr double kReramSetPulseNs = 10.0;
inline constexpr double kReramSetEnergyPerBitPj = 0.6;
// Program-and-verify overhead on writes: iterative verify pulses cost
// ~75% extra cell energy over a single set pulse, which is what brings
// the sequential-write energy of Fig. 9 to near-parity with DRAM.
inline constexpr double kReramWriteVerifyFactor = 1.75;

// I/O + bus energy per bit for off-chip transfer. [calibrated] so the
// sequential-read DRAM/ReRAM energy ratio lands at the ~4-6x of Fig. 9.
inline constexpr double kReramIoEnergyPerBitPj = 0.12;

// Chip I/O channel cap on streaming reads. The internal mat array can
// produce 512 b / 1.98 ns (~32 GB/s) but the off-chip interface runs
// slightly below the DDR4 channel, giving the few-percent execution-time
// penalty of Fig. 18. [calibrated]
inline constexpr double kReramChannelGBps = 15.5;

// MLC multipliers (§7.2.1, parallel-sensing scheme of Xu et al., DAC'13):
// extra reference sensing steps raise read energy and latency per access;
// density per cell scales with bits. Index by (cell_bits - 1).
inline constexpr double kMlcReadEnergyScale[] = {1.0, 1.65, 2.55};
inline constexpr double kMlcReadLatencyScale[] = {1.0, 1.35, 1.80};
inline constexpr double kMlcWriteEnergyScale[] = {1.0, 2.1, 3.6};
inline constexpr double kMlcWriteLatencyScale[] = {1.0, 1.6, 2.4};

// Chip organisation (Fig. 3): banks per chip; one bank active at a time
// under HyVE's sub-bank (mat) interleaving, which is what makes bank-level
// power-gating effective (§4.1).
inline constexpr int kReramBanksPerChip = 8;
inline constexpr int kReramMatsPerBank = 16;

// Peripheral leakage of a powered-on energy-optimised chip. NVSim-style
// periphery (global decoders, 512 sense amps, I/O) dominates; cells are
// non-volatile and leak nothing. [calibrated] against Fig. 15's 1.53x
// power-gating gain and Fig. 17's edge-memory share.
inline constexpr double kReramChipLeakageMw = 150.0;    // per 4 Gb chip
inline constexpr double kReramLeakagePerGbitMw = 11.0;  // density scaling
// Residual draw of a power-gated bank region (gate leakage + retention of
// the BPG controller itself).
inline constexpr double kReramGatedResidualFraction = 0.02;
// Shared I/O + control that BPG cannot gate while the chip is in use.
inline constexpr double kReramUngateableMw = 16.0;
// Bank wake-up: charging local bitlines/decoders after a power gate opens.
inline constexpr double kReramBankWakeLatencyNs = 120.0;
inline constexpr double kReramBankWakeEnergyPj = 2500.0;

// ---------------------------------------------------------------------------
// DRAM (off-chip vertex memory; edge memory in the acc+DRAM baselines) —
// DDR4-2133 per the Micron system power calculator setup (§7.1).
// ---------------------------------------------------------------------------

// Sequential stream energy per byte, row-activation amortised, including
// I/O and termination. ~1.3 pJ/bit array+periphery + ~0.7 pJ/bit bus is
// the standard DDR4 system figure. [calibrated within datasheet range]
inline constexpr double kDramStreamEnergyPerBytePj = 13.0;
// Random access: a fresh row activation + one burst, little reuse.
inline constexpr double kDramRandomAccessEnergyPj = 1500.0;
inline constexpr double kDramRandomAccessLatencyNs = 45.0;
// Channel bandwidth: DDR4-2133, 64-bit channel.
inline constexpr double kDramChannelGBps = 17.0;
// Effective random-access throughput per channel with bank-level
// parallelism (16 banks, closed-page): accesses complete every ~tRC/banks.
inline constexpr double kDramRandomAccessThroughputNsPerOp = 3.2;
// Random writes drain through the controller's write buffer with bank
// parallelism, sustaining a higher rate than dependent reads.
inline constexpr double kDramRandomWriteThroughputNsPerOp = 1.6;
// Background (active standby + refresh averaged) per chip, by density.
// Micron DDR4 4 Gb x8: IDD3N ~ 55 mA at 1.2 V plus refresh average.
inline constexpr double kDramChipBackgroundBaseMw = 38.0;
inline constexpr double kDramChipBackgroundPerGbitMw = 9.5;
inline constexpr std::uint64_t kDramChipCapacityDefault = Gbit(4);
// Dynamic-energy density scaling: denser chips drive longer word/bit
// lines. DRAM activation energy grows faster with density than ReRAM's
// mat-local access, which is what tilts Fig. 9's density axis towards
// ReRAM. Exponents on (chip_gbits / 4).
inline constexpr double kDramEnergyDensityExponent = 0.15;
inline constexpr double kReramEnergyDensityExponent = 0.05;
// A DRAM module exposes whole chips; x8 chips on a 64-bit channel.
inline constexpr int kDramChipsPerRank = 8;

// ---------------------------------------------------------------------------
// SRAM (on-chip vertex memory) — CACTI 6.5 at 22 nm (§4.2, §6.3)
// ---------------------------------------------------------------------------

// Anchor points quoted by the paper for a 2 MB array, 32-bit access:
// read 960.03 ps / 23.84 pJ, write 557.089 ps / 24.74 pJ (§6.3); cycle
// 1.071 ns at 2 MB and 1.808 ns at 4 MB (§4.2).
inline constexpr std::uint64_t kSramAnchorCapacity = MiB(2);
inline constexpr double kSramAnchorReadEnergyPj = 23.84;
inline constexpr double kSramAnchorWriteEnergyPj = 24.74;
inline constexpr double kSramAnchorReadLatencyNs = 0.96003;
inline constexpr double kSramAnchorWriteLatencyNs = 0.557089;
inline constexpr double kSramAnchorCycleNs = 1.071;
inline constexpr double kSramCycleNs4MiB = 1.808;
// Access energy/latency grow ~sqrt(capacity) (wordline/bitline length),
// leakage grows linearly. Exponent fitted to the two quoted cycle points:
// 1.808/1.071 = 1.688 ~ 2^0.755.
inline constexpr double kSramLatencyCapacityExponent = 0.755;
inline constexpr double kSramEnergyCapacityExponent = 0.5;
// Leakage per MiB. [calibrated] Drives Table 4's efficiency drop from
// 2 MiB to 16 MiB SRAM.
inline constexpr double kSramLeakagePerMiBMw = 20.0;

// Interval fill/drain port: SRAM arrays load intervals through a wide
// streaming port (bytes moved per array cycle).
inline constexpr double kSramFillPortBytes = 64.0;

// Remote on-chip access through the N-to-N router (§4.2): ~5-10 SRAM
// cycles of latency, fully pipelined (no throughput loss), small switch
// energy per traversal.
inline constexpr double kRouterHopLatencyNs = 8.8;
inline constexpr double kRouterHopEnergyPj = 2.4;

// ---------------------------------------------------------------------------
// Register file (GraphR's local vertex storage) — §6.3
// ---------------------------------------------------------------------------
inline constexpr double kRegFileReadEnergyPj = 1.227;   // 32-bit read
inline constexpr double kRegFileWriteEnergyPj = 1.209;  // 32-bit write
inline constexpr double kRegFileReadLatencyNs = 0.011976;
inline constexpr double kRegFileWriteLatencyNs = 0.010563;

// ---------------------------------------------------------------------------
// ReRAM crossbar (GraphR's processing substrate) — §6.4, §7.4.3
// ---------------------------------------------------------------------------
inline constexpr int kCrossbarDim = 8;          // 8x8 crossbars
inline constexpr int kCrossbarCellBits = 4;     // 4-bit cells
inline constexpr int kCrossbarsPerValue = 4;    // 4 crossbars for 16-bit data
inline constexpr double kCrossbarReadLatencyNs = 29.31;
inline constexpr double kCrossbarWriteLatencyNs = 50.88;
inline constexpr double kCrossbarReadEnergyPj = 1.08;
inline constexpr double kCrossbarWriteEnergyPj = nJ(3.91);  // per edge written

// ---------------------------------------------------------------------------
// Processing units (CMOS, HyVE §6.4)
// ---------------------------------------------------------------------------
// 32-bit floating-point multiplier: 3.7 pJ/op (Han et al., NIPS'15),
// 18.783 ns unpipelined latency (Zipcores datasheet), pipelined to one
// edge per cycle in the accelerator.
inline constexpr double kCmosEdgeOpEnergyPj = 3.7;
inline constexpr double kCmosMultiplierLatencyNs = 18.783;
inline constexpr double kPuPipelineCycleNs = 1.3;  // ~770 MHz edge pipeline
// Static power of the accelerator logic (8 PUs + HyVE controller + router),
// Graphicionado-class logic at 22 nm. [calibrated]
inline constexpr double kLogicStaticMw = 350.0;
// Per-PU share of controller dynamic energy per edge (address mapping,
// buffering). [calibrated, small]
inline constexpr double kControllerPerEdgeEnergyPj = 1.9;

// Baselines without on-chip vertex memory (acc+DRAM, acc+ReRAM) still run
// the interval-block schedule ("the data scheduling in these four
// configurations is the same", §7.3.3), so their off-chip random vertex
// accesses enjoy partial row-buffer/bank locality. Factor applied to both
// the energy and the effective service time of those accesses.
// [calibrated]
inline constexpr double kNoSramVertexLocalityFactor = 0.25;

// Slack capacity provisioned over the raw data size (the §5 dynamic-graph
// reserve: "e.g., 30% of a block size").
inline constexpr double kCapacitySlackFactor = 1.3;

// ---------------------------------------------------------------------------
// CPU baseline (§7.1: hexa-core Intel i7 at 3.3 GHz, measured with PCM)
// ---------------------------------------------------------------------------
// Effective traversal energy of the software baselines. The paper reports
// acc+HyVE-opt at ~145.71x CPU+DRAM and ~83.31x for the tuned Galois
// baseline vs plain HyVE; we model the CPUs at the per-edge energy that
// reproduces those gaps: package+DRAM power / achieved TEPS.
inline constexpr double kCpuPackagePowerMw = 75'000.0;  // 75 W package
inline constexpr double kCpuDramPowerMw = 9'000.0;      // DDR4 DIMMs
inline constexpr double kCpuNaiveNsPerEdge = 2.0;       // NXgraph-like, 8 threads
inline constexpr double kCpuOptNsPerEdge = 1.35;        // Galois

}  // namespace hyve::tech
