// Common interface of the off-chip memory models (ReRAM, DRAM).
//
// The simulator charges memories through exactly this interface: dynamic
// energy per sequential stream or random access, stream time from
// bandwidth, and background power for the module capacity in use. Models
// return *dynamic* energies only; background energy is power x busy time,
// integrated by the accounting layer (src/sim) which also understands
// power gating.
#pragma once

#include <cstdint>
#include <string>

namespace hyve {

class MemoryModel {
 public:
  virtual ~MemoryModel() = default;

  virtual std::string name() const = 0;

  // ---- sequential streaming (block/interval granularity) ----
  virtual double stream_read_energy_pj(std::uint64_t bytes) const = 0;
  virtual double stream_write_energy_pj(std::uint64_t bytes) const = 0;
  virtual double stream_read_time_ns(std::uint64_t bytes) const = 0;
  virtual double stream_write_time_ns(std::uint64_t bytes) const = 0;

  // ---- random accesses (vertex granularity) ----
  virtual double random_read_energy_pj(std::uint32_t bytes) const = 0;
  virtual double random_write_energy_pj(std::uint32_t bytes) const = 0;
  virtual double random_access_latency_ns() const = 0;
  // Sustained random-access throughput (ns per independent access), with
  // the device's internal bank parallelism.
  virtual double random_access_throughput_ns() const = 0;
  // Same for random writes (slower than reads on ReRAM: set-pulse bound).
  virtual double random_write_throughput_ns() const = 0;

  // ---- module-level background ----
  // Power drawn by a module provisioned for `capacity_bytes`, while
  // powered on (no power gating applied).
  virtual double background_power_mw(std::uint64_t capacity_bytes) const = 0;

  // Number of discrete chips a module of this capacity needs.
  virtual int chips_for(std::uint64_t capacity_bytes) const = 0;

  // Smallest module (in bytes of provisioned chips) that can sustain the
  // given stream bandwidth. Memory modules are provisioned for bandwidth
  // as well as capacity: HyVE's 8 PUs demand ~51 GB/s of edge stream,
  // which takes several DRAM ranks / ReRAM chips regardless of how small
  // the graph is, and that provisioning sets the background power.
  virtual std::uint64_t min_capacity_for_bandwidth_gbps(
      double gbps) const = 0;
};

}  // namespace hyve
