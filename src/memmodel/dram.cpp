#include "memmodel/dram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace hyve {

using namespace tech;

DramModel::DramModel(const DramConfig& config) : config_(config) {
  HYVE_CHECK(config_.chip_capacity_bytes > 0);
  HYVE_CHECK(config_.channels >= 1);
  const double gbits = static_cast<double>(config_.chip_capacity_bytes) /
                       static_cast<double>(units::Gbit(1));
  density_energy_scale_ = std::pow(gbits / 4.0, kDramEnergyDensityExponent);
}

std::string DramModel::name() const {
  std::ostringstream os;
  os << "DDR4("
     << (config_.chip_capacity_bytes * 8) / (units::Gbit(1) * 8) << "Gb)";
  return os.str();
}

double DramModel::stream_read_energy_pj(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * kDramStreamEnergyPerBytePj *
         density_energy_scale_;
}

double DramModel::stream_write_energy_pj(std::uint64_t bytes) const {
  // Write bursts cost marginally more than reads (ODT termination).
  return static_cast<double>(bytes) * kDramStreamEnergyPerBytePj * 1.08 *
         density_energy_scale_;
}

double DramModel::stream_read_time_ns(std::uint64_t bytes) const {
  return static_cast<double>(bytes) /
         (kDramChannelGBps * config_.channels);  // GB/s == B/ns
}

double DramModel::stream_write_time_ns(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / (kDramChannelGBps * config_.channels);
}

double DramModel::random_read_energy_pj(std::uint32_t bytes) const {
  // One activate + one 64 B burst per independent access, whatever the
  // useful payload; extra bursts for payloads beyond 64 B.
  const double bursts = std::max(1.0, bytes / 64.0);
  return (kDramRandomAccessEnergyPj +
          (bursts - 1.0) * 64.0 * kDramStreamEnergyPerBytePj) *
         density_energy_scale_;
}

double DramModel::random_write_energy_pj(std::uint32_t bytes) const {
  return random_read_energy_pj(bytes) * 1.05;
}

double DramModel::random_access_latency_ns() const {
  return kDramRandomAccessLatencyNs;
}

double DramModel::random_access_throughput_ns() const {
  return kDramRandomAccessThroughputNsPerOp / config_.channels;
}

double DramModel::random_write_throughput_ns() const {
  return kDramRandomWriteThroughputNsPerOp / config_.channels;
}

std::uint64_t DramModel::min_capacity_for_bandwidth_gbps(double gbps) const {
  // One 64-bit channel (one rank of x8 chips) per kDramChannelGBps.
  const int ranks =
      std::max(1, static_cast<int>(std::ceil(gbps / kDramChannelGBps)));
  return static_cast<std::uint64_t>(ranks) * kDramChipsPerRank *
         config_.chip_capacity_bytes;
}

int DramModel::chips_for(std::uint64_t capacity_bytes) const {
  const int chips = static_cast<int>(
      (capacity_bytes + config_.chip_capacity_bytes - 1) /
      config_.chip_capacity_bytes);
  // DRAM is only sold in full ranks; round up to the rank width, and a
  // multi-channel module populates at least one rank per channel.
  const int ranks = std::max(
      config_.channels, (chips + kDramChipsPerRank - 1) / kDramChipsPerRank);
  return std::max(1, ranks) * kDramChipsPerRank;
}

double DramModel::background_power_mw(std::uint64_t capacity_bytes) const {
  const double gbits_per_chip =
      static_cast<double>(config_.chip_capacity_bytes) * 8.0 /
      static_cast<double>(units::Gbit(1) * 8);
  const double per_chip =
      kDramChipBackgroundBaseMw + kDramChipBackgroundPerGbitMw * gbits_per_chip;
  return chips_for(capacity_bytes) * per_chip;
}

}  // namespace hyve
