#include "memmodel/area.hpp"

#include <algorithm>
#include <cmath>

#include "memmodel/techparams.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

constexpr double kFeatureNm = 22.0;
// mm^2 of one F^2 at 22 nm.
constexpr double kF2Mm2 = (kFeatureNm * 1e-6) * (kFeatureNm * 1e-6);

// Periphery (decoders, sense amps, I/O) on top of the raw cell array; the
// energy-optimised NVSim designs trade periphery area for energy.
constexpr double kReramPeripheryFactor = 1.35;
// Logic block estimates (Graphicionado-class accelerators at 22-28 nm).
constexpr double kPuMm2 = 0.35;
constexpr double kRouterPortMm2 = 0.045;
constexpr double kControllerMm2 = 0.8;
// One power gate (header/footer) per bank plus the BPG controller; §4.1:
// "little overhead on power gates, or low area penalty".
constexpr double kPowerGatePerBankFraction = 0.012;
constexpr double kBpgControllerMm2 = 0.05;

}  // namespace

double reram_array_mm2_per_gbit(int cell_bits) {
  HYVE_CHECK(cell_bits >= 1 && cell_bits <= 3);
  // 4F^2 crosspoint cell storing cell_bits bits.
  const double cells_per_gbit = std::pow(2.0, 30) / cell_bits;
  return cells_per_gbit * 4.0 * kF2Mm2;
}

double sram_mm2_per_mib() {
  // The paper's CACTI cell: 146 F^2 (§7.1), plus ~40% array periphery.
  const double bits_per_mib = 8.0 * std::pow(2.0, 20);
  return bits_per_mib * 146.0 * kF2Mm2 * 1.4;
}

AreaBreakdown estimate_area(const AreaInputs& inputs) {
  HYVE_CHECK(inputs.num_pus >= 1);
  AreaBreakdown area;

  area.sram_mm2 = inputs.num_pus *
                  (static_cast<double>(inputs.sram_bytes_per_pu) /
                   units::MiB(1)) *
                  sram_mm2_per_mib();
  area.pu_mm2 = inputs.num_pus * kPuMm2;
  // An N-to-N router grows with port count squared (crossbar switch).
  area.router_mm2 = kRouterPortMm2 * inputs.num_pus * inputs.num_pus / 8.0;
  area.controller_mm2 = kControllerMm2;

  const ReramModel reram(inputs.edge_reram);
  area.edge_chips = std::max(1, reram.chips_for(inputs.edge_capacity_bytes));
  const double gbits_per_chip =
      static_cast<double>(inputs.edge_reram.chip_capacity_bytes) * 8.0 *
      inputs.edge_reram.cell_bits / (units::Gbit(1) * 8.0);
  area.edge_chip_mm2 =
      reram_array_mm2_per_gbit(inputs.edge_reram.cell_bits) *
      gbits_per_chip * kReramPeripheryFactor;
  if (inputs.power_gating) {
    area.power_gate_mm2 =
        area.edge_chip_mm2 * kPowerGatePerBankFraction + kBpgControllerMm2;
  }
  return area;
}

}  // namespace hyve
