#include "memmodel/sram.hpp"

#include <cmath>
#include <sstream>

#include "memmodel/techparams.hpp"
#include "util/check.hpp"

namespace hyve {

using namespace tech;

SramModel::SramModel(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  HYVE_CHECK(capacity_bytes_ >= units::KiB(1));
  const double ratio = static_cast<double>(capacity_bytes_) /
                       static_cast<double>(kSramAnchorCapacity);
  const double lat_scale = std::pow(ratio, kSramLatencyCapacityExponent);
  const double en_scale = std::pow(ratio, kSramEnergyCapacityExponent);
  word_read_energy_pj_ = kSramAnchorReadEnergyPj * en_scale;
  word_write_energy_pj_ = kSramAnchorWriteEnergyPj * en_scale;
  read_latency_ns_ = kSramAnchorReadLatencyNs * lat_scale;
  write_latency_ns_ = kSramAnchorWriteLatencyNs * lat_scale;
  cycle_ns_ = kSramAnchorCycleNs * lat_scale;
  leakage_mw_ = kSramLeakagePerMiBMw *
                (static_cast<double>(capacity_bytes_) / units::MiB(1));
}

std::string SramModel::name() const {
  std::ostringstream os;
  os << "SRAM(" << capacity_bytes_ / units::KiB(1) << "KiB)";
  return os.str();
}

namespace {
double words(std::uint32_t bytes) {
  return std::max(1.0, std::ceil(bytes / 4.0));
}
}  // namespace

double SramModel::read_energy_pj(std::uint32_t bytes) const {
  return words(bytes) * word_read_energy_pj_;
}

double SramModel::write_energy_pj(std::uint32_t bytes) const {
  return words(bytes) * word_write_energy_pj_;
}

double RegisterFileModel::read_energy_pj(std::uint32_t bytes) const {
  return words(bytes) * kRegFileReadEnergyPj;
}

double RegisterFileModel::write_energy_pj(std::uint32_t bytes) const {
  return words(bytes) * kRegFileWriteEnergyPj;
}

double RegisterFileModel::read_latency_ns() const {
  return kRegFileReadLatencyNs;
}

double RegisterFileModel::write_latency_ns() const {
  return kRegFileWriteLatencyNs;
}

}  // namespace hyve
