// ReRAM crossbar compute model — GraphR's processing substrate (§6.4).
//
// GraphR maps each non-empty 8x8 block of the adjacency matrix onto a
// crossbar: every edge of the block is *written* into a cell (3.91 nJ,
// 50.88 ns each), then the block's matrix-vector product is *read* out.
// 16-bit values need 4 crossbars of 4-bit cells (Eq. 11); algorithms that
// are not an MVM drive the rows one at a time, 8 reads per block, plus a
// CMOS op at the output port (Eq. 12). The paper's central negative
// result — crossbars lose to CMOS for edge processing — falls directly
// out of these constants because N_avg (Table 1) is only ~1.2-2.4 edges
// per non-empty block.
#pragma once

#include <cstdint>

namespace hyve {

struct CrossbarBlockCost {
  double energy_pj = 0;
  double time_ns = 0;  // un-overlapped device time for one block
};

class CrossbarModel {
 public:
  // Cost of configuring a block's edges into the crossbar(s): one cell
  // write per edge per crossbar replica (Eq. 14's N_avg * E_w term).
  CrossbarBlockCost configure_block(std::uint64_t edges_in_block) const;

  // Matrix-vector-multiply style evaluation of a configured block
  // (PageRank, SpMV): kCrossbarsPerValue parallel analog reads (Eq. 11).
  CrossbarBlockCost evaluate_mvm() const;

  // Non-MVM evaluation (BFS, CC, SSSP): rows selected in turn, 8 analog
  // reads, plus one CMOS comparison per edge at the output ports (Eq. 12).
  CrossbarBlockCost evaluate_non_mvm(std::uint64_t edges_in_block) const;

  // Equivalent per-edge processing energy, Eq. (10)/(11)/(12).
  double per_edge_energy_mvm_pj(double n_avg) const;
  double per_edge_energy_non_mvm_pj(double n_avg) const;
  // Eq. (16): per-edge latency of crossbar processing.
  double per_edge_latency_mvm_ns(double n_avg) const;
};

}  // namespace hyve
