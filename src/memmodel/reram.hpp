// ReRAM main-memory model (paper §2.3, §3.1, Table 3).
//
// Embeds the paper's NVSim bank configurations (energy- vs latency-
// optimised, 64..512-bit output) and the §7.1 cell parameters, with MLC
// scaling per the parallel-sensing scheme. HyVE uses this as the edge
// memory: sub-bank (mat) interleaved so a single bank sustains the full
// sequential read bandwidth, which both avoids multi-bank background
// power and enables bank-level power gating (modelled in src/sim).
#pragma once

#include <cstdint>

#include "memmodel/memory_model.hpp"
#include "memmodel/techparams.hpp"

namespace hyve {

enum class ReramOptTarget { kEnergyOptimized, kLatencyOptimized };

struct ReramConfig {
  std::uint64_t chip_capacity_bytes = tech::kDramChipCapacityDefault;  // 4 Gb
  int cell_bits = 1;       // 1 (SLC) .. 3
  int output_bits = 512;   // 64, 128, 256, 512 (Table 3)
  ReramOptTarget optimization = ReramOptTarget::kEnergyOptimized;
  bool subbank_interleaving = true;
  // Parallel chip channels ganged into one module (scales stream
  // bandwidth; background scales through the per-channel chip floor).
  int channels = 1;
};

class ReramModel final : public MemoryModel {
 public:
  explicit ReramModel(const ReramConfig& config = {});

  std::string name() const override;

  double stream_read_energy_pj(std::uint64_t bytes) const override;
  double stream_write_energy_pj(std::uint64_t bytes) const override;
  double stream_read_time_ns(std::uint64_t bytes) const override;
  double stream_write_time_ns(std::uint64_t bytes) const override;

  double random_read_energy_pj(std::uint32_t bytes) const override;
  double random_write_energy_pj(std::uint32_t bytes) const override;
  double random_access_latency_ns() const override;
  double random_access_throughput_ns() const override;
  double random_write_throughput_ns() const override;

  double background_power_mw(std::uint64_t capacity_bytes) const override;
  int chips_for(std::uint64_t capacity_bytes) const override;
  std::uint64_t min_capacity_for_bandwidth_gbps(double gbps) const override;

  const ReramConfig& config() const { return config_; }

  // ---- power-gating hooks (consumed by sim::PowerGatingController) ----
  // Power with all banks gated except `active_banks` per chip; the shared
  // I/O and control region cannot be gated while the chip is selected.
  double gated_power_mw(std::uint64_t capacity_bytes, int active_banks) const;
  static int banks_per_chip() { return tech::kReramBanksPerChip; }
  double bank_wake_latency_ns() const { return tech::kReramBankWakeLatencyNs; }
  double bank_wake_energy_pj() const { return tech::kReramBankWakeEnergyPj; }

  // ---- figures used directly by Table 3 / Fig. 13 benches ----
  // Dynamic energy of one bank access (output_bits wide).
  double access_energy_pj() const;
  double access_period_ns() const;
  // Energy per bit read, the paper's Table 3 "power/bit" numerator basis.
  double read_energy_per_bit_pj() const;

 private:
  double per_byte_read_energy_pj() const;
  double per_byte_write_energy_pj() const;
  double read_bandwidth_bytes_per_ns() const;
  double write_bandwidth_bytes_per_ns() const;

  ReramConfig config_;
  tech::ReramBankPoint bank_;
};

}  // namespace hyve
