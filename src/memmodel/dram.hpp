// DDR4 DRAM model (Micron system-power-calculator style, paper §7.1).
//
// Used as HyVE's off-chip vertex memory (sequential interval loads and
// write-backs only) and as the edge/vertex memory of the conventional
// baselines (acc+DRAM, acc+SRAM+DRAM, CPU+DRAM). Sequential energy is
// row-activation-amortised; random accesses pay a full activate. The
// refresh + standby background grows with chip density, which is what
// turns the density axis of Fig. 9 in ReRAM's favour.
#pragma once

#include <cstdint>

#include "memmodel/memory_model.hpp"
#include "memmodel/techparams.hpp"

namespace hyve {

struct DramConfig {
  std::uint64_t chip_capacity_bytes = tech::kDramChipCapacityDefault;  // 4 Gb
  // Independent 64-bit channels ganged into one logical module (§3.3's
  // "dual-channel bus" has the edge and vertex memories on one channel
  // each; raise this to scale a single module's stream bandwidth).
  int channels = 1;
};

class DramModel final : public MemoryModel {
 public:
  explicit DramModel(const DramConfig& config = {});

  std::string name() const override;

  double stream_read_energy_pj(std::uint64_t bytes) const override;
  double stream_write_energy_pj(std::uint64_t bytes) const override;
  double stream_read_time_ns(std::uint64_t bytes) const override;
  double stream_write_time_ns(std::uint64_t bytes) const override;

  double random_read_energy_pj(std::uint32_t bytes) const override;
  double random_write_energy_pj(std::uint32_t bytes) const override;
  double random_access_latency_ns() const override;
  double random_access_throughput_ns() const override;
  double random_write_throughput_ns() const override;

  double background_power_mw(std::uint64_t capacity_bytes) const override;
  int chips_for(std::uint64_t capacity_bytes) const override;
  std::uint64_t min_capacity_for_bandwidth_gbps(double gbps) const override;

  const DramConfig& config() const { return config_; }

 private:
  DramConfig config_;
  double density_energy_scale_ = 1.0;
};

}  // namespace hyve
