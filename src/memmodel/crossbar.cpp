#include "memmodel/crossbar.hpp"

#include "memmodel/techparams.hpp"
#include "util/check.hpp"

namespace hyve {

using namespace tech;

CrossbarBlockCost CrossbarModel::configure_block(
    std::uint64_t edges_in_block) const {
  CrossbarBlockCost cost;
  // Each 16-bit edge value spans kCrossbarsPerValue 4-bit crossbars, but
  // the replicas program in parallel: time counts once, energy counts per
  // replica (Eq. 11's factor of 4 on the write term).
  cost.energy_pj = static_cast<double>(edges_in_block) *
                   kCrossbarWriteEnergyPj * kCrossbarsPerValue;
  cost.time_ns =
      static_cast<double>(edges_in_block) * kCrossbarWriteLatencyNs;
  return cost;
}

CrossbarBlockCost CrossbarModel::evaluate_mvm() const {
  CrossbarBlockCost cost;
  cost.energy_pj = kCrossbarReadEnergyPj * kCrossbarsPerValue;
  cost.time_ns = kCrossbarReadLatencyNs;  // replicas read in parallel
  return cost;
}

CrossbarBlockCost CrossbarModel::evaluate_non_mvm(
    std::uint64_t edges_in_block) const {
  CrossbarBlockCost cost;
  // Rows are selected in turn: 8 reads per block (Eq. 12), each across
  // the 4 replicas, plus one CMOS op per edge at the output ports.
  cost.energy_pj = kCrossbarDim * kCrossbarReadEnergyPj * kCrossbarsPerValue +
                   static_cast<double>(edges_in_block) * kCmosEdgeOpEnergyPj;
  cost.time_ns = kCrossbarDim * kCrossbarReadLatencyNs;
  return cost;
}

double CrossbarModel::per_edge_energy_mvm_pj(double n_avg) const {
  HYVE_CHECK(n_avg > 0);
  // Eq. (15): 4*E_write + 4*E_read / N_avg.
  return kCrossbarsPerValue * kCrossbarWriteEnergyPj +
         kCrossbarsPerValue * kCrossbarReadEnergyPj / n_avg;
}

double CrossbarModel::per_edge_energy_non_mvm_pj(double n_avg) const {
  HYVE_CHECK(n_avg > 0);
  // Eq. (12): 8 row-selected reads amortised over N_avg edges + CMOS op.
  return (kCrossbarDim * kCrossbarReadEnergyPj * kCrossbarsPerValue) / n_avg +
         kCrossbarsPerValue * kCrossbarWriteEnergyPj + kCmosEdgeOpEnergyPj;
}

double CrossbarModel::per_edge_latency_mvm_ns(double n_avg) const {
  HYVE_CHECK(n_avg > 0);
  // Eq. (16): T_write + T_read / N_avg.
  return kCrossbarWriteLatencyNs + kCrossbarReadLatencyNs / n_avg;
}

}  // namespace hyve
