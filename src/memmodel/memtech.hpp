// Off-chip memory technology selector shared by configurations.
#pragma once

namespace hyve {

enum class MemTech { kDram, kReram };

inline const char* memtech_name(MemTech tech) {
  return tech == MemTech::kDram ? "DRAM" : "ReRAM";
}

}  // namespace hyve
