#include "memmodel/reram.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <sstream>

#include "util/check.hpp"

namespace hyve {
namespace {

using namespace tech;

const ReramBankPoint& lookup_bank(const ReramConfig& cfg) {
  const std::span<const ReramBankPoint> table =
      cfg.optimization == ReramOptTarget::kEnergyOptimized
          ? std::span<const ReramBankPoint>(kReramEnergyOpt)
          : std::span<const ReramBankPoint>(kReramLatencyOpt);
  for (const auto& point : table)
    if (point.output_bits == cfg.output_bits) return point;
  HYVE_CHECK_MSG(false, "unsupported ReRAM output width "
                            << cfg.output_bits
                            << " (Table 3 covers 64/128/256/512)");
  __builtin_unreachable();
}

double mlc_scale(std::span<const double> table, int cell_bits) {
  HYVE_CHECK_MSG(cell_bits >= 1 && cell_bits <= 3,
                 "cell_bits " << cell_bits << " outside SLC..TLC");
  return table[static_cast<std::size_t>(cell_bits - 1)];
}

}  // namespace

ReramModel::ReramModel(const ReramConfig& config)
    : config_(config), bank_(lookup_bank(config)) {
  HYVE_CHECK(config_.chip_capacity_bytes > 0);
  HYVE_CHECK_MSG(config_.cell_bits >= 1 && config_.cell_bits <= 3,
                 "cell_bits " << config_.cell_bits << " outside SLC..TLC");
  HYVE_CHECK(config_.channels >= 1);
}

std::string ReramModel::name() const {
  std::ostringstream os;
  os << "ReRAM(" << config_.cell_bits << "b-cell," << config_.output_bits
     << "b,"
     << (config_.optimization == ReramOptTarget::kEnergyOptimized ? "Eopt"
                                                                  : "Lopt")
     << ")";
  return os.str();
}

double ReramModel::access_energy_pj() const {
  const double gbits = static_cast<double>(config_.chip_capacity_bytes) /
                       static_cast<double>(units::Gbit(1));
  return bank_.energy_pj * mlc_scale(kMlcReadEnergyScale, config_.cell_bits) *
         std::pow(gbits / 4.0, kReramEnergyDensityExponent);
}

double ReramModel::access_period_ns() const {
  return units::ps(bank_.period_ps) *
         mlc_scale(kMlcReadLatencyScale, config_.cell_bits);
}

double ReramModel::read_energy_per_bit_pj() const {
  return access_energy_pj() / config_.output_bits;
}

double ReramModel::per_byte_read_energy_pj() const {
  return access_energy_pj() / (config_.output_bits / 8.0) +
         8.0 * kReramIoEnergyPerBitPj;
}

double ReramModel::per_byte_write_energy_pj() const {
  // Cell programming (with verify pulses) dominates; periphery charged at
  // the read-access rate.
  const double cell = 8.0 * kReramSetEnergyPerBitPj * kReramWriteVerifyFactor *
                      mlc_scale(kMlcWriteEnergyScale, config_.cell_bits);
  return cell + access_energy_pj() / (config_.output_bits / 8.0) +
         8.0 * kReramIoEnergyPerBitPj;
}

double ReramModel::read_bandwidth_bytes_per_ns() const {
  const double per_access_bytes = config_.output_bits / 8.0;
  double bw = per_access_bytes / access_period_ns();
  // Without mat-level interleaving a bank stalls on row turnaround between
  // consecutive accesses; HyVE's sub-bank interleaving (§3.1) hides it.
  if (!config_.subbank_interleaving) bw *= 0.25;
  // The off-chip interface caps what the mats can produce; MLC's serial
  // reference-sensing steps throttle the I/O clock along with the mats.
  const double channel =
      kReramChannelGBps / mlc_scale(kMlcReadLatencyScale, config_.cell_bits);
  return std::min(bw, channel) * config_.channels;
}

double ReramModel::write_bandwidth_bytes_per_ns() const {
  const double per_access_bytes = config_.output_bits / 8.0;
  const double chunk_time =
      kReramSetPulseNs * mlc_scale(kMlcWriteLatencyScale, config_.cell_bits) +
      access_period_ns();
  double bw = per_access_bytes / chunk_time;
  if (!config_.subbank_interleaving) bw *= 0.5;
  return bw;
}

double ReramModel::stream_read_energy_pj(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * per_byte_read_energy_pj();
}

double ReramModel::stream_write_energy_pj(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * per_byte_write_energy_pj();
}

double ReramModel::stream_read_time_ns(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / read_bandwidth_bytes_per_ns();
}

double ReramModel::stream_write_time_ns(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / write_bandwidth_bytes_per_ns();
}

double ReramModel::random_read_energy_pj(std::uint32_t bytes) const {
  // A random read still activates a full output-width access.
  const double accesses =
      std::max(1.0, std::ceil(bytes / (config_.output_bits / 8.0)));
  return accesses * access_energy_pj() + bytes * 8.0 * kReramIoEnergyPerBitPj;
}

double ReramModel::random_write_energy_pj(std::uint32_t bytes) const {
  // Writes program a full output-width row (write amplification: the
  // array has no sub-row write granularity), however small the payload.
  const double programmed_bits =
      std::max<double>(config_.output_bits, bytes * 8.0);
  const double cell = programmed_bits * kReramSetEnergyPerBitPj *
                      kReramWriteVerifyFactor *
                      mlc_scale(kMlcWriteEnergyScale, config_.cell_bits);
  return cell + access_energy_pj() +
         bytes * 8.0 * kReramIoEnergyPerBitPj;
}

double ReramModel::random_access_latency_ns() const {
  // Global decode + mat access; matches the ReRAM read latency GraphR
  // reports (29.31 ns) for SLC and scales with the MLC sensing scheme.
  return 29.31 * mlc_scale(kMlcReadLatencyScale, config_.cell_bits);
}

double ReramModel::random_access_throughput_ns() const {
  // Bank-level pipelining sustains one access every couple of periods.
  return 2.0 * access_period_ns();
}

double ReramModel::random_write_throughput_ns() const {
  // The 10 ns set pulse occupies the shared write drivers; only modest
  // overlap across banks is possible before they saturate.
  return kReramSetPulseNs *
         mlc_scale(kMlcWriteLatencyScale, config_.cell_bits) * 0.45;
}

std::uint64_t ReramModel::min_capacity_for_bandwidth_gbps(double gbps) const {
  const int chips =
      std::max(1, static_cast<int>(std::ceil(gbps / kReramChannelGBps)));
  return static_cast<std::uint64_t>(chips) * config_.chip_capacity_bytes *
         static_cast<unsigned>(config_.cell_bits);
}

int ReramModel::chips_for(std::uint64_t capacity_bytes) const {
  const std::uint64_t effective_chip =
      config_.chip_capacity_bytes * static_cast<unsigned>(config_.cell_bits);
  const auto chips = static_cast<int>((capacity_bytes + effective_chip - 1) /
                                      effective_chip);
  // At least one chip per channel keeps every channel driveable.
  return std::max(chips, config_.channels);
}

double ReramModel::background_power_mw(std::uint64_t capacity_bytes) const {
  const int chips = std::max(1, chips_for(capacity_bytes));
  const double gbits_per_chip =
      static_cast<double>(config_.chip_capacity_bytes) * 8.0 *
      config_.cell_bits / static_cast<double>(units::Gbit(1) * 8);
  const double per_chip =
      kReramChipLeakageMw + kReramLeakagePerGbitMw * (gbits_per_chip - 4.0);
  return chips * std::max(per_chip, kReramUngateableMw);
}

double ReramModel::gated_power_mw(std::uint64_t capacity_bytes,
                                  int active_banks) const {
  HYVE_CHECK(active_banks >= 0 && active_banks <= kReramBanksPerChip);
  const int chips = std::max(1, chips_for(capacity_bytes));
  const double per_chip_total = background_power_mw(capacity_bytes) / chips;
  const double gateable =
      std::max(0.0, per_chip_total - kReramUngateableMw);
  const double per_bank = gateable / kReramBanksPerChip;
  // Only the chip currently streaming keeps banks awake; the others sit
  // fully gated at the residual fraction.
  const double streaming_chip =
      kReramUngateableMw + per_bank * active_banks +
      per_bank * (kReramBanksPerChip - active_banks) *
          kReramGatedResidualFraction;
  const double idle_chip = per_chip_total * kReramGatedResidualFraction;
  return streaming_chip + (chips - 1) * idle_chip;
}

}  // namespace hyve
