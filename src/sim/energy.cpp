#include "sim/energy.hpp"

#include <numeric>

#include "util/check.hpp"

namespace hyve {

void EnergyLedger::charge(EnergyComponent component, Phase phase,
                          const std::string& unit, double pj) {
  HYVE_CHECK_MSG(component != EnergyComponent::kCount &&
                     phase != Phase::kCount,
                 "ledger charge needs a real component and phase");
  HYVE_CHECK_MSG(pj >= 0, "negative ledger charge: " << pj << " pJ to "
                                                     << component_name(component)
                                                     << "/" << phase_name(phase)
                                                     << "/" << unit);
  if (pj == 0) return;
  cells_[{component, phase, unit}] += pj;
}

double EnergyLedger::total_pj() const {
  double sum = 0;
  for (const auto& [key, pj] : cells_) sum += pj;
  return sum;
}

double EnergyLedger::component_pj(EnergyComponent c) const {
  double sum = 0;
  for (const auto& [key, pj] : cells_)
    if (key.component == c) sum += pj;
  return sum;
}

double EnergyLedger::phase_pj(Phase p) const {
  double sum = 0;
  for (const auto& [key, pj] : cells_)
    if (key.phase == p) sum += pj;
  return sum;
}

EnergyLedger& EnergyLedger::operator+=(const EnergyLedger& other) {
  for (const auto& [key, pj] : other.cells_) cells_[key] += pj;
  return *this;
}

std::string component_name(EnergyComponent c) {
  switch (c) {
    case EnergyComponent::kEdgeMemDynamic: return "edge-mem dynamic";
    case EnergyComponent::kEdgeMemBackground: return "edge-mem background";
    case EnergyComponent::kOffchipVertexDynamic: return "vertex-mem dynamic";
    case EnergyComponent::kOffchipVertexBackground:
      return "vertex-mem background";
    case EnergyComponent::kSramDynamic: return "sram dynamic";
    case EnergyComponent::kSramLeakage: return "sram leakage";
    case EnergyComponent::kRouter: return "router";
    case EnergyComponent::kPuDynamic: return "pu dynamic";
    case EnergyComponent::kLogicStatic: return "logic static";
    case EnergyComponent::kCount: break;
  }
  return "?";
}

std::string phase_name(Phase p) {
  switch (p) {
    case Phase::kLoad: return "load";
    case Phase::kProcess: return "process";
    case Phase::kApply: return "apply";
    case Phase::kWake: return "wake";
    case Phase::kBackground: return "background";
    case Phase::kCount: break;
  }
  return "?";
}

double PhaseBreakdown::total_time_ns() const {
  return std::accumulate(time_ns.begin(), time_ns.end(), 0.0);
}

double PhaseBreakdown::total_energy_pj() const {
  return std::accumulate(energy_pj.begin(), energy_pj.end(), 0.0);
}

double EnergyBreakdown::total_pj() const {
  return std::accumulate(pj_.begin(), pj_.end(), 0.0);
}

double EnergyBreakdown::edge_memory_pj() const {
  return (*this)[EnergyComponent::kEdgeMemDynamic] +
         (*this)[EnergyComponent::kEdgeMemBackground];
}

double EnergyBreakdown::vertex_memory_pj() const {
  return (*this)[EnergyComponent::kOffchipVertexDynamic] +
         (*this)[EnergyComponent::kOffchipVertexBackground] +
         (*this)[EnergyComponent::kSramDynamic] +
         (*this)[EnergyComponent::kSramLeakage];
}

double EnergyBreakdown::logic_pj() const {
  return (*this)[EnergyComponent::kRouter] +
         (*this)[EnergyComponent::kPuDynamic] +
         (*this)[EnergyComponent::kLogicStatic];
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  for (std::size_t i = 0; i < pj_.size(); ++i) pj_[i] += other.pj_[i];
  return *this;
}

AccessStats& AccessStats::operator+=(const AccessStats& other) {
  edge_bytes_read += other.edge_bytes_read;
  edge_stream_passes += other.edge_stream_passes;
  offchip_vertex_bytes_read += other.offchip_vertex_bytes_read;
  offchip_vertex_bytes_written += other.offchip_vertex_bytes_written;
  offchip_vertex_random_reads += other.offchip_vertex_random_reads;
  offchip_vertex_random_writes += other.offchip_vertex_random_writes;
  sram_random_reads += other.sram_random_reads;
  sram_random_writes += other.sram_random_writes;
  sram_fill_bytes += other.sram_fill_bytes;
  sram_drain_bytes += other.sram_drain_bytes;
  router_hops += other.router_hops;
  edge_ops += other.edge_ops;
  vertex_ops += other.vertex_ops;
  interval_loads += other.interval_loads;
  interval_writebacks += other.interval_writebacks;
  return *this;
}

}  // namespace hyve
