// Bank-level power gating (BPG) for the non-volatile edge memory (§4.1).
//
// The edge memory is read strictly sequentially, so at any instant only
// one bank per chip streams; HyVE deliberately uses sub-bank (mat)
// interleaving *instead of* bank interleaving so every other bank can be
// behind a power gate. Non-volatility removes the state-save cost, and
// the predictable access order lets the BPG controller wake the next
// bank ahead of the stream, hiding the wake latency. This module turns a
// run's edge-memory activity profile into background energy with and
// without BPG, including the wake overheads (Fig. 15 / Fig. 17's "opt").
#pragma once

#include <cstdint>

#include "memmodel/reram.hpp"

namespace hyve {

// Activity profile of the edge memory over one simulated run.
struct EdgeMemoryActivity {
  double total_time_ns = 0;      // whole execution window
  double streaming_time_ns = 0;  // portion spent actively streaming edges
  std::uint64_t bytes_streamed = 0;
  std::uint64_t capacity_bytes = 0;  // provisioned edge-memory size
};

struct PowerGatingResult {
  double ungated_background_pj = 0;  // all banks powered the whole run
  double gated_background_pj = 0;    // BPG: one bank awake while streaming
  // Decomposition of gated_background_pj for the energy-attribution
  // ledger: awake (one bank streaming) + idle (all banks gated, shared
  // rails only) + wake transitions sum to the gated total exactly.
  double awake_background_pj = 0;    // streaming windows, one bank awake
  double idle_background_pj = 0;     // non-streaming windows, gates closed
  std::uint64_t bank_wakes = 0;      // gate-open transitions
  double wake_energy_pj = 0;         // included in gated_background_pj
  double exposed_wake_time_ns = 0;   // wake latency not hidden by prefetch
};

// Evaluates BPG for a ReRAM edge memory. The sequential scan order makes
// wakes predictable: all but the first wake per pass are prefetched and
// hidden; the BPG timer also re-gates banks during non-streaming phases.
PowerGatingResult evaluate_power_gating(const ReramModel& reram,
                                        const EdgeMemoryActivity& activity);

}  // namespace hyve
