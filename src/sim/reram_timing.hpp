// Cycle-level ReRAM chip timing simulator (Fig. 3's organisation).
//
// A chip holds banks of mats; a bank access occupies one mat for the
// Table-3 cycle period, and HyVE's sub-bank interleaving (§3.1) rotates
// sequential accesses across the mats of ONE bank so the chip I/O can be
// saturated without waking other banks. Without interleaving a sequential
// scan serialises on a single mat's cycle + row turnaround. Writes hold a
// mat for the full set pulse. The test suite cross-validates the analytic
// ReramModel bandwidths against this simulator, and the bank-activity
// profile it produces is what bank-level power gating exploits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "memmodel/reram.hpp"
#include "sim/mem_request.hpp"

namespace hyve {

struct ReramTimingParams {
  ReramConfig config;        // bank access width/period from Table 3
  int mats_per_bank = 16;    // Fig. 3: M x N mats per bank
  int banks_per_chip = 8;
  // Row turnaround a mat needs between back-to-back accesses when it
  // cannot be hidden by interleaving.
  double mat_turnaround_factor = 4.0;  // x access period
};

struct ReramTraceResult {
  double total_ns = 0;
  std::uint64_t accesses = 0;
  double achieved_gbps = 0;
  // Distinct banks touched, and the max concurrently-awake bank count —
  // the quantity bank-level power gating bounds to 1 under sequential
  // scans.
  std::uint32_t banks_touched = 0;
  std::uint32_t max_concurrent_banks = 0;
};

class ReramTimingSim {
 public:
  explicit ReramTimingSim(const ReramTimingParams& params = {});

  ReramTraceResult run(std::span<const MemRequest> trace);

  const ReramTimingParams& params() const { return params_; }

 private:
  ReramTimingParams params_;
};

}  // namespace hyve
