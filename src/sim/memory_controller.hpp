// The HyVE memory controller (§3.3) and data organisation (§3.4).
//
// §3.4 lays the data out as:
//   * vertex memory — intervals stored sequentially, each as
//     { interval index : u32, vertex count : u32, values[] };
//   * edge memory — blocks stored sequentially, each as
//     { src interval : u32, dst interval : u32, edge count : u32,
//       (src id, dst id) pairs[] }.
// The controller owns this address map and translates Algorithm 2's
// phases into byte-accurate request traces for the cycle-level device
// simulators (sim/dram_timing, sim/reram_timing): the "detailed mode"
// that grounds the analytic per-phase times the machine uses.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/partition.hpp"
#include "sim/mem_request.hpp"

namespace hyve {

// Byte range of one object in a memory module.
struct AddressRange {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t end() const { return offset + bytes; }
};

class HyveAddressMap {
 public:
  // Builds the §3.4 layout for a partitioned graph. `edge_bytes` is the
  // stored edge record width (8 or 12); `value_bytes` the vertex record.
  HyveAddressMap(const Partitioning& schedule, std::uint32_t edge_bytes,
                 std::uint32_t value_bytes, double slack = 0.3);

  // Edge memory: block B[x][y] (header + edges + reserved slack).
  AddressRange block_range(std::uint32_t x, std::uint32_t y) const;
  // Vertex memory: interval I_i (header + values + reserved slack).
  AddressRange interval_range(std::uint32_t i) const;

  std::uint64_t edge_memory_bytes() const { return edge_memory_bytes_; }
  std::uint64_t vertex_memory_bytes() const { return vertex_memory_bytes_; }

  static constexpr std::uint32_t kBlockHeaderBytes = 12;    // §3.4
  static constexpr std::uint32_t kIntervalHeaderBytes = 8;  // §3.4

 private:
  std::uint32_t num_intervals_;
  std::vector<AddressRange> blocks_;     // P*P, x-major
  std::vector<AddressRange> intervals_;  // P
  std::uint64_t edge_memory_bytes_ = 0;
  std::uint64_t vertex_memory_bytes_ = 0;
};

// Trace generation for the Algorithm-2 phases.
class MemoryController {
 public:
  MemoryController(const Partitioning& schedule, std::uint32_t edge_bytes,
                   std::uint32_t value_bytes);

  const HyveAddressMap& address_map() const { return map_; }

  // Processing phase: stream the edges of block B[x][y] (header included,
  // 64-byte requests — the §3.3 edge buffer refills at burst granularity).
  std::vector<MemRequest> edge_stream(std::uint32_t x, std::uint32_t y) const;

  // One full pass over every block in Algorithm 2's column-major order.
  std::vector<MemRequest> full_edge_scan() const;

  // Loading / Updating phases: sequential interval transfer.
  std::vector<MemRequest> interval_load(std::uint32_t i) const;
  std::vector<MemRequest> interval_writeback(std::uint32_t i) const;

 private:
  std::vector<MemRequest> range_requests(const AddressRange& range,
                                         bool is_write) const;

  const Partitioning& schedule_;
  HyveAddressMap map_;
};

}  // namespace hyve
