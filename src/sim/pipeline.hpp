// Edge-processing pipeline timing (paper Fig. 8, Eq. 1).
//
// Steps 2-5 of the processing flow (read edge, read vertices, update,
// write vertex) run pipelined, so a block of n edges takes
//   n * max(stage times) + fill
// per processing unit. Under Algorithm 2 the N units synchronise after
// each step, so a step costs the maximum over its N concurrent blocks.
#pragma once

#include <cstdint>

namespace hyve {

struct PipelineStageTimes {
  double edge_read_ns = 0;     // per-PU share of the edge stream
  double vertex_read_ns = 0;   // local (or remote, routed) source read
  double update_ns = 0;        // PU op issue interval
  double vertex_write_ns = 0;  // destination read-modify-write
  double fill_latency_ns = 0;  // one-time pipe fill per block

  double bottleneck_ns() const;
};

// Time for one PU to stream `edges` edges through the pipeline.
double block_processing_time_ns(std::uint64_t edges,
                                const PipelineStageTimes& stages);

}  // namespace hyve
