// Energy and traffic accounting primitives.
//
// Every simulated run produces an AccessStats (what was moved/computed)
// and an EnergyBreakdown (where the picojoules went). The breakdown's
// component set mirrors the paper's Fig. 17 buckets: edge memory, vertex
// memory (off-chip + on-chip), and "other logic units".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace hyve {

enum class EnergyComponent : std::size_t {
  kEdgeMemDynamic = 0,
  kEdgeMemBackground,
  kOffchipVertexDynamic,
  kOffchipVertexBackground,
  kSramDynamic,
  kSramLeakage,
  kRouter,
  kPuDynamic,
  kLogicStatic,
  kCount,
};

std::string component_name(EnergyComponent c);

class EnergyBreakdown {
 public:
  double& operator[](EnergyComponent c) {
    return pj_[static_cast<std::size_t>(c)];
  }
  double operator[](EnergyComponent c) const {
    return pj_[static_cast<std::size_t>(c)];
  }

  double total_pj() const;
  // Fig. 17 groupings.
  double edge_memory_pj() const;
  double vertex_memory_pj() const;  // off-chip + on-chip SRAM
  double memory_pj() const { return edge_memory_pj() + vertex_memory_pj(); }
  double logic_pj() const;  // "other logic units"

  EnergyBreakdown& operator+=(const EnergyBreakdown& other);

 private:
  std::array<double, static_cast<std::size_t>(EnergyComponent::kCount)> pj_{};
};

// Algorithm-2 phases a run's wall-clock and energy are attributed to.
// Time attribution is critical-path: interval loading double-buffers
// against processing, so each iteration charges only the stream that
// bound it (kLoad when the interval transfer dominated, otherwise
// kProcess + kApply); kWake is the exposed power-gating wake latency
// and kBackground carries the always-on energies (background power,
// leakage, static logic) with no wall-clock of its own. The sums across
// phases therefore equal RunReport::exec_time_ns and
// EnergyBreakdown::total_pj() exactly (enforced at 1e-9 relative
// tolerance by report validation).
enum class Phase : std::size_t {
  kLoad = 0,    // interval loading/updating (off-chip vertex streams)
  kProcess,     // edge streaming through the PU pipelines
  kApply,       // per-vertex apply step (e.g. PageRank scale)
  kWake,        // exposed bank power-gating wake latency
  kBackground,  // always-on power over the run (no wall-clock share)
  kCount,
};

std::string phase_name(Phase p);

// One cell of the energy-attribution ledger: the joules a run charged to
// a (component, phase, unit) triple. `unit` is the finest hardware
// granularity the energy model distinguishes for that component: a
// processing unit ("pu0".."puN"), a bank state of the gated edge memory
// ("banks:awake"/"banks:gated"/"banks:wake"), or a whole module
// ("edge-mem", "vertex-mem", "sram", "pus", "logic").
struct LedgerKey {
  EnergyComponent component = EnergyComponent::kCount;
  Phase phase = Phase::kCount;
  std::string unit;

  bool operator<(const LedgerKey& other) const {
    if (component != other.component) return component < other.component;
    if (phase != other.phase) return phase < other.phase;
    return unit < other.unit;
  }
};

// The full attribution of a run's energy: every joule the simulator
// charges lands in exactly one cell, so the per-component marginals equal
// the EnergyBreakdown, the per-phase marginals equal the PhaseBreakdown's
// energies, and the grand total equals EnergyBreakdown::total_pj() — all
// enforced at 1e-9 relative tolerance by RunReport::validate_ledger().
// Cells are kept sorted by key so serialisation is deterministic.
class EnergyLedger {
 public:
  // Adds `pj` to the (component, phase, unit) cell. Charges must be
  // non-negative (energy only accumulates); zero charges are dropped so
  // the ledger stays sparse.
  void charge(EnergyComponent component, Phase phase, const std::string& unit,
              double pj);

  const std::map<LedgerKey, double>& cells() const { return cells_; }
  bool empty() const { return cells_.empty(); }
  std::size_t size() const { return cells_.size(); }

  double total_pj() const;
  // Marginal sums over one dimension.
  double component_pj(EnergyComponent c) const;
  double phase_pj(Phase p) const;

  // Cell-wise merge — the bench tooling's cross-run rollups.
  EnergyLedger& operator+=(const EnergyLedger& other);

 private:
  std::map<LedgerKey, double> cells_;
};

struct PhaseBreakdown {
  std::array<double, static_cast<std::size_t>(Phase::kCount)> time_ns{};
  std::array<double, static_cast<std::size_t>(Phase::kCount)> energy_pj{};

  double& time(Phase p) { return time_ns[static_cast<std::size_t>(p)]; }
  double time(Phase p) const {
    return time_ns[static_cast<std::size_t>(p)];
  }
  double& energy(Phase p) {
    return energy_pj[static_cast<std::size_t>(p)];
  }
  double energy(Phase p) const {
    return energy_pj[static_cast<std::size_t>(p)];
  }

  double total_time_ns() const;
  double total_energy_pj() const;
};

// Raw traffic/operation counts accumulated by a run.
struct AccessStats {
  // Edge memory (sequential stream, read-only at runtime).
  std::uint64_t edge_bytes_read = 0;
  std::uint64_t edge_stream_passes = 0;  // full-graph scans

  // Off-chip vertex memory (sequential interval traffic only in HyVE).
  std::uint64_t offchip_vertex_bytes_read = 0;
  std::uint64_t offchip_vertex_bytes_written = 0;
  // Baselines without on-chip SRAM random-access it instead.
  std::uint64_t offchip_vertex_random_reads = 0;
  std::uint64_t offchip_vertex_random_writes = 0;

  // On-chip vertex SRAM.
  std::uint64_t sram_random_reads = 0;
  std::uint64_t sram_random_writes = 0;
  std::uint64_t sram_fill_bytes = 0;   // interval loads into SRAM
  std::uint64_t sram_drain_bytes = 0;  // write-backs out of SRAM

  // Data-sharing router traversals (remote source-interval reads).
  std::uint64_t router_hops = 0;

  // Processing units.
  std::uint64_t edge_ops = 0;    // one per processed edge
  std::uint64_t vertex_ops = 0;  // apply-phase ops (e.g. PageRank scale)

  // Interval-load bookkeeping (Eq. 8/9 cross-checks).
  std::uint64_t interval_loads = 0;
  std::uint64_t interval_writebacks = 0;

  AccessStats& operator+=(const AccessStats& other);
};

}  // namespace hyve
