// Cycle-level DDR4 bank/timing simulator.
//
// The analytic DramModel (src/memmodel) charges streams at the channel
// bandwidth and random accesses at a fixed service interval; this module
// is the cycle-level ground truth behind those constants: a bank state
// machine honouring tRCD/tRP/tCAS/tRAS/tRC with an open-page policy, a
// shared data bus, and bank-interleaved scheduling. The test suite
// cross-validates the analytic model against it (sequential streams
// reach ~peak bus bandwidth; random closed-row traffic is tRC/banks
// bound), which is how the reproduction grounds its Fig. 9/16 numbers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/mem_request.hpp"

namespace hyve {

namespace obs {
class Trace;
}  // namespace obs

struct DramTimingParams {
  double tck_ns = 0.9375;  // DDR4-2133: 1066 MHz memory clock
  // JEDEC-style timings in memory-clock cycles (-093 speed grade class).
  int t_rcd = 15;  // ACT to column command
  int t_rp = 15;   // PRE to ACT
  int t_cas = 15;  // column command to first data
  int t_ras = 36;  // ACT to PRE (minimum row-open time)
  int t_ccd = 4;   // column command to column command (same bank group)
  int t_wr = 16;   // write recovery before PRE
  int burst_clocks = 4;  // BL8 at double data rate
  int num_banks = 16;
  std::uint32_t row_bytes = 8192;   // page per rank
  std::uint32_t burst_bytes = 64;   // BL8 x 64-bit channel

  double t_rc_cycles() const { return t_ras + t_rp; }
  double peak_gbps() const {
    return burst_bytes / (burst_clocks * tck_ns);
  }
};

struct DramTraceResult {
  double total_ns = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;  // activations
  std::uint64_t bursts = 0;
  double achieved_gbps = 0;
  double row_hit_rate() const {
    const auto total = row_hits + row_misses;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / total;
  }
};

class DramTimingSim {
 public:
  explicit DramTimingSim(const DramTimingParams& params = {});

  // Runs the trace in order (requests may overlap across banks; the data
  // bus serialises bursts) and returns the timing profile.
  DramTraceResult run(std::span<const MemRequest> trace);

  // Mirrors row activations into `trace` as instant events (one per
  // row miss, tid = bank, ts = simulated activation time) on tracks of
  // process `pid`. Null detaches.
  void set_trace(obs::Trace* trace, std::uint32_t pid = 1) {
    trace_ = trace;
    trace_pid_ = pid;
  }

  const DramTimingParams& params() const { return params_; }

 private:
  struct BankState {
    bool row_open = false;
    std::uint64_t open_row = 0;
    double ready_ns = 0;     // earliest next command issue
    double activated_ns = 0; // when the open row was activated (tRAS)
  };

  DramTimingParams params_;
  obs::Trace* trace_ = nullptr;
  std::uint32_t trace_pid_ = 1;
};

}  // namespace hyve
