#include "sim/mem_request.hpp"

#include "util/check.hpp"

namespace hyve {

std::vector<MemRequest> sequential_trace(std::uint64_t total_bytes,
                                         std::uint32_t granularity,
                                         bool is_write) {
  HYVE_CHECK(granularity > 0);
  std::vector<MemRequest> trace;
  trace.reserve(total_bytes / granularity + 1);
  for (std::uint64_t addr = 0; addr < total_bytes; addr += granularity) {
    const auto payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(granularity, total_bytes - addr));
    trace.push_back({addr, payload, is_write});
  }
  return trace;
}

std::vector<MemRequest> random_trace(std::uint64_t count,
                                     std::uint64_t address_space,
                                     std::uint32_t granularity, Rng& rng,
                                     double write_fraction) {
  HYVE_CHECK(granularity > 0 && address_space >= granularity);
  std::vector<MemRequest> trace;
  trace.reserve(count);
  const std::uint64_t slots = address_space / granularity;
  for (std::uint64_t i = 0; i < count; ++i) {
    MemRequest req;
    req.address = rng.next_below(slots) * granularity;
    req.bytes = granularity;
    req.is_write = rng.next_bool(write_fraction);
    trace.push_back(req);
  }
  return trace;
}

}  // namespace hyve
