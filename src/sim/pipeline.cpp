#include "sim/pipeline.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace hyve {

double PipelineStageTimes::bottleneck_ns() const {
  return std::max({edge_read_ns, vertex_read_ns, update_ns, vertex_write_ns});
}

double block_processing_time_ns(std::uint64_t edges,
                                const PipelineStageTimes& stages) {
  if (obs::enabled()) {
    static obs::Counter& blocks =
        obs::registry().counter("sim.pipeline.blocks");
    static obs::Counter& empty_blocks =
        obs::registry().counter("sim.pipeline.empty_blocks");
    static obs::Histogram& block_edges =
        obs::registry().histogram("sim.pipeline.block_edges");
    blocks.add();
    if (edges == 0) empty_blocks.add();
    block_edges.observe(edges);
  }
  if (edges == 0) return 0.0;
  return static_cast<double>(edges) * stages.bottleneck_ns() +
         stages.fill_latency_ns;
}

}  // namespace hyve
