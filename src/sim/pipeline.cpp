#include "sim/pipeline.hpp"

#include <algorithm>

namespace hyve {

double PipelineStageTimes::bottleneck_ns() const {
  return std::max({edge_read_ns, vertex_read_ns, update_ns, vertex_write_ns});
}

double block_processing_time_ns(std::uint64_t edges,
                                const PipelineStageTimes& stages) {
  if (edges == 0) return 0.0;
  return static_cast<double>(edges) * stages.bottleneck_ns() +
         stages.fill_latency_ns;
}

}  // namespace hyve
