// Memory request traces for the cycle-level device simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace hyve {

struct MemRequest {
  std::uint64_t address = 0;  // byte address within the module
  std::uint32_t bytes = 64;   // payload (device rounds up to its burst)
  bool is_write = false;
};

// A linear scan of `total_bytes` in `granularity`-byte requests.
std::vector<MemRequest> sequential_trace(std::uint64_t total_bytes,
                                         std::uint32_t granularity,
                                         bool is_write = false);

// `count` independent accesses uniform over `address_space` bytes.
std::vector<MemRequest> random_trace(std::uint64_t count,
                                     std::uint64_t address_space,
                                     std::uint32_t granularity, Rng& rng,
                                     double write_fraction = 0.0);

}  // namespace hyve
