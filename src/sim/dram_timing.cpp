#include "sim/dram_timing.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace hyve {

DramTimingSim::DramTimingSim(const DramTimingParams& params)
    : params_(params) {
  HYVE_CHECK(params_.num_banks >= 1);
  HYVE_CHECK(params_.row_bytes >= params_.burst_bytes);
  HYVE_CHECK(params_.burst_bytes > 0);
}

DramTraceResult DramTimingSim::run(std::span<const MemRequest> trace) {
  const double tck = params_.tck_ns;
  const double t_rcd = params_.t_rcd * tck;
  const double t_rp = params_.t_rp * tck;
  const double t_cas = params_.t_cas * tck;
  const double t_ras = params_.t_ras * tck;
  const double t_ccd = params_.t_ccd * tck;
  const double t_wr = params_.t_wr * tck;
  const double t_burst = params_.burst_clocks * tck;

  std::vector<BankState> banks(static_cast<std::size_t>(params_.num_banks));
  // Banks interleave on consecutive rows so sequential scans rotate
  // through all banks (standard row-interleaved address mapping).
  auto bank_of = [&](std::uint64_t address) {
    return (address / params_.row_bytes) % params_.num_banks;
  };
  auto row_of = [&](std::uint64_t address) {
    return address / params_.row_bytes / params_.num_banks;
  };

  DramTraceResult result;
  double bus_free_ns = 0;   // shared data bus
  double finish_ns = 0;

  for (const MemRequest& req : trace) {
    const std::uint64_t bursts =
        std::max<std::uint64_t>(1, (req.bytes + params_.burst_bytes - 1) /
                                       params_.burst_bytes);
    for (std::uint64_t b = 0; b < bursts; ++b) {
      const std::uint64_t address =
          req.address + b * params_.burst_bytes;
      BankState& bank = banks[bank_of(address)];
      const std::uint64_t row = row_of(address);

      double column_issue_ns;
      if (bank.row_open && bank.open_row == row) {
        // Row hit: column command as soon as the bank allows.
        column_issue_ns = bank.ready_ns;
        ++result.row_hits;
      } else {
        // Row miss: honour tRAS on the old row, precharge, activate.
        double pre_ns = bank.ready_ns;
        if (bank.row_open)
          pre_ns = std::max(pre_ns, bank.activated_ns + t_ras);
        const double act_ns = pre_ns + (bank.row_open ? t_rp : 0.0);
        bank.row_open = true;
        bank.open_row = row;
        bank.activated_ns = act_ns;
        column_issue_ns = act_ns + t_rcd;
        ++result.row_misses;
        if (trace_ != nullptr)
          trace_->instant(trace_pid_,
                          static_cast<std::uint32_t>(bank_of(address)),
                          "row-activate", "dram", act_ns,
                          {{"row", static_cast<double>(row)}});
      }

      // The data bus serialises bursts across all banks.
      const double data_start_ns =
          std::max(column_issue_ns + t_cas, bus_free_ns);
      const double data_end_ns = data_start_ns + t_burst;
      bus_free_ns = data_end_ns;
      // Bank is busy until it may accept the next column command; writes
      // additionally hold the row for write recovery.
      bank.ready_ns = column_issue_ns + t_ccd;
      if (req.is_write) bank.ready_ns += t_wr - t_ccd;
      finish_ns = std::max(finish_ns, data_end_ns);
      ++result.bursts;
    }
  }

  result.total_ns = finish_ns;
  result.achieved_gbps =
      finish_ns <= 0
          ? 0.0
          : static_cast<double>(result.bursts) * params_.burst_bytes /
                finish_ns;

  if (obs::enabled()) {
    static obs::Counter& row_hits =
        obs::registry().counter("sim.dram.row_hits");
    static obs::Counter& row_misses =
        obs::registry().counter("sim.dram.row_misses");
    static obs::Counter& bursts = obs::registry().counter("sim.dram.bursts");
    row_hits.add(result.row_hits);
    row_misses.add(result.row_misses);
    bursts.add(result.bursts);
  }
  return result;
}

}  // namespace hyve
