#include "sim/reram_timing.hpp"

#include <algorithm>
#include <set>

#include "memmodel/techparams.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hyve {

ReramTimingSim::ReramTimingSim(const ReramTimingParams& params)
    : params_(params) {
  HYVE_CHECK(params_.mats_per_bank >= 1);
  HYVE_CHECK(params_.banks_per_chip >= 1);
}

ReramTraceResult ReramTimingSim::run(std::span<const MemRequest> trace) {
  const ReramModel model(params_.config);
  const double period = model.access_period_ns();
  const double write_hold =
      tech::kReramSetPulseNs *
      tech::kMlcWriteLatencyScale[params_.config.cell_bits - 1];
  const std::uint32_t access_bytes = params_.config.output_bits / 8;
  const double io_interval =
      access_bytes / tech::kReramChannelGBps;  // chip I/O serialisation

  // Address mapping: consecutive access-width chunks rotate across the
  // mats of a bank (sub-bank interleaving); banks change only when the
  // scan crosses a bank's capacity slice.
  const std::uint64_t chip_bytes = params_.config.chip_capacity_bytes *
                                   static_cast<unsigned>(
                                       params_.config.cell_bits);
  const std::uint64_t bank_bytes =
      std::max<std::uint64_t>(1, chip_bytes / params_.banks_per_chip);

  struct MatState {
    double ready_ns = 0;
  };
  // One write-driver current budget per bank: set pulses cannot overlap
  // within a bank however many mats it has.
  std::vector<double> write_driver_free(
      static_cast<std::size_t>(params_.banks_per_chip), 0.0);
  std::vector<std::vector<MatState>> mats(
      static_cast<std::size_t>(params_.banks_per_chip),
      std::vector<MatState>(static_cast<std::size_t>(params_.mats_per_bank)));

  ReramTraceResult result;
  std::set<std::uint32_t> banks_seen;
  double io_free_ns = 0;
  double finish_ns = 0;

  // Track per-bank last-busy windows to derive concurrency.
  std::vector<double> bank_busy_until(
      static_cast<std::size_t>(params_.banks_per_chip), -1.0);
  std::uint32_t max_concurrent = 0;

  for (const MemRequest& req : trace) {
    const std::uint64_t chunks =
        std::max<std::uint64_t>(1, (req.bytes + access_bytes - 1) /
                                       access_bytes);
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t address = req.address + c * access_bytes;
      const auto bank = static_cast<std::uint32_t>(
          (address / bank_bytes) % params_.banks_per_chip);
      const std::uint64_t chunk_index = address / access_bytes;
      const auto mat = static_cast<std::uint32_t>(
          params_.config.subbank_interleaving
              ? chunk_index % params_.mats_per_bank
              : 0);

      MatState& m = mats[bank][mat];
      const double occupancy =
          req.is_write ? write_hold + period
                       : (params_.config.subbank_interleaving
                              ? period
                              : period * params_.mat_turnaround_factor);
      double start_ns = std::max({m.ready_ns, io_free_ns});
      if (req.is_write)
        start_ns = std::max(start_ns, write_driver_free[bank]);
      const double end_ns = start_ns + occupancy;
      m.ready_ns = end_ns;
      if (req.is_write) write_driver_free[bank] = start_ns + write_hold + period;
      // The chip I/O streams one access width per interval.
      io_free_ns = std::max(start_ns + io_interval, io_free_ns + io_interval);
      finish_ns = std::max(finish_ns, end_ns);
      ++result.accesses;

      banks_seen.insert(bank);
      // Concurrency: banks whose busy window overlaps this access.
      bank_busy_until[bank] = end_ns;
      std::uint32_t concurrent = 0;
      for (const double busy : bank_busy_until)
        concurrent += (busy >= start_ns) ? 1 : 0;
      max_concurrent = std::max(max_concurrent, concurrent);
    }
  }

  result.total_ns = finish_ns;
  result.banks_touched = static_cast<std::uint32_t>(banks_seen.size());
  result.max_concurrent_banks = max_concurrent;
  result.achieved_gbps =
      finish_ns <= 0 ? 0.0
                     : static_cast<double>(result.accesses) * access_bytes /
                           finish_ns;

  if (obs::enabled()) {
    static obs::Counter& accesses =
        obs::registry().counter("sim.reram.accesses");
    static obs::Counter& runs = obs::registry().counter("sim.reram.runs");
    static obs::Histogram& banks_touched =
        obs::registry().histogram("sim.reram.banks_touched");
    accesses.add(result.accesses);
    runs.add();
    banks_touched.observe(result.banks_touched);
  }
  return result;
}

}  // namespace hyve
