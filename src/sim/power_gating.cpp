#include "sim/power_gating.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace hyve {

PowerGatingResult evaluate_power_gating(const ReramModel& reram,
                                        const EdgeMemoryActivity& activity) {
  HYVE_CHECK(activity.total_time_ns >= activity.streaming_time_ns);
  HYVE_CHECK(activity.capacity_bytes > 0);

  PowerGatingResult result;
  const double ungated_mw = reram.background_power_mw(activity.capacity_bytes);
  result.ungated_background_pj =
      units::power_over(ungated_mw, activity.total_time_ns);

  // While streaming: exactly one bank awake per the single streaming chip
  // (sub-bank interleaving sustains full bandwidth from one bank, §3.1).
  const double streaming_mw =
      reram.gated_power_mw(activity.capacity_bytes, /*active_banks=*/1);
  // Outside streaming windows the BPG timer has re-gated everything.
  const double idle_mw =
      reram.gated_power_mw(activity.capacity_bytes, /*active_banks=*/0);

  const double idle_time_ns =
      activity.total_time_ns - activity.streaming_time_ns;
  result.awake_background_pj =
      units::power_over(streaming_mw, activity.streaming_time_ns);
  result.idle_background_pj = units::power_over(idle_mw, idle_time_ns);
  result.gated_background_pj =
      result.awake_background_pj + result.idle_background_pj;

  // One gate-open per bank touched by the sequential scan.
  const std::uint64_t bank_bytes =
      std::max<std::uint64_t>(1, activity.capacity_bytes /
                                     ReramModel::banks_per_chip() /
                                     std::max(1, reram.chips_for(
                                                     activity.capacity_bytes)));
  result.bank_wakes = activity.bytes_streamed / bank_bytes + 1;
  result.wake_energy_pj =
      static_cast<double>(result.bank_wakes) * reram.bank_wake_energy_pj();
  result.gated_background_pj += result.wake_energy_pj;

  // The scan order is known, so the controller opens the next gate one
  // bank ahead; only the first wake of the run is exposed.
  result.exposed_wake_time_ns = reram.bank_wake_latency_ns();

  HYVE_CHECK(result.gated_background_pj <=
             result.ungated_background_pj + result.wake_energy_pj);

  if (obs::enabled()) {
    static obs::Counter& evaluations =
        obs::registry().counter("sim.bpg.evaluations");
    static obs::Counter& bank_wakes =
        obs::registry().counter("sim.bpg.bank_wakes");
    static obs::Histogram& idle_permille =
        obs::registry().histogram("sim.bpg.idle_permille");
    evaluations.add();
    bank_wakes.add(result.bank_wakes);
    if (activity.total_time_ns > 0)
      idle_permille.observe(static_cast<std::uint64_t>(
          1000.0 * idle_time_ns / activity.total_time_ns));
  }
  return result;
}

}  // namespace hyve
