#include "sim/memory_controller.hpp"

#include <cmath>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hyve {

HyveAddressMap::HyveAddressMap(const Partitioning& schedule,
                               std::uint32_t edge_bytes,
                               std::uint32_t value_bytes, double slack)
    : num_intervals_(schedule.num_intervals()) {
  HYVE_CHECK(edge_bytes >= 8 && value_bytes >= 1 && slack >= 0.0);
  const std::uint32_t p = num_intervals_;

  blocks_.reserve(static_cast<std::size_t>(p) * p);
  std::uint64_t cursor = 0;
  for (std::uint32_t x = 0; x < p; ++x) {
    for (std::uint32_t y = 0; y < p; ++y) {
      const std::uint64_t payload =
          schedule.block_edge_count(x, y) * edge_bytes;
      // §5: reserve slack per block so dynamic additions stay in place.
      const auto reserved = static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(payload) * (1.0 + slack)));
      blocks_.push_back({cursor, kBlockHeaderBytes + payload});
      cursor += kBlockHeaderBytes + reserved;
    }
  }
  edge_memory_bytes_ = cursor;

  intervals_.reserve(p);
  cursor = 0;
  for (std::uint32_t i = 0; i < p; ++i) {
    const std::uint64_t payload =
        static_cast<std::uint64_t>(schedule.interval_population(i)) *
        value_bytes;
    const auto reserved = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(payload) * (1.0 + slack)));
    intervals_.push_back({cursor, kIntervalHeaderBytes + payload});
    cursor += kIntervalHeaderBytes + reserved;
  }
  vertex_memory_bytes_ = cursor;
}

AddressRange HyveAddressMap::block_range(std::uint32_t x,
                                         std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals_ && y < num_intervals_);
  return blocks_[static_cast<std::size_t>(x) * num_intervals_ + y];
}

AddressRange HyveAddressMap::interval_range(std::uint32_t i) const {
  HYVE_CHECK(i < num_intervals_);
  return intervals_[i];
}

MemoryController::MemoryController(const Partitioning& schedule,
                                   std::uint32_t edge_bytes,
                                   std::uint32_t value_bytes)
    : schedule_(schedule), map_(schedule, edge_bytes, value_bytes) {}

std::vector<MemRequest> MemoryController::range_requests(
    const AddressRange& range, bool is_write) const {
  std::vector<MemRequest> requests;
  if (range.bytes == 0) return requests;
  constexpr std::uint32_t kBurst = 64;
  // Align the start down to the burst: the device transfers whole bursts.
  const std::uint64_t first = range.offset / kBurst * kBurst;
  for (std::uint64_t addr = first; addr < range.end(); addr += kBurst)
    requests.push_back({addr, kBurst, is_write});
  if (obs::enabled()) {
    static obs::Counter& reads =
        obs::registry().counter("sim.memctl.read_requests");
    static obs::Counter& writes =
        obs::registry().counter("sim.memctl.write_requests");
    (is_write ? writes : reads).add(requests.size());
  }
  return requests;
}

std::vector<MemRequest> MemoryController::edge_stream(std::uint32_t x,
                                                      std::uint32_t y) const {
  return range_requests(map_.block_range(x, y), /*is_write=*/false);
}

std::vector<MemRequest> MemoryController::full_edge_scan() const {
  std::vector<MemRequest> trace;
  const std::uint32_t p = schedule_.num_intervals();
  for (std::uint32_t y = 0; y < p; ++y) {
    for (std::uint32_t x = 0; x < p; ++x) {
      auto block = edge_stream(x, y);
      trace.insert(trace.end(), block.begin(), block.end());
    }
  }
  return trace;
}

std::vector<MemRequest> MemoryController::interval_load(
    std::uint32_t i) const {
  return range_requests(map_.interval_range(i), /*is_write=*/false);
}

std::vector<MemRequest> MemoryController::interval_writeback(
    std::uint32_t i) const {
  return range_requests(map_.interval_range(i), /*is_write=*/true);
}

}  // namespace hyve
