// Live telemetry: the while-it-runs half of src/obs.
//
// Everything else in this layer is post-mortem — registry dumps, Chrome
// traces and bench reports appear only after the run exits, which is
// useless for the multi-hour out-of-core sweeps the ROADMAP targets.
// LiveTelemetry closes that gap with three cooperating pieces:
//
//   * a snapshot thread that renders the current Registry values,
//     host RSS and sweep progress (cells done/total, ETA from trailing
//     throughput) into a JSON status file on a fixed interval, written
//     via temp-file + rename() so readers always see a complete
//     document (`--live-status PATH[,interval_ms[,stall_ms]]`);
//   * per-thread worker heartbeats (beat/begin_cell/end_cell) with a
//     watchdog that marks workers silent beyond `stall_after` as
//     stalled in the status file and logs the offender's cell/phase;
//   * a signal-safe flight recorder: on SIGINT/SIGTERM (and SIGABRT
//     when HYVE_FLIGHT_RECORD=abort) the handler only flips an atomic
//     and writes one byte into a pipe; a dedicated recorder thread then
//     finalizes the partial outputs (truncated trace, partial report,
//     final "interrupted" snapshot) and _exit()s with
//     kFlightRecordExitCode so callers can tell "killed with partial
//     results saved" from a crash.
//
// The status file and watchdog logs are explicitly wall-clock and
// non-deterministic; they never touch stdout or the deterministic
// --json/--trace bytes, so the byte-identical --jobs guarantee holds
// with live telemetry on or off. When disabled, every instrumented site
// costs one relaxed-class atomic load (the same contract as
// obs::enabled() and the host profiler). tools/hyve_top renders the
// status file in a terminal refresh loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace hyve::obs {

struct LiveStatusOptions {
  std::string path;  // status file; PATH + ".tmp" is the rename staging
  std::chrono::milliseconds interval{500};
  // A worker silent longer than this is flagged as stalled. 0 keeps the
  // derived default of max(10 × interval, 5 s).
  std::chrono::milliseconds stall_after{0};
  std::string bench;  // program name stamped into every snapshot
};

// Parses the --live-status value "PATH[,interval_ms[,stall_ms]]".
// Returns nullopt for an empty path or non-positive/non-numeric fields.
std::optional<LiveStatusOptions> parse_live_status(const std::string& spec);

class LiveTelemetry {
 public:
  static constexpr std::uint64_t kNoCell = ~std::uint64_t{0};

  // One registered heartbeat source (a sweep worker thread, or the main
  // thread of a single run). Fields are atomics so beats stay lock-free
  // and the snapshot thread reads them without stopping the world.
  struct WorkerSlot {
    std::uint64_t id = 0;
    std::atomic<const char*> phase{"idle"};  // string literals only
    std::atomic<std::uint64_t> cell{kNoCell};
    std::atomic<std::int64_t> last_beat_us{0};
    std::atomic<bool> stalled{false};
  };

  // Begins a live session: resets progress and worker slots, writes an
  // immediate first snapshot, then starts the periodic snapshot thread.
  // A second start while running is ignored.
  void start(const LiveStatusOptions& options);

  // Joins the snapshot thread and writes one final snapshot with the
  // given state ("done", "interrupted"). Safe to call when not running.
  void stop(const char* final_state = "done");

  // Acquire pairs with start()'s release store, so a thread observing
  // the service enabled also observes the session it was started with.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Progress accounting. Totals accumulate across calls (a bench that
  // runs several grids announces each), so done/total stays monotone.
  void add_total_cells(std::uint64_t n);
  void cell_done();

  // Heartbeats from worker threads. `phase` must be a string literal
  // (stored by pointer). begin_cell/end_cell bracket one unit of work;
  // end_cell also counts it done.
  void beat(const char* phase);
  void begin_cell(std::uint64_t cell);
  void end_cell();

  // Renders and atomically publishes one snapshot now. The periodic
  // thread calls this with state "running"; tests call it directly.
  void write_snapshot(const char* state);

  // Snapshots successfully published this session.
  std::uint64_t snapshots() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  ~LiveTelemetry();

 private:
  WorkerSlot& slot_for_this_thread();
  void snapshot_loop();
  // Flags/unflags stalled workers; returns the count currently stalled.
  std::size_t run_watchdog(std::int64_t now_us);
  std::int64_t elapsed_us() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> session_{0};
  std::chrono::steady_clock::time_point epoch_;
  LiveStatusOptions options_;

  std::atomic<std::uint64_t> total_cells_{0};
  std::atomic<std::uint64_t> done_cells_{0};
  std::atomic<std::uint64_t> snapshots_{0};

  std::mutex slots_mu_;  // guards the vector, not the slots
  std::vector<std::unique_ptr<WorkerSlot>> slots_;

  // Serialises snapshot rendering/publication (periodic thread vs an
  // explicit write_snapshot vs stop's final write).
  std::mutex write_mu_;
  std::deque<std::pair<double, std::uint64_t>> trail_;  // (wall_ms, done)
  std::vector<std::uint64_t> rss_history_;

  std::thread snapshot_thread_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
};

// The process-wide live telemetry service.
LiveTelemetry& live_telemetry();

// Exit status of a flight-recorded run: the process was interrupted but
// its partial outputs were finalized before exiting. Distinct from 0
// (completed), 1/2 (errors) and 128+sig (killed, nothing saved).
inline constexpr int kFlightRecordExitCode = 75;

// Arms the flight recorder: installs SIGINT/SIGTERM handlers (plus
// SIGABRT when HYVE_FLIGHT_RECORD=abort) and a recorder thread that runs
// `save(signum)` once, flushes stdio and _exit()s with
// kFlightRecordExitCode. The handler itself is async-signal-safe (one
// atomic CAS + one write() into a self-pipe); all real work happens on
// the recorder thread. HYVE_FLIGHT_RECORD=off disables installation.
// Calling again replaces the save callback; handlers install once.
void install_flight_recorder(std::function<void(int)> save);

}  // namespace hyve::obs
