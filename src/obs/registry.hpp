// Process-wide metrics registry (the observability layer's "numbers"
// half; src/obs/trace.hpp is the "timeline" half).
//
// Instruments are named counters, gauges and histograms with atomic
// updates, cheap enough for the simulator's hot loops: an update is one
// relaxed atomic load (the global enable flag) plus, when enabled, one
// relaxed RMW. Collection is off by default, so instrumented code costs
// a predicted branch when nobody asked for metrics (--metrics and
// --cache-stats turn it on).
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime, so hot paths register once through a static
// reference and update lock-free afterwards:
//
//   static obs::Counter& blocks =
//       obs::registry().counter("sim.pipeline.blocks");
//   blocks.add();
//
// dump() renders every registered instrument as sorted "key=value"
// lines — a stable, diffable text format for --metrics output. Values
// reflect whatever ran; the *key set and order* are what is stable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hyve::obs {

// Global collection switch. Updates are dropped while disabled.
bool enabled();
void set_enabled(bool on);

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Count / sum / min / max / quantiles over integer samples (e.g.
// microseconds, edge counts). Samples land in log-linear buckets —
// exact below 16, then 16 sub-buckets per power of two (≤ 6.25%
// relative error) — so quantile() is a deterministic function of the
// observed multiset: the same samples yield the same p50/p95/p99
// regardless of observation order or thread count. observe() stays a
// handful of relaxed atomic ops, TSan-clean.
class Histogram {
 public:
  void observe(std::uint64_t sample);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Min/max of the observed samples; 0 when empty.
  std::uint64_t min() const;
  std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  // Smallest bucket lower bound at or above which a fraction `q` of the
  // samples falls (0 when empty). Exact for samples below 16, within one
  // sub-bucket (6.25%) above. `q` is clamped to (0, 1].
  std::uint64_t quantile(double q) const;
  void reset();

 private:
  // Bucket layout: [0, 16) one bucket per value; from there each octave
  // [2^k, 2^(k+1)) splits into 16 equal sub-buckets.
  static constexpr int kSubBuckets = 16;
  static constexpr int kFirstOctave = 4;  // 2^4 == first bucketed power
  static constexpr std::size_t kNumBuckets =
      16 + static_cast<std::size_t>(64 - kFirstOctave) * kSubBuckets;
  static std::size_t bucket_index(std::uint64_t sample);
  static std::uint64_t bucket_lower_bound(std::size_t index);

  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

class Registry {
 public:
  // The instrument registered under `name`, created on first use. A name
  // identifies exactly one instrument kind (asking for an existing name
  // with a different kind throws InvariantError).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Sorted "key=value" lines, one per instrument value; histograms
  // expand to key.avg/key.count/key.max/key.min plus the key.p50/
  // key.p95/key.p99 quantiles and key.sum (avg and quantiles are 0 for
  // an empty histogram).
  void dump(std::ostream& os) const;
  std::string dump_string() const;

  // Registered instruments (all kinds).
  std::size_t size() const;
  // (name, kind) for every instrument, sorted by name; kind is one of
  // "counter", "gauge", "histogram". The `--list-metrics` census
  // (docs/METRICS.md) renders from this.
  std::vector<std::pair<std::string, std::string>> schema() const;
  // Zeroes every instrument (handles stay valid) — test isolation.
  void reset_values();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void claim(const std::string& name, Kind kind);

  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry every instrumented layer reports into.
Registry& registry();

}  // namespace hyve::obs
