#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace hyve::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(std::uint64_t sample) {
  if (sample < 16) return static_cast<std::size_t>(sample);
  const int msb = 63 - std::countl_zero(sample);  // >= kFirstOctave
  const auto sub = static_cast<std::size_t>(
      (sample >> (msb - kFirstOctave)) & (kSubBuckets - 1));
  return 16 +
         static_cast<std::size_t>(msb - kFirstOctave) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t index) {
  if (index < 16) return index;
  const std::size_t octave = (index - 16) / kSubBuckets + kFirstOctave;
  const std::uint64_t sub = (index - 16) % kSubBuckets;
  return (std::uint64_t{1} << octave) + (sub << (octave - kFirstOctave));
}

void Histogram::observe(std::uint64_t sample) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == kEmptyMin ? 0 : v;
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-quantile sample (1-based, ceil): the smallest rank
  // covering a fraction q of the population.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_lower_bound(b);
  }
  return max();  // count/bucket skew mid-update; max is the safe answer
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kEmptyMin, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (std::atomic<std::uint64_t>& bucket : buckets_)
    bucket.store(0, std::memory_order_relaxed);
}

void Registry::claim(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  HYVE_CHECK_MSG(inserted || it->second == kind,
                 "metric \"" << name
                             << "\" already registered as another kind");
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mu_);
  claim(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mu_);
  claim(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::scoped_lock lock(mu_);
  claim(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::dump(std::ostream& os) const {
  const std::scoped_lock lock(mu_);
  // kinds_ is one sorted map over every instrument name, so the lines
  // come out in one stable lexicographic pass.
  for (const auto& [name, kind] : kinds_) {
    switch (kind) {
      case Kind::kCounter:
        os << name << '=' << counters_.at(name)->value() << '\n';
        break;
      case Kind::kGauge:
        os << name << '=' << gauges_.at(name)->value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *histograms_.at(name);
        const double avg =
            h.count() > 0 ? static_cast<double>(h.sum()) /
                                static_cast<double>(h.count())
                          : 0.0;
        os << name << ".avg=" << avg << '\n'
           << name << ".count=" << h.count() << '\n'
           << name << ".max=" << h.max() << '\n'
           << name << ".min=" << h.min() << '\n'
           << name << ".p50=" << h.quantile(0.50) << '\n'
           << name << ".p95=" << h.quantile(0.95) << '\n'
           << name << ".p99=" << h.quantile(0.99) << '\n'
           << name << ".sum=" << h.sum() << '\n';
        break;
      }
    }
  }
}

std::string Registry::dump_string() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

std::size_t Registry::size() const {
  const std::scoped_lock lock(mu_);
  return kinds_.size();
}

std::vector<std::pair<std::string, std::string>> Registry::schema() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(kinds_.size());
  for (const auto& [name, kind] : kinds_) {
    const char* label = "counter";
    if (kind == Kind::kGauge) label = "gauge";
    if (kind == Kind::kHistogram) label = "histogram";
    out.emplace_back(name, label);
  }
  return out;
}

void Registry::reset_values() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace hyve::obs
