// Host-side profiling: wall-clock spans, memory sampling, throughput.
//
// The rest of src/obs observes *simulated* time — byte-deterministic by
// design. This file is the other half: it characterises the simulator
// process itself (how long the host spent, how much RSS it held, how
// many edges/blocks/cells per wall-second it pushed), which is what the
// bench/history perf trajectory and the multi-core --jobs speedup are
// measured against. Everything here is explicitly wall-clock and
// therefore non-deterministic; it never touches stdout or the
// deterministic sections of --json/--trace output.
//
// The profiler is process-global and off by default. When off, an
// instrumented site costs one relaxed atomic load (the same contract as
// obs::enabled()). When on (--host-profile):
//
//   * HostSpan RAII spans record wall-clock durations into
//     host.span.<name> registry histograms (microseconds) and, when a
//     Trace is attached, as complete events on a dedicated wall-clock
//     process track (pid kTracePid) parallel to the simulated-time pids;
//   * a sampler thread reads /proc/self/status periodically into
//     host.mem.rss_kb / host.mem.peak_rss_kb gauges and a "host rss"
//     counter track in the trace;
//   * count() accumulates per-stage item counts (edges, blocks, cells)
//     that stop() folds into host.rate.<what>_per_s gauges.
//
// Registry keys, all under the host.* prefix (excluded from the
// deterministic sim.* rollup in bench reports by construction):
//
//   host.wall_us                 total profiled wall time (gauge, stop())
//   host.span.<name>             span durations in us (histogram)
//   host.count.<what>            items seen per stage (counter)
//   host.rate.<what>_per_s       items / profiled second (gauge, stop())
//   host.mem.rss_kb              latest sampled VmRSS (gauge)
//   host.mem.peak_rss_kb         latest sampled VmHWM (gauge)
//   host.mem.samples             sampler iterations (counter)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace hyve::obs {

class Trace;

// Resident and peak-resident memory of this process in KiB, read from
// /proc/self/status (VmRSS / VmHWM); zeros on platforms without procfs.
struct HostMemSample {
  std::uint64_t rss_kb = 0;
  std::uint64_t peak_rss_kb = 0;
};
HostMemSample read_host_memory();

// Identity of the measuring host, for attributing perf-history records:
// a wall-clock number is only comparable against the same machine.
struct HostFingerprint {
  std::string hostname;   // gethostname(), "unknown" on failure
  std::string cpu_model;  // /proc/cpuinfo "model name", "" when unreadable
  unsigned cpus = 0;      // std::thread::hardware_concurrency()
};
HostFingerprint host_fingerprint();

class HostProfiler {
 public:
  // The wall-clock process track in Chrome traces: far above the
  // per-cell simulated-time pids (cell index + 1), so host spans render
  // as a parallel process named "host (wall clock)".
  static constexpr std::uint32_t kTracePid = 1000000;

  struct Options {
    bool sample_memory = true;
    std::chrono::milliseconds sample_period = std::chrono::milliseconds(50);
  };

  // Starts collection (idempotent: a second start while running is
  // ignored). `trace` may be null — registry metrics still collect.
  // Spans and samples only land in obs::registry() while obs::enabled(),
  // so callers enable the registry alongside (--host-profile does).
  void start(Trace* trace, const Options& options);
  void start(Trace* trace) { start(trace, Options()); }
  void start() { start(nullptr); }

  // Stops the sampler thread, records host.wall_us and the
  // host.rate.*_per_s gauges. Safe to call when not running.
  void stop();

  // Acquire pairs with start()'s release store: a thread that observes
  // the profiler enabled also observes the epoch it was started with.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Wall-clock nanoseconds since start(); 0 while disabled.
  double now_ns() const;

  // Accumulates `n` items of a named stage throughput (e.g. "edges",
  // "blocks", "cells"); dropped while disabled.
  void count(const char* what, std::uint64_t n);

  // Records one finished span: a host.span.<name> histogram sample and,
  // when tracing, a complete event on (kTracePid, calling thread's tid).
  // HostSpan is the intended caller.
  void record_span(const char* name, double start_ns, double end_ns);

  ~HostProfiler();

 private:
  void sampler_loop(std::chrono::milliseconds period);
  void sample_memory_once();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  // Written only across enabled transitions, read by spans while on;
  // atomic so a span racing a stop() reads null rather than torn bits.
  std::atomic<Trace*> trace_{nullptr};

  std::mutex mu_;  // serialises start/stop transitions
  std::thread sampler_;
  std::mutex sampler_mu_;  // guards sampler_stop_ under the cv
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
};

// The process-wide profiler every instrumented layer reports into.
HostProfiler& host_profiler();

// RAII wall-clock span over the enclosing scope. `name` must outlive the
// span (string literals at every call site). When the profiler is off
// this is one relaxed load at construction and nothing at destruction.
class HostSpan {
 public:
  explicit HostSpan(const char* name)
      : name_(host_profiler().enabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? host_profiler().now_ns() : 0.0) {}

  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

  ~HostSpan() {
    if (name_ == nullptr) return;
    HostProfiler& profiler = host_profiler();
    if (profiler.enabled())
      profiler.record_span(name_, start_ns_, profiler.now_ns());
  }

 private:
  const char* name_;  // null = profiler was off at construction
  double start_ns_;
};

}  // namespace hyve::obs
