#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "util/check.hpp"

namespace hyve::obs {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  HYVE_CHECK_MSG(std::isfinite(v), "non-finite value in trace");
  os << std::setprecision(12) << v;
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  write_escaped(os, e.name);
  if (!e.cat.empty()) {
    os << ",\"cat\":";
    write_escaped(os, e.cat);
  }
  os << ",\"ph\":\"" << e.ph << "\"";
  // ts/dur are microseconds in the trace-event format; simulated
  // nanoseconds keep sub-us resolution through the fractional part.
  os << ",\"ts\":";
  write_number(os, e.ts_ns / 1e3);
  if (e.ph == 'X') {
    os << ",\"dur\":";
    write_number(os, e.dur_ns / 1e3);
  }
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  if (!e.args.empty() || !e.raw_args.empty()) {
    os << ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : e.args) {
      if (!first) os << ',';
      first = false;
      write_escaped(os, key);
      os << ':';
      write_number(os, value);
    }
    if (!e.raw_args.empty()) {
      if (!first) os << ',';
      os << e.raw_args;
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

void Trace::append(TraceEvent event) {
  const std::scoped_lock lock(mu_);
  events_.push_back(std::move(event));
}

void Trace::complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                     std::string cat, double ts_ns, double dur_ns,
                     std::vector<std::pair<std::string, double>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  append(std::move(e));
}

void Trace::instant(std::uint32_t pid, std::uint32_t tid, std::string name,
                    std::string cat, double ts_ns,
                    std::vector<std::pair<std::string, double>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'i';
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  append(std::move(e));
}

void Trace::counter(std::uint32_t pid, std::uint32_t tid, std::string name,
                    double ts_ns,
                    std::vector<std::pair<std::string, double>> series) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = "counter";
  e.ph = 'C';
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(series);
  append(std::move(e));
}

void Trace::thread_name(std::uint32_t pid, std::uint32_t tid,
                        std::string name) {
  TraceEvent e;
  e.name = "thread_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  std::ostringstream arg;
  arg << "\"name\":";
  write_escaped(arg, name);
  e.raw_args = arg.str();
  append(std::move(e));
}

void Trace::process_name(std::uint32_t pid, std::string name) {
  TraceEvent e;
  e.name = "process_name";
  e.ph = 'M';
  e.pid = pid;
  std::ostringstream arg;
  arg << "\"name\":";
  write_escaped(arg, name);
  e.raw_args = arg.str();
  append(std::move(e));
}

void Trace::metadata(
    std::string name,
    std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.ph = 'M';
  std::ostringstream rendered;
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) rendered << ',';
    first = false;
    write_escaped(rendered, key);
    rendered << ':';
    write_escaped(rendered, value);
  }
  e.raw_args = rendered.str();
  append(std::move(e));
}

std::size_t Trace::events() const {
  const std::scoped_lock lock(mu_);
  return events_.size();
}

void Trace::write(std::ostream& os, bool truncated) const {
  // Copy under the lock: the flight recorder writes while sweep workers
  // may still append, and an append can reallocate events_ out from
  // under borrowed pointers.
  std::vector<TraceEvent> snapshot;
  {
    const std::scoped_lock lock(mu_);
    snapshot = events_;
  }
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(snapshot.size());
  for (const TraceEvent& e : snapshot) ordered.push_back(&e);
  // Metadata first, then (pid, tid, ts, name): every track reads in
  // non-decreasing timestamp order and the byte stream is independent
  // of append interleaving.
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     const int ma = a->ph == 'M' ? 0 : 1;
                     const int mb = b->ph == 'M' ? 0 : 1;
                     return std::tie(ma, a->pid, a->tid, a->ts_ns, a->name) <
                            std::tie(mb, b->pid, b->tid, b->ts_ns, b->name);
                   });
  os << "{\"displayTimeUnit\":\"ns\",";
  if (truncated) os << "\"truncated\":true,";
  os << "\"traceEvents\":[\n";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (i > 0) os << ",\n";
    write_event(os, *ordered[i]);
  }
  os << "\n]}\n";
}

void Trace::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open trace file " + path);
  write(os);
  if (!os.good()) throw std::runtime_error("failed writing trace " + path);
}

void Trace::write_file_atomic(const std::string& path,
                              bool truncated) const {
  const std::string tmp = path + ".part";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) throw std::runtime_error("cannot open trace file " + tmp);
    write(os, truncated);
    if (!os.good())
      throw std::runtime_error("failed writing trace " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("cannot publish trace " + path);
}

}  // namespace hyve::obs
