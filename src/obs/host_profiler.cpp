#include "obs/host_profiler.hpp"

#include <unistd.h>

#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace hyve::obs {

namespace {

// Stable small thread ids for the host trace tracks: tid 0 is the
// sampler/process track, spans from worker threads land on 1, 2, ...
// in first-use order.
std::uint32_t host_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1);
  return tid;
}

// Per-stage item totals for the rate gauges, keyed by the literal name
// handed to count(). Guarded by its own mutex: count() is called from
// worker threads while stop() reads.
struct StageCounts {
  std::mutex mu;
  std::map<std::string, std::uint64_t> items;
};

StageCounts& stage_counts() {
  static StageCounts counts;
  return counts;
}

}  // namespace

HostMemSample read_host_memory() {
  HostMemSample sample;
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    const auto parse_kb = [&](const char* prefix) -> std::uint64_t {
      std::istringstream is(line.substr(std::string(prefix).size()));
      std::uint64_t kb = 0;
      is >> kb;
      return kb;
    };
    if (line.rfind("VmRSS:", 0) == 0) sample.rss_kb = parse_kb("VmRSS:");
    if (line.rfind("VmHWM:", 0) == 0) sample.peak_rss_kb = parse_kb("VmHWM:");
  }
  return sample;
}

HostFingerprint host_fingerprint() {
  HostFingerprint fp;
  char buf[256] = {};
  fp.hostname = gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0'
                    ? std::string(buf)
                    : std::string("unknown");
  fp.cpus = std::thread::hardware_concurrency();
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') ++begin;
        fp.cpu_model = line.substr(begin);
      }
      break;
    }
  }
  return fp;
}

void HostProfiler::start(Trace* trace, const Options& options) {
  const std::scoped_lock lock(mu_);
  if (enabled_.load(std::memory_order_relaxed)) return;
  epoch_ = std::chrono::steady_clock::now();
  trace_.store(trace, std::memory_order_relaxed);
  sampler_stop_ = false;
  {
    const std::scoped_lock counts_lock(stage_counts().mu);
    stage_counts().items.clear();
  }
  if (trace != nullptr) {
    trace->process_name(kTracePid, "host (wall clock)");
    trace->thread_name(kTracePid, 0, "memory sampler");
  }
  // Publish before the sampler starts so its first iteration sees the
  // enabled profiler.
  enabled_.store(true, std::memory_order_release);
  if (options.sample_memory)
    sampler_ = std::thread([this, period = options.sample_period] {
      sampler_loop(period);
    });
}

void HostProfiler::stop() {
  const std::scoped_lock lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  {
    const std::scoped_lock sampler_lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  sample_memory_once();  // final sample, so short runs still record one

  const double wall_ns = now_ns();
  registry().gauge("host.wall_us").set(
      static_cast<std::int64_t>(wall_ns / 1e3));
  const double wall_s = wall_ns / 1e9;
  if (wall_s > 0) {
    const std::scoped_lock counts_lock(stage_counts().mu);
    for (const auto& [what, items] : stage_counts().items)
      registry()
          .gauge("host.rate." + what + "_per_s")
          .set(static_cast<std::int64_t>(static_cast<double>(items) /
                                         wall_s));
  }
  enabled_.store(false, std::memory_order_relaxed);
  trace_.store(nullptr, std::memory_order_relaxed);
}

double HostProfiler::now_ns() const {
  if (!enabled()) return 0.0;
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void HostProfiler::count(const char* what, std::uint64_t n) {
  if (!enabled()) return;
  registry().counter(std::string("host.count.") + what).add(n);
  const std::scoped_lock lock(stage_counts().mu);
  stage_counts().items[what] += n;
}

void HostProfiler::record_span(const char* name, double start_ns,
                               double end_ns) {
  if (!enabled()) return;
  const double dur_ns = end_ns > start_ns ? end_ns - start_ns : 0.0;
  registry()
      .histogram(std::string("host.span.") + name)
      .observe(static_cast<std::uint64_t>(dur_ns / 1e3));
  if (Trace* trace = trace_.load(std::memory_order_relaxed))
    trace->complete(kTracePid, host_tid(), name, "host", start_ns, dur_ns);
}

void HostProfiler::sampler_loop(std::chrono::milliseconds period) {
  std::unique_lock lock(sampler_mu_);
  while (!sampler_stop_) {
    lock.unlock();
    sample_memory_once();
    lock.lock();
    sampler_cv_.wait_for(lock, period, [this] { return sampler_stop_; });
  }
}

void HostProfiler::sample_memory_once() {
  const HostMemSample sample = read_host_memory();
  if (sample.rss_kb == 0 && sample.peak_rss_kb == 0) return;
  registry().gauge("host.mem.rss_kb").set(
      static_cast<std::int64_t>(sample.rss_kb));
  registry()
      .gauge("host.mem.peak_rss_kb")
      .set(static_cast<std::int64_t>(sample.peak_rss_kb));
  registry().counter("host.mem.samples").add();
  if (Trace* trace = trace_.load(std::memory_order_relaxed))
    trace->counter(kTracePid, 0, "host rss", now_ns(),
                   {{"peak_rss_kb", static_cast<double>(sample.peak_rss_kb)},
                    {"rss_kb", static_cast<double>(sample.rss_kb)}});
}

HostProfiler::~HostProfiler() { stop(); }

HostProfiler& host_profiler() {
  static HostProfiler instance;
  return instance;
}

}  // namespace hyve::obs
