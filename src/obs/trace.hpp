// Span-based event tracing in Chrome trace-event JSON.
//
// A Trace collects events on (pid, tid) tracks and writes the standard
// {"traceEvents":[...]} JSON that chrome://tracing and Perfetto load
// directly. Timestamps are SIMULATED time handed in by the caller in
// nanoseconds (the trace-event `ts`/`dur` unit is microseconds, so the
// writer divides by 1e3) — never wall-clock, so a trace is byte-identical
// across runs and thread counts.
//
// Appending is thread-safe (the sweep engine's workers trace concurrent
// cells under distinct pids); write() orders events by (pid, tid, ts)
// so the file is deterministic regardless of append interleaving and
// every track's timestamps are monotonically non-decreasing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hyve::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';      // X = complete, i = instant, C = counter, M = metadata
  double ts_ns = 0;   // simulated start time
  double dur_ns = 0;  // complete events only
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  // Numeric args rendered into the event's "args" object.
  std::vector<std::pair<std::string, double>> args;
  // Pre-rendered raw JSON args (metadata names); appended after `args`.
  std::string raw_args;
};

class Trace {
 public:
  // A span of simulated time [ts_ns, ts_ns + dur_ns) on a track.
  void complete(std::uint32_t pid, std::uint32_t tid, std::string name,
                std::string cat, double ts_ns, double dur_ns,
                std::vector<std::pair<std::string, double>> args = {});
  // A point event.
  void instant(std::uint32_t pid, std::uint32_t tid, std::string name,
               std::string cat, double ts_ns,
               std::vector<std::pair<std::string, double>> args = {});
  // A counter sample ("ph":"C"): the named track's series take the given
  // values from ts_ns until the next sample. Viewers render one stacked
  // area chart per (pid, name); `series` are its stacked components —
  // simulated power draw, banks awake, pipeline occupancy, hit rates.
  void counter(std::uint32_t pid, std::uint32_t tid, std::string name,
               double ts_ns,
               std::vector<std::pair<std::string, double>> series);
  // Names a track in the viewer (metadata event).
  void thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);
  void process_name(std::uint32_t pid, std::string name);
  // A free-form metadata event with string args — run attribution (git
  // rev, command line, build type). Sorted with the other 'M' events at
  // the top of the file; args render in the given order.
  void metadata(std::string name,
                std::vector<std::pair<std::string, std::string>> args);

  std::size_t events() const;

  // The full trace document, one event per line, sorted by
  // (pid, tid, ts, name) with metadata events first. The document is
  // closed and valid from any state — zero events, or a snapshot taken
  // while other threads still append (flight record): whatever events
  // were fully appended render; arrays and the trailer always close.
  // `truncated` stamps a top-level "truncated":true member so tooling
  // can tell an early-finalized trace from a completed one (viewers
  // ignore unknown top-level keys).
  void write(std::ostream& os, bool truncated) const;
  void write(std::ostream& os) const { write(os, false); }
  // write() to a file; throws std::runtime_error when it cannot.
  void write_file(const std::string& path) const;
  // Early-finalize path: writes to `path` + ".part" and rename()s into
  // place, so a reader (or a racing normal write_file) never observes a
  // half-written document. Throws std::runtime_error on failure.
  void write_file_atomic(const std::string& path, bool truncated) const;

 private:
  void append(TraceEvent event);

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace hyve::obs
