#include "obs/live.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include <unistd.h>

#include "obs/host_profiler.hpp"
#include "obs/registry.hpp"
#include "util/log.hpp"

namespace hyve::obs {

namespace {

// Thread → slot binding. The session stamp invalidates cached slots
// across stop()/start() cycles (slots_ is cleared, the old pointer is
// gone), so a pool thread that outlives a session re-registers cleanly.
struct TlsWorker {
  std::uint64_t session = 0;
  LiveTelemetry::WorkerSlot* slot = nullptr;
};
thread_local TlsWorker tls_worker;

void write_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        else
          os << c;
    }
  }
  os << '"';
}

}  // namespace

std::optional<LiveStatusOptions> parse_live_status(const std::string& spec) {
  LiveStatusOptions out;
  std::vector<std::string> fields;
  std::string::size_type start = 0;
  while (true) {
    const auto comma = spec.find(',', start);
    fields.push_back(spec.substr(
        start, comma == std::string::npos ? comma : comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (fields.empty() || fields.size() > 3 || fields[0].empty())
    return std::nullopt;
  out.path = fields[0];
  const auto parse_ms =
      [](const std::string& s) -> std::optional<std::chrono::milliseconds> {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
      return std::nullopt;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), nullptr, 10);
    if (errno != 0 || v == 0 || v > 3600000ull) return std::nullopt;
    return std::chrono::milliseconds(v);
  };
  if (fields.size() >= 2) {
    const auto ms = parse_ms(fields[1]);
    if (!ms) return std::nullopt;
    out.interval = *ms;
  }
  if (fields.size() >= 3) {
    const auto ms = parse_ms(fields[2]);
    if (!ms) return std::nullopt;
    out.stall_after = *ms;
  }
  return out;
}

std::int64_t LiveTelemetry::elapsed_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void LiveTelemetry::start(const LiveStatusOptions& options) {
  if (enabled()) return;
  options_ = options;
  if (options_.stall_after.count() <= 0)
    options_.stall_after =
        std::max(10 * options_.interval, std::chrono::milliseconds(5000));
  epoch_ = std::chrono::steady_clock::now();
  total_cells_.store(0, std::memory_order_relaxed);
  done_cells_.store(0, std::memory_order_relaxed);
  snapshots_.store(0, std::memory_order_relaxed);
  {
    const std::scoped_lock lock(slots_mu_);
    slots_.clear();
  }
  {
    const std::scoped_lock lock(write_mu_);
    trail_.clear();
    rss_history_.clear();
  }
  {
    const std::scoped_lock lock(cv_mu_);
    stop_requested_ = false;
  }
  session_.fetch_add(1, std::memory_order_release);
  // Pre-register the live.* instruments: the metric census and the
  // first snapshot list them whether or not a stall ever happens.
  registry().counter("live.snapshots");
  registry().counter("live.stalls");
  enabled_.store(true, std::memory_order_release);
  write_snapshot("running");
  snapshot_thread_ = std::thread([this] { snapshot_loop(); });
}

void LiveTelemetry::stop(const char* final_state) {
  if (!enabled()) return;
  {
    const std::scoped_lock lock(cv_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  write_snapshot(final_state);
  enabled_.store(false, std::memory_order_release);
}

LiveTelemetry::~LiveTelemetry() {
  // Best-effort teardown for a process exiting without stop(); the last
  // published snapshot simply keeps saying "running".
  {
    const std::scoped_lock lock(cv_mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
}

void LiveTelemetry::snapshot_loop() {
  std::unique_lock lock(cv_mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, options_.interval,
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    write_snapshot("running");
    lock.lock();
  }
}

LiveTelemetry::WorkerSlot& LiveTelemetry::slot_for_this_thread() {
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (tls_worker.slot == nullptr || tls_worker.session != session) {
    const std::scoped_lock lock(slots_mu_);
    auto slot = std::make_unique<WorkerSlot>();
    slot->id = slots_.size();
    slot->last_beat_us.store(elapsed_us(), std::memory_order_relaxed);
    tls_worker.slot = slot.get();
    tls_worker.session = session;
    slots_.push_back(std::move(slot));
  }
  return *tls_worker.slot;
}

void LiveTelemetry::add_total_cells(std::uint64_t n) {
  if (!enabled()) return;
  total_cells_.fetch_add(n, std::memory_order_relaxed);
}

void LiveTelemetry::cell_done() {
  if (!enabled()) return;
  done_cells_.fetch_add(1, std::memory_order_relaxed);
}

void LiveTelemetry::beat(const char* phase) {
  if (!enabled()) return;
  WorkerSlot& slot = slot_for_this_thread();
  slot.phase.store(phase, std::memory_order_relaxed);
  slot.last_beat_us.store(elapsed_us(), std::memory_order_relaxed);
}

void LiveTelemetry::begin_cell(std::uint64_t cell) {
  if (!enabled()) return;
  WorkerSlot& slot = slot_for_this_thread();
  slot.cell.store(cell, std::memory_order_relaxed);
  slot.phase.store("cell", std::memory_order_relaxed);
  slot.last_beat_us.store(elapsed_us(), std::memory_order_relaxed);
}

void LiveTelemetry::end_cell() {
  if (!enabled()) return;
  done_cells_.fetch_add(1, std::memory_order_relaxed);
  WorkerSlot& slot = slot_for_this_thread();
  slot.cell.store(kNoCell, std::memory_order_relaxed);
  slot.phase.store("idle", std::memory_order_relaxed);
  slot.last_beat_us.store(elapsed_us(), std::memory_order_relaxed);
}

std::size_t LiveTelemetry::run_watchdog(std::int64_t now_us) {
  const std::int64_t stall_us = std::chrono::duration_cast<
      std::chrono::microseconds>(options_.stall_after).count();
  std::size_t stalled = 0;
  const std::scoped_lock lock(slots_mu_);
  for (const auto& slot : slots_) {
    const std::int64_t age =
        now_us - slot->last_beat_us.load(std::memory_order_relaxed);
    const bool was_stalled = slot->stalled.load(std::memory_order_relaxed);
    if (age > stall_us && !was_stalled) {
      slot->stalled.store(true, std::memory_order_relaxed);
      static Counter& stalls = registry().counter("live.stalls");
      stalls.add();
      const std::uint64_t cell = slot->cell.load(std::memory_order_relaxed);
      std::ostringstream msg;
      msg << "live: worker " << slot->id << " stalled for " << age / 1000
          << " ms in phase \"" << slot->phase.load(std::memory_order_relaxed)
          << "\"";
      if (cell != kNoCell) msg << " (cell " << cell << ")";
      log_line(LogLevel::kWarn, msg.str());
    } else if (age <= stall_us && was_stalled) {
      slot->stalled.store(false, std::memory_order_relaxed);
      std::ostringstream msg;
      msg << "live: worker " << slot->id << " recovered";
      log_line(LogLevel::kWarn, msg.str());
    }
    if (slot->stalled.load(std::memory_order_relaxed)) ++stalled;
  }
  return stalled;
}

void LiveTelemetry::write_snapshot(const char* state) {
  if (!enabled()) return;
  const std::scoped_lock lock(write_mu_);
  const std::int64_t now_us = elapsed_us();
  const double wall_ms = static_cast<double>(now_us) / 1000.0;
  const std::uint64_t done = done_cells_.load(std::memory_order_relaxed);
  const std::uint64_t total = total_cells_.load(std::memory_order_relaxed);

  // Trailing throughput over the last ~32 samples drives the ETA, so it
  // tracks the current phase instead of averaging over a cold start.
  trail_.emplace_back(wall_ms, done);
  while (trail_.size() > 32) trail_.pop_front();
  double cells_per_s = 0.0;
  if (trail_.size() >= 2) {
    const double dt_ms = trail_.back().first - trail_.front().first;
    const double dn = static_cast<double>(trail_.back().second -
                                          trail_.front().second);
    if (dt_ms > 0.0 && dn > 0.0) cells_per_s = dn * 1000.0 / dt_ms;
  }
  // -1 = unknown (no throughput signal yet); hyve_top renders "--".
  double eta_ms = -1.0;
  if (cells_per_s > 0.0 && total >= done)
    eta_ms = static_cast<double>(total - done) * 1000.0 / cells_per_s;

  const bool running = std::string_view(state) == "running";
  const std::size_t stalled_now = running ? run_watchdog(now_us) : 0;

  const HostMemSample mem = read_host_memory();
  rss_history_.push_back(mem.rss_kb);
  if (rss_history_.size() > 60)
    rss_history_.erase(rss_history_.begin(),
                       rss_history_.end() - 60);

  std::ostringstream os;
  os << "{\"schema\":\"hyve-live-status\",\"version\":1,"
     << "\"state\":\"" << state << "\",\"bench\":";
  write_json_escaped(os, options_.bench);
  os << ",\"pid\":" << ::getpid() << ",\"wall_ms\":" << wall_ms
     << ",\"interval_ms\":" << options_.interval.count()
     << ",\"stall_after_ms\":" << options_.stall_after.count()
     << ",\"snapshot\":" << snapshots_.load(std::memory_order_relaxed) + 1
     << ",\"progress\":{\"done\":" << done << ",\"total\":" << total
     << ",\"cells_per_s\":" << cells_per_s << ",\"eta_ms\":" << eta_ms
     << "},\"stalled\":" << stalled_now << ",\"rss_kb\":" << mem.rss_kb
     << ",\"peak_rss_kb\":" << mem.peak_rss_kb << ",\"rss_history\":[";
  for (std::size_t i = 0; i < rss_history_.size(); ++i) {
    if (i > 0) os << ',';
    os << rss_history_[i];
  }
  os << "],\"workers\":[";
  {
    const std::scoped_lock slots_lock(slots_mu_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const WorkerSlot& slot = *slots_[i];
      const std::uint64_t cell = slot.cell.load(std::memory_order_relaxed);
      const std::int64_t age =
          now_us - slot.last_beat_us.load(std::memory_order_relaxed);
      if (i > 0) os << ',';
      os << "{\"id\":" << slot.id << ",\"phase\":";
      write_json_escaped(os, slot.phase.load(std::memory_order_relaxed));
      os << ",\"cell\":";
      if (cell == kNoCell)
        os << -1;
      else
        os << cell;
      os << ",\"age_ms\":" << static_cast<double>(age) / 1000.0
         << ",\"stalled\":"
         << (slot.stalled.load(std::memory_order_relaxed) ? "true"
                                                          : "false")
         << '}';
    }
  }
  os << "],\"metrics\":{";
  {
    // The registry dump's "name=value" lines re-render directly as JSON
    // members: names are identifier-ish and values are numeric tokens.
    std::istringstream dump(registry().dump_string());
    std::string line;
    bool first = true;
    while (std::getline(dump, line)) {
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) continue;
      if (!first) os << ',';
      first = false;
      write_json_escaped(os, line.substr(0, eq));
      os << ':' << line.substr(eq + 1);
    }
  }
  os << "}}\n";

  const std::string tmp = options_.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      log_line(LogLevel::kWarn,
               "live: cannot write status file " + tmp);
      return;
    }
    out << os.str();
    if (!out.good()) return;
  }
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    log_line(LogLevel::kWarn,
             "live: cannot publish status file " + options_.path);
    return;
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  static Counter& published = registry().counter("live.snapshots");
  published.add();
}

LiveTelemetry& live_telemetry() {
  static LiveTelemetry instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Flight recorder.

namespace {

std::atomic<int> g_flight_signal{0};
int g_flight_pipe_write = -1;
std::mutex g_flight_mu;  // guards g_flight_save / g_flight_installed
std::function<void(int)> g_flight_save;
bool g_flight_installed = false;

// Async-signal-safe by construction: one lock-free CAS plus one write()
// into the self-pipe. Everything else happens on the recorder thread.
void flight_signal_handler(int signum) {
  int expected = 0;
  if (g_flight_signal.compare_exchange_strong(expected, signum,
                                              std::memory_order_relaxed)) {
    const unsigned char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(g_flight_pipe_write, &byte, 1);
  }
  // A hooked abort would re-raise with the default action as soon as
  // this handler returns, killing the process before the recorder
  // finishes saving; park the faulting thread instead — the recorder
  // _exit()s underneath it.
  if (signum == SIGABRT)
    while (true) ::pause();
}

const char* flight_signal_name(int signum) {
  switch (signum) {
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
    case SIGABRT: return "SIGABRT";
    default: return "signal";
  }
}

}  // namespace

void install_flight_recorder(std::function<void(int)> save) {
  const char* mode_env = std::getenv("HYVE_FLIGHT_RECORD");
  const std::string mode = mode_env != nullptr ? mode_env : "";
  if (mode == "off") return;
  {
    const std::scoped_lock lock(g_flight_mu);
    g_flight_save = std::move(save);
    if (g_flight_installed) return;  // handlers + thread already armed
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    log_line(LogLevel::kWarn,
             "flight record: pipe() failed, recorder not armed");
    return;
  }
  g_flight_pipe_write = fds[1];
  const int read_fd = fds[0];
  {
    const std::scoped_lock lock(g_flight_mu);
    g_flight_installed = true;
  }
  std::thread([read_fd] {
    unsigned char byte = 0;
    while (true) {
      const ssize_t n = ::read(read_fd, &byte, 1);
      if (n == 1) break;
      if (n < 0 && errno == EINTR) continue;
      return;  // pipe gone — nothing to record
    }
    const int signum = g_flight_signal.load(std::memory_order_relaxed);
    log_line(LogLevel::kWarn,
             std::string("flight record: caught ") +
                 flight_signal_name(signum) +
                 ", finalizing partial outputs");
    std::function<void(int)> callback;
    {
      const std::scoped_lock lock(g_flight_mu);
      callback = g_flight_save;
    }
    if (callback) {
      try {
        callback(signum);
      } catch (const std::exception& e) {
        log_line(LogLevel::kError,
                 std::string("flight record: save failed: ") + e.what());
      } catch (...) {
        log_line(LogLevel::kError, "flight record: save failed");
      }
    }
    std::cout.flush();
    std::cerr.flush();
    ::_exit(kFlightRecordExitCode);
  }).detach();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = flight_signal_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  if (mode == "abort") ::sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace hyve::obs
