// Parallel experiment sweeps (the engine behind tools/hyve_experiments,
// examples/design_space_explorer and the bench harness's dataset grids).
//
// A SweepSpec declares a (configs × algorithms × graphs) grid; the
// SweepEngine runs its cells on a pool of worker threads pulling from an
// atomic work queue, sharing one GraphCache/PartitionCache so each graph
// is loaded, hash-balanced and partitioned once per sweep instead of
// once per cell. Cell execution is deterministic and results are handed
// to the ResultSink in cell order regardless of thread count, so
// `--jobs 8` output is byte-identical to `--jobs 1`.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/machine.hpp"
#include "exp/cache.hpp"

namespace hyve::obs {
class Trace;
}  // namespace hyve::obs

namespace hyve::exp {

// Declarative grid. Expansion order is row-major with configs
// outermost, then partitioners, then algorithms, with graphs innermost
// — the order the serial tools always used, partitioners slotted next
// to the config axis they modify.
struct SweepSpec {
  std::vector<HyveConfig> configs;
  // Partitioning strategies crossed with every config; each cell's
  // config carries the strategy via HyveConfig::set_partitioner (which
  // also annotates the label, keeping report rows distinct). The
  // default single-element axis leaves configs untouched.
  std::vector<PartitionerSpec> partitioners = {PartitionerSpec{}};
  std::vector<Algorithm> algorithms;
  std::vector<std::string> graphs;  // GraphCache keys

  // The full built-in grid of tools/hyve_experiments: the Fig. 16
  // accelerator configs × core algorithms × five datasets.
  static SweepSpec full_grid();

  std::size_t size() const {
    return configs.size() * partitioners.size() * algorithms.size() *
           graphs.size();
  }
};

struct SweepCell {
  std::size_t index = 0;  // position in expansion order
  HyveConfig config;
  Algorithm algorithm;
  std::string graph_key;
};

// Expands the grid into cells (validates that every axis is non-empty).
std::vector<SweepCell> expand(const SweepSpec& spec);

// Runs fn(i) for every i in [0, n) on a pool of `jobs` worker threads
// (0 = hardware concurrency) pulling from an atomic work queue, and
// rethrows the first failure after the pool drains. Results should be
// written into index-addressed slots so downstream rendering is
// independent of thread scheduling — this is the primitive behind
// SweepEngine::run and the bench harness's irregular (non
// config×algo×graph) grids.
void parallel_cells(std::size_t n, int jobs,
                    const std::function<void(std::size_t)>& fn);

// Runs one cell through the caches. Produces a report identical to
// HyveMachine(config).run(graph, algorithm). When `trace` is non-null
// the run's phase spans land on tracks of process `trace_pid` (the
// engine uses one pid per cell so sweep traces stay disentangled).
// When `functional` is non-null the functional phase is memoised
// through it: cells that agree on (graph image, algorithm, P, frontier
// mode) — e.g. a sweep over memory technologies — run the vertex
// program once and replay the outcome, with byte-identical reports.
RunReport run_cached(GraphCache& graphs, PartitionCache& partitions,
                     const HyveConfig& config, Algorithm algorithm,
                     const std::string& graph_key,
                     obs::Trace* trace = nullptr,
                     std::uint32_t trace_pid = 1,
                     FunctionalCache* functional = nullptr);

// Thread-safe, order-stable record writer. The engine calls write() in
// strict cell order; every record is round-tripped through
// run_report_from_json() before it is emitted, so a sweep can never
// produce output the tooling cannot read back.
class ResultSink {
 public:
  enum class Format { kJsonl, kCsv };
  static std::optional<Format> parse_format(const std::string& name);

  // `annotate_graph` appends "@<graph>" to the config label of emitted
  // records (the historical hyve_experiments convention).
  ResultSink(std::ostream& os, Format format, bool annotate_graph = true);

  void write(const SweepCell& cell, const RunReport& report);
  std::size_t records() const { return records_; }

 private:
  std::ostream& os_;
  Format format_;
  bool annotate_graph_;
  std::size_t records_ = 0;
};

struct SweepOptions {
  int jobs = 0;  // worker threads; 0 → hardware concurrency
  // Optional span sink. Each cell traces onto its own pid (cell index
  // + 1); timestamps are simulated ns, so the trace bytes are the same
  // for any `jobs` value.
  obs::Trace* trace = nullptr;
  // Called for each completed cell, in cell-index order under the same
  // lock as the ResultSink flush. Lets callers capture results as they
  // land (the benches' --json collector does, so a flight-recorded
  // partial report contains every cell finished so far).
  std::function<void(const SweepCell&, const RunReport&)> on_result;
};

struct SweepResult {
  SweepCell cell;
  RunReport report;
};

class SweepEngine {
 public:
  // `functional` (optional) memoises functional phases across cells —
  // see run_cached(). The caller owns it, like the two caches.
  SweepEngine(GraphCache& graphs, PartitionCache& partitions,
              FunctionalCache* functional = nullptr)
      : graphs_(graphs), partitions_(partitions), functional_(functional) {}

  // Runs every cell of `spec` and returns the reports in cell order. If
  // `sink` is non-null each result is also written to it, in cell order,
  // as soon as its prefix is complete. Rethrows the first cell failure
  // after the pool drains.
  std::vector<SweepResult> run(const SweepSpec& spec,
                               const SweepOptions& options = {},
                               ResultSink* sink = nullptr);

 private:
  GraphCache& graphs_;
  PartitionCache& partitions_;
  FunctionalCache* functional_;
};

}  // namespace hyve::exp
