#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <thread>
#include <utility>

#include "algos/frontier.hpp"
#include "core/report_io.hpp"
#include "obs/host_profiler.hpp"
#include "obs/live.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace hyve::exp {

SweepSpec SweepSpec::full_grid() {
  SweepSpec spec;
  spec.configs = fig16_accelerator_configs();
  spec.algorithms.assign(std::begin(kCoreAlgorithms),
                         std::end(kCoreAlgorithms));
  for (const DatasetId id : kAllDatasets)
    spec.graphs.push_back(dataset_name(id));
  return spec;
}

std::vector<SweepCell> expand(const SweepSpec& spec) {
  HYVE_CHECK_MSG(!spec.configs.empty() && !spec.partitioners.empty() &&
                     !spec.algorithms.empty() && !spec.graphs.empty(),
                 "sweep spec has an empty axis");
  std::vector<SweepCell> cells;
  cells.reserve(spec.size());
  for (const HyveConfig& config : spec.configs)
    for (const PartitionerSpec& partitioner : spec.partitioners) {
      HyveConfig cell_config = config;
      cell_config.set_partitioner(partitioner);
      for (const Algorithm algorithm : spec.algorithms)
        for (const std::string& graph : spec.graphs)
          cells.push_back({cells.size(), cell_config, algorithm, graph});
    }
  return cells;
}

RunReport run_cached(GraphCache& graphs, PartitionCache& partitions,
                     const HyveConfig& config, Algorithm algorithm,
                     const std::string& graph_key, obs::Trace* trace,
                     std::uint32_t trace_pid, FunctionalCache* functional) {
  const HyveMachine machine(config);
  const auto program = make_program(algorithm);
  // Hold shared ownership for the whole run: under a cache size cap a
  // concurrent worker may evict these entries while we simulate.
  std::shared_ptr<const Graph> graph = graphs.acquire(graph_key);
  std::string schedule_key = graph_key;
  if (config.hash_balance) {
    graph = graphs.acquire_balanced(graph_key, config.hash_balance_seed);
    schedule_key =
        GraphCache::balanced_key(graph_key, config.hash_balance_seed);
  }
  const std::uint32_t p =
      machine.choose_num_intervals(*graph, program->vertex_value_bytes());
  const std::shared_ptr<const Partitioning> schedule =
      partitions.acquire(schedule_key, *graph, p, config.partitioner);
  if (functional == nullptr)
    return machine.run_with_schedule(*graph, *schedule, *program, trace,
                                     trace_pid);
  // schedule_key already identifies the graph image (balance seed
  // included); the partitioner, P and the frontier mode pin the rest of
  // the functional inputs, so memory-tech-only config changes share one
  // entry while different strategies (whose block order steers in-pass
  // propagation) never collide.
  const FunctionalKey key{schedule_key, program->name(),
                          config.partitioner.to_string(), p,
                          config.frontier_block_skipping,
                          pattern_reuse_enabled()};
  const std::shared_ptr<const FunctionalOutcome> outcome =
      functional->acquire(key, [&] {
        return machine.run_functional_phase(*graph, *schedule, *program);
      });
  return machine.run_with_functional(*graph, *schedule, *program, *outcome,
                                     trace, trace_pid);
}

std::optional<ResultSink::Format> ResultSink::parse_format(
    const std::string& name) {
  if (name == "jsonl" || name == "json") return Format::kJsonl;
  if (name == "csv") return Format::kCsv;
  return std::nullopt;
}

ResultSink::ResultSink(std::ostream& os, Format format, bool annotate_graph)
    : os_(os), format_(format), annotate_graph_(annotate_graph) {
  if (format_ == Format::kCsv)
    os_ << "config,algorithm,graph,num_intervals,iterations,"
           "edges_traversed,exec_time_ns,energy_pj,mteps,mteps_per_watt\n";
}

void ResultSink::write(const SweepCell& cell, const RunReport& report) {
  RunReport annotated = report;
  if (annotate_graph_ && format_ == Format::kJsonl)
    annotated.config_label += "@" + cell.graph_key;

  // Round-trip every record through the parser before emitting it: a
  // sweep must never produce output the tooling cannot read back.
  const std::string json = validated_report_json(annotated);

  if (format_ == Format::kJsonl) {
    os_ << json << '\n';
  } else {
    os_ << annotated.config_label << ',' << annotated.algorithm << ','
        << cell.graph_key << ',' << annotated.num_intervals << ','
        << annotated.iterations << ',' << annotated.edges_traversed << ','
        << Table::num(annotated.exec_time_ns, 0) << ','
        << Table::num(annotated.total_energy_pj(), 0) << ','
        << Table::num(annotated.mteps(), 1) << ','
        << Table::num(annotated.mteps_per_watt(), 1) << '\n';
  }
  ++records_;
}

void parallel_cells(std::size_t n, int jobs_option,
                    const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // Live progress/heartbeats for every cell list that flows through
  // here (SweepEngine grids and the benches' irregular run_cells lists
  // alike). Totals accumulate per call so a binary running several
  // grids reports one monotone done/total. No-ops when --live-status
  // was not given.
  obs::LiveTelemetry& live = obs::live_telemetry();
  live.add_total_cells(n);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex mu;  // guards first_error
  std::exception_ptr first_error;

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      live.begin_cell(i);
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(mu);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
      live.end_cell();
    }
  };

  std::size_t jobs =
      jobs_option > 0
          ? static_cast<std::size_t>(jobs_option)
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  jobs = std::min(jobs, n);

  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<SweepResult> SweepEngine::run(const SweepSpec& spec,
                                          const SweepOptions& options,
                                          ResultSink* sink) {
  const std::vector<SweepCell> cells = expand(spec);
  const std::size_t n = cells.size();
  std::vector<std::optional<RunReport>> reports(n);

  if (options.trace != nullptr) {
    // Graph-cache hit-rate timeline on the sweep's own pid-0 track.
    // Computed analytically in cell-index order — the first touch of
    // each graph key is its compulsory miss, every later touch a hit
    // (the unbounded-budget behaviour) — so the trace stays
    // byte-identical for any --jobs value even though the real
    // execution order races and a byte-capped cache may evict.
    options.trace->process_name(0, "sweep");
    options.trace->thread_name(0, 0, "graph cache");
    std::set<std::string> seen;
    std::uint64_t touches = 0;
    std::uint64_t hits = 0;
    const auto touch = [&](const std::string& key) {
      ++touches;
      if (!seen.insert(key).second) ++hits;
    };
    for (std::size_t i = 0; i < n; ++i) {
      touch(cells[i].graph_key);
      if (cells[i].config.hash_balance)
        touch(GraphCache::balanced_key(cells[i].graph_key,
                                       cells[i].config.hash_balance_seed));
      // ts is the cell index: the track reads as "hit rate after cell i".
      options.trace->counter(
          0, 0, "graph-cache hit rate", static_cast<double>(i),
          {{"hit_rate", static_cast<double>(hits) /
                            static_cast<double>(touches)}});
    }
  }

  std::mutex mu;  // guards reports[] and flushed
  std::size_t flushed = 0;

  std::atomic<std::int64_t> in_flight{0};

  parallel_cells(n, options.jobs, [&](std::size_t i) {
    const auto wall_start = std::chrono::steady_clock::now();
    if (obs::enabled())
      obs::registry()
          .gauge("exp.sweep.in_flight")
          .set(in_flight.fetch_add(1, std::memory_order_relaxed) + 1);
    // pid 0 would collide with the default single-run pid of 1 for the
    // first cell only; cell index + 1 keeps every cell distinct anyway.
    std::optional<RunReport> cell_report;
    {
      const obs::HostSpan host_span("sweep.cell");
      cell_report = run_cached(graphs_, partitions_, cells[i].config,
                               cells[i].algorithm, cells[i].graph_key,
                               options.trace,
                               static_cast<std::uint32_t>(i) + 1,
                               functional_);
    }
    RunReport report = std::move(*cell_report);
    if (obs::host_profiler().enabled()) {
      obs::host_profiler().count("cells", 1);
      obs::host_profiler().count("edges", report.edges_traversed);
    }
    if (obs::enabled()) {
      static obs::Counter& cells_done =
          obs::registry().counter("exp.sweep.cells");
      static obs::Histogram& wall_us =
          obs::registry().histogram("exp.sweep.cell_wall_us");
      cells_done.add();
      wall_us.observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wall_start)
              .count()));
      obs::registry()
          .gauge("exp.sweep.in_flight")
          .set(in_flight.fetch_sub(1, std::memory_order_relaxed) - 1);
    }
    const std::scoped_lock lock(mu);
    reports[i] = std::move(report);
    // Emit the completed prefix; later cells wait their turn so the
    // output order never depends on thread scheduling.
    while (flushed < n && reports[flushed].has_value()) {
      if (sink != nullptr) sink->write(cells[flushed], *reports[flushed]);
      if (options.on_result)
        options.on_result(cells[flushed], *reports[flushed]);
      ++flushed;
    }
  });

  std::vector<SweepResult> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({cells[i], std::move(*reports[i])});
  return out;
}

}  // namespace hyve::exp
