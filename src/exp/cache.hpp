// Memoising graph and partition caches for the sweep engine (src/exp).
//
// A (config × algorithm × dataset) sweep re-uses the same few graphs in
// every cell; before these caches each cell re-loaded the graph,
// re-applied the §4.3 hash-balancing remap and re-ran the counting-sort
// partitioner. Both caches are safe for concurrent use by the engine's
// worker pool: entries are created under a short map lock and built
// exactly once via std::call_once, so two workers needing the same graph
// share one build while workers needing different graphs proceed in
// parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace hyve::exp {

// Graphs keyed by a caller-chosen string. The five built-in datasets are
// pre-registered under their short names ("YT".."TW") and resolve through
// dataset_graph()'s process-wide store, so they are never duplicated.
class GraphCache {
 public:
  GraphCache();

  // Registers a lazily-built graph under `key` (throws if taken).
  void add(const std::string& key, std::function<Graph()> make);
  // Registers an already-built graph (stored by move).
  void add(const std::string& key, Graph graph);

  bool contains(const std::string& key) const;

  // The registered graph, built on first use.
  const Graph& base(const std::string& key);

  // The hashed_remap(seed) image of `key` (§4.3 balancing), memoised per
  // (key, seed) — one remap per sweep instead of one per cell.
  const Graph& balanced(const std::string& key, std::uint64_t seed);

  // Cache key of the balanced image, also used by PartitionCache.
  static std::string balanced_key(const std::string& key,
                                  std::uint64_t seed) {
    return key + "#balanced:" + std::to_string(seed);
  }

  // Number of graphs materialised so far (builds, not hits).
  std::size_t loads() const { return loads_.load(); }

 private:
  struct Entry {
    std::once_flag once;
    std::function<const Graph&()> build;  // resolves or builds the graph
    std::unique_ptr<Graph> owned;         // set when the cache owns it
    const Graph* graph = nullptr;
  };

  Entry& entry_for(const std::string& key);
  const Graph& materialise(Entry& entry);

  mutable std::mutex mu_;  // guards the maps, not graph construction
  std::map<std::string, std::unique_ptr<Entry>> base_;
  std::map<std::pair<std::string, std::uint64_t>, std::unique_ptr<Entry>>
      balanced_;
  std::atomic<std::size_t> loads_{0};
};

// Interval-block partitionings keyed by (graph key, P). The caller
// guarantees `key` uniquely identifies the graph's edge layout — use
// GraphCache keys (and GraphCache::balanced_key for remapped images).
class PartitionCache {
 public:
  const Partitioning& get(const std::string& key, const Graph& graph,
                          std::uint32_t num_intervals);

  // Number of partitionings built so far (builds, not hits).
  std::size_t builds() const { return builds_.load(); }

 private:
  struct Entry {
    std::once_flag once;
    std::unique_ptr<Partitioning> partitioning;
  };

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::uint32_t>, std::unique_ptr<Entry>>
      entries_;
  std::atomic<std::size_t> builds_{0};
};

}  // namespace hyve::exp
