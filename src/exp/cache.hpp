// Memoising graph and partition caches for the sweep engine (src/exp).
//
// A (config × algorithm × dataset) sweep re-uses the same few graphs in
// every cell; before these caches each cell re-loaded the graph,
// re-applied the §4.3 hash-balancing remap and re-ran the counting-sort
// partitioner. Both caches are safe for concurrent use by the engine's
// worker pool: entries are created under a short map lock and built
// under a per-entry mutex, so two workers needing the same graph share
// one build while workers needing different graphs proceed in parallel.
//
// Sweeps over many generated graphs would otherwise grow the caches
// without bound, so both are optionally size-capped: GraphCache takes a
// byte budget and PartitionCache an entry cap, each enforced by LRU
// eviction. Entries are handed out as shared_ptr, so evicting an entry
// another worker is still using only drops the cache's reference — the
// object is freed when its last user releases it. An evicted entry is
// transparently rebuilt on the next request (build callables must
// therefore be deterministic and repeatable), and evictions are counted
// next to the loads()/builds() stats so cache behaviour is observable in
// sweep output.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>

#include "core/machine.hpp"
#include "graph/blocked_reader.hpp"
#include "graph/datasets.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/partitioner.hpp"

namespace hyve::exp {

// Graphs keyed by a caller-chosen string. The five built-in datasets are
// pre-registered under their short names ("YT".."TW") and resolve through
// dataset_graph()'s process-wide store, so they are never duplicated (and
// never evicted — this cache holds no bytes of theirs).
class GraphCache {
 public:
  GraphCache();

  // Registers a lazily-built graph under `key` (throws if taken). `make`
  // must be deterministic: under a byte budget the entry may be evicted
  // and rebuilt by a later request.
  void add(const std::string& key, std::function<Graph()> make);
  // Registers an already-built graph. The cache pins it (it owns the only
  // copy and cannot rebuild it), so it is exempt from eviction.
  void add(const std::string& key, Graph graph);

  // Registers a HyVEgrf2 blocked file (graph/blocked_reader.hpp).
  // acquire() materialises it through the streaming window (evictable
  // and rebuildable from disk like any generated graph);
  // acquire_blocked() hands out the reader itself for consumers that can
  // stream. Reader windows are opened with the ooc window budget and
  // their residency counts against the cache's byte budget — block
  // windows are cached bytes like any other.
  void add_blocked(const std::string& key, const std::string& path);
  std::shared_ptr<BlockedGraphReader> acquire_blocked(const std::string& key);

  // Decoded-window byte budget applied to each blocked reader this
  // cache opens (0 = unbounded, the default). Applies to already-open
  // readers immediately.
  void set_ooc_window_budget(std::size_t bytes);
  std::size_t ooc_window_budget() const;

  bool contains(const std::string& key) const;

  // The registered graph, built on first use. The shared_ptr keeps the
  // graph alive across a concurrent eviction — under a byte budget,
  // prefer these over the reference-returning accessors below.
  std::shared_ptr<const Graph> acquire(const std::string& key);

  // The hashed_remap(seed) image of `key` (§4.3 balancing), memoised per
  // (key, seed) — one remap per sweep instead of one per cell.
  std::shared_ptr<const Graph> acquire_balanced(const std::string& key,
                                                std::uint64_t seed);

  // Reference-returning conveniences for callers that set no byte budget
  // (the reference is valid only while the entry stays resident).
  const Graph& base(const std::string& key) { return *acquire(key); }
  const Graph& balanced(const std::string& key, std::uint64_t seed) {
    return *acquire_balanced(key, seed);
  }

  // Cache key of the balanced image, also used by PartitionCache.
  static std::string balanced_key(const std::string& key,
                                  std::uint64_t seed) {
    return key + "#balanced:" + std::to_string(seed);
  }

  // LRU byte budget over owned graphs (0 = unbounded, the default).
  // Dataset-backed and pinned entries are exempt; everything else is
  // evicted least-recently-used first until the budget holds.
  void set_byte_budget(std::size_t bytes);
  std::size_t byte_budget() const;
  // Bytes of owned graphs plus blocked-reader decode windows currently
  // resident.
  std::size_t resident_bytes() const;

  // Number of graphs materialised so far (builds including rebuilds
  // after eviction, not hits).
  std::size_t loads() const { return loads_.load(); }
  // Number of graphs evicted to satisfy the byte budget.
  std::size_t evictions() const { return evictions_.load(); }

 private:
  struct Entry {
    std::mutex build_mu;  // serialises (re)builds of this entry
    std::function<std::shared_ptr<const Graph>()> build;
    std::shared_ptr<const Graph> graph;  // null until built / after evict
    bool evictable = true;
    std::uint64_t last_use = 0;
    std::size_t bytes = 0;  // accounted while resident
  };

  void add_impl(const std::string& key,
                std::function<std::shared_ptr<const Graph>()> build,
                bool evictable);
  Entry& entry_for(const std::string& key);
  std::shared_ptr<const Graph> materialise(Entry& entry);
  void evict_to_budget_locked(const Entry* keep);

  struct BlockedEntry {
    std::string path;
    std::shared_ptr<BlockedGraphReader> reader;  // opened lazily
    std::uint64_t last_use = 0;
  };

  // Sum of open blocked readers' decoded-window bytes (under mu_).
  std::size_t blocked_window_bytes_locked() const;

  mutable std::mutex mu_;  // guards the maps and LRU state, not builds
  std::map<std::string, std::unique_ptr<Entry>> base_;
  std::map<std::pair<std::string, std::uint64_t>, std::unique_ptr<Entry>>
      balanced_;
  std::map<std::string, BlockedEntry> blocked_;
  std::uint64_t tick_ = 0;  // LRU clock (under mu_)
  std::size_t budget_bytes_ = 0;
  std::size_t resident_bytes_ = 0;
  std::size_t ooc_window_budget_ = 0;
  std::atomic<std::size_t> loads_{0};
  std::atomic<std::size_t> evictions_{0};
};

// Byte budget for a GraphCache when the user gave none: a quarter of
// the machine's currently available memory (/proc/meminfo MemAvailable),
// so a generated-graph sweep cannot swap the host, or 0 (unbounded) on
// platforms where that cannot be read. Smoke runs get a fixed 256 MiB so
// CI output never depends on the host's memory pressure.
std::size_t default_graph_cache_budget(bool smoke);

// Partitionings keyed by (graph key, partitioner strategy, P), so two
// strategies over the same graph can never collide. The caller
// guarantees `key` uniquely identifies the graph's edge layout — use
// GraphCache keys (and GraphCache::balanced_key for remapped images).
class PartitionCache {
 public:
  // Per-strategy counter snapshot (keyed by PartitionerSpec::to_string),
  // so cache effectiveness is attributable per partitioner.
  struct StrategyStats {
    std::size_t hits = 0;
    std::size_t builds = 0;
    std::size_t evictions = 0;
  };

  // The memoised partitioning of `graph` under `spec` (default: the
  // interval-block strategy), built on first use. The shared_ptr stays
  // valid across a concurrent eviction.
  std::shared_ptr<const Partitioning> acquire(
      const std::string& key, const Graph& graph, std::uint32_t num_intervals,
      const PartitionerSpec& spec = {});

  // Reference-returning convenience for callers that set no entry cap
  // (the reference is valid only while the entry stays resident).
  const Partitioning& get(const std::string& key, const Graph& graph,
                          std::uint32_t num_intervals,
                          const PartitionerSpec& spec = {}) {
    return *acquire(key, graph, num_intervals, spec);
  }

  // LRU cap on resident partitionings (0 = unbounded, the default).
  // Enforced after each build; in-flight builds may overshoot briefly.
  void set_max_entries(std::size_t n);
  std::size_t max_entries() const;
  // Partitionings currently resident.
  std::size_t resident() const;

  // Number of partitionings built so far (builds including rebuilds
  // after eviction, not hits).
  std::size_t builds() const { return builds_.load(); }
  // Number of partitionings evicted to satisfy the entry cap.
  std::size_t evictions() const { return evictions_.load(); }
  // Hit/build/eviction counts broken down by partitioner strategy.
  std::map<std::string, StrategyStats> strategy_stats() const;

 private:
  struct Entry {
    std::mutex build_mu;  // serialises (re)builds of this entry
    std::shared_ptr<const Partitioning> partitioning;
    std::string strategy;  // for eviction attribution
    std::uint64_t last_use = 0;
  };

  void evict_to_cap_locked(const Entry* keep);

  mutable std::mutex mu_;  // guards the map and LRU state, not builds
  std::map<std::tuple<std::string, std::string, std::uint32_t>,
           std::unique_ptr<Entry>>
      entries_;
  std::map<std::string, StrategyStats> strategy_stats_;  // under mu_
  std::uint64_t tick_ = 0;
  std::size_t max_entries_ = 0;
  std::size_t resident_ = 0;
  std::atomic<std::size_t> builds_{0};
  std::atomic<std::size_t> evictions_{0};
};

// Key of a memoised functional outcome. Two sweep cells share an
// outcome exactly when their functional inputs agree: the graph image
// (a GraphCache key; hash-balanced images fold the seed in via
// GraphCache::balanced_key), the algorithm, the partitioner strategy
// (block iteration order steers in-pass propagation, so iteration
// counts differ across strategies), the interval count P, and the
// frontier mode. Memory technologies, power gating, data sharing and
// edge width never appear — they only affect accounting, so a sweep
// over memory configs hits this cache on every cell after the first.
struct FunctionalKey {
  std::string graph_key;
  std::string algorithm;
  std::string partitioner = "interval";  // PartitionerSpec::to_string
  std::uint32_t num_intervals = 0;       // P
  bool frontier = false;
  // Per-iteration pattern reuse (algos/frontier.hpp). Results and
  // reports are byte-identical either way (tested), but the cached
  // FrontierTrace carries the blocks/edges_skipped tallies of the mode
  // that built it — keying on the mode keeps the sim.kernel.* metrics
  // honest when one process mixes both.
  bool pattern_reuse = true;

  friend bool operator==(const FunctionalKey&,
                         const FunctionalKey&) = default;
  friend auto operator<=>(const FunctionalKey&,
                          const FunctionalKey&) = default;
};

// Memoised functional-phase outcomes (HyveMachine::run_functional_phase
// results) for the sweep engine, following the GraphCache concurrency
// scheme: entries are created under a short map lock and built under a
// per-entry mutex, so workers needing the same outcome share one build
// while different outcomes build in parallel. LRU-evicted against a
// byte budget (FrontierTrace entries are ~iterations x active-block
// records; dense outcomes are a few dozen bytes); entries are handed
// out as shared_ptr so eviction never invalidates a user, and a later
// request transparently rebuilds (builds must be deterministic).
class FunctionalCache {
 public:
  // The memoised outcome for `key`, built on first use via `build`.
  std::shared_ptr<const FunctionalOutcome> acquire(
      const FunctionalKey& key,
      const std::function<FunctionalOutcome()>& build);

  // LRU byte budget (0 = unbounded, the default), sized by each entry's
  // FunctionalOutcome::approx_bytes().
  void set_byte_budget(std::size_t bytes);
  std::size_t byte_budget() const;
  std::size_t resident_bytes() const;

  std::size_t hits() const { return hits_.load(); }
  std::size_t misses() const { return misses_.load(); }
  std::size_t evictions() const { return evictions_.load(); }
  double hit_rate() const {
    const std::size_t h = hits(), m = misses();
    return h + m == 0 ? 0.0 : static_cast<double>(h) / (h + m);
  }

 private:
  struct Entry {
    std::mutex build_mu;  // serialises (re)builds of this entry
    std::shared_ptr<const FunctionalOutcome> outcome;
    std::uint64_t last_use = 0;
    std::size_t bytes = 0;  // accounted while resident
  };

  void evict_to_budget_locked(const Entry* keep);

  mutable std::mutex mu_;  // guards the map and LRU state, not builds
  std::map<FunctionalKey, std::unique_ptr<Entry>> entries_;
  std::uint64_t tick_ = 0;
  std::size_t budget_bytes_ = 0;
  std::size_t resident_bytes_ = 0;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace hyve::exp
