#include "exp/cache.hpp"

#include "util/check.hpp"

namespace hyve::exp {

GraphCache::GraphCache() {
  for (const DatasetId id : kAllDatasets) {
    auto entry = std::make_unique<Entry>();
    entry->build = [id]() -> const Graph& { return dataset_graph(id); };
    base_.emplace(dataset_name(id), std::move(entry));
  }
}

void GraphCache::add(const std::string& key, std::function<Graph()> make) {
  const std::scoped_lock lock(mu_);
  auto entry = std::make_unique<Entry>();
  Entry* e = entry.get();
  e->build = [e, make = std::move(make)]() -> const Graph& {
    e->owned = std::make_unique<Graph>(make());
    return *e->owned;
  };
  const bool inserted = base_.emplace(key, std::move(entry)).second;
  HYVE_CHECK_MSG(inserted, "graph key already registered: " << key);
}

void GraphCache::add(const std::string& key, Graph graph) {
  auto holder = std::make_shared<Graph>(std::move(graph));
  add(key, [holder] { return Graph(*holder); });
}

bool GraphCache::contains(const std::string& key) const {
  const std::scoped_lock lock(mu_);
  return base_.count(key) > 0;
}

GraphCache::Entry& GraphCache::entry_for(const std::string& key) {
  const std::scoped_lock lock(mu_);
  const auto it = base_.find(key);
  HYVE_CHECK_MSG(it != base_.end(), "unknown graph key: " << key);
  return *it->second;
}

const Graph& GraphCache::materialise(Entry& entry) {
  std::call_once(entry.once, [&] {
    entry.graph = &entry.build();
    ++loads_;
  });
  return *entry.graph;
}

const Graph& GraphCache::base(const std::string& key) {
  return materialise(entry_for(key));
}

const Graph& GraphCache::balanced(const std::string& key,
                                  std::uint64_t seed) {
  const Graph& source = base(key);
  Entry* entry;
  {
    const std::scoped_lock lock(mu_);
    auto& slot = balanced_[{key, seed}];
    if (!slot) {
      slot = std::make_unique<Entry>();
      Entry* e = slot.get();
      e->build = [e, &source, seed]() -> const Graph& {
        e->owned = std::make_unique<Graph>(source.hashed_remap(seed));
        return *e->owned;
      };
    }
    entry = slot.get();
  }
  return materialise(*entry);
}

const Partitioning& PartitionCache::get(const std::string& key,
                                        const Graph& graph,
                                        std::uint32_t num_intervals) {
  Entry* entry;
  {
    const std::scoped_lock lock(mu_);
    auto& slot = entries_[{key, num_intervals}];
    if (!slot) slot = std::make_unique<Entry>();
    entry = slot.get();
  }
  std::call_once(entry->once, [&] {
    entry->partitioning = std::make_unique<Partitioning>(graph, num_intervals);
    ++builds_;
  });
  const Partitioning& p = *entry->partitioning;
  HYVE_CHECK_MSG(p.num_vertices() == graph.num_vertices() &&
                     p.num_edges() == graph.num_edges(),
                 "partition cache key \"" << key
                                          << "\" reused for a different graph");
  return p;
}

}  // namespace hyve::exp
