#include "exp/cache.hpp"

#include <fstream>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace hyve::exp {

namespace {

// Heap footprint of an owned graph — what eviction can actually free.
std::size_t graph_bytes(const Graph& g) {
  return sizeof(Graph) + g.edges().capacity() * sizeof(Edge);
}

// Registry mirrors of the per-instance atomics (loads()/builds()/...):
// the instance counters stay authoritative for tests; these feed the
// process-wide `--metrics` dump.
void count(const std::string& name, std::uint64_t delta = 1) {
  if (obs::enabled()) obs::registry().counter(name).add(delta);
}

void gauge(const std::string& name, std::int64_t value) {
  if (obs::enabled()) obs::registry().gauge(name).set(value);
}

}  // namespace

GraphCache::GraphCache() {
  for (const DatasetId id : kAllDatasets) {
    auto entry = std::make_unique<Entry>();
    // Non-owning view into dataset_graph()'s process-wide store: nothing
    // for this cache to free, so the entry is exempt from the budget.
    entry->build = [id] {
      return std::shared_ptr<const Graph>(std::shared_ptr<void>(),
                                          &dataset_graph(id));
    };
    entry->evictable = false;
    base_.emplace(dataset_name(id), std::move(entry));
  }
}

void GraphCache::add_impl(
    const std::string& key,
    std::function<std::shared_ptr<const Graph>()> build, bool evictable) {
  const std::scoped_lock lock(mu_);
  auto entry = std::make_unique<Entry>();
  entry->build = std::move(build);
  entry->evictable = evictable;
  const bool inserted = base_.emplace(key, std::move(entry)).second;
  HYVE_CHECK_MSG(inserted, "graph key already registered: " << key);
}

void GraphCache::add(const std::string& key, std::function<Graph()> make) {
  add_impl(
      key,
      [make = std::move(make)] {
        return std::make_shared<const Graph>(make());
      },
      /*evictable=*/true);
}

void GraphCache::add(const std::string& key, Graph graph) {
  auto holder = std::make_shared<const Graph>(std::move(graph));
  // The holder is the only copy; evicting it would lose the graph for
  // good, so the entry is pinned.
  add_impl(key, [holder] { return holder; }, /*evictable=*/false);
}

bool GraphCache::contains(const std::string& key) const {
  const std::scoped_lock lock(mu_);
  return base_.count(key) > 0;
}

GraphCache::Entry& GraphCache::entry_for(const std::string& key) {
  const std::scoped_lock lock(mu_);
  const auto it = base_.find(key);
  HYVE_CHECK_MSG(it != base_.end(), "unknown graph key: " << key);
  return *it->second;
}

std::shared_ptr<const Graph> GraphCache::materialise(Entry& entry) {
  {
    const std::scoped_lock lock(mu_);
    if (entry.graph) {
      entry.last_use = ++tick_;
      count("exp.graph_cache.hits");
      return entry.graph;
    }
  }
  // Build outside mu_ so unrelated entries proceed in parallel; the
  // per-entry mutex makes concurrent requests share one build.
  const std::scoped_lock build_lock(entry.build_mu);
  {
    const std::scoped_lock lock(mu_);
    if (entry.graph) {
      entry.last_use = ++tick_;
      count("exp.graph_cache.hits");
      return entry.graph;
    }
  }
  std::shared_ptr<const Graph> built = entry.build();
  ++loads_;
  count("exp.graph_cache.loads");
  const std::scoped_lock lock(mu_);
  entry.graph = built;
  entry.bytes = entry.evictable ? graph_bytes(*built) : 0;
  entry.last_use = ++tick_;
  resident_bytes_ += entry.bytes;
  if (budget_bytes_ > 0) evict_to_budget_locked(&entry);
  gauge("exp.graph_cache.resident_bytes",
        static_cast<std::int64_t>(resident_bytes_));
  return built;
}

void GraphCache::evict_to_budget_locked(const Entry* keep) {
  while (resident_bytes_ + blocked_window_bytes_locked() > budget_bytes_) {
    Entry* victim = nullptr;
    for (const auto& [key, entry] : base_)
      if (entry->graph && entry->evictable && entry.get() != keep &&
          (victim == nullptr || entry->last_use < victim->last_use))
        victim = entry.get();
    for (const auto& [key, entry] : balanced_)
      if (entry->graph && entry->evictable && entry.get() != keep &&
          (victim == nullptr || entry->last_use < victim->last_use))
        victim = entry.get();
    if (victim == nullptr) break;  // everything left is pinned or in use
    victim->graph.reset();
    resident_bytes_ -= victim->bytes;
    victim->bytes = 0;
    ++evictions_;
    count("exp.graph_cache.evictions");
  }
  // Still over with no evictable graph left: drop blocked decode
  // windows, least recently acquired first (their blocks refault from
  // the mapped file on next use).
  while (resident_bytes_ + blocked_window_bytes_locked() > budget_bytes_) {
    BlockedEntry* victim = nullptr;
    for (auto& [key, entry] : blocked_)
      if (entry.reader && entry.reader->window_resident_bytes() > 0 &&
          (victim == nullptr || entry.last_use < victim->last_use))
        victim = &entry;
    if (victim == nullptr) return;
    victim->reader->release_window();
    ++evictions_;
    count("exp.graph_cache.evictions");
  }
}

std::size_t GraphCache::blocked_window_bytes_locked() const {
  std::size_t bytes = 0;
  for (const auto& [key, entry] : blocked_)
    if (entry.reader) bytes += entry.reader->window_resident_bytes();
  return bytes;
}

void GraphCache::add_blocked(const std::string& key,
                             const std::string& path) {
  {
    const std::scoped_lock lock(mu_);
    const bool inserted = blocked_.emplace(key, BlockedEntry{path, nullptr, 0})
                              .second;
    HYVE_CHECK_MSG(inserted, "blocked graph key already registered: " << key);
  }
  // The materialised view registers like any generated graph: evictable,
  // rebuilt from the file (through the bounded window) after eviction.
  add_impl(
      key,
      [this, key] {
        return std::make_shared<const Graph>(materialize(*acquire_blocked(key)));
      },
      /*evictable=*/true);
}

std::shared_ptr<BlockedGraphReader> GraphCache::acquire_blocked(
    const std::string& key) {
  const std::scoped_lock lock(mu_);
  const auto it = blocked_.find(key);
  HYVE_CHECK_MSG(it != blocked_.end(), "unknown blocked graph key: " << key);
  BlockedEntry& entry = it->second;
  if (!entry.reader) {
    BlockedReaderOptions options;
    options.window_bytes = ooc_window_budget_;
    entry.reader = std::make_shared<BlockedGraphReader>(entry.path, options);
  }
  entry.last_use = ++tick_;
  return entry.reader;
}

void GraphCache::set_ooc_window_budget(std::size_t bytes) {
  const std::scoped_lock lock(mu_);
  ooc_window_budget_ = bytes;
  for (auto& [key, entry] : blocked_)
    if (entry.reader) entry.reader->set_window_budget(bytes);
}

std::size_t GraphCache::ooc_window_budget() const {
  const std::scoped_lock lock(mu_);
  return ooc_window_budget_;
}

std::shared_ptr<const Graph> GraphCache::acquire(const std::string& key) {
  return materialise(entry_for(key));
}

std::shared_ptr<const Graph> GraphCache::acquire_balanced(
    const std::string& key, std::uint64_t seed) {
  Entry* entry;
  {
    const std::scoped_lock lock(mu_);
    auto& slot = balanced_[{key, seed}];
    if (!slot) {
      slot = std::make_unique<Entry>();
      // Re-acquire the base graph inside the build so a rebuild after
      // eviction restores the source first (and holds it alive). The
      // per-graph remap memo makes a rebuild of a recently-evicted
      // image cheap and shares it with direct HyveMachine::run callers.
      slot->build = [this, key, seed] {
        const std::shared_ptr<const Graph> source = acquire(key);
        return source->hashed_remap_shared(seed);
      };
    }
    entry = slot.get();
  }
  return materialise(*entry);
}

void GraphCache::set_byte_budget(std::size_t bytes) {
  const std::scoped_lock lock(mu_);
  budget_bytes_ = bytes;
  gauge("exp.graph_cache.byte_budget",
        static_cast<std::int64_t>(budget_bytes_));
  if (budget_bytes_ > 0) evict_to_budget_locked(nullptr);
}

std::size_t GraphCache::byte_budget() const {
  const std::scoped_lock lock(mu_);
  return budget_bytes_;
}

std::size_t GraphCache::resident_bytes() const {
  const std::scoped_lock lock(mu_);
  return resident_bytes_ + blocked_window_bytes_locked();
}

std::size_t default_graph_cache_budget(bool smoke) {
  if (smoke) return std::size_t{256} << 20;
  std::ifstream meminfo("/proc/meminfo");
  std::string key;
  std::uint64_t kib = 0;
  std::string unit;
  while (meminfo >> key >> kib >> unit)
    if (key == "MemAvailable:")
      return static_cast<std::size_t>(kib) * 1024 / 4;
  return 0;  // no MemAvailable (non-Linux): keep the unbounded default
}

std::shared_ptr<const Partitioning> PartitionCache::acquire(
    const std::string& key, const Graph& graph, std::uint32_t num_intervals,
    const PartitionerSpec& spec) {
  const std::string strategy = spec.to_string();
  Entry* entry;
  {
    const std::scoped_lock lock(mu_);
    auto& slot = entries_[{key, strategy, num_intervals}];
    if (!slot) {
      slot = std::make_unique<Entry>();
      slot->strategy = strategy;
    }
    entry = slot.get();
    if (entry->partitioning) {
      entry->last_use = ++tick_;
      const std::shared_ptr<const Partitioning> p = entry->partitioning;
      HYVE_CHECK_MSG(
          p->num_vertices() == graph.num_vertices() &&
              p->num_edges() == graph.num_edges(),
          "partition cache key \"" << key
                                   << "\" reused for a different graph");
      ++strategy_stats_[strategy].hits;
      count("exp.partition_cache.hits");
      count("exp.partition_cache.hits." + strategy);
      return p;
    }
  }
  const std::scoped_lock build_lock(entry->build_mu);
  {
    const std::scoped_lock lock(mu_);
    if (entry->partitioning) {
      entry->last_use = ++tick_;
      ++strategy_stats_[strategy].hits;
      count("exp.partition_cache.hits");
      count("exp.partition_cache.hits." + strategy);
      return entry->partitioning;
    }
  }
  auto built = std::make_shared<const Partitioning>(
      make_partitioner(spec)->partition(graph, num_intervals));
  ++builds_;
  count("exp.partition_cache.builds");
  count("exp.partition_cache.builds." + strategy);
  const std::scoped_lock lock(mu_);
  ++strategy_stats_[strategy].builds;
  entry->partitioning = built;
  entry->last_use = ++tick_;
  ++resident_;
  if (max_entries_ > 0) evict_to_cap_locked(entry);
  gauge("exp.partition_cache.resident",
        static_cast<std::int64_t>(resident_));
  return built;
}

void PartitionCache::evict_to_cap_locked(const Entry* keep) {
  while (resident_ > max_entries_) {
    Entry* victim = nullptr;
    for (const auto& [key, entry] : entries_)
      if (entry->partitioning && entry.get() != keep &&
          (victim == nullptr || entry->last_use < victim->last_use))
        victim = entry.get();
    if (victim == nullptr) return;
    victim->partitioning.reset();
    --resident_;
    ++evictions_;
    ++strategy_stats_[victim->strategy].evictions;
    count("exp.partition_cache.evictions");
    count("exp.partition_cache.evictions." + victim->strategy);
  }
}

std::map<std::string, PartitionCache::StrategyStats>
PartitionCache::strategy_stats() const {
  const std::scoped_lock lock(mu_);
  return strategy_stats_;
}

void PartitionCache::set_max_entries(std::size_t n) {
  const std::scoped_lock lock(mu_);
  max_entries_ = n;
  if (max_entries_ > 0) evict_to_cap_locked(nullptr);
}

std::size_t PartitionCache::max_entries() const {
  const std::scoped_lock lock(mu_);
  return max_entries_;
}

std::size_t PartitionCache::resident() const {
  const std::scoped_lock lock(mu_);
  return resident_;
}

std::shared_ptr<const FunctionalOutcome> FunctionalCache::acquire(
    const FunctionalKey& key,
    const std::function<FunctionalOutcome()>& build) {
  Entry* entry;
  {
    const std::scoped_lock lock(mu_);
    auto& slot = entries_[key];
    if (!slot) slot = std::make_unique<Entry>();
    entry = slot.get();
    if (entry->outcome) {
      entry->last_use = ++tick_;
      ++hits_;
      count("exp.functional_cache.hits");
      return entry->outcome;
    }
  }
  // Build outside mu_ so unrelated outcomes proceed in parallel; the
  // per-entry mutex makes concurrent requests share one build.
  const std::scoped_lock build_lock(entry->build_mu);
  {
    const std::scoped_lock lock(mu_);
    if (entry->outcome) {
      entry->last_use = ++tick_;
      ++hits_;
      count("exp.functional_cache.hits");
      return entry->outcome;
    }
  }
  auto built = std::make_shared<const FunctionalOutcome>(build());
  ++misses_;
  count("exp.functional_cache.misses");
  const std::scoped_lock lock(mu_);
  entry->outcome = built;
  entry->bytes = built->approx_bytes();
  entry->last_use = ++tick_;
  resident_bytes_ += entry->bytes;
  if (budget_bytes_ > 0) evict_to_budget_locked(entry);
  gauge("exp.functional_cache.bytes",
        static_cast<std::int64_t>(resident_bytes_));
  return built;
}

void FunctionalCache::evict_to_budget_locked(const Entry* keep) {
  while (resident_bytes_ > budget_bytes_) {
    Entry* victim = nullptr;
    for (const auto& [key, entry] : entries_)
      if (entry->outcome && entry.get() != keep &&
          (victim == nullptr || entry->last_use < victim->last_use))
        victim = entry.get();
    if (victim == nullptr) return;  // only the just-built entry remains
    victim->outcome.reset();
    resident_bytes_ -= victim->bytes;
    victim->bytes = 0;
    ++evictions_;
    count("exp.functional_cache.evictions");
  }
}

void FunctionalCache::set_byte_budget(std::size_t bytes) {
  const std::scoped_lock lock(mu_);
  budget_bytes_ = bytes;
  if (budget_bytes_ > 0) evict_to_budget_locked(nullptr);
  gauge("exp.functional_cache.bytes",
        static_cast<std::int64_t>(resident_bytes_));
}

std::size_t FunctionalCache::byte_budget() const {
  const std::scoped_lock lock(mu_);
  return budget_bytes_;
}

std::size_t FunctionalCache::resident_bytes() const {
  const std::scoped_lock lock(mu_);
  return resident_bytes_;
}

}  // namespace hyve::exp
