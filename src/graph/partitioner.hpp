// Pluggable partitioning strategies over the interval-block layout.
//
// A Partitioner decides which interval every vertex lives in (a
// VertexMap); the Partitioning built over that map is what the machine
// schedules. Three strategies ship:
//
//   * interval      — the paper's equal-width index split (§2.1, Fig. 1);
//   * hep:tau=T     — degree-aware hybrid in the HEP (split-merge
//     partitioner) style: vertices whose degree exceeds T × the average
//     are marked in a dense bitset and placed first, highest degree
//     first, onto the least-loaded interval via a min-heap; the
//     low-degree remainder streams in id order onto the interval holding
//     most of its already-placed neighbours;
//   * splitmerge:chunks=C — one-pass bounded-memory streaming: the edge
//     stream first-touch-splits vertices into C×P small chunks, which a
//     merge pass then bin-packs into the P intervals, largest edge load
//     first.
//
// Every strategy caps interval populations at ceil(V/P) — the occupancy
// the equal-width split achieves — so the SRAM sizing contract behind
// HyveMachine::choose_num_intervals holds for any strategy.
//
// PartitionerSpec is the value identity of a strategy + parameters: its
// to_string() form keys PartitionCache entries and annotates config
// labels, and parse_partitioner() is the exact inverse (the
// parse_config_label convention).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "graph/partition.hpp"

namespace hyve {

enum class PartitionStrategy { kIntervalBlock, kHep, kSplitMerge };

struct PartitionerSpec {
  PartitionStrategy strategy = PartitionStrategy::kIntervalBlock;
  // High-degree threshold in multiples of the average degree (hep).
  double hep_tau = 2.0;
  // Split chunks per interval in the streaming split pass (splitmerge).
  std::uint32_t splitmerge_chunks = 8;

  bool is_default() const {
    return strategy == PartitionStrategy::kIntervalBlock;
  }

  // Canonical text form: "interval", "hep:tau=2", "splitmerge:chunks=8".
  // parse_partitioner(to_string()) round-trips to an equal spec.
  std::string to_string() const;

  // Throws InvariantError on out-of-range parameters (tau <= 0,
  // chunks == 0).
  void validate() const;

  friend bool operator==(const PartitionerSpec&,
                         const PartitionerSpec&) = default;
};

// Inverse of PartitionerSpec::to_string — the single source of truth for
// string→PartitionerSpec mapping. Accepts the bare strategy names
// ("interval", "hep", "splitmerge") with default parameters and the
// parameterised forms ("hep:tau=1.5", "splitmerge:chunks=16"); returns
// nullopt for anything else (CLI handlers turn that into exit 2).
std::optional<PartitionerSpec> parse_partitioner(const std::string& text);

// Strategy interface: produces the vertex→interval assignment; the
// edge grouping over it is shared by all strategies.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  // The spec this partitioner was built from (cache keys, labels).
  virtual const PartitionerSpec& spec() const = 0;

  // Assigns g's vertices to num_intervals intervals. Requires
  // 1 <= num_intervals <= V (unless V == 0); every strategy keeps
  // interval populations <= ceil(V / num_intervals).
  virtual VertexMap map_vertices(const Graph& g,
                                 std::uint32_t num_intervals) const = 0;

  // The full interval-block schedule over map_vertices().
  Partitioning partition(const Graph& g, std::uint32_t num_intervals) const {
    return Partitioning(g, map_vertices(g, num_intervals));
  }
};

std::unique_ptr<Partitioner> make_partitioner(const PartitionerSpec& spec);

// Downstream quality metrics of a schedule — the quantities the paper
// ties to partitioning shape: Table 1 block occupancy, Fig. 14 sharing
// traffic, Fig. 15 bank wake fraction.
struct PartitionStats {
  double n_avg = 0;                // edges per non-empty block (Table 1)
  double replication_factor = 0;   // distinct blocks per touched vertex
  double interval_balance = 1;     // max / mean interval population
  double remote_edge_fraction = 0; // edges whose PUs differ (x%N != y%N)
  double bank_wake_fraction = 0;   // non-empty blocks / total blocks
};

// O(V + E) over the grouped edge array. `num_pus` is the machine's N
// (interval i lives on PU i % N, matching the accounting walk).
PartitionStats compute_partition_stats(const Partitioning& schedule,
                                       int num_pus);

}  // namespace hyve
