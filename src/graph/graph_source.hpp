// Uniform access to a graph's edges in block-sized chunks.
//
// HyVE consumers are edge-centric: the partitioner, the machine's
// functional phase and the stats pass all reduce to "visit every edge
// once, in a stable order". GraphSource captures exactly that contract,
// so an in-memory Graph and an out-of-core blocked file (graph/
// blocked_reader.hpp) are interchangeable wherever a full edge vector
// is not required. Chunk boundaries are an implementation detail of the
// source (one chunk for an in-memory graph, one on-disk block for a
// blocked file); only the concatenated edge order is part of the
// contract.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "graph/graph.hpp"

namespace hyve {

class GraphSource {
 public:
  virtual ~GraphSource() = default;

  virtual VertexId num_vertices() const = 0;
  virtual std::uint64_t num_edges() const = 0;
  // Number of chunks for_each_chunk() will visit (>= 1 unless empty).
  virtual std::uint64_t num_chunks() const = 0;

  // Visits every edge chunk in order. The span is valid only for the
  // duration of the callback — streaming sources reuse the backing
  // buffer for the next chunk.
  virtual void for_each_chunk(
      const std::function<void(std::span<const Edge>)>& fn) const = 0;
};

// A Graph viewed as a single-chunk source (non-owning).
class InMemoryGraphSource final : public GraphSource {
 public:
  explicit InMemoryGraphSource(const Graph& graph) : graph_(&graph) {}

  VertexId num_vertices() const override { return graph_->num_vertices(); }
  std::uint64_t num_edges() const override { return graph_->num_edges(); }
  std::uint64_t num_chunks() const override {
    return graph_->num_edges() == 0 ? 0 : 1;
  }
  void for_each_chunk(
      const std::function<void(std::span<const Edge>)>& fn) const override;

 private:
  const Graph* graph_;
};

// Streams the source once into a full in-memory Graph. Peak transient
// memory is the edge vector plus one chunk.
Graph materialize(const GraphSource& source);

}  // namespace hyve
