// Edge-list persistence.
//
// Text format matches SNAP's ("# comment" lines, then "src<ws>dst" pairs),
// so users can drop in the paper's original datasets where licensing
// allows. The binary format is a fast cache used by the dataset registry;
// the out-of-core blocked format (graph/blocked_format.hpp) is the
// streaming sibling for graphs that do not fit memory.
#pragma once

#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace hyve {

// Thrown by every loader on unreadable, malformed or corrupt input.
// Loaders validate untrusted headers *before* allocating or constructing
// a Graph, so a corrupt file can never OOM the process or hand back a
// silently wrong graph.
class FileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// SNAP-compatible whitespace-separated edge list. Vertex count is
// max(id)+1 unless a "# Nodes: N" header comment is present. Ids must
// fit VertexId (< 2^32 - 1); larger ids raise FileError naming the line
// instead of silently truncating.
Graph load_edge_list_text(const std::string& path);
void save_edge_list_text(const Graph& g, const std::string& path);

// Binary cache: little-endian {magic, version, V, E, edges[]}. The
// declared edge count is validated against the file size and every
// endpoint against V before the Graph is built.
Graph load_graph_binary(const std::string& path);
void save_graph_binary(const Graph& g, const std::string& path);

// Loads any of the three formats, dispatching on the leading magic
// bytes (HyVEgrf0 flat binary, HyVEgrf2 blocked — materialised through
// a streaming window) and falling back to SNAP text. The single entry
// point for tools that take a user-supplied path.
Graph load_graph_auto(const std::string& path);

}  // namespace hyve
