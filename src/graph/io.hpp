// Edge-list persistence.
//
// Text format matches SNAP's ("# comment" lines, then "src<ws>dst" pairs),
// so users can drop in the paper's original datasets where licensing
// allows. The binary format is a fast cache used by the dataset registry.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace hyve {

// SNAP-compatible whitespace-separated edge list. Vertex count is
// max(id)+1 unless a "# Nodes: N" header comment is present.
Graph load_edge_list_text(const std::string& path);
void save_edge_list_text(const Graph& g, const std::string& path);

// Binary cache: little-endian {magic, version, V, E, edges[]}.
Graph load_graph_binary(const std::string& path);
void save_graph_binary(const Graph& g, const std::string& path);

}  // namespace hyve
