// Core graph representation: a directed edge list with a fixed vertex count.
//
// HyVE is an edge-centric architecture (X-Stream model), so the edge list —
// not an adjacency structure — is the primary representation; CSR views and
// degree arrays are derived on demand where algorithms need them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace hyve {

class EdgeColumns;  // graph/edge_block_soa.hpp

using VertexId = std::uint32_t;

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  Graph(VertexId num_vertices, std::vector<Edge> edges);

  VertexId num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Per-vertex out-degree (used by PageRank's rank scaling).
  std::vector<std::uint32_t> out_degrees() const;
  std::vector<std::uint32_t> in_degrees() const;

  // Deterministic per-edge weight in [1, max_weight], derived by hashing
  // the endpoints; stands in for datasets without native weights (SSSP,
  // SpMV) exactly as the paper's unweighted SNAP graphs require.
  static std::uint32_t edge_weight(const Edge& e, std::uint32_t max_weight = 64);

  // edge_weight factored in two so SoA kernels can precompute the hash
  // once per edge and derive any max_weight from it:
  //   edge_weight(e, m) == edge_weight_from_hash(edge_weight_hash(e), m)
  // (pinned by test). The hash is a SplitMix64-style avalanche over the
  // packed endpoints.
  static std::uint64_t edge_weight_hash(const Edge& e) {
    std::uint64_t z = (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
  }
  static std::uint32_t edge_weight_from_hash(std::uint64_t hash,
                                             std::uint32_t max_weight) {
    return static_cast<std::uint32_t>(hash % max_weight) + 1;
  }

  // Remaps vertex ids through a deterministic pseudo-random permutation —
  // the hash-based partitioning of ForeGraph/GraphH (§4.3) that balances
  // interval populations before interval-block partitioning.
  Graph hashed_remap(std::uint64_t seed) const;

  // As hashed_remap(), but memoized on this graph: repeated calls with
  // the same seed (sweeps over memory configs rebuild the balanced
  // layout per run otherwise) share one immutable image. Copies of this
  // graph share the memo; a small per-graph LRU bounds it to a handful
  // of seeds. Thread-safe.
  std::shared_ptr<const Graph> hashed_remap_shared(std::uint64_t seed) const;

  // Structure-of-arrays image of edges() (edge_block_soa.hpp), built
  // lazily on first use and memoized like the remap images: copies of
  // this graph share one transpose. The schedule-less run_functional
  // path streams it; scheduled runs use Partitioning::edge_columns()
  // instead. Thread-safe.
  std::shared_ptr<const EdgeColumns> edge_columns_shared() const;

 private:
  struct RemapMemo;

  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  // Lazily created, shared across copies; never affects graph equality
  // or semantics (the graph itself stays immutable).
  mutable std::shared_ptr<RemapMemo> remap_memo_;
};

// Compressed sparse row view (by source vertex), built on demand.
struct Csr {
  std::vector<std::uint64_t> row_offsets;  // size V+1
  std::vector<VertexId> neighbors;         // size E

  static Csr from_graph(const Graph& g);
};

// The 8-vertex example graph of the paper's Fig. 1, used in tests to pin
// the partitioning semantics (e.g. edge 2->4 must land in block B[1][2]).
Graph paper_example_graph();

}  // namespace hyve
