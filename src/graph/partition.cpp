#include "graph/partition.hpp"

#include <algorithm>
#include <utility>

#include "obs/host_profiler.hpp"
#include "util/check.hpp"

namespace hyve {

VertexMap VertexMap::uniform(VertexId num_vertices,
                             std::uint32_t num_intervals) {
  HYVE_CHECK(num_intervals >= 1);
  VertexMap map(num_vertices, num_intervals);
  map.width_ =
      std::max<VertexId>(1, (num_vertices + num_intervals - 1) / num_intervals);
  map.populations_.assign(num_intervals, 0);
  map.begins_.assign(num_intervals + std::size_t{1}, num_vertices);
  for (std::uint32_t i = 0; i < num_intervals; ++i) {
    const auto begin = static_cast<VertexId>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(i) * map.width_, num_vertices));
    const auto end = static_cast<VertexId>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(i + 1) * map.width_, num_vertices));
    map.begins_[i] = begin;
    map.populations_[i] = end - begin;
  }
  map.contiguous_ = true;
  return map;
}

VertexMap VertexMap::from_assignment(std::vector<std::uint32_t> assignment,
                                     std::uint32_t num_intervals) {
  HYVE_CHECK(num_intervals >= 1);
  VertexMap map(static_cast<VertexId>(assignment.size()), num_intervals);
  map.assignment_ = std::move(assignment);
  map.populations_.assign(num_intervals, 0);
  for (const std::uint32_t i : map.assignment_) {
    HYVE_CHECK_MSG(i < num_intervals,
                   "vertex assigned to interval " << i << " but the map has "
                                                  << num_intervals);
    ++map.populations_[i];
  }
  // Contiguity check: the assignment sequence must be non-decreasing and
  // visit intervals in order for begin/end ranges to be meaningful.
  map.contiguous_ = std::is_sorted(map.assignment_.begin(),
                                   map.assignment_.end());
  if (map.contiguous_) {
    map.begins_.assign(num_intervals + std::size_t{1}, 0);
    for (std::uint32_t i = 0; i < num_intervals; ++i)
      map.begins_[i + 1] = map.begins_[i] + map.populations_[i];
  }
  return map;
}

VertexId VertexMap::population(std::uint32_t i) const {
  HYVE_CHECK(i < num_intervals_);
  return populations_[i];
}

VertexId VertexMap::max_population() const {
  VertexId max = 0;
  for (const VertexId p : populations_) max = std::max(max, p);
  return max;
}

VertexId VertexMap::interval_begin(std::uint32_t i) const {
  HYVE_CHECK_MSG(contiguous_,
                 "interval_begin() on a non-contiguous vertex map");
  HYVE_CHECK(i < num_intervals_);
  return begins_[i];
}

VertexId VertexMap::interval_end(std::uint32_t i) const {
  HYVE_CHECK_MSG(contiguous_, "interval_end() on a non-contiguous vertex map");
  HYVE_CHECK(i < num_intervals_);
  return begins_[i] + populations_[i];
}

Partitioning::Partitioning(const Graph& g, VertexMap map)
    : Partitioning(InMemoryGraphSource(g), std::move(map)) {}

Partitioning::Partitioning(const GraphSource& source, VertexMap map)
    : map_(std::move(map)) {
  const obs::HostSpan host_span("partition.build");
  HYVE_CHECK_MSG(map_.num_vertices() == source.num_vertices(),
                 "vertex map covers " << map_.num_vertices()
                                      << " vertices but the graph has "
                                      << source.num_vertices());

  // Counting sort of edges by block index: one streamed pass to count,
  // one to place. Only the grouped output vector is ever resident.
  const std::uint64_t blocks = num_blocks();
  offsets_.assign(blocks + 1, 0);
  source.for_each_chunk([&](std::span<const Edge> chunk) {
    for (const Edge& e : chunk)
      ++offsets_[block_index(interval_of(e.src), interval_of(e.dst)) + 1];
  });
  for (std::uint64_t b = 0; b < blocks; ++b) offsets_[b + 1] += offsets_[b];

  edges_.resize(source.num_edges());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  source.for_each_chunk([&](std::span<const Edge> chunk) {
    for (const Edge& e : chunk)
      edges_[cursor[block_index(interval_of(e.src), interval_of(e.dst))]++] =
          e;
  });
}

namespace {

VertexMap checked_uniform_map(const Graph& g, std::uint32_t num_intervals) {
  HYVE_CHECK(num_intervals >= 1);
  HYVE_CHECK_MSG(num_intervals <= g.num_vertices() || g.num_vertices() == 0,
                 "more intervals (" << num_intervals << ") than vertices ("
                                    << g.num_vertices() << ")");
  return VertexMap::uniform(g.num_vertices(), num_intervals);
}

}  // namespace

Partitioning::Partitioning(const Graph& g, std::uint32_t num_intervals)
    : Partitioning(g, checked_uniform_map(g, num_intervals)) {}

std::span<const Edge> Partitioning::block(std::uint32_t x,
                                          std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals() && y < num_intervals());
  const std::uint64_t b = block_index(x, y);
  return {edges_.data() + offsets_[b], edges_.data() + offsets_[b + 1]};
}

std::uint64_t Partitioning::block_edge_count(std::uint32_t x,
                                             std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals() && y < num_intervals());
  const std::uint64_t b = block_index(x, y);
  return offsets_[b + 1] - offsets_[b];
}

std::uint64_t Partitioning::non_empty_blocks() const {
  std::uint64_t count = 0;
  for (std::uint64_t b = 0; b < num_blocks(); ++b)
    count += (offsets_[b + 1] > offsets_[b]) ? 1 : 0;
  return count;
}

}  // namespace hyve
