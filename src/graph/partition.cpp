#include "graph/partition.hpp"

#include <algorithm>
#include <utility>

#include "obs/host_profiler.hpp"
#include "util/check.hpp"

namespace hyve {

VertexMap VertexMap::uniform(VertexId num_vertices,
                             std::uint32_t num_intervals) {
  HYVE_CHECK(num_intervals >= 1);
  VertexMap map(num_vertices, num_intervals);
  map.width_ =
      std::max<VertexId>(1, (num_vertices + num_intervals - 1) / num_intervals);
  map.populations_.assign(num_intervals, 0);
  map.begins_.assign(num_intervals + std::size_t{1}, num_vertices);
  for (std::uint32_t i = 0; i < num_intervals; ++i) {
    const auto begin = static_cast<VertexId>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(i) * map.width_, num_vertices));
    const auto end = static_cast<VertexId>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(i + 1) * map.width_, num_vertices));
    map.begins_[i] = begin;
    map.populations_[i] = end - begin;
  }
  map.contiguous_ = true;
  return map;
}

VertexMap VertexMap::from_assignment(std::vector<std::uint32_t> assignment,
                                     std::uint32_t num_intervals) {
  HYVE_CHECK(num_intervals >= 1);
  VertexMap map(static_cast<VertexId>(assignment.size()), num_intervals);
  map.assignment_ = std::move(assignment);
  map.populations_.assign(num_intervals, 0);
  for (const std::uint32_t i : map.assignment_) {
    HYVE_CHECK_MSG(i < num_intervals,
                   "vertex assigned to interval " << i << " but the map has "
                                                  << num_intervals);
    ++map.populations_[i];
  }
  // Contiguity check: the assignment sequence must be non-decreasing and
  // visit intervals in order for begin/end ranges to be meaningful.
  map.contiguous_ = std::is_sorted(map.assignment_.begin(),
                                   map.assignment_.end());
  if (map.contiguous_) {
    map.begins_.assign(num_intervals + std::size_t{1}, 0);
    for (std::uint32_t i = 0; i < num_intervals; ++i)
      map.begins_[i + 1] = map.begins_[i] + map.populations_[i];
  }
  return map;
}

VertexId VertexMap::population(std::uint32_t i) const {
  HYVE_CHECK(i < num_intervals_);
  return populations_[i];
}

VertexId VertexMap::max_population() const {
  VertexId max = 0;
  for (const VertexId p : populations_) max = std::max(max, p);
  return max;
}

VertexId VertexMap::interval_begin(std::uint32_t i) const {
  HYVE_CHECK_MSG(contiguous_,
                 "interval_begin() on a non-contiguous vertex map");
  HYVE_CHECK(i < num_intervals_);
  return begins_[i];
}

VertexId VertexMap::interval_end(std::uint32_t i) const {
  HYVE_CHECK_MSG(contiguous_, "interval_end() on a non-contiguous vertex map");
  HYVE_CHECK(i < num_intervals_);
  return begins_[i] + populations_[i];
}

Partitioning::Partitioning(const Graph& g, VertexMap map)
    : Partitioning(InMemoryGraphSource(g), std::move(map)) {}

Partitioning::Partitioning(const GraphSource& source, VertexMap map)
    : map_(std::move(map)) {
  const obs::HostSpan host_span("partition.build");
  HYVE_CHECK_MSG(map_.num_vertices() == source.num_vertices(),
                 "vertex map covers " << map_.num_vertices()
                                      << " vertices but the graph has "
                                      << source.num_vertices());

  // Counting sort of edges by block index: one streamed pass to count,
  // one to place. Only the grouped output vector is ever resident.
  const std::uint64_t blocks = num_blocks();
  offsets_.assign(blocks + 1, 0);
  source.for_each_chunk([&](std::span<const Edge> chunk) {
    for (const Edge& e : chunk)
      ++offsets_[block_index(interval_of(e.src), interval_of(e.dst)) + 1];
  });
  for (std::uint64_t b = 0; b < blocks; ++b) offsets_[b + 1] += offsets_[b];

  edges_.resize(source.num_edges());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  source.for_each_chunk([&](std::span<const Edge> chunk) {
    for (const Edge& e : chunk)
      edges_[cursor[block_index(interval_of(e.src), interval_of(e.dst))]++] =
          e;
  });
}

namespace {

VertexMap checked_uniform_map(const Graph& g, std::uint32_t num_intervals) {
  HYVE_CHECK(num_intervals >= 1);
  HYVE_CHECK_MSG(num_intervals <= g.num_vertices() || g.num_vertices() == 0,
                 "more intervals (" << num_intervals << ") than vertices ("
                                    << g.num_vertices() << ")");
  return VertexMap::uniform(g.num_vertices(), num_intervals);
}

}  // namespace

Partitioning::Partitioning(const Graph& g, std::uint32_t num_intervals)
    : Partitioning(g, checked_uniform_map(g, num_intervals)) {}

std::span<const Edge> Partitioning::block(std::uint32_t x,
                                          std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals() && y < num_intervals());
  const std::uint64_t b = block_index(x, y);
  return {edges_.data() + offsets_[b], edges_.data() + offsets_[b + 1]};
}

std::uint64_t Partitioning::block_edge_count(std::uint32_t x,
                                             std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals() && y < num_intervals());
  const std::uint64_t b = block_index(x, y);
  return offsets_[b + 1] - offsets_[b];
}

std::uint64_t Partitioning::non_empty_blocks() const {
  std::uint64_t count = 0;
  for (std::uint64_t b = 0; b < num_blocks(); ++b)
    count += (offsets_[b + 1] > offsets_[b]) ? 1 : 0;
  return count;
}

const EdgeColumns& Partitioning::edge_columns() const {
  // Hot path: block_soa() lands here once per block per pass, so a
  // published transpose is one acquire load away. First callers (sweep
  // workers racing into the same cached partitioning) serialise on the
  // lock and share one transpose, published with a release store.
  if (const EdgeColumns* columns =
          lazy_->columns_ptr.load(std::memory_order_acquire))
    return *columns;
  const std::lock_guard<std::mutex> lock(lazy_->mu);
  if (lazy_->columns == nullptr) {
    const obs::HostSpan host_span("partition.soa_transpose");
    lazy_->columns = std::make_shared<const EdgeColumns>(std::span(edges_));
    lazy_->columns_ptr.store(lazy_->columns.get(), std::memory_order_release);
  }
  return *lazy_->columns;
}

EdgeBlockSoA Partitioning::block_soa(std::uint32_t x, std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals() && y < num_intervals());
  const std::uint64_t b = block_index(x, y);
  return edge_columns().view(offsets_[b], offsets_[b + 1] - offsets_[b]);
}

const SourceBlockIndex& Partitioning::source_block_index() const {
  if (const SourceBlockIndex* index =
          lazy_->index_ptr.load(std::memory_order_acquire))
    return *index;
  const std::lock_guard<std::mutex> lock(lazy_->mu);
  if (lazy_->index == nullptr) {
    const obs::HostSpan host_span("partition.source_block_index");
    auto index = std::make_shared<SourceBlockIndex>();
    // Within block B[x][y] every edge shares the destination interval y,
    // and a vertex appears as a source in exactly one grid row, so each
    // (source, block) pair is distinct per block: stamping a vertex with
    // the block id dedupes repeated sources. Two passes — count rows,
    // then place — and block-major order makes every row sorted by y.
    const std::uint64_t no_block = ~std::uint64_t{0};
    std::vector<std::uint64_t> stamp(map_.num_vertices(), no_block);
    index->offsets.assign(map_.num_vertices() + std::size_t{1}, 0);
    for (std::uint64_t b = 0; b < num_blocks(); ++b) {
      for (std::uint64_t i = offsets_[b]; i < offsets_[b + 1]; ++i) {
        const VertexId src = edges_[i].src;
        if (stamp[src] == b) continue;
        stamp[src] = b;
        ++index->offsets[src + 1];
      }
    }
    for (VertexId v = 0; v < map_.num_vertices(); ++v)
      index->offsets[v + 1] += index->offsets[v];
    index->intervals.resize(index->offsets.back());
    std::vector<std::uint64_t> cursor(index->offsets.begin(),
                                      index->offsets.end() - 1);
    std::fill(stamp.begin(), stamp.end(), no_block);
    const std::uint32_t p = num_intervals();
    for (std::uint64_t b = 0; b < num_blocks(); ++b) {
      const auto y = static_cast<std::uint32_t>(b % p);
      for (std::uint64_t i = offsets_[b]; i < offsets_[b + 1]; ++i) {
        const VertexId src = edges_[i].src;
        if (stamp[src] == b) continue;
        stamp[src] = b;
        index->intervals[cursor[src]++] = y;
      }
    }
    lazy_->index = std::move(index);
    lazy_->index_ptr.store(lazy_->index.get(), std::memory_order_release);
  }
  return *lazy_->index;
}

std::size_t Partitioning::lazy_bytes() const {
  const std::lock_guard<std::mutex> lock(lazy_->mu);
  std::size_t bytes = 0;
  if (lazy_->columns != nullptr) bytes += lazy_->columns->approx_bytes();
  if (lazy_->index != nullptr) bytes += lazy_->index->approx_bytes();
  return bytes;
}

}  // namespace hyve
