#include "graph/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hyve {

Partitioning::Partitioning(const Graph& g, std::uint32_t num_intervals)
    : num_vertices_(g.num_vertices()), num_intervals_(num_intervals) {
  HYVE_CHECK(num_intervals_ >= 1);
  HYVE_CHECK_MSG(num_intervals_ <= num_vertices_ || num_vertices_ == 0,
                 "more intervals (" << num_intervals_ << ") than vertices ("
                                    << num_vertices_ << ")");
  interval_width_ = (num_vertices_ + num_intervals_ - 1) / num_intervals_;
  if (interval_width_ == 0) interval_width_ = 1;

  // Counting sort of edges by block index.
  const std::uint64_t blocks = num_blocks();
  offsets_.assign(blocks + 1, 0);
  for (const Edge& e : g.edges())
    ++offsets_[block_index(interval_of(e.src), interval_of(e.dst)) + 1];
  for (std::uint64_t b = 0; b < blocks; ++b) offsets_[b + 1] += offsets_[b];

  edges_.resize(g.num_edges());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : g.edges())
    edges_[cursor[block_index(interval_of(e.src), interval_of(e.dst))]++] = e;
}

std::span<const Edge> Partitioning::block(std::uint32_t x,
                                          std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals_ && y < num_intervals_);
  const std::uint64_t b = block_index(x, y);
  return {edges_.data() + offsets_[b], edges_.data() + offsets_[b + 1]};
}

std::uint64_t Partitioning::block_edge_count(std::uint32_t x,
                                             std::uint32_t y) const {
  HYVE_CHECK(x < num_intervals_ && y < num_intervals_);
  const std::uint64_t b = block_index(x, y);
  return offsets_[b + 1] - offsets_[b];
}

std::uint64_t Partitioning::non_empty_blocks() const {
  std::uint64_t count = 0;
  for (std::uint64_t b = 0; b < num_blocks(); ++b)
    count += (offsets_[b + 1] > offsets_[b]) ? 1 : 0;
  return count;
}

}  // namespace hyve
