// Structure-of-arrays edge blocks for the vectorized kernel hot path.
//
// The AoS Edge{src, dst} layout interleaves the two id streams, so a
// kernel that only gathers source values still drags destination ids
// through the cache line and vice versa — the bandwidth-wasting baseline
// of the Dann et al. access-pattern studies (PAPERS.md). EdgeColumns
// transposes an edge run once into contiguous src[]/dst[] columns plus a
// precomputed per-edge weight hash (the expensive SplitMix64 avalanche
// that SSSP and SpMV otherwise recompute on every traversal of every
// edge), and EdgeBlockSoA hands kernels a borrowed window over those
// columns. Built once per graph image and cached next to it
// (Partitioning and Graph memoize their columns; GraphCache /
// PartitionCache sharing then amortises the transpose across sweep
// cells).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace hyve {

// Borrowed structure-of-arrays view over a contiguous edge run. Plain
// pointers (not spans) so kernels index all columns with one counter;
// the owning EdgeColumns must outlive the view.
struct EdgeBlockSoA {
  const VertexId* src = nullptr;
  const VertexId* dst = nullptr;
  // Graph::edge_weight_hash of each edge; feed through
  // Graph::edge_weight_from_hash for any max_weight.
  const std::uint64_t* weight_hash = nullptr;
  std::size_t count = 0;

  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  Edge edge(std::size_t i) const { return Edge{src[i], dst[i]}; }

  std::span<const VertexId> sources() const { return {src, count}; }
  std::span<const VertexId> destinations() const { return {dst, count}; }
};

// Owning edge columns, transposed once from an AoS edge span in the
// span's order (so a view over [offset, offset+count) holds exactly the
// same edges as the AoS subspan — block offsets carry over unchanged).
class EdgeColumns {
 public:
  EdgeColumns() = default;
  explicit EdgeColumns(std::span<const Edge> edges);

  std::size_t size() const { return src_.size(); }
  bool empty() const { return src_.empty(); }

  // View over edges [offset, offset + count); bounds-checked.
  EdgeBlockSoA view(std::uint64_t offset, std::uint64_t count) const;
  EdgeBlockSoA all() const { return view(0, src_.size()); }

  // Honest footprint for cache accounting (16 bytes per edge).
  std::size_t approx_bytes() const;

 private:
  std::vector<VertexId> src_;
  std::vector<VertexId> dst_;
  std::vector<std::uint64_t> weight_hash_;
};

}  // namespace hyve
