#include "graph/graph.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <span>
#include <utility>

#include "graph/edge_block_soa.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hyve {

// Per-graph memo of derived immutable images, shared by copies of the
// graph: hashed_remap results (a handful of seeds covers every realistic
// workload — configs almost always share one balance seed, so a tiny LRU
// bounds the footprint) and the structure-of-arrays edge columns.
struct Graph::RemapMemo {
  static constexpr std::size_t kMaxSeeds = 4;

  std::mutex mu;
  // Most recently used at the back.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const Graph>>> entries;
  std::shared_ptr<const EdgeColumns> columns;
};

Graph::Graph(VertexId num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    HYVE_CHECK_MSG(e.src < num_vertices_ && e.dst < num_vertices_,
                   "edge " << e.src << "->" << e.dst
                           << " out of range for V=" << num_vertices_);
  }
}

std::vector<std::uint32_t> Graph::out_degrees() const {
  std::vector<std::uint32_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.src];
  return deg;
}

std::vector<std::uint32_t> Graph::in_degrees() const {
  std::vector<std::uint32_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.dst];
  return deg;
}

std::uint32_t Graph::edge_weight(const Edge& e, std::uint32_t max_weight) {
  HYVE_CHECK(max_weight > 0);
  return edge_weight_from_hash(edge_weight_hash(e), max_weight);
}

Graph Graph::hashed_remap(std::uint64_t seed) const {
  std::vector<VertexId> perm(num_vertices_);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  Rng rng(seed);
  // Fisher–Yates with the deterministic session RNG.
  for (VertexId i = num_vertices_; i > 1; --i) {
    const auto j = static_cast<VertexId>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  std::vector<Edge> remapped;
  remapped.reserve(edges_.size());
  for (const Edge& e : edges_) remapped.push_back({perm[e.src], perm[e.dst]});
  return Graph(num_vertices_, std::move(remapped));
}

namespace {
// The memo is created lazily on a const graph; a process-wide mutex
// guards the (rare) creation so concurrent first calls don't race.
std::mutex memo_create_mu;
}  // namespace

std::shared_ptr<const Graph> Graph::hashed_remap_shared(
    std::uint64_t seed) const {
  std::shared_ptr<RemapMemo> memo;
  {
    const std::lock_guard<std::mutex> lock(memo_create_mu);
    if (remap_memo_ == nullptr) remap_memo_ = std::make_shared<RemapMemo>();
    memo = remap_memo_;
  }
  const std::lock_guard<std::mutex> lock(memo->mu);
  for (auto it = memo->entries.begin(); it != memo->entries.end(); ++it) {
    if (it->first == seed) {
      auto hit = *it;
      memo->entries.erase(it);
      memo->entries.push_back(hit);
      return hit.second;
    }
  }
  // Build under the memo lock: concurrent same-seed callers then share
  // one build instead of duplicating the O(V + E) remap.
  auto image = std::make_shared<const Graph>(hashed_remap(seed));
  if (memo->entries.size() >= RemapMemo::kMaxSeeds)
    memo->entries.erase(memo->entries.begin());
  memo->entries.emplace_back(seed, image);
  return image;
}

std::shared_ptr<const EdgeColumns> Graph::edge_columns_shared() const {
  std::shared_ptr<RemapMemo> memo;
  {
    const std::lock_guard<std::mutex> lock(memo_create_mu);
    if (remap_memo_ == nullptr) remap_memo_ = std::make_shared<RemapMemo>();
    memo = remap_memo_;
  }
  // Build under the memo lock so concurrent first callers share one
  // O(E) transpose (same policy as the remap images above).
  const std::lock_guard<std::mutex> lock(memo->mu);
  if (memo->columns == nullptr)
    memo->columns = std::make_shared<const EdgeColumns>(std::span(edges_));
  return memo->columns;
}

Csr Csr::from_graph(const Graph& g) {
  Csr csr;
  csr.row_offsets.assign(g.num_vertices() + 1, 0);
  for (const Edge& e : g.edges()) ++csr.row_offsets[e.src + 1];
  std::partial_sum(csr.row_offsets.begin(), csr.row_offsets.end(),
                   csr.row_offsets.begin());
  csr.neighbors.resize(g.num_edges());
  std::vector<std::uint64_t> cursor(csr.row_offsets.begin(),
                                    csr.row_offsets.end() - 1);
  for (const Edge& e : g.edges()) csr.neighbors[cursor[e.src]++] = e.dst;
  return csr;
}

Graph paper_example_graph() {
  // Fig. 1 of the paper: 8 vertices, 11 edges.
  return Graph(8, {{1, 0},
                   {0, 7},
                   {2, 3},
                   {2, 4},
                   {3, 4},
                   {3, 7},
                   {4, 1},
                   {4, 5},
                   {6, 2},
                   {6, 0},
                   {7, 1}});
}

}  // namespace hyve
