// Synthetic graph generators.
//
// The paper evaluates on five SNAP graphs that are not redistributable
// inside this offline reproduction; DESIGN.md documents the substitution.
// R-MAT (Chakrabarti et al.) reproduces the heavy-tailed degree and
// block-occupancy statistics (Table 1's N_avg) that drive every
// graph-shape-sensitive result; Erdős–Rényi provides a skew-free control
// used by tests and ablation benches.
#pragma once

#include <cstdint>
#include <string>

#include "graph/blocked_format.hpp"
#include "graph/graph.hpp"

namespace hyve {

struct RmatParams {
  // Quadrant probabilities; must be positive and sum to 1.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  // Self-loops are dropped (SNAP social graphs have none).
  bool allow_self_loops = false;
  // Duplicate edges are removed; generation oversamples to compensate.
  bool deduplicate = true;
};

// Generates an R-MAT graph with ~target_edges distinct edges over
// num_vertices vertices (rounded up internally to a power of two for the
// recursive quadrant descent, then rejected down to num_vertices).
Graph generate_rmat(VertexId num_vertices, std::uint64_t target_edges,
                    const RmatParams& params, std::uint64_t seed);

struct RmatChunkOptions {
  // In-memory buffer per sorted run (edges); the generator's peak
  // footprint is ~chunk_edges * 8 bytes plus small merge buffers, never
  // the full edge vector.
  std::uint64_t chunk_edges = std::uint64_t{1} << 20;
  blocked::WriteOptions write;
};

// Chunked generation straight to a HyVEgrf2 blocked file: edges are
// produced in chunk_edges-sized sorted runs spilled to temp files next
// to `path`, deduplicated by a streaming k-way merge, and emitted block
// by block — the full edge vector is never materialised. The resulting
// edge set is bit-identical to generate_rmat() with the same arguments
// (same RNG consumption per oversampling round, same sorted-unique
// truncation to target_edges), which io tests pin.
void generate_rmat_blocked(const std::string& path, VertexId num_vertices,
                           std::uint64_t target_edges,
                           const RmatParams& params, std::uint64_t seed,
                           const RmatChunkOptions& options = {});

// Uniform random directed graph (no self loops, deduplicated).
Graph generate_erdos_renyi(VertexId num_vertices, std::uint64_t target_edges,
                           std::uint64_t seed);

// Barabási–Albert preferential attachment: each new vertex attaches
// `edges_per_vertex` out-edges to targets drawn proportionally to their
// current degree. Produces power-law in-degrees — an alternative
// heavy-tail family to R-MAT for robustness studies.
Graph generate_barabasi_albert(VertexId num_vertices,
                               std::uint32_t edges_per_vertex,
                               std::uint64_t seed);

// Watts–Strogatz small world: a ring lattice of even degree `k` with each
// edge rewired with probability `beta`. Low-skew, high-locality control
// workload (the opposite regime from the social graphs).
Graph generate_watts_strogatz(VertexId num_vertices, std::uint32_t k,
                              double beta, std::uint64_t seed);

}  // namespace hyve
