#include "graph/graph_source.hpp"

#include <utility>
#include <vector>

namespace hyve {

void InMemoryGraphSource::for_each_chunk(
    const std::function<void(std::span<const Edge>)>& fn) const {
  if (graph_->num_edges() == 0) return;
  fn(std::span<const Edge>(graph_->edges()));
}

Graph materialize(const GraphSource& source) {
  std::vector<Edge> edges;
  edges.reserve(source.num_edges());
  source.for_each_chunk([&](std::span<const Edge> chunk) {
    edges.insert(edges.end(), chunk.begin(), chunk.end());
  });
  return Graph(source.num_vertices(), std::move(edges));
}

}  // namespace hyve
