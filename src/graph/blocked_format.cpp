#include "graph/blocked_format.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "graph/io.hpp"
#include "util/check.hpp"

namespace hyve::blocked {

const std::uint8_t* get_varint(const std::uint8_t* p, const std::uint8_t* end,
                               std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return nullptr;
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return p;
    }
  }
  return nullptr;  // > 10 bytes: malformed
}

void encode_block(std::span<const Edge> edges,
                  std::vector<std::uint8_t>& out) {
  VertexId prev_src = 0;
  VertexId prev_dst = 0;
  for (const Edge& e : edges) {
    const std::int64_t dsrc =
        static_cast<std::int64_t>(e.src) - static_cast<std::int64_t>(prev_src);
    put_varint(out, zigzag(dsrc));
    if (dsrc == 0) {
      // Same source as the previous edge (the common case in sorted
      // runs): the destination delta is small too.
      put_varint(out, zigzag(static_cast<std::int64_t>(e.dst) -
                             static_cast<std::int64_t>(prev_dst)));
    } else {
      put_varint(out, e.dst);
    }
    prev_src = e.src;
    prev_dst = e.dst;
  }
}

void decode_block(const std::uint8_t* payload, std::size_t payload_bytes,
                  std::uint32_t edge_count, std::vector<Edge>& edges) {
  const std::uint8_t* p = payload;
  const std::uint8_t* const end = payload + payload_bytes;
  VertexId prev_src = 0;
  VertexId prev_dst = 0;
  for (std::uint32_t i = 0; i < edge_count; ++i) {
    std::uint64_t raw = 0;
    p = get_varint(p, end, &raw);
    if (p == nullptr) throw FileError("truncated edge-block payload");
    const std::int64_t dsrc = unzigzag(raw);
    const std::int64_t src = static_cast<std::int64_t>(prev_src) + dsrc;
    p = get_varint(p, end, &raw);
    if (p == nullptr) throw FileError("truncated edge-block payload");
    std::int64_t dst;
    if (dsrc == 0) {
      dst = static_cast<std::int64_t>(prev_dst) + unzigzag(raw);
    } else {
      dst = static_cast<std::int64_t>(raw);
    }
    if (src < 0 || src > std::numeric_limits<VertexId>::max() || dst < 0 ||
        dst > std::numeric_limits<VertexId>::max())
      throw FileError("edge-block delta decodes outside the id space");
    prev_src = static_cast<VertexId>(src);
    prev_dst = static_cast<VertexId>(dst);
    edges.push_back({prev_src, prev_dst});
  }
  if (p != end)
    throw FileError("edge-block payload has trailing bytes");
}

BlockedWriter::BlockedWriter(const std::string& path, VertexId num_vertices,
                             const WriteOptions& options)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      num_vertices_(num_vertices),
      options_(options) {
  HYVE_CHECK(options_.block_edges > 0);
  HYVE_CHECK(options_.block_align > 0);
  if (!out_) throw FileError("cannot open " + path + " for writing");
  pending_.reserve(options_.block_edges);
  FileHeader header;
  header.block_align = options_.block_align;
  header.num_vertices = num_vertices_;
  out_.write(reinterpret_cast<const char*>(&header), sizeof header);
}

BlockedWriter::~BlockedWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; callers that care about write errors
    // call finish() directly.
  }
}

void BlockedWriter::append(std::span<const Edge> edges) {
  HYVE_CHECK_MSG(!finished_, "append() after finish()");
  for (const Edge& e : edges) {
    HYVE_CHECK_MSG(e.src < num_vertices_ && e.dst < num_vertices_,
                   "edge " << e.src << "->" << e.dst
                           << " out of range for V=" << num_vertices_);
    pending_.push_back(e);
    if (pending_.size() >= options_.block_edges) flush_block();
  }
}

void BlockedWriter::flush_block() {
  if (pending_.empty()) return;
  // Pad to the next sector boundary so every block starts aligned.
  std::uint64_t offset = static_cast<std::uint64_t>(out_.tellp());
  const std::uint64_t align = options_.block_align;
  if (offset % align != 0) {
    static const char zeros[512] = {};
    std::uint64_t pad = align - offset % align;
    while (pad > 0) {
      const std::uint64_t n = std::min<std::uint64_t>(pad, sizeof zeros);
      out_.write(zeros, static_cast<std::streamsize>(n));
      pad -= n;
    }
    offset = static_cast<std::uint64_t>(out_.tellp());
  }

  payload_.clear();
  encode_block(pending_, payload_);

  BlockHeader header;
  header.edge_count = static_cast<std::uint32_t>(pending_.size());
  header.payload_bytes = static_cast<std::uint32_t>(payload_.size());
  header.payload_checksum = fnv1a(payload_.data(), payload_.size());
  header.min_src = pending_.front().src;
  header.max_src = pending_.front().src;
  for (const Edge& e : pending_) {
    header.min_src = std::min(header.min_src, e.src);
    header.max_src = std::max(header.max_src, e.src);
  }
  out_.write(reinterpret_cast<const char*>(&header), sizeof header);
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));

  index_.push_back({offset, header.edge_count, header.payload_bytes,
                    header.min_src, header.max_src});
  edges_written_ += pending_.size();
  pending_.clear();
}

void BlockedWriter::finish() {
  if (finished_) return;
  flush_block();
  finished_ = true;

  const auto index_offset = static_cast<std::uint64_t>(out_.tellp());
  const std::uint32_t index_magic = kIndexMagic;
  const auto num_blocks = static_cast<std::uint32_t>(index_.size());
  out_.write(reinterpret_cast<const char*>(&index_magic), sizeof index_magic);
  out_.write(reinterpret_cast<const char*>(&num_blocks), sizeof num_blocks);
  out_.write(reinterpret_cast<const char*>(index_.data()),
             static_cast<std::streamsize>(index_.size() *
                                          sizeof(BlockIndexEntry)));
  const std::uint32_t index_checksum =
      fnv1a(index_.data(), index_.size() * sizeof(BlockIndexEntry));
  out_.write(reinterpret_cast<const char*>(&index_checksum),
             sizeof index_checksum);
  const std::uint32_t pad = 0;  // keeps the trailer 8-byte aligned
  out_.write(reinterpret_cast<const char*>(&pad), sizeof pad);
  const std::uint64_t trailer_magic = kMagic;
  out_.write(reinterpret_cast<const char*>(&index_offset),
             sizeof index_offset);
  out_.write(reinterpret_cast<const char*>(&trailer_magic),
             sizeof trailer_magic);

  // Patch the header now that the totals are known.
  FileHeader header;
  header.block_align = options_.block_align;
  header.num_vertices = num_vertices_;
  header.num_edges = edges_written_;
  header.num_blocks = index_.size();
  header.index_offset = index_offset;
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header), sizeof header);
  out_.flush();
  if (!out_) throw FileError("write failed: " + path_);
  out_.close();
}

void write_blocked(const Graph& g, const std::string& path,
                   const WriteOptions& options) {
  BlockedWriter writer(path, g.num_vertices(), options);
  writer.append(g.edges());
  writer.finish();
}

}  // namespace hyve::blocked
