// Graph-shape statistics consumed by the models and benches.
//
// The GraphR comparison hinges on block-occupancy statistics at 8x8-vertex
// granularity (Table 1: the average number of edges in a *non-empty* 8x8
// block, N_avg, is only 1.23–2.38 on real graphs), which is computed here
// without materialising the (V/8)^2 block grid.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace hyve {

struct BlockOccupancy {
  std::uint64_t total_blocks = 0;      // (ceil(V/g))^2
  std::uint64_t non_empty_blocks = 0;  // blocks holding >= 1 edge
  double avg_edges_per_non_empty = 0;  // Table 1's N_avg
  std::uint64_t max_edges_in_block = 0;
};

// Occupancy of the g x g-vertex block grid (g = 8 reproduces Table 1).
BlockOccupancy block_occupancy(const Graph& graph, VertexId block_width);

struct DegreeStats {
  double avg_out_degree = 0;
  std::uint32_t max_out_degree = 0;
  std::uint32_t max_in_degree = 0;
  // Fraction of edges incident to the top 1% highest-out-degree vertices;
  // a cheap skew measure used to sanity-check the synthetic datasets.
  double top1pct_out_edge_share = 0;
};

DegreeStats degree_stats(const Graph& graph);

}  // namespace hyve
