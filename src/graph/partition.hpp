// Interval-block partitioning (paper §2.1, Fig. 1).
//
// Vertices are split by index into P equal intervals I_0..I_{P-1}; edges
// are split into P^2 blocks where B[x][y] holds the edges whose source
// lies in I_x and destination in I_y. HyVE streams edges block by block so
// vertex accesses stay inside the two intervals currently resident in
// on-chip SRAM.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace hyve {

class Partitioning {
 public:
  // Groups g's edges into P*P blocks with a counting sort. P >= 1.
  Partitioning(const Graph& g, std::uint32_t num_intervals);

  std::uint32_t num_intervals() const { return num_intervals_; }
  VertexId num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return edges_.size(); }
  std::uint64_t num_blocks() const {
    return static_cast<std::uint64_t>(num_intervals_) * num_intervals_;
  }

  // Interval geometry. Intervals are index ranges of equal width (the last
  // one may be short).
  VertexId interval_width() const { return interval_width_; }
  std::uint32_t interval_of(VertexId v) const { return v / interval_width_; }
  VertexId interval_begin(std::uint32_t i) const {
    return static_cast<VertexId>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(i) * interval_width_,
                                num_vertices_));
  }
  VertexId interval_end(std::uint32_t i) const {
    return interval_begin(i + 1);
  }
  // Number of vertices in interval i.
  VertexId interval_population(std::uint32_t i) const {
    return interval_end(i) - interval_begin(i);
  }

  // Edges of block B[x][y] (source interval x, destination interval y).
  std::span<const Edge> block(std::uint32_t x, std::uint32_t y) const;
  std::uint64_t block_edge_count(std::uint32_t x, std::uint32_t y) const;

  // Number of blocks that contain at least one edge.
  std::uint64_t non_empty_blocks() const;

  // All edges, grouped contiguously in block-major (x, then y) order.
  const std::vector<Edge>& grouped_edges() const { return edges_; }

 private:
  std::uint64_t block_index(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::uint64_t>(x) * num_intervals_ + y;
  }

  VertexId num_vertices_ = 0;
  std::uint32_t num_intervals_ = 1;
  VertexId interval_width_ = 1;
  std::vector<Edge> edges_;
  std::vector<std::uint64_t> offsets_;  // P*P + 1 prefix sums into edges_
};

}  // namespace hyve
