// Interval-block partitioning (paper §2.1, Fig. 1).
//
// Vertices are split into P intervals I_0..I_{P-1}; edges are split into
// P^2 blocks where B[x][y] holds the edges whose source lies in I_x and
// destination in I_y. HyVE streams edges block by block so vertex
// accesses stay inside the two intervals currently resident in on-chip
// SRAM.
//
// The vertex→interval assignment is an explicit VertexMap, not the
// historical implicit `v / interval_width` contract: the interval-block
// strategy still produces equal-width index ranges, but degree-aware and
// streaming strategies (graph/partitioner.hpp) assign vertices freely, so
// every consumer must go through interval_of()/interval_population()
// instead of doing width arithmetic of its own.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/edge_block_soa.hpp"
#include "graph/graph.hpp"
#include "graph/graph_source.hpp"

namespace hyve {

// Vertex→interval assignment. Two representations share one interface:
//   * uniform — the classic equal-width split, O(1) storage, contiguous
//     index ranges (interval_begin/end are meaningful);
//   * explicit — one interval id per vertex, produced by the pluggable
//     strategies; intervals are populations, not ranges.
// Populations always sum to the vertex count and every assignment is a
// valid interval id (checked at construction).
class VertexMap {
 public:
  // Equal-width split of [0, num_vertices) into num_intervals ranges
  // (the last may be short; trailing intervals may be empty when
  // num_intervals > num_vertices, which the dynamic store's slack grid
  // relies on).
  static VertexMap uniform(VertexId num_vertices, std::uint32_t num_intervals);

  // Explicit per-vertex assignment; assignment[v] is the interval of v.
  static VertexMap from_assignment(std::vector<std::uint32_t> assignment,
                                   std::uint32_t num_intervals);

  VertexMap() : VertexMap(uniform(0, 1)) {}

  VertexId num_vertices() const { return num_vertices_; }
  std::uint32_t num_intervals() const { return num_intervals_; }

  std::uint32_t interval_of(VertexId v) const {
    return assignment_.empty() ? static_cast<std::uint32_t>(v / width_)
                               : assignment_[v];
  }

  // Number of vertices assigned to interval i.
  VertexId population(std::uint32_t i) const;
  // Largest interval population (0 for an empty graph).
  VertexId max_population() const;

  // Whether every interval is a contiguous index range in ascending
  // order (always true for uniform maps; an explicit map may happen to
  // be contiguous too). Only then do interval_begin/end make sense.
  bool is_contiguous() const { return contiguous_; }
  VertexId interval_begin(std::uint32_t i) const;
  VertexId interval_end(std::uint32_t i) const;

 private:
  VertexMap(VertexId num_vertices, std::uint32_t num_intervals)
      : num_vertices_(num_vertices), num_intervals_(num_intervals) {}

  VertexId num_vertices_ = 0;
  std::uint32_t num_intervals_ = 1;
  VertexId width_ = 1;  // uniform maps only
  std::vector<std::uint32_t> assignment_;  // empty for uniform maps
  std::vector<VertexId> populations_;      // P entries
  std::vector<VertexId> begins_;           // P+1 entries when contiguous
  bool contiguous_ = true;
};

// CSR of the block grid by source vertex: for every vertex v, the sorted
// distinct destination intervals y with at least one edge v -> I_y.
// This is the dirty-propagation map of per-iteration pattern reuse
// (algos/frontier.hpp): when v changes, exactly the blocks
// B[interval_of(v)][y] for y in row(v) must be re-streamed next
// iteration. Rows are empty for vertices with no out-edges.
struct SourceBlockIndex {
  std::vector<std::uint64_t> offsets;    // V+1 prefix sums into intervals
  std::vector<std::uint32_t> intervals;  // distinct destination intervals

  std::span<const std::uint32_t> row(VertexId v) const {
    return {intervals.data() + offsets[v],
            intervals.data() + offsets[v + 1]};
  }
  std::size_t approx_bytes() const {
    return sizeof(SourceBlockIndex) +
           offsets.capacity() * sizeof(std::uint64_t) +
           intervals.capacity() * sizeof(std::uint32_t);
  }
};

class Partitioning {
 public:
  // Groups g's edges into P*P blocks with a counting sort over `map`
  // (which must cover exactly g's vertices).
  Partitioning(const Graph& g, VertexMap map);

  // Streaming equivalent: two passes over the source's edge chunks (one
  // to count, one to place), so an out-of-core graph is partitioned
  // without ever holding its unpartitioned edge vector. The grouped
  // layout is identical to the Graph overload's (the counting sort is
  // stable in chunk order).
  Partitioning(const GraphSource& source, VertexMap map);

  // Convenience: the paper's equal-width interval-block split. P >= 1
  // and P <= V (unless V == 0).
  Partitioning(const Graph& g, std::uint32_t num_intervals);

  std::uint32_t num_intervals() const { return map_.num_intervals(); }
  VertexId num_vertices() const { return map_.num_vertices(); }
  std::uint64_t num_edges() const { return edges_.size(); }
  std::uint64_t num_blocks() const {
    return static_cast<std::uint64_t>(num_intervals()) * num_intervals();
  }

  // The vertex→interval assignment this partitioning was built over.
  const VertexMap& vertex_map() const { return map_; }

  std::uint32_t interval_of(VertexId v) const { return map_.interval_of(v); }
  // Number of vertices in interval i.
  VertexId interval_population(std::uint32_t i) const {
    return map_.population(i);
  }
  // Contiguous-range accessors; valid only when the map is contiguous
  // (the interval-block strategy — checked).
  VertexId interval_begin(std::uint32_t i) const {
    return map_.interval_begin(i);
  }
  VertexId interval_end(std::uint32_t i) const {
    return map_.interval_end(i);
  }

  // Edges of block B[x][y] (source interval x, destination interval y).
  std::span<const Edge> block(std::uint32_t x, std::uint32_t y) const;
  std::uint64_t block_edge_count(std::uint32_t x, std::uint32_t y) const;

  // Number of blocks that contain at least one edge.
  std::uint64_t non_empty_blocks() const;

  // All edges, grouped contiguously in block-major (x, then y) order.
  const std::vector<Edge>& grouped_edges() const { return edges_; }

  // Structure-of-arrays image of grouped_edges(), transposed lazily on
  // first use and shared by copies of this partitioning, so one graph
  // image pays the O(E) transpose once per schedule no matter how many
  // sweep cells stream it. Valid for this partitioning's lifetime.
  // Thread-safe.
  const EdgeColumns& edge_columns() const;

  // SoA view of block B[x][y] — same edges, same order as block(x, y).
  EdgeBlockSoA block_soa(std::uint32_t x, std::uint32_t y) const;

  // Lazily built, shared and thread-safe like edge_columns().
  const SourceBlockIndex& source_block_index() const;

  // Bytes of the lazily built SoA/index images currently resident (0
  // before first use) — PartitionCache adds this to its accounting.
  std::size_t lazy_bytes() const;

 private:
  // Lazily built derived images, shared across copies (the grouped edge
  // layout they derive from is identical in every copy). Built once
  // under `mu`; the atomics publish the finished images so the per-block
  // hot paths (block_soa in every functional pass) cost one acquire
  // load instead of a mutex round trip.
  struct Lazy {
    std::mutex mu;
    std::shared_ptr<const EdgeColumns> columns;
    std::shared_ptr<const SourceBlockIndex> index;
    std::atomic<const EdgeColumns*> columns_ptr{nullptr};
    std::atomic<const SourceBlockIndex*> index_ptr{nullptr};
  };

  std::uint64_t block_index(std::uint32_t x, std::uint32_t y) const {
    return static_cast<std::uint64_t>(x) * num_intervals() + y;
  }

  VertexMap map_;
  std::vector<Edge> edges_;
  std::vector<std::uint64_t> offsets_;  // P*P + 1 prefix sums into edges_
  std::shared_ptr<Lazy> lazy_ = std::make_shared<Lazy>();
};

}  // namespace hyve
