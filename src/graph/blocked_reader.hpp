// Streaming reader for HyVEgrf2 blocked graph files.
//
// The file is mapped read-only (mmap on POSIX, buffered pread
// otherwise) and only the index footer is resident permanently
// (~24 bytes per block). Decoded blocks stream through a bounded
// window: an LRU cache of decompressed edge vectors whose total byte
// size never exceeds the window budget (except when a single block is
// itself larger — the window always admits the block being served).
// That bound is what lets a ~12 GiB full-scale edge file feed the
// pipeline from a few MiB of resident decode buffers.
//
// Window traffic is observable through the metrics registry:
//   sim.ooc.blocks_mapped      blocks decoded (faults, incl. re-decodes)
//   sim.ooc.bytes_faulted      compressed payload bytes read for those
//   sim.ooc.window_evictions   decoded blocks dropped to hold the budget
//   sim.ooc.window_bytes       current decoded-window residency (gauge)
//   sim.ooc.window_peak_bytes  high-water residency over the run (gauge)
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/blocked_format.hpp"
#include "graph/graph_source.hpp"

namespace hyve {

struct BlockedReaderOptions {
  // Decoded-window byte budget (0 = unbounded). Counted in decoded
  // Edge bytes, the memory eviction can actually free.
  std::size_t window_bytes = 0;
};

class BlockedGraphReader final : public GraphSource {
 public:
  explicit BlockedGraphReader(const std::string& path,
                              const BlockedReaderOptions& options = {});
  ~BlockedGraphReader() override;

  BlockedGraphReader(const BlockedGraphReader&) = delete;
  BlockedGraphReader& operator=(const BlockedGraphReader&) = delete;

  // GraphSource: chunks are the on-disk blocks, visited in file order
  // through the window (so a sequential scan faults each block once).
  VertexId num_vertices() const override { return header_.num_vertices; }
  std::uint64_t num_edges() const override { return header_.num_edges; }
  std::uint64_t num_chunks() const override { return index_.size(); }
  void for_each_chunk(
      const std::function<void(std::span<const Edge>)>& fn) const override;

  std::uint64_t num_blocks() const { return index_.size(); }
  const std::vector<blocked::BlockIndexEntry>& index() const {
    return index_;
  }
  const std::string& path() const { return path_; }

  // The decoded edges of block `b`, faulted through the window. The
  // returned pointer stays valid after an eviction (the window only
  // drops its own reference). Thread-safe.
  std::shared_ptr<const std::vector<Edge>> block(std::uint64_t b) const;

  // Current / peak decoded-window residency and whole-life counters.
  std::size_t window_resident_bytes() const;
  std::size_t window_peak_bytes() const;
  std::uint64_t blocks_faulted() const { return blocks_faulted_; }
  std::uint64_t window_evictions() const { return window_evictions_; }

  // Adjusts the budget (shrinking evicts immediately).
  void set_window_budget(std::size_t bytes);
  std::size_t window_budget() const;
  // Drops every decoded block (the mapping and index stay).
  void release_window();

 private:
  struct Mapping;  // platform-specific file view

  // Reads [offset, offset+size) of the file; the returned pointer is
  // valid until the reader is destroyed (mmap) or the next read_at on
  // the same scratch buffer (pread fallback).
  const std::uint8_t* read_at(std::uint64_t offset, std::size_t size,
                              std::vector<std::uint8_t>& scratch) const;

  std::shared_ptr<const std::vector<Edge>> fault_block_locked(
      std::uint64_t b) const;
  void evict_to_budget_locked(std::uint64_t keep) const;
  void note_window_locked() const;

  std::string path_;
  blocked::FileHeader header_;
  std::vector<blocked::BlockIndexEntry> index_;
  std::unique_ptr<Mapping> mapping_;
  std::uint64_t file_size_ = 0;

  mutable std::mutex mu_;  // guards the window state below
  struct CachedBlock {
    std::shared_ptr<const std::vector<Edge>> edges;
    std::size_t bytes = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };
  mutable std::unordered_map<std::uint64_t, CachedBlock> window_;
  mutable std::list<std::uint64_t> lru_;  // most recent at front
  mutable std::size_t window_bytes_ = 0;
  mutable std::size_t window_peak_bytes_ = 0;
  mutable std::size_t window_budget_ = 0;
  mutable std::uint64_t blocks_faulted_ = 0;
  mutable std::uint64_t window_evictions_ = 0;
  mutable std::vector<std::uint8_t> scratch_;  // pread fallback buffer
};

}  // namespace hyve
