#include "graph/datasets.hpp"

#include <array>
#include <bit>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>

#include "graph/io.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hyve {
namespace {

// Skew presets per graph class. Probabilities sum to 1 in each row.
constexpr RmatParams kSocialSkew{0.57, 0.19, 0.19, 0.05, false, true};
constexpr RmatParams kTalkSkew{0.65, 0.22, 0.10, 0.03, false, true};   // wiki-talk: extreme hubs
constexpr RmatParams kTopologySkew{0.59, 0.19, 0.19, 0.03, false, true};  // as-skitter

// Scale factors: 1/20 for the four SNAP graphs, 1/200 for twitter-2010
// (1.47 B edges would dominate the single-core budget). Vertex counts are
// scaled by the same factor as edges so avg degree is preserved.
constexpr std::array<DatasetSpec, 5> kSpecs = {{
    {DatasetId::kYT, "YT", "snap:com-youtube", 1'160'000, 2'990'000, 20.0,
     58'000, 149'500, kSocialSkew, 0xA11CE001},
    {DatasetId::kWK, "WK", "snap:wiki-talk", 2'390'000, 5'020'000, 20.0,
     119'500, 251'000, kTalkSkew, 0xA11CE002},
    {DatasetId::kAS, "AS", "snap:as-skitter", 1'690'000, 11'100'000, 20.0,
     84'500, 555'000, kTopologySkew, 0xA11CE003},
    {DatasetId::kLJ, "LJ", "snap:live-journal", 4'850'000, 69'000'000, 20.0,
     242'500, 3'450'000, kSocialSkew, 0xA11CE004},
    {DatasetId::kTW, "TW", "snap:twitter-2010", 41'700'000, 1'470'000'000,
     200.0, 208'500, 7'350'000, kSocialSkew, 0xA11CE005},
}};

std::filesystem::path cache_dir() {
  const char* env = std::getenv("HYVE_DATASET_CACHE");
  if (env != nullptr) return env;
  return std::filesystem::temp_directory_path() / "hyve-datasets-v1";
}

// Hash of every spec field that shapes the generated graph. Folded into
// the cache filename so editing a spec (sizes, skew, seed) can never
// silently resurrect a stale cached graph under the old name.
std::uint64_t spec_hash(const DatasetSpec& spec) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  for (const char* c = spec.name; *c != '\0'; ++c)
    mix(static_cast<std::uint64_t>(*c));
  mix(spec.vertices);
  mix(spec.edges);
  mix(std::bit_cast<std::uint64_t>(spec.rmat.a));
  mix(std::bit_cast<std::uint64_t>(spec.rmat.b));
  mix(std::bit_cast<std::uint64_t>(spec.rmat.c));
  mix(std::bit_cast<std::uint64_t>(spec.rmat.d));
  mix(spec.rmat.allow_self_loops ? 1 : 0);
  mix(spec.rmat.deduplicate ? 1 : 0);
  mix(spec.seed);
  return h;
}

Graph generate_or_load(const DatasetSpec& spec) {
  const auto dir = cache_dir();
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                static_cast<unsigned long long>(spec_hash(spec)));
  const auto file =
      dir / (std::string(spec.name) + "-" + hash_hex + ".bin");
  std::error_code ec;
  if (std::filesystem::exists(file, ec)) {
    try {
      return load_graph_binary(file.string());
    } catch (const std::exception& e) {
      HYVE_LOG(kWarn) << "stale dataset cache " << file.string() << " ("
                      << e.what() << "); regenerating";
    }
  }
  HYVE_LOG(kInfo) << "generating dataset " << spec.name << " (V="
                  << spec.vertices << ", E~" << spec.edges << ")";
  Graph g = generate_rmat(spec.vertices, spec.edges, spec.rmat, spec.seed);
  std::filesystem::create_directories(dir, ec);
  if (!ec) {
    try {
      save_graph_binary(g, file.string());
    } catch (const std::exception& e) {
      HYVE_LOG(kWarn) << "cannot cache dataset: " << e.what();
    }
  }
  return g;
}

}  // namespace

const DatasetSpec& dataset_spec(DatasetId id) {
  const auto idx = static_cast<std::size_t>(id);
  HYVE_CHECK(idx < kSpecs.size());
  return kSpecs[idx];
}

const Graph& dataset_graph(DatasetId id) {
  static std::array<std::unique_ptr<Graph>, 5> cache;
  static std::mutex mu;
  const auto idx = static_cast<std::size_t>(id);
  HYVE_CHECK(idx < cache.size());
  const std::scoped_lock lock(mu);
  if (!cache[idx])
    cache[idx] = std::make_unique<Graph>(generate_or_load(kSpecs[idx]));
  return *cache[idx];
}

std::string dataset_name(DatasetId id) { return dataset_spec(id).name; }

std::optional<DatasetId> parse_dataset(const std::string& name) {
  auto upper = [](const std::string& s) {
    std::string out = s;
    for (char& c : out)
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return out;
  };
  const std::string needle = upper(name);
  for (const DatasetId id : kAllDatasets)
    if (needle == dataset_name(id)) return id;
  return std::nullopt;
}

}  // namespace hyve
