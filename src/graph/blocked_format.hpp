// HyVEgrf2 — the versioned out-of-core edge-block file format.
//
// Layout (all fields little-endian, written on the native
// little-endian toolchain like the flat .bin cache format):
//
//   FileHeader                       48 bytes, at offset 0
//   Block 0 .. Block N-1             each aligned to header.block_align
//     BlockHeader                    24 bytes
//     payload                        varint/delta-compressed edges
//   IndexFooter                      at header-patched index_offset
//     {magic, num_blocks, entries[], checksum}
//   FileTrailer                      last 16 bytes: {index_offset, magic}
//
// Blocks are sector-aligned (512 B by default) after the edge-block
// layout of the nvmevirt-graph computational-storage work: a block is
// the unit of transfer, checksummed and independently decodable, so a
// reader can fault in any subset through a bounded window. The index
// footer carries per-block edge counts, payload sizes and source-id
// ranges (min/max src) — enough for access-pattern-aware readers to
// map source intervals to block ranges without touching payloads.
//
// Payload encoding: edges are delta/varint compressed in file order.
// Per edge, zigzag(src - prev_src) as LEB128; then, when the source
// repeats (delta 0), zigzag(dst - prev_dst), otherwise dst as a plain
// LEB128 varint. Sorted edge runs (the canonical generator output)
// compress to ~2-3 bytes/edge vs 8 raw; arbitrary order stays correct,
// just larger.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hyve::blocked {

inline constexpr std::uint64_t kMagic = 0x48795645'67726632ULL;  // "HyVEgrf2"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kBlockMagic = 0x4856424BU;   // "HVBK"
inline constexpr std::uint32_t kIndexMagic = 0x48564958U;   // "HVIX"
inline constexpr std::uint32_t kFileHeaderBytes = 48;
inline constexpr std::uint32_t kBlockHeaderBytes = 24;
inline constexpr std::uint32_t kFileTrailerBytes = 16;

struct FileHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t block_align = 512;
  std::uint32_t num_vertices = 0;
  std::uint32_t reserved = 0;
  std::uint64_t num_edges = 0;    // patched at finish()
  std::uint64_t num_blocks = 0;   // patched at finish()
  std::uint64_t index_offset = 0; // patched at finish()
};
static_assert(sizeof(FileHeader) == kFileHeaderBytes);

struct BlockHeader {
  std::uint32_t magic = kBlockMagic;
  std::uint32_t edge_count = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t payload_checksum = 0;  // FNV-1a 32 over the payload
  std::uint32_t min_src = 0;
  std::uint32_t max_src = 0;
};
static_assert(sizeof(BlockHeader) == kBlockHeaderBytes);

// One index-footer entry per block (also the reader's in-memory index).
struct BlockIndexEntry {
  std::uint64_t offset = 0;  // absolute file offset of the BlockHeader
  std::uint32_t edge_count = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t min_src = 0;
  std::uint32_t max_src = 0;
};
static_assert(sizeof(BlockIndexEntry) == 24);

// FNV-1a 32, the per-block payload and index checksum.
inline std::uint32_t fnv1a(const void* data, std::size_t size,
                           std::uint32_t seed = 0x811C9DC5U) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x01000193U;
  }
  return h;
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

// Decodes one varint from [p, end); returns nullptr on malformed input
// (truncated or longer than 10 bytes).
const std::uint8_t* get_varint(const std::uint8_t* p, const std::uint8_t* end,
                               std::uint64_t* out);

// Delta/varint codec over a whole block payload. encode_block appends to
// `out`; decode_block appends `edge_count` edges to `edges` and throws
// FileError (io.hpp) on malformed payloads.
void encode_block(std::span<const Edge> edges, std::vector<std::uint8_t>& out);
void decode_block(const std::uint8_t* payload, std::size_t payload_bytes,
                  std::uint32_t edge_count, std::vector<Edge>& edges);

struct WriteOptions {
  // Edges per on-disk block: 64 Ki edges = 512 KiB decoded, a few sectors
  // compressed. The final block may be short.
  std::uint32_t block_edges = 64 * 1024;
  std::uint32_t block_align = 512;
};

// Streaming writer: append edges in any chunking, blocks are cut and
// flushed every `block_edges`, and finish() seals the index footer and
// patches the header. Appended edges must satisfy src/dst < V (checked;
// the writer refuses to create a file its own reader would reject).
class BlockedWriter {
 public:
  BlockedWriter(const std::string& path, VertexId num_vertices,
                const WriteOptions& options = {});
  ~BlockedWriter();

  BlockedWriter(const BlockedWriter&) = delete;
  BlockedWriter& operator=(const BlockedWriter&) = delete;

  void append(std::span<const Edge> edges);
  void append(const Edge& e) { append(std::span<const Edge>(&e, 1)); }

  // Seals the file (flushes the open block, writes the index footer and
  // trailer, patches the header). Idempotent; the destructor calls it,
  // but callers should invoke it directly to observe write errors.
  void finish();

  std::uint64_t edges_written() const { return edges_written_; }
  std::uint64_t blocks_written() const { return index_.size(); }

 private:
  void flush_block();

  std::string path_;
  std::ofstream out_;
  VertexId num_vertices_;
  WriteOptions options_;
  std::vector<Edge> pending_;
  std::vector<std::uint8_t> payload_;  // reused encode buffer
  std::vector<BlockIndexEntry> index_;
  std::uint64_t edges_written_ = 0;
  bool finished_ = false;
};

// Convenience: writes an in-memory graph as a HyVEgrf2 file.
void write_blocked(const Graph& g, const std::string& path,
                   const WriteOptions& options = {});

}  // namespace hyve::blocked
