#include "graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <queue>
#include <utility>

#include "graph/io.hpp"
#include "obs/host_profiler.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hyve {
namespace {

// Sorts, deduplicates, and drops out-of-range / self-loop edges in place.
void canonicalize(std::vector<Edge>& edges, VertexId num_vertices,
                  bool allow_self_loops) {
  std::erase_if(edges, [&](const Edge& e) {
    if (e.src >= num_vertices || e.dst >= num_vertices) return true;
    return !allow_self_loops && e.src == e.dst;
  });
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

Edge rmat_edge(VertexId scale_pow2, const RmatParams& p, Rng& rng) {
  VertexId src = 0;
  VertexId dst = 0;
  for (VertexId step = scale_pow2 >> 1; step > 0; step >>= 1) {
    const double r = rng.next_double();
    if (r < p.a) {
      // top-left quadrant: neither bit set
    } else if (r < p.a + p.b) {
      dst |= step;
    } else if (r < p.a + p.b + p.c) {
      src |= step;
    } else {
      src |= step;
      dst |= step;
    }
  }
  return {src, dst};
}

}  // namespace

Graph generate_rmat(VertexId num_vertices, std::uint64_t target_edges,
                    const RmatParams& params, std::uint64_t seed) {
  const obs::HostSpan host_span("rmat.generate");
  HYVE_CHECK(num_vertices > 1);
  const double sum = params.a + params.b + params.c + params.d;
  HYVE_CHECK_MSG(std::abs(sum - 1.0) < 1e-9, "R-MAT probabilities sum to "
                                                 << sum);
  const VertexId scale = std::bit_ceil(num_vertices);
  Rng rng(seed);

  std::vector<Edge> edges;
  edges.reserve(target_edges + target_edges / 4);
  // Oversample in rounds until the deduplicated set reaches the target;
  // R-MAT's duplicate rate grows with skew, so the loop adapts.
  std::uint64_t produced_target = target_edges;
  for (int round = 0; round < 8 && edges.size() < target_edges; ++round) {
    while (edges.size() < produced_target) {
      const Edge e = rmat_edge(scale, params, rng);
      if (e.src < num_vertices && e.dst < num_vertices) edges.push_back(e);
    }
    if (params.deduplicate) {
      canonicalize(edges, num_vertices, params.allow_self_loops);
      if (edges.size() >= target_edges) break;
      // Oversample the shortfall 2x: duplicates concentrate in the dense
      // quadrant, so the marginal duplicate rate exceeds the average one.
      produced_target = edges.size() + (target_edges - edges.size()) * 2;
    } else {
      std::erase_if(edges, [&](const Edge& e) {
        return !params.allow_self_loops && e.src == e.dst;
      });
      break;
    }
  }
  if (params.deduplicate && edges.size() > target_edges)
    edges.resize(target_edges);
  obs::host_profiler().count("rmat_edges", edges.size());
  return Graph(num_vertices, std::move(edges));
}

namespace {

// Sorted spill files for the chunked R-MAT path, removed on scope exit.
class TempRuns {
 public:
  explicit TempRuns(std::string stem) : stem_(std::move(stem)) {}
  ~TempRuns() {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }
  TempRuns(const TempRuns&) = delete;
  TempRuns& operator=(const TempRuns&) = delete;

  void spill(std::vector<Edge>& chunk) {
    if (chunk.empty()) return;
    std::sort(chunk.begin(), chunk.end());
    const std::string path =
        stem_ + ".run" + std::to_string(paths_.size()) + ".tmp";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw FileError("cannot open spill file " + path);
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(chunk.size() * sizeof(Edge)));
    if (!out) throw FileError("write failed: " + path);
    paths_.push_back(path);
    chunk.clear();
  }

  const std::vector<std::string>& paths() const { return paths_; }

 private:
  std::string stem_;
  std::vector<std::string> paths_;
};

// Buffered sequential reader over one sorted run.
class RunCursor {
 public:
  RunCursor(const std::string& path, std::size_t buffer_edges)
      : in_(path, std::ios::binary), buffer_edges_(buffer_edges) {
    if (!in_) throw FileError("cannot open spill file " + path);
  }

  bool next(Edge* e) {
    if (pos_ == buf_.size()) {
      buf_.resize(buffer_edges_);
      in_.read(reinterpret_cast<char*>(buf_.data()),
               static_cast<std::streamsize>(buffer_edges_ * sizeof(Edge)));
      buf_.resize(static_cast<std::size_t>(in_.gcount()) / sizeof(Edge));
      pos_ = 0;
      if (buf_.empty()) return false;
    }
    *e = buf_[pos_++];
    return true;
  }

 private:
  std::ifstream in_;
  std::size_t buffer_edges_;
  std::vector<Edge> buf_;
  std::size_t pos_ = 0;
};

// Streaming k-way merge over the runs: visits each distinct valid edge
// (in-range by construction; self-loops skipped unless allowed) in
// sorted order. Returns when fn returns false or the runs are dry.
template <typename Fn>
void merge_distinct(const std::vector<std::string>& runs,
                    std::size_t buffer_edges, bool allow_self_loops,
                    Fn&& fn) {
  std::vector<RunCursor> cursors;
  cursors.reserve(runs.size());
  using HeapItem = std::pair<Edge, std::size_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>,
                      std::greater<HeapItem>>
      heap;
  for (const std::string& path : runs) {
    cursors.emplace_back(path, buffer_edges);
    Edge e;
    if (cursors.back().next(&e)) heap.emplace(e, cursors.size() - 1);
  }
  bool have_prev = false;
  Edge prev{};
  while (!heap.empty()) {
    const auto [e, run] = heap.top();
    heap.pop();
    Edge refill;
    if (cursors[run].next(&refill)) heap.emplace(refill, run);
    if (have_prev && e == prev) continue;
    have_prev = true;
    prev = e;
    if (!allow_self_loops && e.src == e.dst) continue;
    if (!fn(e)) return;
  }
}

}  // namespace

void generate_rmat_blocked(const std::string& path, VertexId num_vertices,
                           std::uint64_t target_edges,
                           const RmatParams& params, std::uint64_t seed,
                           const RmatChunkOptions& options) {
  const obs::HostSpan host_span("rmat.generate");
  obs::host_profiler().count("rmat_edges", target_edges);
  HYVE_CHECK(num_vertices > 1);
  HYVE_CHECK(options.chunk_edges > 0);
  const double sum = params.a + params.b + params.c + params.d;
  HYVE_CHECK_MSG(std::abs(sum - 1.0) < 1e-9, "R-MAT probabilities sum to "
                                                 << sum);
  const VertexId scale = std::bit_ceil(num_vertices);
  Rng rng(seed);
  std::vector<Edge> chunk;
  chunk.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(options.chunk_edges, target_edges + 1)));

  if (!params.deduplicate) {
    // Generation order is the file order (matching generate_rmat, which
    // only strips self-loops after producing target_edges raw edges).
    blocked::BlockedWriter writer(path, num_vertices, options.write);
    for (std::uint64_t produced = 0; produced < target_edges;) {
      const Edge e = rmat_edge(scale, params, rng);
      if (e.src >= num_vertices || e.dst >= num_vertices) continue;
      ++produced;
      if (!params.allow_self_loops && e.src == e.dst) continue;
      writer.append(e);
    }
    writer.finish();
    return;
  }

  // Mirrors generate_rmat()'s adaptive oversampling loop, with the edge
  // multiset spilled to sorted runs instead of held in one vector: each
  // round tops the raw pool up to produced_target, then a counting merge
  // plays the role of canonicalize()'s size check. RNG consumption per
  // round is identical, so the final sorted-distinct prefix is too.
  const std::size_t merge_buffer = static_cast<std::size_t>(
      std::max<std::uint64_t>(4096, options.chunk_edges / 256));
  TempRuns runs(path);
  std::uint64_t distinct = 0;
  std::uint64_t produced_target = target_edges;
  for (int round = 0; round < 8 && distinct < target_edges; ++round) {
    for (std::uint64_t pool = distinct; pool < produced_target;) {
      const Edge e = rmat_edge(scale, params, rng);
      if (e.src >= num_vertices || e.dst >= num_vertices) continue;
      ++pool;
      chunk.push_back(e);
      if (chunk.size() >= options.chunk_edges) runs.spill(chunk);
    }
    runs.spill(chunk);
    distinct = 0;
    merge_distinct(runs.paths(), merge_buffer, params.allow_self_loops,
                   [&](const Edge&) {
                     ++distinct;
                     return true;
                   });
    if (distinct >= target_edges) break;
    // Oversample the shortfall 2x, exactly as the in-memory path does.
    produced_target = distinct + (target_edges - distinct) * 2;
  }

  blocked::BlockedWriter writer(path, num_vertices, options.write);
  std::uint64_t emitted = 0;
  merge_distinct(runs.paths(), merge_buffer, params.allow_self_loops,
                 [&](const Edge& e) {
                   writer.append(e);
                   return ++emitted < target_edges;
                 });
  writer.finish();
}

Graph generate_erdos_renyi(VertexId num_vertices, std::uint64_t target_edges,
                           std::uint64_t seed) {
  HYVE_CHECK(num_vertices > 1);
  const auto possible =
      static_cast<std::uint64_t>(num_vertices) * (num_vertices - 1);
  HYVE_CHECK_MSG(target_edges <= possible / 2,
                 "requested density too high for distinct directed edges");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(target_edges + target_edges / 8);
  while (true) {
    while (edges.size() < target_edges + target_edges / 8 + 16) {
      const auto src = static_cast<VertexId>(rng.next_below(num_vertices));
      const auto dst = static_cast<VertexId>(rng.next_below(num_vertices));
      edges.push_back({src, dst});
    }
    canonicalize(edges, num_vertices, /*allow_self_loops=*/false);
    if (edges.size() >= target_edges) break;
  }
  edges.resize(target_edges);
  return Graph(num_vertices, std::move(edges));
}

Graph generate_barabasi_albert(VertexId num_vertices,
                               std::uint32_t edges_per_vertex,
                               std::uint64_t seed) {
  HYVE_CHECK(edges_per_vertex >= 1);
  HYVE_CHECK(num_vertices > edges_per_vertex + 1);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * edges_per_vertex);
  // Repeated-endpoint list: sampling a uniform element is sampling
  // proportionally to degree (the standard BA implementation trick).
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(edges.capacity() * 2);

  // Seed clique over the first m+1 vertices.
  for (VertexId v = 0; v <= edges_per_vertex; ++v) {
    const VertexId u = (v + 1) % (edges_per_vertex + 1);
    edges.push_back({v, u});
    endpoint_pool.push_back(v);
    endpoint_pool.push_back(u);
  }
  for (VertexId v = edges_per_vertex + 1; v < num_vertices; ++v) {
    for (std::uint32_t j = 0; j < edges_per_vertex; ++j) {
      VertexId target = v;
      for (int attempt = 0; attempt < 16 && target == v; ++attempt)
        target = endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (target == v) target = (v + 1) % v;  // degenerate fallback
      edges.push_back({v, target});
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  canonicalize(edges, num_vertices, /*allow_self_loops=*/false);
  return Graph(num_vertices, std::move(edges));
}

Graph generate_watts_strogatz(VertexId num_vertices, std::uint32_t k,
                              double beta, std::uint64_t seed) {
  HYVE_CHECK(k >= 2 && k % 2 == 0);
  HYVE_CHECK(num_vertices > k + 1);
  HYVE_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * k / 2);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      VertexId target = static_cast<VertexId>(
          (static_cast<std::uint64_t>(v) + j) % num_vertices);
      if (rng.next_bool(beta)) {
        // Rewire to a uniform non-self target.
        do {
          target = static_cast<VertexId>(rng.next_below(num_vertices));
        } while (target == v);
      }
      edges.push_back({v, target});
    }
  }
  canonicalize(edges, num_vertices, /*allow_self_loops=*/false);
  return Graph(num_vertices, std::move(edges));
}

}  // namespace hyve
