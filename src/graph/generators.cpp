#include "graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace hyve {
namespace {

// Sorts, deduplicates, and drops out-of-range / self-loop edges in place.
void canonicalize(std::vector<Edge>& edges, VertexId num_vertices,
                  bool allow_self_loops) {
  std::erase_if(edges, [&](const Edge& e) {
    if (e.src >= num_vertices || e.dst >= num_vertices) return true;
    return !allow_self_loops && e.src == e.dst;
  });
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

Edge rmat_edge(VertexId scale_pow2, const RmatParams& p, Rng& rng) {
  VertexId src = 0;
  VertexId dst = 0;
  for (VertexId step = scale_pow2 >> 1; step > 0; step >>= 1) {
    const double r = rng.next_double();
    if (r < p.a) {
      // top-left quadrant: neither bit set
    } else if (r < p.a + p.b) {
      dst |= step;
    } else if (r < p.a + p.b + p.c) {
      src |= step;
    } else {
      src |= step;
      dst |= step;
    }
  }
  return {src, dst};
}

}  // namespace

Graph generate_rmat(VertexId num_vertices, std::uint64_t target_edges,
                    const RmatParams& params, std::uint64_t seed) {
  HYVE_CHECK(num_vertices > 1);
  const double sum = params.a + params.b + params.c + params.d;
  HYVE_CHECK_MSG(std::abs(sum - 1.0) < 1e-9, "R-MAT probabilities sum to "
                                                 << sum);
  const VertexId scale = std::bit_ceil(num_vertices);
  Rng rng(seed);

  std::vector<Edge> edges;
  edges.reserve(target_edges + target_edges / 4);
  // Oversample in rounds until the deduplicated set reaches the target;
  // R-MAT's duplicate rate grows with skew, so the loop adapts.
  std::uint64_t produced_target = target_edges;
  for (int round = 0; round < 8 && edges.size() < target_edges; ++round) {
    while (edges.size() < produced_target) {
      const Edge e = rmat_edge(scale, params, rng);
      if (e.src < num_vertices && e.dst < num_vertices) edges.push_back(e);
    }
    if (params.deduplicate) {
      canonicalize(edges, num_vertices, params.allow_self_loops);
      if (edges.size() >= target_edges) break;
      // Oversample the shortfall 2x: duplicates concentrate in the dense
      // quadrant, so the marginal duplicate rate exceeds the average one.
      produced_target = edges.size() + (target_edges - edges.size()) * 2;
    } else {
      std::erase_if(edges, [&](const Edge& e) {
        return !params.allow_self_loops && e.src == e.dst;
      });
      break;
    }
  }
  if (params.deduplicate && edges.size() > target_edges)
    edges.resize(target_edges);
  return Graph(num_vertices, std::move(edges));
}

Graph generate_erdos_renyi(VertexId num_vertices, std::uint64_t target_edges,
                           std::uint64_t seed) {
  HYVE_CHECK(num_vertices > 1);
  const auto possible =
      static_cast<std::uint64_t>(num_vertices) * (num_vertices - 1);
  HYVE_CHECK_MSG(target_edges <= possible / 2,
                 "requested density too high for distinct directed edges");
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(target_edges + target_edges / 8);
  while (true) {
    while (edges.size() < target_edges + target_edges / 8 + 16) {
      const auto src = static_cast<VertexId>(rng.next_below(num_vertices));
      const auto dst = static_cast<VertexId>(rng.next_below(num_vertices));
      edges.push_back({src, dst});
    }
    canonicalize(edges, num_vertices, /*allow_self_loops=*/false);
    if (edges.size() >= target_edges) break;
  }
  edges.resize(target_edges);
  return Graph(num_vertices, std::move(edges));
}

Graph generate_barabasi_albert(VertexId num_vertices,
                               std::uint32_t edges_per_vertex,
                               std::uint64_t seed) {
  HYVE_CHECK(edges_per_vertex >= 1);
  HYVE_CHECK(num_vertices > edges_per_vertex + 1);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * edges_per_vertex);
  // Repeated-endpoint list: sampling a uniform element is sampling
  // proportionally to degree (the standard BA implementation trick).
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(edges.capacity() * 2);

  // Seed clique over the first m+1 vertices.
  for (VertexId v = 0; v <= edges_per_vertex; ++v) {
    const VertexId u = (v + 1) % (edges_per_vertex + 1);
    edges.push_back({v, u});
    endpoint_pool.push_back(v);
    endpoint_pool.push_back(u);
  }
  for (VertexId v = edges_per_vertex + 1; v < num_vertices; ++v) {
    for (std::uint32_t j = 0; j < edges_per_vertex; ++j) {
      VertexId target = v;
      for (int attempt = 0; attempt < 16 && target == v; ++attempt)
        target = endpoint_pool[rng.next_below(endpoint_pool.size())];
      if (target == v) target = (v + 1) % v;  // degenerate fallback
      edges.push_back({v, target});
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  canonicalize(edges, num_vertices, /*allow_self_loops=*/false);
  return Graph(num_vertices, std::move(edges));
}

Graph generate_watts_strogatz(VertexId num_vertices, std::uint32_t k,
                              double beta, std::uint64_t seed) {
  HYVE_CHECK(k >= 2 && k % 2 == 0);
  HYVE_CHECK(num_vertices > k + 1);
  HYVE_CHECK(beta >= 0.0 && beta <= 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * k / 2);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      VertexId target = static_cast<VertexId>(
          (static_cast<std::uint64_t>(v) + j) % num_vertices);
      if (rng.next_bool(beta)) {
        // Rewire to a uniform non-self target.
        do {
          target = static_cast<VertexId>(rng.next_below(num_vertices));
        } while (target == v);
      }
      edges.push_back({v, target});
    }
  }
  canonicalize(edges, num_vertices, /*allow_self_loops=*/false);
  return Graph(num_vertices, std::move(edges));
}

}  // namespace hyve
