#include "graph/blocked_reader.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "graph/io.hpp"
#include "obs/host_profiler.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HYVE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hyve {

using blocked::BlockHeader;
using blocked::BlockIndexEntry;
using blocked::FileHeader;

// Holds either an mmap'ed view of the whole file or just the fd-less
// pread fallback (an open ifstream).
struct BlockedGraphReader::Mapping {
  const std::uint8_t* data = nullptr;  // null in the fallback
  std::size_t size = 0;
  mutable std::ifstream stream;  // fallback reads (under the reader's mu_)

  ~Mapping() {
#if HYVE_HAVE_MMAP
    if (data != nullptr)
      ::munmap(const_cast<std::uint8_t*>(data), size);
#endif
  }
};

namespace {

void count_metric(const char* name, std::uint64_t delta) {
  if (obs::enabled()) obs::registry().counter(name).add(delta);
}

void gauge_metric(const char* name, std::int64_t value) {
  if (obs::enabled()) obs::registry().gauge(name).set(value);
}

}  // namespace

BlockedGraphReader::BlockedGraphReader(const std::string& path,
                                       const BlockedReaderOptions& options)
    : path_(path), window_budget_(options.window_bytes) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) throw FileError("cannot open " + path + ": " + ec.message());
  file_size_ = size;
  if (file_size_ < blocked::kFileHeaderBytes + blocked::kFileTrailerBytes)
    throw FileError("blocked graph file too small: " + path);

  mapping_ = std::make_unique<Mapping>();
#if HYVE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    void* map = ::mmap(nullptr, file_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map != MAP_FAILED) {
      mapping_->data = static_cast<const std::uint8_t*>(map);
      mapping_->size = file_size_;
    }
  }
#endif
  if (mapping_->data == nullptr) {
    mapping_->stream.open(path, std::ios::binary);
    if (!mapping_->stream) throw FileError("cannot open " + path);
  }

  std::vector<std::uint8_t> scratch;
  const std::uint8_t* head =
      read_at(0, blocked::kFileHeaderBytes, scratch);
  std::memcpy(&header_, head, sizeof header_);
  if (header_.magic != blocked::kMagic)
    throw FileError("bad blocked graph magic: " + path);
  if (header_.version != blocked::kVersion)
    throw FileError("unsupported blocked graph version " +
                    std::to_string(header_.version) + ": " + path);
  if (header_.block_align == 0)
    throw FileError("bad blocked graph alignment: " + path);

  // The trailer re-states the index offset; both untrusted copies must
  // agree and point inside the file before anything is sized from them.
  const std::uint8_t* trailer = read_at(
      file_size_ - blocked::kFileTrailerBytes, blocked::kFileTrailerBytes,
      scratch);
  std::uint64_t trailer_index_offset = 0;
  std::uint64_t trailer_magic = 0;
  std::memcpy(&trailer_index_offset, trailer, 8);
  std::memcpy(&trailer_magic, trailer + 8, 8);
  if (trailer_magic != blocked::kMagic)
    throw FileError("bad blocked graph trailer: " + path);
  if (trailer_index_offset != header_.index_offset)
    throw FileError("blocked graph header/trailer disagree: " + path);

  // Index bounds: magic + count + entries + checksum + pad + trailer
  // must fit exactly between index_offset and end of file.
  const std::uint64_t index_offset = header_.index_offset;
  if (index_offset < blocked::kFileHeaderBytes ||
      index_offset + 8 > file_size_)
    throw FileError("blocked graph index out of bounds: " + path);
  const std::uint8_t* index_head = read_at(index_offset, 8, scratch);
  std::uint32_t index_magic = 0;
  std::uint32_t num_blocks = 0;
  std::memcpy(&index_magic, index_head, 4);
  std::memcpy(&num_blocks, index_head + 4, 4);
  if (index_magic != blocked::kIndexMagic)
    throw FileError("bad blocked graph index magic: " + path);
  if (num_blocks != header_.num_blocks)
    throw FileError("blocked graph block count mismatch: " + path);
  const std::uint64_t index_bytes =
      std::uint64_t{num_blocks} * sizeof(BlockIndexEntry);
  const std::uint64_t expected_end = index_offset + 8 + index_bytes + 4 + 4 +
                                     blocked::kFileTrailerBytes;
  if (expected_end != file_size_)
    throw FileError("blocked graph index size mismatch: " + path);

  index_.resize(num_blocks);
  if (num_blocks > 0) {
    const std::uint8_t* entries =
        read_at(index_offset + 8, index_bytes, scratch);
    std::memcpy(index_.data(), entries, index_bytes);
    const std::uint8_t* checksum_bytes =
        read_at(index_offset + 8 + index_bytes, 4, scratch);
    std::uint32_t expected_checksum = 0;
    std::memcpy(&expected_checksum, checksum_bytes, 4);
    if (blocked::fnv1a(index_.data(), index_bytes) != expected_checksum)
      throw FileError("blocked graph index checksum mismatch: " + path);
  }

  // Per-block sanity: offsets and payloads inside the data region, edge
  // counts summing to the header's total.
  std::uint64_t total_edges = 0;
  for (const BlockIndexEntry& entry : index_) {
    if (entry.offset < blocked::kFileHeaderBytes ||
        entry.offset + blocked::kBlockHeaderBytes > index_offset ||
        entry.payload_bytes >
            index_offset - entry.offset - blocked::kBlockHeaderBytes)
      throw FileError("blocked graph block out of bounds: " + path);
    if (entry.edge_count == 0)
      throw FileError("blocked graph has an empty block: " + path);
    total_edges += entry.edge_count;
  }
  if (total_edges != header_.num_edges)
    throw FileError("blocked graph edge count mismatch: " + path);
}

BlockedGraphReader::~BlockedGraphReader() = default;

const std::uint8_t* BlockedGraphReader::read_at(
    std::uint64_t offset, std::size_t size,
    std::vector<std::uint8_t>& scratch) const {
  HYVE_CHECK(offset + size <= file_size_);
  if (mapping_->data != nullptr) return mapping_->data + offset;
  scratch.resize(size);
  mapping_->stream.clear();
  mapping_->stream.seekg(static_cast<std::streamoff>(offset));
  mapping_->stream.read(reinterpret_cast<char*>(scratch.data()),
                        static_cast<std::streamsize>(size));
  if (!mapping_->stream) throw FileError("read failed: " + path_);
  return scratch.data();
}

std::shared_ptr<const std::vector<Edge>> BlockedGraphReader::fault_block_locked(
    std::uint64_t b) const {
  const obs::HostSpan host_span("ooc.fault");
  obs::host_profiler().count("ooc_blocks", 1);
  const BlockIndexEntry& entry = index_[b];
  const std::uint8_t* head = read_at(
      entry.offset, blocked::kBlockHeaderBytes + entry.payload_bytes,
      scratch_);
  BlockHeader header;
  std::memcpy(&header, head, sizeof header);
  if (header.magic != blocked::kBlockMagic ||
      header.edge_count != entry.edge_count ||
      header.payload_bytes != entry.payload_bytes)
    throw FileError("blocked graph block header mismatch: " + path_);
  const std::uint8_t* payload = head + blocked::kBlockHeaderBytes;
  if (blocked::fnv1a(payload, entry.payload_bytes) != header.payload_checksum)
    throw FileError("blocked graph block checksum mismatch: " + path_);

  auto edges = std::make_shared<std::vector<Edge>>();
  edges->reserve(entry.edge_count);
  blocked::decode_block(payload, entry.payload_bytes, entry.edge_count,
                        *edges);
  for (const Edge& e : *edges)
    if (e.src >= header_.num_vertices || e.dst >= header_.num_vertices)
      throw FileError("edge " + std::to_string(e.src) + "->" +
                      std::to_string(e.dst) + " out of range for V=" +
                      std::to_string(header_.num_vertices) + ": " + path_);

  ++blocks_faulted_;
  count_metric("sim.ooc.blocks_mapped", 1);
  count_metric("sim.ooc.bytes_faulted", entry.payload_bytes);
  return edges;
}

void BlockedGraphReader::evict_to_budget_locked(std::uint64_t keep) const {
  if (window_budget_ == 0) return;
  while (window_bytes_ > window_budget_ && !lru_.empty()) {
    // Victim: least recently used block other than the one being served.
    auto victim_it = lru_.end();
    for (auto it = lru_.end(); it != lru_.begin();) {
      --it;
      if (*it != keep) {
        victim_it = it;
        break;
      }
    }
    if (victim_it == lru_.end()) return;  // only `keep` is resident
    const auto node = window_.find(*victim_it);
    window_bytes_ -= node->second.bytes;
    lru_.erase(victim_it);
    window_.erase(node);
    ++window_evictions_;
    count_metric("sim.ooc.window_evictions", 1);
  }
}

void BlockedGraphReader::note_window_locked() const {
  window_peak_bytes_ = std::max(window_peak_bytes_, window_bytes_);
  gauge_metric("sim.ooc.window_bytes",
               static_cast<std::int64_t>(window_bytes_));
  gauge_metric("sim.ooc.window_peak_bytes",
               static_cast<std::int64_t>(window_peak_bytes_));
}

std::shared_ptr<const std::vector<Edge>> BlockedGraphReader::block(
    std::uint64_t b) const {
  HYVE_CHECK_MSG(b < index_.size(),
                 "block " << b << " out of range (" << index_.size() << ")");
  const std::scoped_lock lock(mu_);
  const auto it = window_.find(b);
  if (it != window_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.edges;
  }
  std::shared_ptr<const std::vector<Edge>> edges = fault_block_locked(b);
  CachedBlock cached;
  cached.edges = edges;
  cached.bytes = edges->size() * sizeof(Edge);
  lru_.push_front(b);
  cached.lru_it = lru_.begin();
  window_bytes_ += cached.bytes;
  window_.emplace(b, std::move(cached));
  evict_to_budget_locked(b);
  note_window_locked();
  return edges;
}

void BlockedGraphReader::for_each_chunk(
    const std::function<void(std::span<const Edge>)>& fn) const {
  for (std::uint64_t b = 0; b < index_.size(); ++b) {
    const std::shared_ptr<const std::vector<Edge>> edges = block(b);
    fn(std::span<const Edge>(*edges));
  }
}

std::size_t BlockedGraphReader::window_resident_bytes() const {
  const std::scoped_lock lock(mu_);
  return window_bytes_;
}

std::size_t BlockedGraphReader::window_peak_bytes() const {
  const std::scoped_lock lock(mu_);
  return window_peak_bytes_;
}

void BlockedGraphReader::set_window_budget(std::size_t bytes) {
  const std::scoped_lock lock(mu_);
  window_budget_ = bytes;
  evict_to_budget_locked(index_.size());  // no block to protect
  note_window_locked();
}

std::size_t BlockedGraphReader::window_budget() const {
  const std::scoped_lock lock(mu_);
  return window_budget_;
}

void BlockedGraphReader::release_window() {
  const std::scoped_lock lock(mu_);
  window_.clear();
  lru_.clear();
  window_bytes_ = 0;
  note_window_locked();
}

}  // namespace hyve
