#include "graph/edge_block_soa.hpp"

#include "util/check.hpp"

namespace hyve {

EdgeColumns::EdgeColumns(std::span<const Edge> edges) {
  src_.resize(edges.size());
  dst_.resize(edges.size());
  weight_hash_.resize(edges.size());
  VertexId* const src = src_.data();
  VertexId* const dst = dst_.data();
  std::uint64_t* const hash = weight_hash_.data();
  const Edge* const in = edges.data();
  const std::size_t n = edges.size();
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = in[i].src;
    dst[i] = in[i].dst;
  }
  // The avalanche is pure per-element arithmetic — this is the one loop
  // of the transpose the compiler can vectorize outright.
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i)
    hash[i] = Graph::edge_weight_hash(Edge{src[i], dst[i]});
}

EdgeBlockSoA EdgeColumns::view(std::uint64_t offset, std::uint64_t count) const {
  HYVE_CHECK_MSG(offset + count <= src_.size(),
                 "SoA view [" << offset << ", " << offset + count
                              << ") out of range for " << src_.size()
                              << " edges");
  EdgeBlockSoA block;
  block.src = src_.data() + offset;
  block.dst = dst_.data() + offset;
  block.weight_hash = weight_hash_.data() + offset;
  block.count = static_cast<std::size_t>(count);
  return block;
}

std::size_t EdgeColumns::approx_bytes() const {
  return sizeof(EdgeColumns) + src_.capacity() * sizeof(VertexId) +
         dst_.capacity() * sizeof(VertexId) +
         weight_hash_.capacity() * sizeof(std::uint64_t);
}

}  // namespace hyve
