#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace hyve {
namespace {

constexpr std::uint64_t kMagic = 0x48795645'67726630ULL;  // "HyVEgrf0"
constexpr std::uint32_t kVersion = 1;

class FileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace

Graph load_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FileError("cannot open " + path);
  std::vector<Edge> edges;
  VertexId declared_vertices = 0;
  VertexId max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Recognise the SNAP-style "# Nodes: N Edges: M" header.
      const auto pos = line.find("Nodes:");
      if (pos != std::string::npos) {
        std::istringstream hs(line.substr(pos + 6));
        std::uint64_t n = 0;
        if (hs >> n) declared_vertices = static_cast<VertexId>(n);
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(ls >> src >> dst))
      throw FileError("malformed edge line in " + path + ": " + line);
    edges.push_back(
        {static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_id = std::max({max_id, edges.back().src, edges.back().dst});
  }
  const VertexId v =
      std::max<VertexId>(declared_vertices, edges.empty() ? 0 : max_id + 1);
  return Graph(v, std::move(edges));
}

void save_edge_list_text(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw FileError("cannot open " + path + " for writing");
  out << "# Nodes: " << g.num_vertices() << " Edges: " << g.num_edges()
      << '\n';
  for (const Edge& e : g.edges()) out << e.src << '\t' << e.dst << '\n';
  if (!out) throw FileError("write failed: " + path);
}

Graph load_graph_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FileError("cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t v = 0;
  std::uint64_t e = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  in.read(reinterpret_cast<char*>(&e), sizeof e);
  if (!in || magic != kMagic || version != kVersion)
    throw FileError("bad graph binary header: " + path);
  std::vector<Edge> edges(e);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(e * sizeof(Edge)));
  if (!in) throw FileError("truncated graph binary: " + path);
  return Graph(v, std::move(edges));
}

void save_graph_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw FileError("cannot open " + path + " for writing");
  const std::uint64_t magic = kMagic;
  const std::uint32_t version = kVersion;
  const std::uint32_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  out.write(reinterpret_cast<const char*>(&e), sizeof e);
  out.write(reinterpret_cast<const char*>(g.edges().data()),
            static_cast<std::streamsize>(e * sizeof(Edge)));
  if (!out) throw FileError("write failed: " + path);
}

}  // namespace hyve
