#include "graph/io.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "graph/blocked_format.hpp"
#include "graph/blocked_reader.hpp"
#include "graph/graph_source.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

constexpr std::uint64_t kMagic = 0x48795645'67726630ULL;  // "HyVEgrf0"
constexpr std::uint32_t kVersion = 1;
// Header: magic + version + V + E.
constexpr std::uint64_t kBinaryHeaderBytes = 8 + 4 + 4 + 8;

}  // namespace

Graph load_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FileError("cannot open " + path);
  std::vector<Edge> edges;
  VertexId declared_vertices = 0;
  VertexId max_id = 0;
  std::string line;
  std::uint64_t line_no = 0;
  // Ids must stay below 2^32 - 1 so max(id) + 1 still fits VertexId.
  constexpr std::uint64_t kMaxId = std::numeric_limits<VertexId>::max() - 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Recognise the SNAP-style "# Nodes: N Edges: M" header.
      const auto pos = line.find("Nodes:");
      if (pos != std::string::npos) {
        std::istringstream hs(line.substr(pos + 6));
        std::uint64_t n = 0;
        if (hs >> n) {
          if (n > kMaxId + 1)
            throw FileError("vertex count " + std::to_string(n) +
                            " exceeds the 32-bit id space in " + path +
                            " line " + std::to_string(line_no));
          declared_vertices = static_cast<VertexId>(n);
        }
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!(ls >> src >> dst))
      throw FileError("malformed edge line in " + path + ": " + line);
    if (src > kMaxId || dst > kMaxId)
      throw FileError("vertex id " + std::to_string(std::max(src, dst)) +
                      " exceeds the 32-bit id space in " + path + " line " +
                      std::to_string(line_no) + ": " + line);
    edges.push_back(
        {static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_id = std::max({max_id, edges.back().src, edges.back().dst});
  }
  const VertexId v =
      std::max<VertexId>(declared_vertices, edges.empty() ? 0 : max_id + 1);
  return Graph(v, std::move(edges));
}

void save_edge_list_text(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw FileError("cannot open " + path + " for writing");
  out << "# Nodes: " << g.num_vertices() << " Edges: " << g.num_edges()
      << '\n';
  for (const Edge& e : g.edges()) out << e.src << '\t' << e.dst << '\n';
  if (!out) throw FileError("write failed: " + path);
}

Graph load_graph_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FileError("cannot open " + path);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t v = 0;
  std::uint64_t e = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  in.read(reinterpret_cast<char*>(&e), sizeof e);
  if (!in || magic != kMagic || version != kVersion)
    throw FileError("bad graph binary header: " + path);
  // The header's edge count is untrusted: check it against the actual
  // file size before sizing any allocation, so a corrupt count can never
  // trigger a multi-GiB vector or a bad_alloc.
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) throw FileError("cannot stat " + path + ": " + ec.message());
  if (file_size < kBinaryHeaderBytes ||
      (file_size - kBinaryHeaderBytes) % sizeof(Edge) != 0 ||
      e != (file_size - kBinaryHeaderBytes) / sizeof(Edge))
    throw FileError("graph binary edge count " + std::to_string(e) +
                    " does not match file size " + std::to_string(file_size) +
                    ": " + path);
  std::vector<Edge> edges(e);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(e * sizeof(Edge)));
  if (!in) throw FileError("truncated graph binary: " + path);
  for (const Edge& edge : edges)
    if (edge.src >= v || edge.dst >= v)
      throw FileError("edge " + std::to_string(edge.src) + "->" +
                      std::to_string(edge.dst) +
                      " out of range for V=" + std::to_string(v) + ": " +
                      path);
  return Graph(v, std::move(edges));
}

void save_graph_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw FileError("cannot open " + path + " for writing");
  const std::uint64_t magic = kMagic;
  const std::uint32_t version = kVersion;
  const std::uint32_t v = g.num_vertices();
  const std::uint64_t e = g.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  out.write(reinterpret_cast<const char*>(&e), sizeof e);
  out.write(reinterpret_cast<const char*>(g.edges().data()),
            static_cast<std::streamsize>(e * sizeof(Edge)));
  if (!out) throw FileError("write failed: " + path);
}

Graph load_graph_auto(const std::string& path) {
  std::uint64_t magic = 0;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw FileError("cannot open " + path);
    in.read(reinterpret_cast<char*>(&magic), sizeof magic);
    if (!in) magic = 0;  // shorter than 8 bytes: treat as text
  }
  if (magic == kMagic) return load_graph_binary(path);
  if (magic == blocked::kMagic)
    return materialize(BlockedGraphReader(path));
  return load_edge_list_text(path);
}

}  // namespace hyve
