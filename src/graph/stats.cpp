#include "graph/stats.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace hyve {

BlockOccupancy block_occupancy(const Graph& graph, VertexId block_width) {
  HYVE_CHECK(block_width > 0);
  const std::uint64_t grid =
      (graph.num_vertices() + block_width - 1) / block_width;
  BlockOccupancy occ;
  occ.total_blocks = grid * grid;
  if (graph.num_edges() == 0) return occ;

  // Sort the 64-bit block keys instead of materialising the grid: the
  // Table 1 granularity (8-vertex blocks) would need (V/8)^2 counters.
  std::vector<std::uint64_t> keys;
  keys.reserve(graph.num_edges());
  for (const Edge& e : graph.edges())
    keys.push_back(static_cast<std::uint64_t>(e.src / block_width) * grid +
                   e.dst / block_width);
  std::sort(keys.begin(), keys.end());

  std::uint64_t run = 0;
  std::uint64_t prev = keys.front() + 1;  // sentinel != keys.front()
  for (const std::uint64_t k : keys) {
    if (k != prev) {
      if (run > 0) occ.max_edges_in_block = std::max(occ.max_edges_in_block, run);
      ++occ.non_empty_blocks;
      run = 0;
      prev = k;
    }
    ++run;
  }
  occ.max_edges_in_block = std::max(occ.max_edges_in_block, run);
  occ.avg_edges_per_non_empty =
      static_cast<double>(graph.num_edges()) /
      static_cast<double>(occ.non_empty_blocks);
  return occ;
}

DegreeStats degree_stats(const Graph& graph) {
  DegreeStats s;
  if (graph.num_vertices() == 0) return s;
  auto out = graph.out_degrees();
  const auto in = graph.in_degrees();
  s.avg_out_degree = static_cast<double>(graph.num_edges()) /
                     static_cast<double>(graph.num_vertices());
  s.max_out_degree = *std::max_element(out.begin(), out.end());
  s.max_in_degree = *std::max_element(in.begin(), in.end());

  std::sort(out.begin(), out.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, out.size() / 100);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < top; ++i) covered += out[i];
  s.top1pct_out_edge_share =
      graph.num_edges() == 0
          ? 0.0
          : static_cast<double>(covered) / static_cast<double>(graph.num_edges());
  return s;
}

}  // namespace hyve
