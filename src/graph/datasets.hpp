// Registry of the five evaluation datasets.
//
// The paper evaluates on SNAP's com-youtube (YT), wiki-talk (WK),
// as-skitter (AS), live-journal (LJ) and twitter-2010 (TW). Those traces
// are not shipped here; each is substituted by a deterministic R-MAT
// graph whose vertex:edge ratio matches the original and whose skew is
// tuned per graph class (DESIGN.md, "Substitutions"). Sizes are scaled
// down by the recorded factor so the full evaluation fits the compute
// budget; MTEPS/W and every normalised ratio in the paper are
// scale-free to first order.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace hyve {

enum class DatasetId { kYT = 0, kWK, kAS, kLJ, kTW };

inline constexpr std::array<DatasetId, 5> kAllDatasets = {
    DatasetId::kYT, DatasetId::kWK, DatasetId::kAS, DatasetId::kLJ,
    DatasetId::kTW};

struct DatasetSpec {
  DatasetId id;
  const char* name;             // paper's short name
  const char* source;           // original SNAP trace
  std::uint64_t full_vertices;  // paper-reported size
  std::uint64_t full_edges;
  double scale_factor;          // this repo's size = full size / factor
  VertexId vertices;            // generated size
  std::uint64_t edges;
  RmatParams rmat;
  std::uint64_t seed;
};

const DatasetSpec& dataset_spec(DatasetId id);

// Generated graph (memoised in-process and cached on disk under
// $TMPDIR/hyve-datasets-v1 so repeated bench binaries skip generation).
const Graph& dataset_graph(DatasetId id);

std::string dataset_name(DatasetId id);

// Inverse of dataset_name(): "YT" (case-insensitive) → kYT. The single
// source of truth for string→DatasetId mapping.
std::optional<DatasetId> parse_dataset(const std::string& name);

}  // namespace hyve
