#include "graph/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace hyve {

namespace {

constexpr std::uint32_t kUnassigned = ~std::uint32_t{0};

// Word-packed vertex marks (the HEP "is_high_degree" idiom): one bit per
// vertex, cheap to test in the streaming loops.
class DenseBitset {
 public:
  explicit DenseBitset(std::size_t bits) : words_((bits + 63) / 64, 0) {}
  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

 private:
  std::vector<std::uint64_t> words_;
};

// ceil(V / P): the interval population every strategy must respect so
// choose_num_intervals()'s SRAM sizing stays valid.
VertexId interval_capacity(VertexId num_vertices, std::uint32_t p) {
  return (num_vertices + p - 1) / p;
}

void check_interval_count(const Graph& g, std::uint32_t p) {
  HYVE_CHECK(p >= 1);
  HYVE_CHECK_MSG(p <= g.num_vertices() || g.num_vertices() == 0,
                 "more intervals (" << p << ") than vertices ("
                                    << g.num_vertices() << ")");
}

// Undirected adjacency (out + in neighbours) in CSR form, for the
// affinity placement of low-degree vertices.
struct Adjacency {
  std::vector<std::uint64_t> offsets;  // V + 1
  std::vector<VertexId> neighbors;     // 2E
};

Adjacency build_adjacency(const Graph& g,
                          const std::vector<std::uint32_t>& degree) {
  Adjacency adj;
  const VertexId v = g.num_vertices();
  adj.offsets.assign(v + std::size_t{1}, 0);
  for (VertexId u = 0; u < v; ++u)
    adj.offsets[u + 1] = adj.offsets[u] + degree[u];
  adj.neighbors.resize(adj.offsets[v]);
  std::vector<std::uint64_t> cursor(adj.offsets.begin(),
                                    adj.offsets.end() - 1);
  for (const Edge& e : g.edges()) {
    adj.neighbors[cursor[e.src]++] = e.dst;
    adj.neighbors[cursor[e.dst]++] = e.src;
  }
  return adj;
}

class IntervalBlockPartitioner final : public Partitioner {
 public:
  explicit IntervalBlockPartitioner(PartitionerSpec spec) : spec_(spec) {}
  const PartitionerSpec& spec() const override { return spec_; }

  VertexMap map_vertices(const Graph& g, std::uint32_t p) const override {
    check_interval_count(g, p);
    return VertexMap::uniform(g.num_vertices(), p);
  }

 private:
  PartitionerSpec spec_;
};

class HepPartitioner final : public Partitioner {
 public:
  explicit HepPartitioner(PartitionerSpec spec) : spec_(spec) {}
  const PartitionerSpec& spec() const override { return spec_; }

  VertexMap map_vertices(const Graph& g, std::uint32_t p) const override {
    check_interval_count(g, p);
    const VertexId v = g.num_vertices();
    if (v == 0 || p == 1) return VertexMap::uniform(v, p);

    std::vector<std::uint32_t> degree(v, 0);
    for (const Edge& e : g.edges()) {
      ++degree[e.src];
      ++degree[e.dst];
    }
    const double avg_degree =
        2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(v);
    const double threshold = spec_.hep_tau * avg_degree;

    DenseBitset is_high_degree(v);
    std::vector<VertexId> high;
    for (VertexId u = 0; u < v; ++u) {
      if (static_cast<double>(degree[u]) > threshold) {
        is_high_degree.set(u);
        high.push_back(u);
      }
    }

    const VertexId cap = interval_capacity(v, p);
    std::vector<std::uint32_t> assignment(v, kUnassigned);
    std::vector<std::uint64_t> load(p, 0);  // edge load (degree sum)
    std::vector<VertexId> population(p, 0);

    // Phase 1 — high-degree vertices, heaviest first, onto the least
    // edge-loaded interval with population headroom (LPT via min-heap).
    std::sort(high.begin(), high.end(), [&](VertexId a, VertexId b) {
      if (degree[a] != degree[b]) return degree[a] > degree[b];
      return a < b;
    });
    using HeapEntry = std::pair<std::uint64_t, std::uint32_t>;  // load, id
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        min_heap;
    for (std::uint32_t i = 0; i < p; ++i) min_heap.push({0, i});
    const auto place = [&](VertexId u, std::uint32_t interval) {
      assignment[u] = interval;
      load[interval] += degree[u];
      ++population[interval];
    };
    for (const VertexId u : high) {
      std::vector<HeapEntry> stash;
      std::uint32_t chosen = kUnassigned;
      while (!min_heap.empty()) {
        const HeapEntry top = min_heap.top();
        min_heap.pop();
        if (top.first != load[top.second]) continue;  // stale entry
        if (population[top.second] < cap) {
          chosen = top.second;
          break;
        }
        stash.push_back(top);
      }
      for (const HeapEntry& e : stash) min_heap.push(e);
      HYVE_CHECK_MSG(chosen != kUnassigned,
                     "hep: no interval below capacity " << cap);
      place(u, chosen);
      min_heap.push({load[chosen], chosen});
    }

    // Phase 2 — the low-degree remainder streams in id order onto the
    // interval holding most of its already-placed neighbours (ties:
    // smaller population, then lower index); vertices with no placed
    // neighbour fall back to the least-populated interval.
    const Adjacency adj = build_adjacency(g, degree);
    std::vector<std::uint32_t> affinity(p, 0);
    std::vector<std::uint32_t> touched;
    for (VertexId u = 0; u < v; ++u) {
      if (assignment[u] != kUnassigned) continue;
      touched.clear();
      for (std::uint64_t i = adj.offsets[u]; i < adj.offsets[u + 1]; ++i) {
        const std::uint32_t interval = assignment[adj.neighbors[i]];
        if (interval == kUnassigned) continue;
        if (affinity[interval]++ == 0) touched.push_back(interval);
      }
      std::uint32_t best = kUnassigned;
      for (std::uint32_t i = 0; i < p; ++i) {
        if (population[i] >= cap) continue;
        if (best == kUnassigned || affinity[i] > affinity[best] ||
            (affinity[i] == affinity[best] &&
             population[i] < population[best]))
          best = i;
      }
      for (const std::uint32_t i : touched) affinity[i] = 0;
      HYVE_CHECK_MSG(best != kUnassigned,
                     "hep: no interval below capacity " << cap);
      place(u, best);
    }

    return VertexMap::from_assignment(std::move(assignment), p);
  }

 private:
  PartitionerSpec spec_;
};

class SplitMergePartitioner final : public Partitioner {
 public:
  explicit SplitMergePartitioner(PartitionerSpec spec) : spec_(spec) {}
  const PartitionerSpec& spec() const override { return spec_; }

  VertexMap map_vertices(const Graph& g, std::uint32_t p) const override {
    check_interval_count(g, p);
    const VertexId v = g.num_vertices();
    if (v == 0 || p == 1) return VertexMap::uniform(v, p);

    // Split pass: one sweep over the edge stream; a vertex joins the
    // open chunk on first touch, chunks close at chunk_cap members.
    // State is O(V + chunks): per-vertex chunk id plus per-chunk tallies.
    const std::uint64_t chunk_target =
        static_cast<std::uint64_t>(p) * spec_.splitmerge_chunks;
    const auto num_chunks = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(v, chunk_target));
    const VertexId chunk_cap = (v + num_chunks - 1) / num_chunks;

    std::vector<std::uint32_t> chunk_of(v, kUnassigned);
    std::vector<std::uint64_t> chunk_load(num_chunks, 0);
    std::vector<VertexId> chunk_pop(num_chunks, 0);
    std::uint32_t open = 0;
    VertexId open_fill = 0;
    const auto touch = [&](VertexId u) {
      if (chunk_of[u] != kUnassigned) return;
      chunk_of[u] = open;
      ++chunk_pop[open];
      if (++open_fill == chunk_cap) {
        ++open;
        open_fill = 0;
      }
    };
    for (const Edge& e : g.edges()) {
      touch(e.src);
      touch(e.dst);
      ++chunk_load[chunk_of[e.src]];
      ++chunk_load[chunk_of[e.dst]];
    }
    // Vertices the stream never touched fill the remaining chunk slots.
    for (VertexId u = 0; u < v; ++u) touch(u);

    // Bucket chunk members (id order within a chunk) for the merge pass.
    std::vector<std::uint64_t> chunk_begin(num_chunks + std::size_t{1}, 0);
    for (VertexId u = 0; u < v; ++u) ++chunk_begin[chunk_of[u] + 1];
    for (std::uint32_t c = 0; c < num_chunks; ++c)
      chunk_begin[c + 1] += chunk_begin[c];
    std::vector<VertexId> members(v);
    {
      std::vector<std::uint64_t> cursor(chunk_begin.begin(),
                                        chunk_begin.end() - 1);
      for (VertexId u = 0; u < v; ++u) members[cursor[chunk_of[u]]++] = u;
    }

    // Merge pass: heaviest chunk first onto the least-loaded interval
    // with room for all of it; a chunk no interval can hold whole is
    // split across intervals in index order.
    std::vector<std::uint32_t> merge_order(num_chunks);
    for (std::uint32_t c = 0; c < num_chunks; ++c) merge_order[c] = c;
    std::sort(merge_order.begin(), merge_order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (chunk_load[a] != chunk_load[b])
                  return chunk_load[a] > chunk_load[b];
                return a < b;
              });

    const VertexId cap = interval_capacity(v, p);
    std::vector<std::uint32_t> assignment(v, kUnassigned);
    std::vector<std::uint64_t> load(p, 0);
    std::vector<VertexId> population(p, 0);
    using HeapEntry = std::pair<std::uint64_t, std::uint32_t>;  // load, id
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        min_heap;
    for (std::uint32_t i = 0; i < p; ++i) min_heap.push({0, i});

    for (const std::uint32_t c : merge_order) {
      std::vector<HeapEntry> stash;
      std::uint32_t chosen = kUnassigned;
      while (!min_heap.empty()) {
        const HeapEntry top = min_heap.top();
        min_heap.pop();
        if (top.first != load[top.second]) continue;  // stale entry
        if (population[top.second] + chunk_pop[c] <= cap) {
          chosen = top.second;
          break;
        }
        stash.push_back(top);
      }
      for (const HeapEntry& e : stash) min_heap.push(e);
      if (chosen != kUnassigned) {
        for (std::uint64_t i = chunk_begin[c]; i < chunk_begin[c + 1]; ++i)
          assignment[members[i]] = chosen;
        population[chosen] += chunk_pop[c];
        load[chosen] += chunk_load[c];
        min_heap.push({load[chosen], chosen});
        continue;
      }
      // Split the chunk across whatever headroom remains.
      const double spread = chunk_pop[c] == 0
                                ? 0.0
                                : static_cast<double>(chunk_load[c]) /
                                      static_cast<double>(chunk_pop[c]);
      for (std::uint64_t i = chunk_begin[c]; i < chunk_begin[c + 1]; ++i) {
        std::uint32_t target = kUnassigned;
        for (std::uint32_t j = 0; j < p; ++j) {
          if (population[j] < cap) {
            target = j;
            break;
          }
        }
        HYVE_CHECK_MSG(target != kUnassigned,
                       "splitmerge: no interval below capacity " << cap);
        assignment[members[i]] = target;
        ++population[target];
        load[target] += static_cast<std::uint64_t>(spread);
        min_heap.push({load[target], target});
      }
    }

    return VertexMap::from_assignment(std::move(assignment), p);
  }

 private:
  PartitionerSpec spec_;
};

std::string format_double(double v) {
  std::ostringstream os;
  os << v;  // default precision: "2", "1.5", "0.25" — parse inverts it
  return os.str();
}

bool parse_strict_double(const std::string& text, double& out) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || !std::isfinite(v)) return false;
    out = v;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_strict_u32(const std::string& text, std::uint32_t& out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  try {
    std::size_t used = 0;
    const unsigned long v = std::stoul(text, &used);
    if (used != text.size() || v > ~std::uint32_t{0}) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::string PartitionerSpec::to_string() const {
  switch (strategy) {
    case PartitionStrategy::kIntervalBlock:
      return "interval";
    case PartitionStrategy::kHep:
      return "hep:tau=" + format_double(hep_tau);
    case PartitionStrategy::kSplitMerge:
      return "splitmerge:chunks=" + std::to_string(splitmerge_chunks);
  }
  HYVE_CHECK_MSG(false, "unknown partition strategy");
}

void PartitionerSpec::validate() const {
  HYVE_CHECK_MSG(std::isfinite(hep_tau) && hep_tau > 0,
                 "hep tau must be positive, got " << hep_tau);
  HYVE_CHECK_MSG(splitmerge_chunks >= 1,
                 "splitmerge chunks must be at least 1");
}

std::optional<PartitionerSpec> parse_partitioner(const std::string& text) {
  std::string head = text;
  std::string params;
  bool has_params = false;
  const std::size_t colon = text.find(':');
  if (colon != std::string::npos) {
    head = text.substr(0, colon);
    params = text.substr(colon + 1);
    has_params = true;
  }

  PartitionerSpec spec;
  if (head == "interval" || head == "interval-block") {
    if (has_params) return std::nullopt;  // the strategy has no parameters
    spec.strategy = PartitionStrategy::kIntervalBlock;
    return spec;
  }
  if (head == "hep") {
    spec.strategy = PartitionStrategy::kHep;
    if (has_params) {
      if (params.rfind("tau=", 0) != 0) return std::nullopt;
      double tau = 0;
      if (!parse_strict_double(params.substr(4), tau) || tau <= 0)
        return std::nullopt;
      spec.hep_tau = tau;
    }
    return spec;
  }
  if (head == "splitmerge") {
    spec.strategy = PartitionStrategy::kSplitMerge;
    if (has_params) {
      if (params.rfind("chunks=", 0) != 0) return std::nullopt;
      std::uint32_t chunks = 0;
      if (!parse_strict_u32(params.substr(7), chunks) || chunks == 0)
        return std::nullopt;
      spec.splitmerge_chunks = chunks;
    }
    return spec;
  }
  return std::nullopt;
}

std::unique_ptr<Partitioner> make_partitioner(const PartitionerSpec& spec) {
  spec.validate();
  switch (spec.strategy) {
    case PartitionStrategy::kIntervalBlock:
      return std::make_unique<IntervalBlockPartitioner>(spec);
    case PartitionStrategy::kHep:
      return std::make_unique<HepPartitioner>(spec);
    case PartitionStrategy::kSplitMerge:
      return std::make_unique<SplitMergePartitioner>(spec);
  }
  HYVE_CHECK_MSG(false, "unknown partition strategy");
}

PartitionStats compute_partition_stats(const Partitioning& schedule,
                                       int num_pus) {
  HYVE_CHECK(num_pus >= 1);
  PartitionStats stats;
  const std::uint32_t p = schedule.num_intervals();
  const auto n = static_cast<std::uint32_t>(num_pus);
  const std::uint64_t e = schedule.num_edges();
  const VertexId v = schedule.num_vertices();

  const std::uint64_t non_empty = schedule.non_empty_blocks();
  stats.n_avg = non_empty == 0 ? 0.0
                               : static_cast<double>(e) /
                                     static_cast<double>(non_empty);
  stats.bank_wake_fraction =
      static_cast<double>(non_empty) /
      static_cast<double>(schedule.num_blocks());

  // Replication: distinct blocks each vertex appears in as an endpoint,
  // averaged over vertices with at least one edge. One pass over the
  // grouped (block-major) edge array with a per-vertex last-block stamp.
  std::vector<std::uint64_t> last_block(v, 0);
  std::uint64_t copies = 0;
  std::uint64_t touched = 0;
  std::uint64_t remote = 0;
  for (std::uint32_t x = 0; x < p; ++x) {
    for (std::uint32_t y = 0; y < p; ++y) {
      const auto edges = schedule.block(x, y);
      if (edges.empty()) continue;
      const std::uint64_t stamp =
          static_cast<std::uint64_t>(x) * p + y + 1;  // 0 = untouched
      for (const Edge& edge : edges) {
        for (const VertexId endpoint : {edge.src, edge.dst}) {
          if (last_block[endpoint] == 0) ++touched;
          if (last_block[endpoint] != stamp) {
            last_block[endpoint] = stamp;
            ++copies;
          }
        }
      }
      if (x % n != y % n) remote += edges.size();
    }
  }
  stats.replication_factor =
      touched == 0 ? 0.0
                   : static_cast<double>(copies) / static_cast<double>(touched);
  stats.remote_edge_fraction =
      e == 0 ? 0.0 : static_cast<double>(remote) / static_cast<double>(e);

  const double mean_pop = static_cast<double>(v) / static_cast<double>(p);
  stats.interval_balance =
      v == 0 ? 1.0
             : static_cast<double>(schedule.vertex_map().max_population()) /
                   mean_pop;
  return stats;
}

}  // namespace hyve
