#!/usr/bin/env sh
# Tier-1 verification: build, full test suite (unit + bench-smoke), an
# observability smoke run (--metrics/--trace on a tiny graph), a
# bench-json smoke run (--json + hyve_report --check/--compare, byte-
# diffed across --jobs), a functional-cache smoke run (cache on/off
# byte-diff of stdout and --json), an out-of-core smoke run (blocked
# graph streamed under --ooc-window-mb, byte-diffed against the
# in-memory run), a live-telemetry smoke run (--live-status snapshots,
# hyve_top, and the SIGTERM flight-record path), a docs/METRICS.md
# drift check, a kernel-regression smoke run (bench_micro's built-in
# layout-equivalence gate plus an end-to-end proof that pattern reuse
# never changes a byte of sweep output), then the sweep-engine
# concurrency tests under ThreadSanitizer.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

# obs-smoke: a traced, metered run must produce a non-empty registry
# dump and a trace with events; both outputs are asserted, not just the
# exit code.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/tools/hyve_sim --rmat 5000x30000 --algo pr \
  --metrics --trace "$obs_dir/trace.json" >/dev/null 2>"$obs_dir/metrics.txt"
grep -q '=' "$obs_dir/metrics.txt" ||
  { echo "obs-smoke: empty metrics dump" >&2; exit 1; }
grep -q 'sim\.pipeline\.blocks=' "$obs_dir/metrics.txt" ||
  { echo "obs-smoke: pipeline counters missing" >&2; exit 1; }
grep -q '"ph"' "$obs_dir/trace.json" ||
  { echo "obs-smoke: trace has no events" >&2; exit 1; }
grep -q '"traceEvents"' "$obs_dir/trace.json" ||
  { echo "obs-smoke: not a trace-event document" >&2; exit 1; }
echo "obs-smoke: OK"

# bench-json: a smoke bench must emit a report hyve_report accepts, the
# document must be byte-identical for any --jobs value, and comparing a
# report against itself must find no regressions.
./build/bench/bench_fig13 --smoke --jobs 1 --json "$obs_dir/bench_j1.json" \
  >/dev/null 2>&1
./build/bench/bench_fig13 --smoke --jobs 8 --json "$obs_dir/bench_j8.json" \
  >/dev/null 2>&1
./build/tools/hyve_report --check "$obs_dir/bench_j1.json" >/dev/null ||
  { echo "bench-json: --check rejected a fresh report" >&2; exit 1; }
# The single "host":{...} object is the report's only wall-clock
# content; strip it and the rest must be byte-identical across --jobs.
strip_host() { sed 's/,"host":{[^}]*}//' "$1"; }
strip_host "$obs_dir/bench_j1.json" > "$obs_dir/bench_j1.nohost"
strip_host "$obs_dir/bench_j8.json" > "$obs_dir/bench_j8.nohost"
cmp "$obs_dir/bench_j1.nohost" "$obs_dir/bench_j8.nohost" ||
  { echo "bench-json: --jobs 1 and --jobs 8 reports differ" >&2; exit 1; }
./build/tools/hyve_report --compare "$obs_dir/bench_j1.json" \
  "$obs_dir/bench_j8.json" >/dev/null ||
  { echo "bench-json: identical reports flagged as regressed" >&2; exit 1; }
echo "bench-json: OK"

# functional-cache: memoising the functional phase must never change a
# byte of output — stdout and --json are diffed with the cache on vs
# off (serial and parallel), and --cache-stats must actually report it.
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 1 \
  > "$obs_dir/exp_off.jsonl"
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 1 \
  --functional-cache --cache-stats \
  > "$obs_dir/exp_on.jsonl" 2>"$obs_dir/exp_stats.txt"
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 8 \
  --functional-cache > "$obs_dir/exp_on_j8.jsonl"
cmp "$obs_dir/exp_off.jsonl" "$obs_dir/exp_on.jsonl" ||
  { echo "functional-cache: cached output differs from uncached" >&2; exit 1; }
cmp "$obs_dir/exp_off.jsonl" "$obs_dir/exp_on_j8.jsonl" ||
  { echo "functional-cache: --jobs 8 cached output differs" >&2; exit 1; }
grep -q 'functional cache: hits=' "$obs_dir/exp_stats.txt" ||
  { echo "functional-cache: --cache-stats reported nothing" >&2; exit 1; }
./build/bench/bench_fig13 --smoke --jobs 2 --functional-cache \
  --json "$obs_dir/bench_fc.json" > "$obs_dir/bench_fc.out" 2>/dev/null
./build/bench/bench_fig13 --smoke --jobs 2 \
  --json "$obs_dir/bench_nofc.json" > "$obs_dir/bench_nofc.out" 2>/dev/null
cmp "$obs_dir/bench_fc.out" "$obs_dir/bench_nofc.out" ||
  { echo "functional-cache: bench stdout differs with cache on" >&2; exit 1; }
strip_host "$obs_dir/bench_fc.json" > "$obs_dir/bench_fc.nohost"
strip_host "$obs_dir/bench_nofc.json" > "$obs_dir/bench_nofc.nohost"
cmp "$obs_dir/bench_fc.nohost" "$obs_dir/bench_nofc.nohost" ||
  { echo "functional-cache: bench --json differs with cache on" >&2; exit 1; }
echo "functional-cache: OK"

# partitioner-smoke: sweeping every partitioning strategy must stay
# order-stable (byte-identical --jobs 1 vs 8), every strategy must show
# up in the records with its own label annotation and per-strategy
# cache counters, and a bench run must accept --partitioner.
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 1 \
  --partitioner interval,hep:tau=2,splitmerge:chunks=8 --cache-stats \
  > "$obs_dir/part_j1.jsonl" 2>"$obs_dir/part_stats.txt"
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 8 \
  --partitioner interval,hep:tau=2,splitmerge:chunks=8 \
  > "$obs_dir/part_j8.jsonl"
cmp "$obs_dir/part_j1.jsonl" "$obs_dir/part_j8.jsonl" ||
  { echo "partitioner-smoke: --jobs 1 and --jobs 8 outputs differ" >&2
    exit 1; }
grep -q '~hep:tau=2' "$obs_dir/part_j1.jsonl" ||
  { echo "partitioner-smoke: hep cells missing from output" >&2; exit 1; }
grep -q '~splitmerge:chunks=8' "$obs_dir/part_j1.jsonl" ||
  { echo "partitioner-smoke: splitmerge cells missing" >&2; exit 1; }
grep -q '"partition":{"n_avg":' "$obs_dir/part_j1.jsonl" ||
  { echo "partitioner-smoke: partition stats missing" >&2; exit 1; }
grep -q 'partition cache\[hep:tau=2\]:' "$obs_dir/part_stats.txt" ||
  { echo "partitioner-smoke: per-strategy cache stats missing" >&2; exit 1; }
./build/bench/bench_fig13 --smoke --jobs 2 --partitioner hep:tau=2 \
  --json "$obs_dir/bench_hep.json" >/dev/null 2>&1
./build/tools/hyve_report --check "$obs_dir/bench_hep.json" >/dev/null ||
  { echo "partitioner-smoke: hep bench report rejected" >&2; exit 1; }
echo "partitioner-smoke: OK"

# ooc-smoke: a blocked graph bigger than the decode window must stream
# through hyve_sim with the same stdout as the in-memory (unbounded)
# run, the chunked generator path must round-trip through convert, and
# the reported peak window residency must respect --ooc-window-mb.
./build/tools/hyve_graphgen rmat 40000 240000 "$obs_dir/ooc.hgb" >/dev/null
./build/tools/hyve_sim --graph "$obs_dir/ooc.hgb" --algo pr --csv \
  > "$obs_dir/ooc_mem.csv" 2>/dev/null
./build/tools/hyve_sim --graph "$obs_dir/ooc.hgb" --graph-format blocked \
  --ooc-window-mb 1 --algo pr --csv --metrics \
  > "$obs_dir/ooc_win.csv" 2>"$obs_dir/ooc_metrics.txt"
cmp "$obs_dir/ooc_mem.csv" "$obs_dir/ooc_win.csv" ||
  { echo "ooc-smoke: windowed run differs from in-memory run" >&2; exit 1; }
grep -q 'sim\.ooc\.blocks_mapped=' "$obs_dir/ooc_metrics.txt" ||
  { echo "ooc-smoke: window counters missing" >&2; exit 1; }
peak=$(sed -n 's/^sim\.ooc\.window_peak_bytes=//p' "$obs_dir/ooc_metrics.txt")
[ -n "$peak" ] && [ "$peak" -le 1048576 ] ||
  { echo "ooc-smoke: peak window $peak exceeds 1 MiB budget" >&2; exit 1; }
./build/tools/hyve_graphgen convert "$obs_dir/ooc.hgb" "$obs_dir/ooc.bin" \
  >/dev/null
./build/tools/hyve_sim --graph "$obs_dir/ooc.bin" --algo pr --csv \
  > "$obs_dir/ooc_bin.csv" 2>/dev/null
# Drop the graph-path column (the only legitimate difference).
cut -d, -f2- "$obs_dir/ooc_mem.csv" > "$obs_dir/ooc_mem.cut"
cut -d, -f2- "$obs_dir/ooc_bin.csv" > "$obs_dir/ooc_bin.cut"
cmp "$obs_dir/ooc_mem.cut" "$obs_dir/ooc_bin.cut" ||
  { echo "ooc-smoke: blocked->bin convert changed the graph" >&2; exit 1; }
echo "ooc-smoke: OK"

# perf-history: record two smoke reports into a throwaway ledger, the
# trend must pass; a sed-injected wall-clock regression appended as a
# third record must flip the trend's exit code. Then the dashboard:
# hyve_dash output must be byte-identical for reports produced with
# different --jobs (the host object is excluded by default).
hist_dir="$obs_dir/history"
./build/bench/bench_fig10 --smoke --jobs 1 --host-profile \
  --json "$obs_dir/perf_a.json" >/dev/null 2>&1
./build/bench/bench_fig10 --smoke --jobs 1 \
  --json "$obs_dir/perf_b.json" >/dev/null 2>&1
./build/tools/hyve_report --record "$obs_dir/perf_a.json" \
  --history "$hist_dir" >/dev/null ||
  { echo "perf-history: --record rejected a fresh report" >&2; exit 1; }
./build/tools/hyve_report --record "$obs_dir/perf_b.json" \
  --history "$hist_dir" >/dev/null
./build/tools/hyve_report --trend "$hist_dir" >/dev/null ||
  { echo "perf-history: clean ledger flagged as regressed" >&2; exit 1; }
tail -n 1 "$hist_dir/bench_fig10.jsonl" |
  sed 's/"wall_ms":[0-9.eE+-]*/"wall_ms":9.9e9/' \
  >> "$hist_dir/bench_fig10.jsonl"
if ./build/tools/hyve_report --trend "$hist_dir" >/dev/null; then
  echo "perf-history: injected wall-clock regression not flagged" >&2
  exit 1
fi
./build/bench/bench_fig10 --smoke --jobs 8 \
  --json "$obs_dir/perf_j8.json" >/dev/null 2>&1
./build/tools/hyve_dash "$obs_dir/perf_b.json" \
  --out "$obs_dir/dash_j1.html" >/dev/null 2>&1 ||
  { echo "perf-history: hyve_dash failed" >&2; exit 1; }
./build/tools/hyve_dash "$obs_dir/perf_j8.json" \
  --out "$obs_dir/dash_j8.html" >/dev/null 2>&1
cmp "$obs_dir/dash_j1.html" "$obs_dir/dash_j8.html" ||
  { echo "perf-history: dashboard differs across --jobs" >&2; exit 1; }
grep -q '<html>' "$obs_dir/dash_j1.html" ||
  { echo "perf-history: dashboard is not HTML" >&2; exit 1; }
echo "perf-history: OK"

# live-smoke: a bench run with --live-status must publish at least two
# snapshots and finish with state "done" — without changing a byte of
# stdout (diffed against the plain run from the functional-cache step).
# hyve_top must render the final snapshot. Then a second, full-size run
# is SIGTERMed mid-sweep: the flight recorder must exit with code 75
# and leave a hyve_report-clean partial report, a truncated trace and
# an "interrupted" final snapshot.
./build/bench/bench_fig13 --smoke --jobs 2 \
  --live-status "$obs_dir/live.json,40" \
  > "$obs_dir/bench_live.out" 2>/dev/null
grep -q '"state":"done"' "$obs_dir/live.json" ||
  { echo "live-smoke: final snapshot state is not done" >&2; exit 1; }
snaps=$(sed -n 's/.*"snapshot":\([0-9]*\).*/\1/p' "$obs_dir/live.json")
[ -n "$snaps" ] && [ "$snaps" -ge 2 ] ||
  { echo "live-smoke: fewer than 2 snapshots published" >&2; exit 1; }
cmp "$obs_dir/bench_live.out" "$obs_dir/bench_nofc.out" ||
  { echo "live-smoke: --live-status changed bench stdout" >&2; exit 1; }
./build/tools/hyve_top "$obs_dir/live.json" --once > "$obs_dir/top.txt" ||
  { echo "live-smoke: hyve_top failed on a status file" >&2; exit 1; }
grep -q 'cells' "$obs_dir/top.txt" ||
  { echo "live-smoke: hyve_top rendered no progress line" >&2; exit 1; }
rm -f "$obs_dir/live.json"
./build/bench/bench_fig13 --jobs 2 --live-status "$obs_dir/live.json,30" \
  --json "$obs_dir/bench_flight.json" --trace "$obs_dir/flight_trace.json" \
  >/dev/null 2>&1 &
flight_pid=$!
tries=0
while [ "$tries" -lt 600 ]; do
  if grep -q '"done":[1-9]' "$obs_dir/live.json" 2>/dev/null; then break; fi
  kill -0 "$flight_pid" 2>/dev/null ||
    { echo "live-smoke: bench exited before it could be interrupted" >&2
      exit 1; }
  sleep 0.05
  tries=$((tries + 1))
done
kill -TERM "$flight_pid"
flight_rc=0
wait "$flight_pid" || flight_rc=$?
[ "$flight_rc" -eq 75 ] ||
  { echo "live-smoke: flight-record exit code $flight_rc != 75" >&2; exit 1; }
./build/tools/hyve_report --check "$obs_dir/bench_flight.json" >/dev/null ||
  { echo "live-smoke: partial flight report rejected" >&2; exit 1; }
grep -q '"truncated":true' "$obs_dir/flight_trace.json" ||
  { echo "live-smoke: flight trace missing truncation marker" >&2; exit 1; }
grep -q '"state":"interrupted"' "$obs_dir/live.json" ||
  { echo "live-smoke: final snapshot state is not interrupted" >&2; exit 1; }
echo "live-smoke: OK"

# metrics-doc: the checked-in metrics reference must match what the
# binary actually registers.
./build/tools/hyve_sim --list-metrics | cmp - docs/METRICS.md ||
  { echo "metrics-doc: docs/METRICS.md is stale — regenerate with" \
         "./build/tools/hyve_sim --list-metrics > docs/METRICS.md" >&2
    exit 1; }
echo "metrics-doc: OK"

# kernel-regression: bench_micro runs every program through every edge
# layout and aborts itself if any kernel drifts from the per-edge
# reference, so a clean exit IS the equivalence check; its smoke report
# must satisfy hyve_report and be byte-identical across --jobs. Pattern
# reuse must be invisible end-to-end: a sweep's records may not change
# by a byte with the reuse layer disabled, serial or parallel.
./build/bench/bench_micro --smoke --jobs 1 \
  --json "$obs_dir/micro_j1.json" >/dev/null 2>&1 ||
  { echo "kernel-regression: bench_micro layout equivalence failed" >&2
    exit 1; }
./build/bench/bench_micro --smoke --jobs 8 \
  --json "$obs_dir/micro_j8.json" >/dev/null 2>&1
./build/tools/hyve_report --check "$obs_dir/micro_j1.json" >/dev/null ||
  { echo "kernel-regression: --check rejected the kernel report" >&2
    exit 1; }
strip_host "$obs_dir/micro_j1.json" > "$obs_dir/micro_j1.nohost"
strip_host "$obs_dir/micro_j8.json" > "$obs_dir/micro_j8.nohost"
cmp "$obs_dir/micro_j1.nohost" "$obs_dir/micro_j8.nohost" ||
  { echo "kernel-regression: --jobs 1 and --jobs 8 reports differ" >&2
    exit 1; }
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 1 \
  --no-pattern-reuse > "$obs_dir/exp_noreuse.jsonl"
cmp "$obs_dir/exp_off.jsonl" "$obs_dir/exp_noreuse.jsonl" ||
  { echo "kernel-regression: --no-pattern-reuse changed sweep output" >&2
    exit 1; }
./build/tools/hyve_experiments --datasets YT --algos bfs,pr --jobs 8 \
  --no-pattern-reuse > "$obs_dir/exp_noreuse_j8.jsonl"
cmp "$obs_dir/exp_noreuse.jsonl" "$obs_dir/exp_noreuse_j8.jsonl" ||
  { echo "kernel-regression: reuse-off sweep differs across --jobs" >&2
    exit 1; }
echo "kernel-regression: OK"

cmake -B build-tsan -S . -DHYVE_SANITIZE=thread
cmake --build build-tsan -j
ctest --test-dir build-tsan -L sweep-engine --output-on-failure

echo "verify: OK"
