#!/usr/bin/env sh
# Tier-1 verification: build, full test suite (unit + bench-smoke), an
# observability smoke run (--metrics/--trace on a tiny graph), then the
# sweep-engine concurrency tests under ThreadSanitizer.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

# obs-smoke: a traced, metered run must produce a non-empty registry
# dump and a trace with events; both outputs are asserted, not just the
# exit code.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./build/tools/hyve_sim --rmat 5000x30000 --algo pr \
  --metrics --trace "$obs_dir/trace.json" >/dev/null 2>"$obs_dir/metrics.txt"
grep -q '=' "$obs_dir/metrics.txt" ||
  { echo "obs-smoke: empty metrics dump" >&2; exit 1; }
grep -q 'sim\.pipeline\.blocks=' "$obs_dir/metrics.txt" ||
  { echo "obs-smoke: pipeline counters missing" >&2; exit 1; }
grep -q '"ph"' "$obs_dir/trace.json" ||
  { echo "obs-smoke: trace has no events" >&2; exit 1; }
grep -q '"traceEvents"' "$obs_dir/trace.json" ||
  { echo "obs-smoke: not a trace-event document" >&2; exit 1; }
echo "obs-smoke: OK"

cmake -B build-tsan -S . -DHYVE_SANITIZE=thread
cmake --build build-tsan -j
ctest --test-dir build-tsan -L sweep-engine --output-on-failure

echo "verify: OK"
