#!/usr/bin/env sh
# Tier-1 verification: build, full test suite (unit + bench-smoke), then
# the sweep-engine concurrency tests under ThreadSanitizer.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

cmake -B build-tsan -S . -DHYVE_SANITIZE=thread
cmake --build build-tsan -j
ctest --test-dir build-tsan -L sweep-engine --output-on-failure

echo "verify: OK"
