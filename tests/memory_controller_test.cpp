#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"
#include "sim/dram_timing.hpp"
#include "sim/memory_controller.hpp"
#include "sim/reram_timing.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

Graph test_graph() { return generate_rmat(4000, 24000, {}, 555); }

TEST(AddressMap, BlocksAreDisjointAndOrdered) {
  const Graph g = test_graph();
  const Partitioning part(g, 8);
  const HyveAddressMap map(part, 8, 4);
  std::uint64_t prev_end = 0;
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      const AddressRange r = map.block_range(x, y);
      EXPECT_GE(r.offset, prev_end);
      // §3.4: header + payload.
      EXPECT_EQ(r.bytes, HyveAddressMap::kBlockHeaderBytes +
                             part.block_edge_count(x, y) * 8);
      prev_end = r.offset + part.block_edge_count(x, y) * 8;  // < slack end
    }
  }
  EXPECT_LE(prev_end, map.edge_memory_bytes());
}

TEST(AddressMap, SlackReservedBetweenBlocks) {
  const Graph g = test_graph();
  const Partitioning part(g, 4);
  const HyveAddressMap map(part, 8, 4, /*slack=*/0.3);
  // Total edge memory exceeds the tight packing by ~the slack fraction.
  std::uint64_t tight = 0;
  for (std::uint32_t x = 0; x < 4; ++x)
    for (std::uint32_t y = 0; y < 4; ++y)
      tight += HyveAddressMap::kBlockHeaderBytes +
               part.block_edge_count(x, y) * 8;
  EXPECT_GT(map.edge_memory_bytes(), tight);
  EXPECT_LT(map.edge_memory_bytes(), tight * 1.5);
}

TEST(AddressMap, IntervalLayoutMatchesPopulation) {
  const Graph g = test_graph();
  const Partitioning part(g, 8);
  const HyveAddressMap map(part, 8, 4);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(map.interval_range(i).bytes,
              HyveAddressMap::kIntervalHeaderBytes +
                  part.interval_population(i) * 4ull);
  }
}

TEST(AddressMap, RejectsOutOfRange) {
  const Graph g = test_graph();
  const Partitioning part(g, 4);
  const HyveAddressMap map(part, 8, 4);
  EXPECT_THROW(map.block_range(4, 0), InvariantError);
  EXPECT_THROW(map.interval_range(4), InvariantError);
}

TEST(MemoryController, EdgeStreamCoversBlockBytes) {
  const Graph g = test_graph();
  const Partitioning part(g, 8);
  const MemoryController mc(part, 8, 4);
  const auto trace = mc.edge_stream(2, 3);
  const AddressRange r = mc.address_map().block_range(2, 3);
  if (part.block_edge_count(2, 3) == 0) {
    // Header-only block still fetches at least one burst.
    EXPECT_GE(trace.size(), 1u);
    return;
  }
  std::uint64_t covered = 0;
  for (const MemRequest& req : trace) {
    EXPECT_FALSE(req.is_write);
    covered += req.bytes;
  }
  EXPECT_GE(covered, r.bytes);
  EXPECT_LT(covered, r.bytes + 128);  // alignment overshoot only
}

TEST(MemoryController, FullScanIsMonotoneWithinBlocks) {
  const Graph g = test_graph();
  const Partitioning part(g, 4);
  const MemoryController mc(part, 8, 4);
  const auto trace = mc.full_edge_scan();
  EXPECT_FALSE(trace.empty());
  std::uint64_t total_payload = 0;
  for (const MemRequest& req : trace) total_payload += req.bytes;
  // Whole edge list (plus headers/alignment) is fetched exactly once.
  EXPECT_GE(total_payload, g.num_edges() * 8);
}

TEST(MemoryController, WritebackIsWriteTrace) {
  const Graph g = test_graph();
  const Partitioning part(g, 8);
  const MemoryController mc(part, 8, 4);
  for (const MemRequest& req : mc.interval_writeback(1))
    EXPECT_TRUE(req.is_write);
  for (const MemRequest& req : mc.interval_load(1))
    EXPECT_FALSE(req.is_write);
}

// ---- detailed mode: controller traces through the cycle simulators ----

TEST(DetailedMode, EdgeScanTimeMatchesAnalyticStream) {
  const Graph g = generate_rmat(20000, 200000, {}, 556);
  const Partitioning part(g, 8);
  const MemoryController mc(part, 8, 4);
  const auto trace = mc.full_edge_scan();

  ReramTimingSim sim;
  const double detailed_ns = sim.run(trace).total_ns;
  const ReramModel model;
  std::uint64_t bytes = 0;
  for (const MemRequest& r : trace) bytes += r.bytes;
  const double analytic_ns = model.stream_read_time_ns(bytes);
  // Block boundaries cost a little; the streams must agree to ~20%.
  EXPECT_NEAR(detailed_ns / analytic_ns, 1.0, 0.2);
}

TEST(DetailedMode, IntervalTrafficTimeMatchesAnalyticStream) {
  const Graph g = generate_rmat(50000, 150000, {}, 557);
  const Partitioning part(g, 8);
  const MemoryController mc(part, 8, 8);

  std::vector<MemRequest> trace;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto load = mc.interval_load(i);
    trace.insert(trace.end(), load.begin(), load.end());
  }
  DramTimingSim sim;
  const double detailed_ns = sim.run(trace).total_ns;
  std::uint64_t bytes = 0;
  for (const MemRequest& r : trace) bytes += r.bytes;
  const DramModel model;
  EXPECT_NEAR(detailed_ns / model.stream_read_time_ns(bytes), 1.0, 0.2);
}

TEST(DetailedMode, SequentialScanStaysSingleBankAwake) {
  // End-to-end check of the §4.1 property through the real address map:
  // the controller's edge scan keeps at most one ReRAM bank busy.
  const Graph g = test_graph();
  const Partitioning part(g, 8);
  const MemoryController mc(part, 8, 4);
  ReramTimingSim sim;
  const ReramTraceResult r = sim.run(mc.full_edge_scan());
  EXPECT_EQ(r.max_concurrent_banks, 1u);
}

}  // namespace
}  // namespace hyve
