#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "algos/bfs.hpp"
#include "algos/gas.hpp"
#include "algos/runner.hpp"
#include "core/machine.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

Graph test_graph() { return generate_rmat(5000, 30000, {}, 999); }

TEST(Gas, RejectsMissingCallables) {
  GasProgram<int>::Spec spec;  // no init/scatter
  EXPECT_THROW(GasProgram<int>{std::move(spec)}, InvariantError);
}

TEST(Gas, ReachabilityMatchesBfsReachability) {
  const Graph g = test_graph();
  BfsProgram bfs(0);
  run_functional(g, bfs);
  auto reach = make_reachability_program(0);
  run_functional(g, reach);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(reach.values()[v] != 0,
              bfs.distances()[v] != BfsProgram::kUnreached)
        << "vertex " << v;
  }
}

TEST(Gas, WidestPathMatchesDijkstraVariant) {
  const Graph g = generate_rmat(500, 3000, {}, 1001);
  constexpr std::uint32_t kMaxCap = 64;
  auto widest = make_widest_path_program(0, kMaxCap);
  run_functional(g, widest);

  // Reference: max-bottleneck via Dijkstra on negated capacities.
  const Csr csr = Csr::from_graph(g);
  std::vector<std::uint32_t> best(g.num_vertices(), 0);
  best[0] = kMaxCap + 1;
  std::priority_queue<std::pair<std::uint32_t, VertexId>> pq;
  pq.push({best[0], 0});
  while (!pq.empty()) {
    const auto [cap, u] = pq.top();
    pq.pop();
    if (cap < best[u]) continue;
    for (auto i = csr.row_offsets[u]; i < csr.row_offsets[u + 1]; ++i) {
      const VertexId w = csr.neighbors[i];
      const std::uint32_t through =
          std::min(cap, Graph::edge_weight({u, w}, kMaxCap));
      if (through > best[w]) {
        best[w] = through;
        pq.push({through, w});
      }
    }
  }
  EXPECT_EQ(widest.values(), best);
}

TEST(Gas, ApplyPhaseMarksProgram) {
  GasProgram<float>::Spec spec;
  spec.name = "decay";
  spec.init = [](VertexId, const Graph&) { return 1.0f; };
  spec.scatter = [](const Edge&, const float&, const float&)
      -> std::optional<float> { return std::nullopt; };
  spec.apply = [](VertexId, const float& v) { return v * 0.5f; };
  spec.max_iterations = 3;
  GasProgram<float> prog(std::move(spec));
  EXPECT_TRUE(prog.has_apply_phase());
  const Graph g(10, {{0, 1}});
  const auto result = run_functional(g, prog);
  EXPECT_EQ(result.iterations, 3u);
  EXPECT_FLOAT_EQ(prog.values()[0], 0.125f);
}

TEST(Gas, ValueBytesTrackTemplateParameter) {
  EXPECT_EQ(make_reachability_program(0).vertex_value_bytes(), 4u);
  GasProgram<double>::Spec spec;
  spec.init = [](VertexId, const Graph&) { return 0.0; };
  spec.scatter = [](const Edge&, const double&, const double&)
      -> std::optional<double> { return std::nullopt; };
  EXPECT_EQ(GasProgram<double>(std::move(spec)).vertex_value_bytes(), 8u);
}

TEST(Gas, RunsOnTheMachine) {
  // Custom GAS programs are first-class citizens of the public API.
  const Graph g = generate_rmat(20000, 100000, {}, 1002);
  auto reach = make_reachability_program(3);
  const RunReport r = HyveMachine(HyveConfig::hyve_opt()).run(g, reach);
  EXPECT_EQ(r.algorithm, "REACH");
  EXPECT_GT(r.mteps_per_watt(), 0.0);
  EXPECT_GT(r.iterations, 0u);
}

TEST(Gas, MaxIterationsCapRespected) {
  // A scatter that always changes would run forever without the cap.
  GasProgram<std::uint32_t>::Spec spec;
  spec.name = "count";
  spec.init = [](VertexId, const Graph&) { return 0u; };
  spec.scatter = [](const Edge&, const std::uint32_t&,
                    const std::uint32_t& dst)
      -> std::optional<std::uint32_t> { return dst + 1; };
  spec.max_iterations = 7;
  GasProgram<std::uint32_t> prog(std::move(spec));
  const Graph g(4, {{0, 1}});
  EXPECT_EQ(run_functional(g, prog).iterations, 7u);
}

}  // namespace
}  // namespace hyve
