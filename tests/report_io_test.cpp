#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/report_io.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

RunReport sample_report() {
  const Graph g = generate_rmat(10000, 60000, {}, 31337);
  return HyveMachine(HyveConfig::hyve_opt()).run(g, Algorithm::kBfs);
}

TEST(ReportIo, ContainsCoreFields) {
  const std::string json = report_to_json(sample_report());
  for (const char* key :
       {"\"config\":", "\"algorithm\":", "\"iterations\":",
        "\"exec_time_ns\":", "\"energy_pj\":", "\"mteps_per_watt\":",
        "\"energy_breakdown_pj\":", "\"stats\":", "\"power_gating\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"acc+HyVE-opt\""), std::string::npos);
  EXPECT_NE(json.find("\"BFS\""), std::string::npos);
}

TEST(ReportIo, BalancedBracesAndQuotes) {
  const std::string json = report_to_json(sample_report());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportIo, EscapesControlCharacters) {
  RunReport r = sample_report();
  r.config_label = "odd \"label\"\nwith\tescapes\\";
  const std::string json = report_to_json(r);
  EXPECT_NE(json.find("\\\"label\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  // No raw control characters survive.
  for (const char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(ReportIo, BreakdownComponentsAllPresent) {
  const std::string json = report_to_json(sample_report());
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    EXPECT_NE(json.find('"' + component_name(c) + '"'), std::string::npos)
        << component_name(c);
  }
}

TEST(ReportIo, Deterministic) {
  const RunReport r = sample_report();
  EXPECT_EQ(report_to_json(r), report_to_json(r));
}

TEST(ReportIo, ValidatedJsonMatchesPlainSerialisation) {
  const RunReport r = sample_report();
  EXPECT_EQ(validated_report_json(r), report_to_json(r));
  EXPECT_NO_THROW(validate_report_round_trip(r));
}

// Forced-mismatch fake: a NaN time can never round-trip, so the
// validation that hyve_sim and the sweep ResultSink share must reject
// the report instead of emitting unparseable output. The writer's own
// finiteness invariant fires before the parse-back comparison — either
// way nothing is emitted.
TEST(ReportIo, ValidationRejectsReportThatCannotRoundTrip) {
  RunReport r = sample_report();
  r.exec_time_ns = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validated_report_json(r), InvariantError);
  EXPECT_THROW(validate_report_round_trip(r), InvariantError);
  r.exec_time_ns = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validated_report_json(r), InvariantError);
}

TEST(ReportIo, LedgerRoundTripsThroughJson) {
  const RunReport r = sample_report();
  ASSERT_FALSE(r.ledger.empty());
  const std::string json = validated_report_json(r);
  EXPECT_NE(json.find("\"energy_ledger\":["), std::string::npos);
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.ledger.size(), r.ledger.size());
  EXPECT_TRUE(reports_equivalent(r, parsed, 1e-9));
  EXPECT_NO_THROW(parsed.validate_ledger(1e-6));
  EXPECT_NEAR(parsed.bpg.awake_background_pj, r.bpg.awake_background_pj,
              1e-6 * (r.bpg.awake_background_pj + 1.0));
  EXPECT_NEAR(parsed.bpg.idle_background_pj, r.bpg.idle_background_pj,
              1e-6 * (r.bpg.idle_background_pj + 1.0));
}

// ---------- Malformed input must fail loudly, never half-parse ----------

TEST(ReportIo, TruncatedJsonIsRejected) {
  const std::string json = report_to_json(sample_report());
  // Chop at several depths: mid-key, mid-number, missing closer.
  for (const std::size_t keep :
       {json.size() - 1, json.size() / 2, json.size() / 4, std::size_t{1}}) {
    EXPECT_THROW(run_report_from_json(json.substr(0, keep)),
                 std::runtime_error)
        << "accepted a " << keep << "-byte prefix";
  }
}

TEST(ReportIo, WrongTypePhaseFieldIsRejected) {
  const std::string json = report_to_json(sample_report());
  const std::string key = "\"phase_time_ns\":{\"load\":";
  const auto at = json.find(key);
  ASSERT_NE(at, std::string::npos);
  // Replace the number that follows with a string token.
  const auto end = json.find_first_of(",}", at + key.size());
  std::string corrupt = json.substr(0, at + key.size()) + "\"fast\"" +
                        json.substr(end);
  EXPECT_THROW(run_report_from_json(corrupt), std::runtime_error);
}

TEST(ReportIo, NegativeCounterIsRejected) {
  std::string json = report_to_json(sample_report());
  const std::string key = "\"stats\":{\"edge_bytes_read\":";
  const auto at = json.find(key);
  ASSERT_NE(at, std::string::npos);
  json.insert(at + key.size(), "-");
  EXPECT_THROW(run_report_from_json(json), std::runtime_error);
}

TEST(ReportIo, NonSummingBreakdownIsRejected) {
  RunReport r = sample_report();
  std::string json = report_to_json(r);
  // Double one component: the breakdown no longer sums to energy_pj and
  // the ledger no longer matches the breakdown — the parser must refuse.
  const std::string key = "\"energy_breakdown_pj\":{\"edge-mem dynamic\":";
  const auto at = json.find(key);
  ASSERT_NE(at, std::string::npos);
  const auto end = json.find_first_of(",}", at + key.size());
  const double doubled =
      2.0 * r.energy[EnergyComponent::kEdgeMemDynamic] + 1.0;
  json = json.substr(0, at + key.size()) + std::to_string(doubled) +
         json.substr(end);
  EXPECT_THROW(run_report_from_json(json), std::runtime_error);
}

TEST(ReportIo, LedgerCellWithUnknownComponentIsRejected) {
  std::string json = report_to_json(sample_report());
  const std::string key = "\"energy_ledger\":[{\"component\":\"";
  const auto at = json.find(key);
  ASSERT_NE(at, std::string::npos);
  json.insert(at + key.size(), "warp drive ");
  EXPECT_THROW(run_report_from_json(json), std::runtime_error);
}

TEST(ReportIo, UnknownLiteralIsRejected) {
  EXPECT_THROW(run_report_from_json("{\"config\":bogus}"),
               std::runtime_error);
}

}  // namespace
}  // namespace hyve
