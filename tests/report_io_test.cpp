#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/report_io.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

RunReport sample_report() {
  const Graph g = generate_rmat(10000, 60000, {}, 31337);
  return HyveMachine(HyveConfig::hyve_opt()).run(g, Algorithm::kBfs);
}

TEST(ReportIo, ContainsCoreFields) {
  const std::string json = report_to_json(sample_report());
  for (const char* key :
       {"\"config\":", "\"algorithm\":", "\"iterations\":",
        "\"exec_time_ns\":", "\"energy_pj\":", "\"mteps_per_watt\":",
        "\"energy_breakdown_pj\":", "\"stats\":", "\"power_gating\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"acc+HyVE-opt\""), std::string::npos);
  EXPECT_NE(json.find("\"BFS\""), std::string::npos);
}

TEST(ReportIo, BalancedBracesAndQuotes) {
  const std::string json = report_to_json(sample_report());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportIo, EscapesControlCharacters) {
  RunReport r = sample_report();
  r.config_label = "odd \"label\"\nwith\tescapes\\";
  const std::string json = report_to_json(r);
  EXPECT_NE(json.find("\\\"label\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  // No raw control characters survive.
  for (const char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(ReportIo, BreakdownComponentsAllPresent) {
  const std::string json = report_to_json(sample_report());
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i) {
    const auto c = static_cast<EnergyComponent>(i);
    EXPECT_NE(json.find('"' + component_name(c) + '"'), std::string::npos)
        << component_name(c);
  }
}

TEST(ReportIo, Deterministic) {
  const RunReport r = sample_report();
  EXPECT_EQ(report_to_json(r), report_to_json(r));
}

TEST(ReportIo, ValidatedJsonMatchesPlainSerialisation) {
  const RunReport r = sample_report();
  EXPECT_EQ(validated_report_json(r), report_to_json(r));
  EXPECT_NO_THROW(validate_report_round_trip(r));
}

// Forced-mismatch fake: a NaN time can never round-trip, so the
// validation that hyve_sim and the sweep ResultSink share must reject
// the report instead of emitting unparseable output. The writer's own
// finiteness invariant fires before the parse-back comparison — either
// way nothing is emitted.
TEST(ReportIo, ValidationRejectsReportThatCannotRoundTrip) {
  RunReport r = sample_report();
  r.exec_time_ns = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validated_report_json(r), InvariantError);
  EXPECT_THROW(validate_report_round_trip(r), InvariantError);
  r.exec_time_ns = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validated_report_json(r), InvariantError);
}

}  // namespace
}  // namespace hyve
