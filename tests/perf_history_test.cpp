// Tests for the cross-commit perf-history ledger: record round-trips,
// append-only files, trend analysis comparability rules, and named
// baselines.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/bench_json.hpp"
#include "core/perf_history.hpp"

namespace hyve {
namespace {

PerfRecord sample_record() {
  PerfRecord r;
  r.bench = "bench_fig10";
  r.git_rev = "abc1234";
  r.recorded_at = "2026-08-08T12:00:00Z";
  r.hostname = "ci-box";
  r.cpu_model = "Paper CPU @ 3GHz";
  r.cpus = 16;
  r.jobs = 8;
  r.smoke = true;
  r.cells = 12;
  r.wall_ms = 1234.5;
  r.max_rss_kb = 98765;
  r.energy_pj = 5.5e9;
  r.exec_time_ns = 7.25e8;
  return r;
}

class PerfHistoryDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hyve_perf_history_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST(PerfRecordJson, RoundTripsEveryField) {
  const PerfRecord r = sample_record();
  const PerfRecord back = perf_record_from_json(perf_record_to_json(r));
  EXPECT_EQ(back.bench, r.bench);
  EXPECT_EQ(back.git_rev, r.git_rev);
  EXPECT_EQ(back.recorded_at, r.recorded_at);
  EXPECT_EQ(back.hostname, r.hostname);
  EXPECT_EQ(back.cpu_model, r.cpu_model);
  EXPECT_EQ(back.cpus, r.cpus);
  EXPECT_EQ(back.jobs, r.jobs);
  EXPECT_EQ(back.smoke, r.smoke);
  EXPECT_EQ(back.cells, r.cells);
  EXPECT_DOUBLE_EQ(back.wall_ms, r.wall_ms);
  EXPECT_EQ(back.max_rss_kb, r.max_rss_kb);
  EXPECT_DOUBLE_EQ(back.energy_pj, r.energy_pj);
  EXPECT_DOUBLE_EQ(back.exec_time_ns, r.exec_time_ns);
}

TEST(PerfRecordJson, IsOneSelfIdentifyingLine) {
  const std::string json = perf_record_to_json(sample_record());
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"hyve-perf-history\""),
            std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
}

TEST(PerfRecordJson, RejectsWrongSchemaAndMalformedNumbers) {
  std::string json = perf_record_to_json(sample_record());
  std::string wrong = json;
  const auto at = wrong.find("hyve-perf-history");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, 17, "some-other-schema");
  EXPECT_THROW(perf_record_from_json(wrong), std::runtime_error);

  std::string negative = json;
  const auto wall = negative.find("\"wall_ms\":");
  ASSERT_NE(wall, std::string::npos);
  negative.insert(wall + 10, "-");
  EXPECT_THROW(perf_record_from_json(negative), std::runtime_error);

  EXPECT_THROW(perf_record_from_json("not json at all"),
               std::runtime_error);
}

TEST(PerfRecordJson, SummarisesABenchReportDoc) {
  BenchReportDoc doc;
  doc.bench = "bench_fig10";
  doc.git_rev = "deadbee";
  doc.smoke = true;
  doc.host.present = true;
  doc.host.wall_ms = 42.5;
  doc.host.max_rss_kb = 2048;
  doc.host.jobs = 4;
  const PerfRecord r = perf_record_from_report(doc);
  EXPECT_EQ(r.bench, "bench_fig10");
  EXPECT_EQ(r.git_rev, "deadbee");
  EXPECT_TRUE(r.smoke);
  EXPECT_EQ(r.cells, 0u);
  EXPECT_DOUBLE_EQ(r.wall_ms, 42.5);
  EXPECT_EQ(r.max_rss_kb, 2048u);
  EXPECT_EQ(r.jobs, 4);
}

TEST_F(PerfHistoryDirTest, AppendCreatesLedgerAndLoadsInOrder) {
  PerfRecord first = sample_record();
  PerfRecord second = sample_record();
  second.git_rev = "def5678";
  second.wall_ms = 2000.0;
  append_perf_record(dir_.string(), first);
  append_perf_record(dir_.string(), second);

  const std::string path = perf_history_path(dir_.string(), first.bench);
  EXPECT_TRUE(std::filesystem::exists(path));
  const std::vector<PerfRecord> records = load_perf_history(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].git_rev, "abc1234");
  EXPECT_EQ(records[1].git_rev, "def5678");
  EXPECT_DOUBLE_EQ(records[1].wall_ms, 2000.0);

  const std::vector<std::string> ledgers =
      list_perf_histories(dir_.string());
  ASSERT_EQ(ledgers.size(), 1u);
  EXPECT_EQ(ledgers[0], path);
}

TEST_F(PerfHistoryDirTest, LoadRejectsTamperedLedgerLines) {
  append_perf_record(dir_.string(), sample_record());
  const std::string path =
      perf_history_path(dir_.string(), sample_record().bench);
  {
    std::ofstream os(path, std::ios::app);
    os << "{\"schema\":\"hyve-perf-history\",\"broken\":true}\n";
  }
  EXPECT_THROW(load_perf_history(path), std::runtime_error);
}

TEST_F(PerfHistoryDirTest, RejectsBenchNamesThatEscapeTheDirectory) {
  PerfRecord r = sample_record();
  r.bench = "../evil";
  EXPECT_THROW(append_perf_record(dir_.string(), r), std::runtime_error);
  EXPECT_THROW(perf_history_path(dir_.string(), "a/b"),
               std::runtime_error);
}

TEST_F(PerfHistoryDirTest, BaselinesSaveAndLoadByName) {
  const PerfRecord r = sample_record();
  save_perf_baseline(dir_.string(), "v1", r);
  const PerfRecord back = load_perf_baseline(dir_.string(), "v1");
  EXPECT_EQ(back.git_rev, r.git_rev);
  EXPECT_DOUBLE_EQ(back.wall_ms, r.wall_ms);
  EXPECT_THROW(load_perf_baseline(dir_.string(), "missing"),
               std::runtime_error);
  EXPECT_THROW(save_perf_baseline(dir_.string(), "../oops", r),
               std::runtime_error);
}

// ---------- Trend analysis ----------

TEST(PerfTrend, SingleRecordHasNothingToCompare) {
  const PerfTrendResult result =
      trend_perf_history({sample_record()}, /*threshold_pct=*/10.0);
  EXPECT_EQ(result.comparable, 0u);
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_FALSE(result.note.empty());
}

TEST(PerfTrend, FlagsWallClockRegressionBeyondThreshold) {
  std::vector<PerfRecord> records;
  for (int i = 0; i < 3; ++i) {
    PerfRecord r = sample_record();
    r.wall_ms = 1000.0;
    records.push_back(r);
  }
  PerfRecord latest = sample_record();
  latest.wall_ms = 1500.0;  // +50% over the 1000ms median
  records.push_back(latest);

  const PerfTrendResult result =
      trend_perf_history(records, /*threshold_pct=*/10.0);
  EXPECT_EQ(result.comparable, 3u);
  EXPECT_GE(result.regressions, 1u);
  bool wall_line = false;
  for (const PerfTrendLine& line : result.lines)
    if (line.metric == "wall_ms") {
      wall_line = true;
      EXPECT_TRUE(line.regressed);
      EXPECT_DOUBLE_EQ(line.reference, 1000.0);
      EXPECT_DOUBLE_EQ(line.latest, 1500.0);
      EXPECT_NEAR(line.delta_pct, 50.0, 1e-9);
    }
  EXPECT_TRUE(wall_line);
  EXPECT_NE(format_perf_trend(result, 10.0).find("wall_ms"),
            std::string::npos);
}

TEST(PerfTrend, ImprovementsAndNoiseBelowThresholdPass) {
  std::vector<PerfRecord> records;
  for (const double wall : {1000.0, 1020.0, 990.0, 1005.0}) {
    PerfRecord r = sample_record();
    r.wall_ms = wall;
    records.push_back(r);
  }
  const PerfTrendResult result =
      trend_perf_history(records, /*threshold_pct=*/10.0);
  EXPECT_EQ(result.regressions, 0u);
}

TEST(PerfTrend, OnlyMatchingSignaturesAreComparable) {
  std::vector<PerfRecord> records;
  PerfRecord other_host = sample_record();
  other_host.hostname = "laptop";
  other_host.wall_ms = 10.0;  // would scream regression if compared
  PerfRecord other_jobs = sample_record();
  other_jobs.jobs = 1;
  other_jobs.wall_ms = 10.0;
  records.push_back(other_host);
  records.push_back(other_jobs);
  records.push_back(sample_record());  // latest: jobs=8 on ci-box

  const PerfTrendResult result = trend_perf_history(records, 10.0);
  EXPECT_EQ(result.comparable, 0u);
  EXPECT_EQ(result.regressions, 0u);
  EXPECT_FALSE(result.note.empty());
}

TEST(PerfTrend, SimulatedMetricsNeedMatchingCellCounts) {
  PerfRecord prior = sample_record();
  PerfRecord latest = sample_record();
  latest.cells = prior.cells + 5;     // grid grew
  latest.energy_pj = prior.energy_pj * 10;  // would regress if compared
  const PerfTrendResult result =
      trend_perf_history({prior, latest}, 10.0);
  for (const PerfTrendLine& line : result.lines) {
    EXPECT_NE(line.metric, "energy_pj");
    EXPECT_NE(line.metric, "exec_time_ns");
  }
}

TEST(PerfTrend, BaselineComparisonUsesTheSameRules) {
  const PerfRecord baseline = sample_record();
  PerfRecord latest = sample_record();
  latest.max_rss_kb = baseline.max_rss_kb * 2;
  const PerfTrendResult result =
      compare_to_baseline(baseline, latest, /*threshold_pct=*/10.0);
  EXPECT_GE(result.regressions, 1u);
  bool rss_line = false;
  for (const PerfTrendLine& line : result.lines)
    if (line.metric == "max_rss_kb") {
      rss_line = true;
      EXPECT_TRUE(line.regressed);
    }
  EXPECT_TRUE(rss_line);
}

}  // namespace
}  // namespace hyve
