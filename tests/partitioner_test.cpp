#include "graph/partitioner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "algos/bfs.hpp"
#include "algos/cc.hpp"
#include "algos/pagerank.hpp"
#include "algos/runner.hpp"
#include "algos/spmv.hpp"
#include "algos/sssp.hpp"
#include "bench/common.hpp"
#include "core/config.hpp"
#include "core/machine.hpp"
#include "core/report_io.hpp"
#include "exp/cache.hpp"
#include "exp/sweep.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

std::vector<PartitionerSpec> all_strategies() {
  PartitionerSpec hep;
  hep.strategy = PartitionStrategy::kHep;
  PartitionerSpec hep_tight = hep;
  hep_tight.hep_tau = 1.0;
  PartitionerSpec sm;
  sm.strategy = PartitionStrategy::kSplitMerge;
  PartitionerSpec sm_coarse = sm;
  sm_coarse.splitmerge_chunks = 2;
  return {PartitionerSpec{}, hep, hep_tight, sm, sm_coarse};
}

// ---------- spec text form ----------

TEST(PartitionerSpec, CanonicalToString) {
  EXPECT_EQ(PartitionerSpec{}.to_string(), "interval");
  PartitionerSpec hep;
  hep.strategy = PartitionStrategy::kHep;
  EXPECT_EQ(hep.to_string(), "hep:tau=2");
  hep.hep_tau = 1.5;
  EXPECT_EQ(hep.to_string(), "hep:tau=1.5");
  PartitionerSpec sm;
  sm.strategy = PartitionStrategy::kSplitMerge;
  EXPECT_EQ(sm.to_string(), "splitmerge:chunks=8");
  sm.splitmerge_chunks = 16;
  EXPECT_EQ(sm.to_string(), "splitmerge:chunks=16");
}

TEST(PartitionerSpec, ParseAcceptsBareAndParameterisedForms) {
  const auto interval = parse_partitioner("interval");
  ASSERT_TRUE(interval.has_value());
  EXPECT_TRUE(interval->is_default());
  EXPECT_EQ(parse_partitioner("interval-block"), interval);

  const auto hep = parse_partitioner("hep");
  ASSERT_TRUE(hep.has_value());
  EXPECT_EQ(hep->strategy, PartitionStrategy::kHep);
  EXPECT_DOUBLE_EQ(hep->hep_tau, 2.0);

  const auto hep_tau = parse_partitioner("hep:tau=2.0");
  ASSERT_TRUE(hep_tau.has_value());
  EXPECT_EQ(*hep_tau, *hep);

  const auto sm = parse_partitioner("splitmerge:chunks=4");
  ASSERT_TRUE(sm.has_value());
  EXPECT_EQ(sm->strategy, PartitionStrategy::kSplitMerge);
  EXPECT_EQ(sm->splitmerge_chunks, 4u);
}

TEST(PartitionerSpec, ToStringParsesBackToEqualSpec) {
  std::vector<PartitionerSpec> specs = all_strategies();
  PartitionerSpec odd_tau;
  odd_tau.strategy = PartitionStrategy::kHep;
  odd_tau.hep_tau = 0.25;
  specs.push_back(odd_tau);
  for (const PartitionerSpec& spec : specs) {
    const auto parsed = parse_partitioner(spec.to_string());
    ASSERT_TRUE(parsed.has_value()) << spec.to_string();
    EXPECT_EQ(*parsed, spec) << spec.to_string();
  }
}

TEST(PartitionerSpec, ParseRejectsGarbage) {
  for (const char* bad :
       {"", "foo", "interval:x", "interval-block:2", "hep:", "hep:tau=",
        "hep:tau=0", "hep:tau=-1", "hep:tau=abc", "hep:tau=1.5x",
        "hep:chunks=2", "hep:tau=inf", "hep:tau=nan", "splitmerge:",
        "splitmerge:chunks=", "splitmerge:chunks=0", "splitmerge:chunks=-3",
        "splitmerge:chunks=abc", "splitmerge:tau=2", "HEP", "Interval"})
    EXPECT_FALSE(parse_partitioner(bad).has_value()) << bad;
}

TEST(PartitionerSpec, ValidateRejectsOutOfRangeParameters) {
  PartitionerSpec bad_tau;
  bad_tau.strategy = PartitionStrategy::kHep;
  bad_tau.hep_tau = 0.0;
  EXPECT_THROW(bad_tau.validate(), InvariantError);
  PartitionerSpec bad_chunks;
  bad_chunks.strategy = PartitionStrategy::kSplitMerge;
  bad_chunks.splitmerge_chunks = 0;
  EXPECT_THROW(bad_chunks.validate(), InvariantError);
}

TEST(PartitionerSpec, ConfigLabelAnnotationRoundTrips) {
  HyveConfig config = HyveConfig::hyve_opt();
  PartitionerSpec hep;
  hep.strategy = PartitionStrategy::kHep;
  config.set_partitioner(hep);
  EXPECT_EQ(config.label, "acc+HyVE-opt~hep:tau=2");

  const auto parsed = parse_config_label(config.label);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->partitioner, hep);
  EXPECT_EQ(parsed->label, config.label);
  EXPECT_EQ(parse_config_label("opt~hep:tau=2")->label, config.label);

  // Re-annotation replaces, and the default strips the suffix.
  PartitionerSpec sm;
  sm.strategy = PartitionStrategy::kSplitMerge;
  config.set_partitioner(sm);
  EXPECT_EQ(config.label, "acc+HyVE-opt~splitmerge:chunks=8");
  config.set_partitioner(PartitionerSpec{});
  EXPECT_EQ(config.label, "acc+HyVE-opt");

  EXPECT_FALSE(parse_config_label("opt~nonsense").has_value());
  EXPECT_FALSE(parse_config_label("nonsense~hep").has_value());
}

// ---------- death tests (exit 2 on CLI garbage) ----------

class PartitionerArgsDeathTest : public ::testing::Test {
 protected:
  PartitionerArgsDeathTest() {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

bench::Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_test");
  return bench::parse_args(static_cast<int>(args.size()),
                           const_cast<char**>(args.data()), "bench_test",
                           "test bench");
}

TEST_F(PartitionerArgsDeathTest, SharedCommandLineRejectsBadPartitioner) {
  EXPECT_EXIT(parse({"--partitioner", "nonsense"}),
              ::testing::ExitedWithCode(2), "unknown partitioner nonsense");
  EXPECT_EXIT(parse({"--partitioner", "hep:tau=0"}),
              ::testing::ExitedWithCode(2), "unknown partitioner hep:tau=0");
  EXPECT_EXIT(parse({"--partitioner", "splitmerge:chunks=x"}),
              ::testing::ExitedWithCode(2),
              "unknown partitioner splitmerge:chunks=x");
}

TEST(PartitionerArgs, SharedCommandLineAcceptsStrategies) {
  parse({"--partitioner", "hep:tau=1.5"});
  EXPECT_EQ(bench::partitioner_spec().to_string(), "hep:tau=1.5");
  parse({"--partitioner", "interval"});
  EXPECT_TRUE(bench::partitioner_spec().is_default());
}

// ---------- structural properties, every strategy ----------

struct NamedGraph {
  const char* name;
  Graph graph;
  std::uint32_t p;
};

std::vector<NamedGraph> property_graphs() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"paper-fig1", paper_example_graph(), 4});
  graphs.push_back({"rmat", generate_rmat(800, 5000, {}, 41), 8});
  graphs.push_back({"rmat-uneven-p", generate_rmat(997, 4000, {}, 43), 13});
  return graphs;
}

TEST(PartitionerProperty, EveryEdgeInExactlyOneBlock) {
  for (const NamedGraph& ng : property_graphs()) {
    for (const PartitionerSpec& spec : all_strategies()) {
      const Partitioning part =
          make_partitioner(spec)->partition(ng.graph, ng.p);
      std::uint64_t total = 0;
      for (std::uint32_t x = 0; x < ng.p; ++x)
        for (std::uint32_t y = 0; y < ng.p; ++y) {
          for (const Edge& e : part.block(x, y)) {
            EXPECT_EQ(part.interval_of(e.src), x)
                << ng.name << " " << spec.to_string();
            EXPECT_EQ(part.interval_of(e.dst), y)
                << ng.name << " " << spec.to_string();
          }
          total += part.block_edge_count(x, y);
        }
      EXPECT_EQ(total, ng.graph.num_edges())
          << ng.name << " " << spec.to_string();
    }
  }
}

TEST(PartitionerProperty, PopulationsSumToVAndRespectCapacity) {
  for (const NamedGraph& ng : property_graphs()) {
    const VertexId v = ng.graph.num_vertices();
    const VertexId cap = (v + ng.p - 1) / ng.p;
    for (const PartitionerSpec& spec : all_strategies()) {
      const VertexMap map =
          make_partitioner(spec)->map_vertices(ng.graph, ng.p);
      EXPECT_EQ(map.num_intervals(), ng.p);
      std::uint64_t pop = 0;
      for (std::uint32_t i = 0; i < ng.p; ++i) {
        pop += map.population(i);
        EXPECT_LE(map.population(i), cap)
            << ng.name << " " << spec.to_string() << " interval " << i;
      }
      EXPECT_EQ(pop, v) << ng.name << " " << spec.to_string();
      EXPECT_LE(map.max_population(), cap)
          << ng.name << " " << spec.to_string();
    }
  }
}

TEST(PartitionerProperty, MapVerticesIsDeterministic) {
  const Graph g = generate_rmat(600, 4000, {}, 47);
  for (const PartitionerSpec& spec : all_strategies()) {
    const auto partitioner = make_partitioner(spec);
    const VertexMap a = partitioner->map_vertices(g, 8);
    const VertexMap b = partitioner->map_vertices(g, 8);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(a.interval_of(v), b.interval_of(v)) << spec.to_string();
  }
}

TEST(PartitionerProperty, RejectsMoreIntervalsThanVertices) {
  const Graph g(4, {});
  for (const PartitionerSpec& spec : all_strategies())
    EXPECT_THROW(make_partitioner(spec)->partition(g, 5), InvariantError)
        << spec.to_string();
}

// ---------- functional invariance across strategies ----------

TEST(PartitionerInvariance, FunctionalResultsAgreeAcrossStrategies) {
  for (const NamedGraph& ng : property_graphs()) {
    // Reference results over the interval-block schedule.
    const Partitioning ref_part(ng.graph, ng.p);
    BfsProgram ref_bfs(0);
    run_functional(ng.graph, ref_bfs, &ref_part);
    CcProgram ref_cc;
    run_functional(ng.graph, ref_cc, &ref_part);
    SsspProgram ref_sssp(0);
    run_functional(ng.graph, ref_sssp, &ref_part);
    PageRankProgram ref_pr;
    run_functional(ng.graph, ref_pr, &ref_part);
    SpmvProgram ref_spmv;
    run_functional(ng.graph, ref_spmv, &ref_part);

    for (const PartitionerSpec& spec : all_strategies()) {
      const Partitioning part =
          make_partitioner(spec)->partition(ng.graph, ng.p);
      // Exact algorithms: final values are block-order independent.
      BfsProgram bfs(0);
      run_functional(ng.graph, bfs, &part);
      EXPECT_EQ(bfs.distances(), ref_bfs.distances())
          << ng.name << " " << spec.to_string();
      CcProgram cc;
      run_functional(ng.graph, cc, &part);
      EXPECT_EQ(cc.labels(), ref_cc.labels())
          << ng.name << " " << spec.to_string();
      SsspProgram sssp(0);
      run_functional(ng.graph, sssp, &part);
      EXPECT_EQ(sssp.distances(), ref_sssp.distances())
          << ng.name << " " << spec.to_string();
      // FP accumulators: identical up to summation-order rounding.
      PageRankProgram pr;
      run_functional(ng.graph, pr, &part);
      for (VertexId v = 0; v < ng.graph.num_vertices(); ++v)
        ASSERT_NEAR(pr.ranks()[v], ref_pr.ranks()[v], 1e-9)
            << ng.name << " " << spec.to_string() << " vertex " << v;
      SpmvProgram spmv;
      run_functional(ng.graph, spmv, &part);
      for (VertexId v = 0; v < ng.graph.num_vertices(); ++v)
        ASSERT_NEAR(spmv.result()[v], ref_spmv.result()[v], 1e-9)
            << ng.name << " " << spec.to_string() << " vertex " << v;
    }
  }
}

// ---------- machine runs, stats and report round-trip ----------

TEST(PartitionerMachine, RunReportCarriesStrategyAndStats) {
  const Graph g = generate_rmat(3000, 20000, {}, 51);
  HyveConfig config = HyveConfig::hyve_opt();
  PartitionerSpec hep;
  hep.strategy = PartitionStrategy::kHep;
  config.set_partitioner(hep);
  const RunReport r = HyveMachine(config).run(g, Algorithm::kBfs);
  EXPECT_EQ(r.partitioner, "hep:tau=2");
  EXPECT_GT(r.partition.n_avg, 0.0);
  EXPECT_GE(r.partition.replication_factor, 1.0);
  EXPECT_GE(r.partition.interval_balance, 1.0 - 1e-9);
  EXPECT_GE(r.partition.remote_edge_fraction, 0.0);
  EXPECT_LE(r.partition.remote_edge_fraction, 1.0);
  EXPECT_GT(r.partition.bank_wake_fraction, 0.0);
  EXPECT_LE(r.partition.bank_wake_fraction, 1.0);

  // The JSON round-trip preserves the new fields bit-for-bit enough for
  // reports_equivalent (validated_report_json throws otherwise).
  const std::string json = validated_report_json(r);
  const RunReport parsed = run_report_from_json(json);
  EXPECT_EQ(parsed.partitioner, r.partitioner);
  EXPECT_TRUE(reports_equivalent(parsed, r));

  // Pre-partitioner records (no such fields) still parse, with defaults.
  const RunReport plain = HyveMachine(HyveConfig::hyve_opt()).run(
      g, Algorithm::kBfs);
  EXPECT_EQ(plain.partitioner, "interval");
}

TEST(PartitionerMachine, ComputePartitionStatsMatchesHandDerivation) {
  // Paper Fig. 1: 8 vertices, 11 edges. Equal-width P=4 puts the edges
  // into 9 non-empty blocks: B00=1, B03=1, B11=1, B12=2, B13=1, B20=1,
  // B22=1, B30=2, B31=1.
  const Graph g = paper_example_graph();
  const Partitioning part(g, 4);
  const PartitionStats stats = compute_partition_stats(part, 2);
  EXPECT_NEAR(stats.n_avg, 11.0 / 9.0, 1e-12);
  EXPECT_NEAR(stats.bank_wake_fraction, 9.0 / 16.0, 1e-12);
  EXPECT_NEAR(stats.interval_balance, 1.0, 1e-12);
  // Walking the blocks in block-major order, every vertex of Fig. 1 is
  // an endpoint somewhere (touched = 8) and the per-vertex distinct
  // block incidences sum to 21 copies.
  EXPECT_NEAR(stats.replication_factor, 21.0 / 8.0, 1e-12);
  // With 2 PUs, blocks where x % 2 != y % 2 cross PUs: B03 (1 edge),
  // B12 (2) and B30 (2) -> 5 of 11 edges.
  EXPECT_NEAR(stats.remote_edge_fraction, 5.0 / 11.0, 1e-12);
}

// ---------- cache keying per strategy ----------

TEST(PartitionerCache, StrategiesNeverCollideAndStatsAttribute) {
  exp::PartitionCache cache;
  const Graph g = generate_rmat(500, 2500, {}, 53);
  PartitionerSpec hep;
  hep.strategy = PartitionStrategy::kHep;

  const auto a = cache.acquire("g", g, 5);
  const auto b = cache.acquire("g", g, 5, hep);
  const auto a2 = cache.acquire("g", g, 5);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a.get(), a2.get());
  EXPECT_EQ(cache.builds(), 2u);

  const auto stats = cache.strategy_stats();
  ASSERT_TRUE(stats.count("interval"));
  ASSERT_TRUE(stats.count("hep:tau=2"));
  EXPECT_EQ(stats.at("interval").builds, 1u);
  EXPECT_EQ(stats.at("interval").hits, 1u);
  EXPECT_EQ(stats.at("hep:tau=2").builds, 1u);
  EXPECT_EQ(stats.at("hep:tau=2").hits, 0u);

  // The hep schedule really is the hep assignment, not equal-width.
  const VertexMap expect_hep = make_partitioner(hep)->map_vertices(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(b->interval_of(v), expect_hep.interval_of(v));
}

// ---------- sweep axis: determinism for any --jobs ----------

std::string sweep_output(const exp::SweepSpec& spec, int jobs) {
  exp::GraphCache graphs;
  graphs.add("tiny", [] { return generate_rmat(400, 2400, {}, 59); });
  exp::PartitionCache partitions;
  exp::FunctionalCache functional;
  exp::SweepEngine engine(graphs, partitions, &functional);
  std::ostringstream os;
  exp::ResultSink sink(os, exp::ResultSink::Format::kJsonl);
  exp::SweepOptions options;
  options.jobs = jobs;
  engine.run(spec, options, &sink);
  return os.str();
}

TEST(PartitionerSweep, StrategyGridIsByteIdenticalForAnyJobs) {
  exp::SweepSpec spec;
  spec.configs = {HyveConfig::hyve_opt(), HyveConfig::sram_dram()};
  PartitionerSpec hep;
  hep.strategy = PartitionStrategy::kHep;
  PartitionerSpec sm;
  sm.strategy = PartitionStrategy::kSplitMerge;
  spec.partitioners = {PartitionerSpec{}, hep, sm};
  spec.algorithms = {Algorithm::kBfs, Algorithm::kPageRank};
  spec.graphs = {"tiny"};
  ASSERT_EQ(exp::expand(spec).size(), 12u);

  const std::string serial = sweep_output(spec, 1);
  const std::string parallel = sweep_output(spec, 4);
  EXPECT_EQ(serial, parallel);

  // Every strategy's label annotation lands in the emitted records.
  EXPECT_NE(serial.find("~hep:tau=2"), std::string::npos);
  EXPECT_NE(serial.find("~splitmerge:chunks=8"), std::string::npos);
  // And the partition metrics ride along on every record.
  EXPECT_NE(serial.find("\"partitioner\":\"hep:tau=2\""), std::string::npos);
  EXPECT_NE(serial.find("\"n_avg\":"), std::string::npos);
}

}  // namespace
}  // namespace hyve
