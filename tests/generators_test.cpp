#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

TEST(Rmat, ProducesRequestedSize) {
  const Graph g = generate_rmat(1000, 5000, {}, 1);
  EXPECT_EQ(g.num_vertices(), 1000u);
  // Deduplicated generation may fall slightly short but never overshoots.
  EXPECT_LE(g.num_edges(), 5000u);
  EXPECT_GE(g.num_edges(), 4500u);
}

TEST(Rmat, Deterministic) {
  const Graph a = generate_rmat(512, 2000, {}, 42);
  const Graph b = generate_rmat(512, 2000, {}, 42);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Rmat, SeedChangesGraph) {
  const Graph a = generate_rmat(512, 2000, {}, 1);
  const Graph b = generate_rmat(512, 2000, {}, 2);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(Rmat, NoDuplicateEdgesWhenDeduplicated) {
  const Graph g = generate_rmat(256, 3000, {}, 7);
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
}

TEST(Rmat, NoSelfLoopsByDefault) {
  const Graph g = generate_rmat(256, 2000, {}, 3);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(Rmat, AllEndpointsInRange) {
  // num_vertices below the power-of-two scale: rejection must hold.
  const Graph g = generate_rmat(300, 1500, {}, 4);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.src, 300u);
    EXPECT_LT(e.dst, 300u);
  }
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.9;  // sum now > 1
  EXPECT_THROW(generate_rmat(64, 100, p, 1), InvariantError);
}

TEST(Rmat, RejectsDegenerateVertexCount) {
  EXPECT_THROW(generate_rmat(1, 10, {}, 1), InvariantError);
}

TEST(Rmat, SkewedParamsProduceSkewedDegrees) {
  RmatParams skewed{0.7, 0.15, 0.1, 0.05, false, true};
  const Graph s = generate_rmat(4096, 40000, skewed, 5);
  const Graph u = generate_erdos_renyi(4096, 40000, 5);
  const DegreeStats ss = degree_stats(s);
  const DegreeStats us = degree_stats(u);
  // R-MAT hubs concentrate edges; ER does not.
  EXPECT_GT(ss.top1pct_out_edge_share, 2.0 * us.top1pct_out_edge_share);
  EXPECT_GT(ss.max_out_degree, 3 * us.max_out_degree);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  const Graph g = generate_erdos_renyi(500, 3000, 9);
  EXPECT_EQ(g.num_edges(), 3000u);
  EXPECT_EQ(g.num_vertices(), 500u);
}

TEST(ErdosRenyi, NoDuplicatesOrSelfLoops) {
  const Graph g = generate_erdos_renyi(200, 2000, 11);
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
  for (const Edge& e : edges) EXPECT_NE(e.src, e.dst);
}

TEST(ErdosRenyi, RejectsImpossibleDensity) {
  EXPECT_THROW(generate_erdos_renyi(10, 89, 1), InvariantError);
}

TEST(ErdosRenyi, Deterministic) {
  EXPECT_EQ(generate_erdos_renyi(128, 500, 3).edges(),
            generate_erdos_renyi(128, 500, 3).edges());
}

// Property sweep over seeds: structural invariants hold for any seed.
class RmatPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmatPropertyTest, StructuralInvariants) {
  const std::uint64_t seed = GetParam();
  const Graph g = generate_rmat(777, 4000, {}, seed);
  EXPECT_EQ(g.num_vertices(), 777u);
  EXPECT_GT(g.num_edges(), 3500u);
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 777u);
    EXPECT_LT(e.dst, 777u);
    EXPECT_NE(e.src, e.dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmatPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace hyve
