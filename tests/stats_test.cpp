#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

TEST(BlockOccupancy, HandBuiltGrid) {
  // 16 vertices, block width 4 -> 4x4 grid. Three edges in two blocks.
  const Graph g(16, {{0, 1}, {1, 2}, {8, 12}});
  const BlockOccupancy occ = block_occupancy(g, 4);
  EXPECT_EQ(occ.total_blocks, 16u);
  EXPECT_EQ(occ.non_empty_blocks, 2u);  // B(0,0) holds 2, B(2,3) holds 1
  EXPECT_DOUBLE_EQ(occ.avg_edges_per_non_empty, 1.5);
  EXPECT_EQ(occ.max_edges_in_block, 2u);
}

TEST(BlockOccupancy, SingleBlockRun) {
  // All edges land in one block — exercises the trailing-run logic.
  const Graph g(8, {{0, 1}, {1, 0}, {0, 2}});
  const BlockOccupancy occ = block_occupancy(g, 8);
  EXPECT_EQ(occ.non_empty_blocks, 1u);
  EXPECT_EQ(occ.max_edges_in_block, 3u);
  EXPECT_DOUBLE_EQ(occ.avg_edges_per_non_empty, 3.0);
}

TEST(BlockOccupancy, EmptyGraph) {
  const Graph g(10, {});
  const BlockOccupancy occ = block_occupancy(g, 2);
  EXPECT_EQ(occ.non_empty_blocks, 0u);
  EXPECT_EQ(occ.avg_edges_per_non_empty, 0.0);
  EXPECT_EQ(occ.total_blocks, 25u);
}

TEST(BlockOccupancy, WidthOneIsPerEdge) {
  const Graph g(6, {{0, 1}, {2, 3}, {2, 3}, {4, 5}});
  const BlockOccupancy occ = block_occupancy(g, 1);
  EXPECT_EQ(occ.non_empty_blocks, 3u);  // duplicate edge shares its block
  EXPECT_EQ(occ.max_edges_in_block, 2u);
}

TEST(BlockOccupancy, RejectsZeroWidth) {
  EXPECT_THROW(block_occupancy(Graph(2, {}), 0), InvariantError);
}

TEST(BlockOccupancy, Table1RangeOnRmat) {
  // The paper's Table 1 reports N_avg of only 1.23-2.38 on real graphs at
  // 8x8 granularity; a skewed R-MAT of similar density must land in a
  // comparably small band (sparse blocks, the GraphR indictment).
  const Graph g = generate_rmat(50000, 130000, {}, 41);
  const BlockOccupancy occ = block_occupancy(g, 8);
  EXPECT_GT(occ.avg_edges_per_non_empty, 1.0);
  EXPECT_LT(occ.avg_edges_per_non_empty, 4.0);
  // Far below the 64-edge crossbar capacity.
  EXPECT_LT(occ.avg_edges_per_non_empty, 64.0 / 8);
}

TEST(BlockOccupancy, CoarserBlocksAreDenser) {
  const Graph g = generate_rmat(4096, 30000, {}, 43);
  const BlockOccupancy fine = block_occupancy(g, 8);
  const BlockOccupancy coarse = block_occupancy(g, 64);
  EXPECT_GT(coarse.avg_edges_per_non_empty, fine.avg_edges_per_non_empty);
  EXPECT_LT(coarse.non_empty_blocks, fine.non_empty_blocks);
}

TEST(DegreeStats, HandBuilt) {
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}, {1, 0}});
  const DegreeStats s = degree_stats(g);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 1.0);
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_in_degree, 1u);
}

TEST(DegreeStats, EmptyGraph) {
  const DegreeStats s = degree_stats(Graph(0, {}));
  EXPECT_EQ(s.max_out_degree, 0u);
  EXPECT_EQ(s.avg_out_degree, 0.0);
}

TEST(DegreeStats, Top1PctShareBounds) {
  const Graph g = generate_rmat(10000, 80000, {}, 47);
  const DegreeStats s = degree_stats(g);
  EXPECT_GT(s.top1pct_out_edge_share, 0.01);  // more than uniform share
  EXPECT_LE(s.top1pct_out_edge_share, 1.0);
}

}  // namespace
}  // namespace hyve
