#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

TEST(Partitioning, Fig1ExampleAllocatesBlocksCorrectly) {
  // The paper's running example: 8 vertices in 4 intervals of 2;
  // "edge e2.4 is allocated to B1.2 because v2 and v4 belong to I1 and
  // I2, respectively".
  const Graph g = paper_example_graph();
  const Partitioning part(g, 4);
  EXPECT_EQ(part.interval_end(0) - part.interval_begin(0), 2u);
  const auto b12 = part.block(1, 2);
  ASSERT_EQ(b12.size(), 2u);  // edges 2->4 and 3->4
  EXPECT_NE(std::find(b12.begin(), b12.end(), Edge{2, 4}), b12.end());
  EXPECT_NE(std::find(b12.begin(), b12.end(), Edge{3, 4}), b12.end());
}

TEST(Partitioning, Fig1AllBlocks) {
  const Graph g = paper_example_graph();
  const Partitioning part(g, 4);
  // Exhaustive expectations derived from Fig. 1's edge list.
  EXPECT_EQ(part.block_edge_count(0, 0), 1u);  // 1->0
  EXPECT_EQ(part.block_edge_count(0, 3), 1u);  // 0->7
  EXPECT_EQ(part.block_edge_count(1, 1), 1u);  // 2->3
  EXPECT_EQ(part.block_edge_count(1, 2), 2u);  // 2->4, 3->4
  EXPECT_EQ(part.block_edge_count(1, 3), 1u);  // 3->7
  EXPECT_EQ(part.block_edge_count(2, 0), 1u);  // 4->1
  EXPECT_EQ(part.block_edge_count(2, 2), 1u);  // 4->5
  EXPECT_EQ(part.block_edge_count(3, 0), 2u);  // 6->0, 7->1
  EXPECT_EQ(part.block_edge_count(3, 1), 1u);  // 6->2
}

TEST(Partitioning, EveryEdgeInExactlyItsBlock) {
  const Graph g = generate_rmat(1000, 8000, {}, 17);
  const Partitioning part(g, 10);
  std::uint64_t total = 0;
  for (std::uint32_t x = 0; x < 10; ++x) {
    for (std::uint32_t y = 0; y < 10; ++y) {
      for (const Edge& e : part.block(x, y)) {
        EXPECT_EQ(part.interval_of(e.src), x);
        EXPECT_EQ(part.interval_of(e.dst), y);
      }
      total += part.block_edge_count(x, y);
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(Partitioning, PreservesEdgeMultiset) {
  const Graph g = generate_rmat(400, 3000, {}, 23);
  const Partitioning part(g, 7);
  auto grouped = part.grouped_edges();
  auto original = g.edges();
  std::sort(grouped.begin(), grouped.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(grouped, original);
}

TEST(Partitioning, IntervalGeometry) {
  const Graph g(10, {});
  const Partitioning part(g, 3);
  EXPECT_TRUE(part.vertex_map().is_contiguous());
  EXPECT_EQ(part.interval_end(0) - part.interval_begin(0), 4u);  // ceil(10/3)
  EXPECT_EQ(part.interval_begin(0), 0u);
  EXPECT_EQ(part.interval_end(0), 4u);
  EXPECT_EQ(part.interval_begin(2), 8u);
  EXPECT_EQ(part.interval_end(2), 10u);  // clamped to V
  EXPECT_EQ(part.interval_population(2), 2u);
}

TEST(Partitioning, IntervalPopulationsSumToV) {
  const Graph g = generate_rmat(997, 2000, {}, 29);  // prime V
  for (std::uint32_t p : {1u, 2u, 5u, 8u, 13u, 100u}) {
    const Partitioning part(g, p);
    std::uint64_t pop = 0;
    for (std::uint32_t i = 0; i < p; ++i) pop += part.interval_population(i);
    EXPECT_EQ(pop, 997u) << "P=" << p;
  }
}

TEST(Partitioning, SingleIntervalHoldsEverything) {
  const Graph g = generate_rmat(100, 500, {}, 31);
  const Partitioning part(g, 1);
  EXPECT_EQ(part.block_edge_count(0, 0), g.num_edges());
  EXPECT_EQ(part.non_empty_blocks(), 1u);
}

TEST(Partitioning, RejectsMoreIntervalsThanVertices) {
  const Graph g(4, {});
  EXPECT_THROW(Partitioning(g, 5), InvariantError);
}

TEST(Partitioning, RejectsOutOfRangeBlockQueries) {
  const Graph g = paper_example_graph();
  const Partitioning part(g, 4);
  EXPECT_THROW(part.block(4, 0), InvariantError);
  EXPECT_THROW(part.block_edge_count(0, 4), InvariantError);
}

TEST(Partitioning, NonEmptyBlockCount) {
  const Graph g = paper_example_graph();
  const Partitioning part(g, 4);
  EXPECT_EQ(part.non_empty_blocks(), 9u);  // from the Fig. 1 layout
}

// Property sweep: partition invariants across interval counts.
class PartitionSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionSweep, BlockMembershipInvariant) {
  const std::uint32_t p = GetParam();
  const Graph g = generate_rmat(640, 5000, {}, 37);
  const Partitioning part(g, p);
  std::uint64_t total = 0;
  for (std::uint32_t x = 0; x < p; ++x)
    for (std::uint32_t y = 0; y < p; ++y) {
      for (const Edge& e : part.block(x, y)) {
        EXPECT_EQ(part.interval_of(e.src), x);
        EXPECT_EQ(part.interval_of(e.dst), y);
        EXPECT_GE(e.src, part.interval_begin(x));
        EXPECT_LT(e.src, part.interval_end(x));
        EXPECT_GE(e.dst, part.interval_begin(y));
        EXPECT_LT(e.dst, part.interval_end(y));
      }
      total += part.block_edge_count(x, y);
    }
  EXPECT_EQ(total, g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(IntervalCounts, PartitionSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 31, 64, 128,
                                           640));

}  // namespace
}  // namespace hyve
