#include <gtest/gtest.h>

#include "memmodel/crossbar.hpp"
#include "memmodel/dram.hpp"
#include "memmodel/reram.hpp"
#include "memmodel/sram.hpp"
#include "memmodel/techparams.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

using namespace tech;

ReramConfig reram_cfg(int output_bits, ReramOptTarget opt, int cell_bits = 1) {
  ReramConfig cfg;
  cfg.output_bits = output_bits;
  cfg.optimization = opt;
  cfg.cell_bits = cell_bits;
  return cfg;
}

// ---------- Table 3 fidelity ----------

struct Table3Row {
  ReramOptTarget opt;
  int bits;
  double energy_pj;
  double period_ps;
  double power_per_bit_mw;  // the paper's third column
};

class Table3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, MatchesPaperValues) {
  const Table3Row row = GetParam();
  const ReramModel m(reram_cfg(row.bits, row.opt));
  EXPECT_DOUBLE_EQ(m.access_energy_pj(), row.energy_pj);
  EXPECT_NEAR(m.access_period_ns(), row.period_ps / 1000.0, 1e-9);
  // power/bit = energy / period / bits.
  const double power_per_bit =
      m.access_energy_pj() / m.access_period_ns() / row.bits;
  EXPECT_NEAR(power_per_bit, row.power_per_bit_mw, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table3Test,
    ::testing::Values(
        Table3Row{ReramOptTarget::kEnergyOptimized, 64, 20.13, 1221, 0.26},
        Table3Row{ReramOptTarget::kEnergyOptimized, 128, 33.87, 1983, 0.13},
        Table3Row{ReramOptTarget::kEnergyOptimized, 256, 57.31, 1983, 0.11},
        Table3Row{ReramOptTarget::kEnergyOptimized, 512, 102.07, 1983, 0.10},
        Table3Row{ReramOptTarget::kLatencyOptimized, 64, 381.47, 653, 9.13},
        Table3Row{ReramOptTarget::kLatencyOptimized, 128, 378.57, 590, 5.01},
        Table3Row{ReramOptTarget::kLatencyOptimized, 256, 382.37, 590, 2.53},
        Table3Row{ReramOptTarget::kLatencyOptimized, 512, 660.23, 527,
                  2.45}));

TEST(Reram, EnergyOptimized512IsMostEfficientPerBit) {
  // §7.2.2: the energy-optimised 512-bit configuration wins joules/bit.
  double best = 1e18;
  int best_bits = 0;
  for (int bits : {64, 128, 256, 512}) {
    const ReramModel m(
        reram_cfg(bits, ReramOptTarget::kEnergyOptimized));
    if (m.read_energy_per_bit_pj() < best) {
      best = m.read_energy_per_bit_pj();
      best_bits = bits;
    }
  }
  EXPECT_EQ(best_bits, 512);
  for (int bits : {64, 128, 256, 512}) {
    const ReramModel lat(reram_cfg(bits, ReramOptTarget::kLatencyOptimized));
    EXPECT_GT(lat.read_energy_per_bit_pj(), best);
  }
}

TEST(Reram, RejectsUnsupportedWidth) {
  EXPECT_THROW(ReramModel(reram_cfg(96, ReramOptTarget::kEnergyOptimized)),
               InvariantError);
}

TEST(Reram, RejectsBadCellBits) {
  EXPECT_THROW(ReramModel(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 4)),
               InvariantError);
  EXPECT_THROW(ReramModel(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 0)),
               InvariantError);
}

// ---------- MLC scaling (Fig. 13's mechanism) ----------

TEST(Reram, MlcRaisesAccessEnergyAndLatency) {
  const ReramModel slc(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 1));
  const ReramModel mlc2(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 2));
  const ReramModel mlc3(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 3));
  EXPECT_LT(slc.access_energy_pj(), mlc2.access_energy_pj());
  EXPECT_LT(mlc2.access_energy_pj(), mlc3.access_energy_pj());
  EXPECT_LT(slc.access_period_ns(), mlc2.access_period_ns());
  EXPECT_LT(mlc2.access_period_ns(), mlc3.access_period_ns());
}

TEST(Reram, MlcIncreasesChipDensity) {
  const ReramModel slc(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 1));
  const ReramModel mlc(reram_cfg(512, ReramOptTarget::kEnergyOptimized, 2));
  const std::uint64_t cap = units::Gbit(16);
  EXPECT_LE(mlc.chips_for(cap), slc.chips_for(cap));
}

// ---------- streaming / random access ----------

TEST(Reram, StreamEnergyLinearInBytes) {
  const ReramModel m;
  EXPECT_DOUBLE_EQ(m.stream_read_energy_pj(2000),
                   2.0 * m.stream_read_energy_pj(1000));
}

TEST(Reram, WritesCostMoreThanReads) {
  const ReramModel m;
  EXPECT_GT(m.stream_write_energy_pj(1 << 20),
            m.stream_read_energy_pj(1 << 20));
  EXPECT_GT(m.stream_write_time_ns(1 << 20), m.stream_read_time_ns(1 << 20));
}

TEST(Reram, SubbankInterleavingBoostsBandwidth) {
  ReramConfig with = reram_cfg(512, ReramOptTarget::kEnergyOptimized);
  ReramConfig without = with;
  without.subbank_interleaving = false;
  const ReramModel a(with);
  const ReramModel b(without);
  EXPECT_LT(a.stream_read_time_ns(1 << 20), b.stream_read_time_ns(1 << 20));
}

TEST(Reram, RandomWriteProgramsFullRow) {
  const ReramModel m;
  // A 4-byte random write still programs >= output_bits cells.
  EXPECT_GE(m.random_write_energy_pj(4),
            512 * kReramSetEnergyPerBitPj);
}

TEST(Reram, RandomWriteSlowerThanRead) {
  const ReramModel m;
  EXPECT_GT(m.random_write_throughput_ns(), m.random_access_throughput_ns());
}

// ---------- background & power gating hooks ----------

TEST(Reram, BackgroundScalesWithChips) {
  const ReramModel m;
  const double one = m.background_power_mw(units::MiB(1));
  const double many = m.background_power_mw(units::Gbit(4) * 3);
  EXPECT_GT(many, 2.0 * one);
}

TEST(Reram, GatedPowerBelowUngated) {
  const ReramModel m;
  const std::uint64_t cap = units::Gbit(8);
  for (int active = 0; active <= kReramBanksPerChip; ++active) {
    EXPECT_LE(m.gated_power_mw(cap, active), m.background_power_mw(cap))
        << active;
  }
}

TEST(Reram, GatedPowerMonotonicInActiveBanks) {
  const ReramModel m;
  const std::uint64_t cap = units::Gbit(4);
  double prev = -1;
  for (int active = 0; active <= kReramBanksPerChip; ++active) {
    const double p = m.gated_power_mw(cap, active);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Reram, GatedPowerRejectsBadBankCount) {
  const ReramModel m;
  EXPECT_THROW(m.gated_power_mw(units::Gbit(4), -1), InvariantError);
  EXPECT_THROW(m.gated_power_mw(units::Gbit(4), kReramBanksPerChip + 1),
               InvariantError);
}

TEST(Reram, BandwidthProvisioning) {
  const ReramModel m;
  const auto one_chip = m.min_capacity_for_bandwidth_gbps(1.0);
  const auto many = m.min_capacity_for_bandwidth_gbps(4 * kReramChannelGBps);
  EXPECT_EQ(one_chip, m.config().chip_capacity_bytes);
  EXPECT_EQ(many, 4 * m.config().chip_capacity_bytes);
}

// ---------- DRAM ----------

TEST(Dram, SequentialCheaperThanRandomPerByte) {
  const DramModel m;
  const double seq_per_byte = m.stream_read_energy_pj(64) / 64.0;
  const double rand_per_byte = m.random_read_energy_pj(8) / 8.0;
  EXPECT_GT(rand_per_byte, 10.0 * seq_per_byte);
}

TEST(Dram, BackgroundGrowsWithDensity) {
  const DramModel small(DramConfig{units::Gbit(4)});
  const DramModel big(DramConfig{units::Gbit(16)});
  // One rank each; denser chips refresh more.
  EXPECT_GT(big.background_power_mw(units::Gbit(4)),
            small.background_power_mw(units::Gbit(4)));
}

TEST(Dram, ChipsRoundToFullRanks) {
  const DramModel m;
  EXPECT_EQ(m.chips_for(1), kDramChipsPerRank);
  EXPECT_EQ(m.chips_for(units::Gbit(4) * 8), kDramChipsPerRank);
  EXPECT_EQ(m.chips_for(units::Gbit(4) * 8 + 1), 2 * kDramChipsPerRank);
}

TEST(Dram, StreamTimeMatchesChannelBandwidth) {
  const DramModel m;
  // 17 GB == 1 s at the DDR4-2133 channel rate.
  EXPECT_NEAR(m.stream_read_time_ns(static_cast<std::uint64_t>(
                  kDramChannelGBps * 1e9)),
              1e9, 1e6);
}

TEST(Dram, BandwidthProvisioningInRanks) {
  const DramModel m;
  EXPECT_EQ(m.min_capacity_for_bandwidth_gbps(kDramChannelGBps - 1),
            kDramChipsPerRank * m.config().chip_capacity_bytes);
  EXPECT_EQ(m.min_capacity_for_bandwidth_gbps(2.5 * kDramChannelGBps),
            3 * kDramChipsPerRank * m.config().chip_capacity_bytes);
}

// ---------- Fig. 9 shape: DRAM vs ReRAM per-operation ratios ----------

TEST(Fig9Shape, SequentialReadFavorsReramOnEnergy) {
  const DramModel dram;
  const ReramModel reram;
  const std::uint64_t bytes = units::MiB(8);
  const double ratio =
      dram.stream_read_energy_pj(bytes) / reram.stream_read_energy_pj(bytes);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 9.0);
}

TEST(Fig9Shape, SequentialReadDelayFavorsDramSlightly) {
  const DramModel dram;
  const ReramModel reram;
  const std::uint64_t bytes = units::MiB(8);
  const double ratio =
      dram.stream_read_time_ns(bytes) / reram.stream_read_time_ns(bytes);
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.7);
}

TEST(Fig9Shape, SequentialWriteFavorsDramOnDelay) {
  const DramModel dram;
  const ReramModel reram;
  const std::uint64_t bytes = units::MiB(8);
  EXPECT_LT(dram.stream_write_time_ns(bytes) / reram.stream_write_time_ns(bytes),
            0.5);
}

// ---------- SRAM ----------

TEST(Sram, AnchorPointMatchesCacti2MB) {
  const SramModel m(units::MiB(2));
  EXPECT_DOUBLE_EQ(m.read_energy_pj(4), kSramAnchorReadEnergyPj);
  EXPECT_DOUBLE_EQ(m.write_energy_pj(4), kSramAnchorWriteEnergyPj);
  EXPECT_DOUBLE_EQ(m.read_latency_ns(), kSramAnchorReadLatencyNs);
  EXPECT_DOUBLE_EQ(m.cycle_ns(), kSramAnchorCycleNs);
}

TEST(Sram, CycleAt4MBMatchesCactiQuote) {
  // §4.2 quotes 1.808 ns for a 4 MB array; the fitted exponent must land
  // within a couple of percent.
  const SramModel m(units::MiB(4));
  EXPECT_NEAR(m.cycle_ns(), kSramCycleNs4MiB, 0.05);
}

TEST(Sram, WiderAccessesCostProportionally) {
  const SramModel m(units::MiB(2));
  EXPECT_DOUBLE_EQ(m.read_energy_pj(8), 2.0 * m.read_energy_pj(4));
  EXPECT_DOUBLE_EQ(m.read_energy_pj(3), m.read_energy_pj(4));  // word floor
}

TEST(Sram, LeakageLinearInCapacity) {
  const SramModel a(units::MiB(2));
  const SramModel b(units::MiB(8));
  EXPECT_NEAR(b.leakage_power_mw() / a.leakage_power_mw(), 4.0, 1e-9);
}

TEST(Sram, BiggerArraysSlowerAndHungrier) {
  const SramModel small(units::MiB(2));
  const SramModel big(units::MiB(16));
  EXPECT_GT(big.cycle_ns(), small.cycle_ns());
  EXPECT_GT(big.read_energy_pj(4), small.read_energy_pj(4));
}

TEST(Sram, RejectsTinyCapacity) {
  EXPECT_THROW(SramModel(16), InvariantError);
}

TEST(RegisterFile, FasterAndCheaperThanSram) {
  // §6.3's comparison: register files beat SRAM per access...
  const RegisterFileModel rf;
  const SramModel sram(units::MiB(2));
  EXPECT_LT(rf.read_energy_pj(4), sram.read_energy_pj(4) / 10.0);
  EXPECT_LT(rf.read_latency_ns(), sram.read_latency_ns() / 10.0);
}

// ---------- crossbar (GraphR) ----------

TEST(Crossbar, ConfigureCostDominatedByWrites) {
  const CrossbarModel cb;
  const CrossbarBlockCost cost = cb.configure_block(2);
  EXPECT_DOUBLE_EQ(cost.time_ns, 2 * kCrossbarWriteLatencyNs);
  EXPECT_GT(cost.energy_pj, 2 * kCrossbarWriteEnergyPj);
}

TEST(Crossbar, Eq15PerEdgeEnergyMvm) {
  const CrossbarModel cb;
  const double n_avg = 1.5;
  const double expected = kCrossbarsPerValue * kCrossbarWriteEnergyPj +
                          kCrossbarsPerValue * kCrossbarReadEnergyPj / n_avg;
  EXPECT_DOUBLE_EQ(cb.per_edge_energy_mvm_pj(n_avg), expected);
}

TEST(Crossbar, Eq16PerEdgeLatency) {
  const CrossbarModel cb;
  EXPECT_DOUBLE_EQ(cb.per_edge_latency_mvm_ns(2.0),
                   kCrossbarWriteLatencyNs + kCrossbarReadLatencyNs / 2.0);
}

TEST(Crossbar, CmosBeatsCrossbarPerEdge) {
  // §6.4's conclusion: E^cb_pu,mv > E^cmos_pu because a crossbar write
  // (3.91 nJ) dwarfs a CMOS multiply (3.7 pJ).
  const CrossbarModel cb;
  for (double n_avg : {1.23, 1.44, 1.49, 1.73, 2.38}) {  // Table 1
    EXPECT_GT(cb.per_edge_energy_mvm_pj(n_avg), kCmosEdgeOpEnergyPj * 100);
    EXPECT_GT(cb.per_edge_energy_non_mvm_pj(n_avg), kCmosEdgeOpEnergyPj);
  }
}

TEST(Crossbar, SparserBlocksAmortizeWorse) {
  const CrossbarModel cb;
  EXPECT_GT(cb.per_edge_energy_non_mvm_pj(1.2),
            cb.per_edge_energy_non_mvm_pj(2.4));
}

TEST(Crossbar, RejectsNonPositiveNavg) {
  const CrossbarModel cb;
  EXPECT_THROW(cb.per_edge_energy_mvm_pj(0.0), InvariantError);
}

}  // namespace
}  // namespace hyve
