#include <gtest/gtest.h>

#include "graph/datasets.hpp"
#include "graph/stats.hpp"

namespace hyve {
namespace {

TEST(Datasets, SpecsCoverAllFive) {
  EXPECT_EQ(kAllDatasets.size(), 5u);
  EXPECT_EQ(dataset_name(DatasetId::kYT), "YT");
  EXPECT_EQ(dataset_name(DatasetId::kWK), "WK");
  EXPECT_EQ(dataset_name(DatasetId::kAS), "AS");
  EXPECT_EQ(dataset_name(DatasetId::kLJ), "LJ");
  EXPECT_EQ(dataset_name(DatasetId::kTW), "TW");
}

TEST(Datasets, ScalePreservesAverageDegree) {
  for (const DatasetId id : kAllDatasets) {
    const DatasetSpec& spec = dataset_spec(id);
    const double full_degree = static_cast<double>(spec.full_edges) /
                               static_cast<double>(spec.full_vertices);
    const double scaled_degree =
        static_cast<double>(spec.edges) / static_cast<double>(spec.vertices);
    EXPECT_NEAR(scaled_degree / full_degree, 1.0, 0.05)
        << dataset_name(id);
  }
}

TEST(Datasets, ScaleFactorsAsDocumented) {
  // 1/20 for the SNAP graphs, 1/200 for twitter-2010 (DESIGN.md).
  for (const DatasetId id : kAllDatasets) {
    const DatasetSpec& spec = dataset_spec(id);
    const double expected = id == DatasetId::kTW ? 200.0 : 20.0;
    EXPECT_DOUBLE_EQ(spec.scale_factor, expected);
    EXPECT_NEAR(static_cast<double>(spec.full_vertices) / spec.vertices,
                expected, expected * 0.02);
  }
}

TEST(Datasets, RmatProbabilitiesSumToOne) {
  for (const DatasetId id : kAllDatasets) {
    const RmatParams& p = dataset_spec(id).rmat;
    EXPECT_NEAR(p.a + p.b + p.c + p.d, 1.0, 1e-9);
  }
}

TEST(Datasets, GraphMatchesSpecSize) {
  const DatasetSpec& spec = dataset_spec(DatasetId::kYT);
  const Graph& g = dataset_graph(DatasetId::kYT);
  EXPECT_EQ(g.num_vertices(), spec.vertices);
  EXPECT_LE(g.num_edges(), spec.edges);
  EXPECT_GE(g.num_edges(), spec.edges * 95 / 100);
}

TEST(Datasets, GraphIsMemoised) {
  const Graph& a = dataset_graph(DatasetId::kYT);
  const Graph& b = dataset_graph(DatasetId::kYT);
  EXPECT_EQ(&a, &b);
}

TEST(Datasets, SyntheticSkewIsHeavyTailed) {
  const DegreeStats s = degree_stats(dataset_graph(DatasetId::kYT));
  // Social graphs concentrate a large edge share on the top 1% hubs.
  EXPECT_GT(s.top1pct_out_edge_share, 0.08);
}

TEST(Datasets, N8BlockOccupancyInTable1Band) {
  // Table 1's point for the full datasets is 1.23-2.38; the scaled
  // substitutes must stay in a comparable sparse band.
  const BlockOccupancy occ = block_occupancy(dataset_graph(DatasetId::kYT), 8);
  EXPECT_GT(occ.avg_edges_per_non_empty, 1.0);
  EXPECT_LT(occ.avg_edges_per_non_empty, 4.0);
}

}  // namespace
}  // namespace hyve
