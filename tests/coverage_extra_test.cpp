// Additional targeted coverage: provisioning floors, frontier x sharing
// interaction, GraphR memory options, and algorithm parameter handling.
#include <gtest/gtest.h>

#include "algos/pagerank.hpp"
#include "algos/runner.hpp"
#include "baselines/graphr.hpp"
#include "core/machine.hpp"
#include "graph/generators.hpp"
#include "sim/memory_controller.hpp"
#include "util/check.hpp"

namespace hyve {
namespace {

Graph small_graph() { return generate_rmat(20000, 100000, {}, 606); }

// ---- bandwidth-floor provisioning ----

TEST(Provisioning, EdgeMemoryBackgroundHasBandwidthFloor) {
  // Two graphs far below the bandwidth-provisioned capacity must see the
  // same edge-memory background power (the module is sized for the N-PU
  // stream rate, not the tiny edge list).
  const Graph tiny = generate_rmat(5000, 20000, {}, 607);
  const Graph small = generate_rmat(10000, 60000, {}, 608);
  const HyveConfig cfg = HyveConfig::hyve();  // no power gating
  const RunReport a = HyveMachine(cfg).run(tiny, Algorithm::kBfs);
  const RunReport b = HyveMachine(cfg).run(small, Algorithm::kBfs);
  const double power_a =
      a.energy[EnergyComponent::kEdgeMemBackground] / a.exec_time_ns;
  const double power_b =
      b.energy[EnergyComponent::kEdgeMemBackground] / b.exec_time_ns;
  EXPECT_NEAR(power_a, power_b, 1e-9 * power_a);
}

// ---- frontier x sharing interaction ----

TEST(FrontierSharing, InactiveIntervalsSkipSourceLoads) {
  const Graph g = small_graph();
  HyveConfig dense = HyveConfig::hyve_opt();
  HyveConfig skip = HyveConfig::hyve_opt();
  skip.frontier_block_skipping = true;
  const RunReport rd = HyveMachine(dense).run(g, Algorithm::kBfs);
  const RunReport rs = HyveMachine(skip).run(g, Algorithm::kBfs);
  // Converged-tail iterations stop loading the dormant source intervals.
  EXPECT_LT(rs.stats.offchip_vertex_bytes_read,
            rd.stats.offchip_vertex_bytes_read);
  EXPECT_LT(rs.stats.interval_loads, rd.stats.interval_loads);
  // Destination write-backs are identical: every interval still owns its
  // results.
  EXPECT_EQ(rs.stats.offchip_vertex_bytes_written,
            rd.stats.offchip_vertex_bytes_written);
}

TEST(FrontierSharing, WorksWithoutSharingToo) {
  const Graph g = small_graph();
  HyveConfig cfg = HyveConfig::hyve_opt();
  cfg.data_sharing = false;
  cfg.frontier_block_skipping = true;
  const RunReport r = HyveMachine(cfg).run(g, Algorithm::kCc);
  EXPECT_GT(r.mteps_per_watt(), 0.0);
  EXPECT_EQ(r.stats.router_hops, 0u);
}

// ---- GraphR options ----

TEST(GraphROptions, DramGlobalMemoryIsWorseForGraphR) {
  // Fig. 10's conclusion applied to the full model: GraphR's read-heavy
  // global traffic prefers ReRAM.
  const Graph g = small_graph();
  GraphRConfig reram_cfg;
  GraphRConfig dram_cfg;
  dram_cfg.global_memory_tech = MemTech::kDram;
  const GraphRReport rr = GraphRModel(reram_cfg).run(g, Algorithm::kPageRank);
  const GraphRReport rd = GraphRModel(dram_cfg).run(g, Algorithm::kPageRank);
  EXPECT_LT(rr.energy[EnergyComponent::kOffchipVertexDynamic],
            rd.energy[EnergyComponent::kOffchipVertexDynamic]);
}

// ---- algorithm parameters ----

TEST(AlgorithmParams, PagerankDampingChangesResult) {
  const Graph g = generate_rmat(500, 3000, {}, 609);
  PageRankProgram high(10, 0.85);
  PageRankProgram low(10, 0.5);
  run_functional(g, high);
  run_functional(g, low);
  // Lower damping pulls ranks towards uniform.
  double high_spread = 0;
  double low_spread = 0;
  const double uniform = 1.0 / g.num_vertices();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    high_spread += std::abs(high.ranks()[v] - uniform);
    low_spread += std::abs(low.ranks()[v] - uniform);
  }
  EXPECT_LT(low_spread, high_spread);
}

TEST(AlgorithmParams, PagerankIterationCountMatters) {
  const Graph g = generate_rmat(500, 3000, {}, 610);
  PageRankProgram one(1);
  PageRankProgram ten(10);
  run_functional(g, one);
  run_functional(g, ten);
  bool any_diff = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    any_diff |= std::abs(one.ranks()[v] - ten.ranks()[v]) > 1e-12;
  EXPECT_TRUE(any_diff);
}

// ---- address map parameters ----

TEST(AddressMapParams, ZeroSlackPacksTight) {
  const Graph g = generate_rmat(1000, 5000, {}, 611);
  const Partitioning part(g, 4);
  const HyveAddressMap tight(part, 8, 4, /*slack=*/0.0);
  const HyveAddressMap slack(part, 8, 4, /*slack=*/0.3);
  EXPECT_LT(tight.edge_memory_bytes(), slack.edge_memory_bytes());
  std::uint64_t expected = 0;
  for (std::uint32_t x = 0; x < 4; ++x)
    for (std::uint32_t y = 0; y < 4; ++y)
      expected +=
          HyveAddressMap::kBlockHeaderBytes + part.block_edge_count(x, y) * 8;
  EXPECT_EQ(tight.edge_memory_bytes(), expected);
}

TEST(AddressMapParams, WeightedEdgesWidenBlocks) {
  const Graph g = generate_rmat(1000, 5000, {}, 612);
  const Partitioning part(g, 4);
  const HyveAddressMap narrow(part, 8, 4);
  const HyveAddressMap wide(part, 12, 4);
  EXPECT_GT(wide.edge_memory_bytes(), narrow.edge_memory_bytes());
}

// ---- report field coherence across a weighted run ----

TEST(WeightedRun, TwelveByteEdgesAccountedEverywhere) {
  const Graph g = small_graph();
  HyveConfig cfg = HyveConfig::hyve_opt();
  cfg.edge_bytes = 12;
  const RunReport r = HyveMachine(cfg).run(g, Algorithm::kSssp);
  EXPECT_EQ(r.stats.edge_bytes_read, r.stats.edge_ops * 12);
}

}  // namespace
}  // namespace hyve
