#include <gtest/gtest.h>

#include "sim/energy.hpp"
#include "sim/pipeline.hpp"
#include "sim/power_gating.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace hyve {
namespace {

// ---------- EnergyBreakdown ----------

TEST(EnergyBreakdown, TotalsSumComponents) {
  EnergyBreakdown e;
  e[EnergyComponent::kEdgeMemDynamic] = 1;
  e[EnergyComponent::kEdgeMemBackground] = 2;
  e[EnergyComponent::kOffchipVertexDynamic] = 4;
  e[EnergyComponent::kOffchipVertexBackground] = 8;
  e[EnergyComponent::kSramDynamic] = 16;
  e[EnergyComponent::kSramLeakage] = 32;
  e[EnergyComponent::kRouter] = 64;
  e[EnergyComponent::kPuDynamic] = 128;
  e[EnergyComponent::kLogicStatic] = 256;
  EXPECT_DOUBLE_EQ(e.total_pj(), 511.0);
  EXPECT_DOUBLE_EQ(e.edge_memory_pj(), 3.0);
  EXPECT_DOUBLE_EQ(e.vertex_memory_pj(), 60.0);
  EXPECT_DOUBLE_EQ(e.logic_pj(), 448.0);
  // Fig. 17 partition covers everything exactly once.
  EXPECT_DOUBLE_EQ(e.memory_pj() + e.logic_pj(), e.total_pj());
}

TEST(EnergyBreakdown, Accumulation) {
  EnergyBreakdown a;
  a[EnergyComponent::kRouter] = 1.5;
  EnergyBreakdown b;
  b[EnergyComponent::kRouter] = 2.5;
  b[EnergyComponent::kPuDynamic] = 1.0;
  a += b;
  EXPECT_DOUBLE_EQ(a[EnergyComponent::kRouter], 4.0);
  EXPECT_DOUBLE_EQ(a[EnergyComponent::kPuDynamic], 1.0);
}

TEST(EnergyBreakdown, ComponentNamesDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(EnergyComponent::kCount); ++i)
    names.insert(component_name(static_cast<EnergyComponent>(i)));
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(EnergyComponent::kCount));
}

TEST(AccessStats, Accumulation) {
  AccessStats a;
  a.edge_bytes_read = 10;
  a.sram_random_reads = 5;
  AccessStats b;
  b.edge_bytes_read = 7;
  b.router_hops = 2;
  a += b;
  EXPECT_EQ(a.edge_bytes_read, 17u);
  EXPECT_EQ(a.sram_random_reads, 5u);
  EXPECT_EQ(a.router_hops, 2u);
}

// ---------- pipeline ----------

TEST(Pipeline, BottleneckIsMaxStage) {
  PipelineStageTimes s;
  s.edge_read_ns = 1.0;
  s.vertex_read_ns = 3.0;
  s.update_ns = 2.0;
  s.vertex_write_ns = 0.5;
  EXPECT_DOUBLE_EQ(s.bottleneck_ns(), 3.0);
}

TEST(Pipeline, BlockTimeLinearPlusFill) {
  PipelineStageTimes s;
  s.edge_read_ns = 2.0;
  s.fill_latency_ns = 10.0;
  EXPECT_DOUBLE_EQ(block_processing_time_ns(100, s), 210.0);
}

TEST(Pipeline, EmptyBlockIsFree) {
  PipelineStageTimes s;
  s.edge_read_ns = 2.0;
  s.fill_latency_ns = 10.0;
  EXPECT_DOUBLE_EQ(block_processing_time_ns(0, s), 0.0);
}

// ---------- power gating ----------

EdgeMemoryActivity sample_activity() {
  EdgeMemoryActivity a;
  a.total_time_ns = units::ms(1.0);
  a.streaming_time_ns = units::ms(0.4);
  a.bytes_streamed = units::MiB(64);
  a.capacity_bytes = units::Gbit(8);
  return a;
}

TEST(PowerGating, GatedNeverExceedsUngatedPlusWakes) {
  const ReramModel reram;
  const PowerGatingResult r = evaluate_power_gating(reram, sample_activity());
  EXPECT_LT(r.gated_background_pj, r.ungated_background_pj);
  EXPECT_GT(r.gated_background_pj, 0.0);
}

TEST(PowerGating, SavingsGrowWithIdleTime) {
  const ReramModel reram;
  EdgeMemoryActivity busy = sample_activity();
  busy.streaming_time_ns = busy.total_time_ns;  // always streaming
  EdgeMemoryActivity idle = sample_activity();
  idle.streaming_time_ns = 0.1 * idle.total_time_ns;
  const auto r_busy = evaluate_power_gating(reram, busy);
  const auto r_idle = evaluate_power_gating(reram, idle);
  EXPECT_LT(r_idle.gated_background_pj, r_busy.gated_background_pj);
  // Ungated energy only depends on total time.
  EXPECT_DOUBLE_EQ(r_idle.ungated_background_pj,
                   r_busy.ungated_background_pj);
}

TEST(PowerGating, WakeCountTracksBanksTouched) {
  const ReramModel reram;
  EdgeMemoryActivity a = sample_activity();
  a.capacity_bytes = reram.config().chip_capacity_bytes;  // one chip
  const std::uint64_t bank_bytes =
      a.capacity_bytes / ReramModel::banks_per_chip();
  a.bytes_streamed = 3 * bank_bytes;
  const auto r = evaluate_power_gating(reram, a);
  EXPECT_GE(r.bank_wakes, 3u);
  EXPECT_LE(r.bank_wakes, 5u);
  EXPECT_DOUBLE_EQ(r.wake_energy_pj,
                   static_cast<double>(r.bank_wakes) *
                       reram.bank_wake_energy_pj());
}

TEST(PowerGating, OnlyFirstWakeExposed) {
  const ReramModel reram;
  const auto r = evaluate_power_gating(reram, sample_activity());
  EXPECT_DOUBLE_EQ(r.exposed_wake_time_ns, reram.bank_wake_latency_ns());
}

TEST(PowerGating, RejectsInconsistentActivity) {
  const ReramModel reram;
  EdgeMemoryActivity a = sample_activity();
  a.streaming_time_ns = 2 * a.total_time_ns;
  EXPECT_THROW(evaluate_power_gating(reram, a), InvariantError);
  EdgeMemoryActivity b = sample_activity();
  b.capacity_bytes = 0;
  EXPECT_THROW(evaluate_power_gating(reram, b), InvariantError);
}

TEST(PowerGating, BigSavingsOnSequentialScan) {
  // The headline §4.1 effect: with one bank streaming, most of the chip's
  // leakage disappears.
  const ReramModel reram;
  const auto r = evaluate_power_gating(reram, sample_activity());
  EXPECT_LT(r.gated_background_pj, 0.5 * r.ungated_background_pj);
}

}  // namespace
}  // namespace hyve
